//! Error-path coverage for the armus-pl front end: parser rejections
//! (with positions), well-formedness scoping corners, and the property
//! that generated programs always pass both layers.

use armus_pl::gen::{gen_program, ProgGenConfig};
use armus_pl::syntax::build::*;
use armus_pl::wf::{self, check_with_scope};
use armus_pl::{parse, parse_spanned};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

// ---- parser rejections ---------------------------------------------------

#[test]
fn await_without_argument_is_rejected_with_a_position() {
    let err = parse("p = newPhaser();\nawait();").unwrap_err();
    assert!(err.message.contains("expected identifier"), "{err}");
    assert_eq!((err.line, err.col), (2, 7));
}

#[test]
fn await_missing_semicolon_is_rejected() {
    let err = parse("p = newPhaser(); await(p)").unwrap_err();
    assert!(err.message.contains("Semi"), "{err}");
}

#[test]
fn await_with_two_arguments_is_rejected() {
    let err = parse("p = newPhaser(); q = newPhaser(); await(p, q);").unwrap_err();
    assert!(err.message.contains("RParen"), "{err}");
}

#[test]
fn unclosed_fork_block_is_rejected_at_end_of_input() {
    let err = parse("t = newTid();\nfork(t) {\n  skip;\n").unwrap_err();
    assert!(err.message.contains("RBrace") || err.message.contains("end of input"), "{err}");
}

#[test]
fn unclosed_loop_block_is_rejected() {
    let err = parse("loop { skip;").unwrap_err();
    assert!(err.message.contains("RBrace") || err.message.contains("end of input"), "{err}");
}

#[test]
fn unopened_block_close_is_trailing_input() {
    let err = parse("skip; }").unwrap_err();
    assert!(err.message.contains("trailing input"), "{err}");
}

#[test]
fn unknown_binding_function_is_rejected() {
    let err = parse("x = newThing();").unwrap_err();
    assert!(err.message.contains("newTid or newPhaser"), "{err}");
}

#[test]
fn bare_identifier_statement_is_rejected() {
    // Not a keyword and not a binding: the parser demands `=`.
    let err = parse("frobnicate;").unwrap_err();
    assert!(err.message.contains("Eq"), "{err}");
}

#[test]
fn parse_error_display_carries_the_position() {
    let err = parse("loop {").unwrap_err();
    let shown = err.to_string();
    assert!(shown.starts_with("parse error at "), "{shown}");
    assert!(shown.contains(&format!("{}:{}", err.line, err.col)), "{shown}");
}

// ---- wf scoping corners --------------------------------------------------

#[test]
fn rebinding_an_existing_name_does_not_unbind_it_at_sequence_end() {
    // `p` enters scope at the first binder; the *second* binder of the
    // same name must not remove it early (insert-returned-false rollback
    // tracking): the final use is still bound.
    let prog = vec![new_phaser("p"), new_phaser("p"), adv("p")];
    assert!(wf::check(&prog).is_empty());
}

#[test]
fn shadowing_inside_a_loop_does_not_strip_the_outer_binding() {
    // The loop body re-binds `p`; on exit the outer `p` must survive.
    let prog = vec![new_phaser("p"), ploop(vec![new_phaser("p"), adv("p")]), adv("p")];
    assert!(wf::check(&prog).is_empty());
}

#[test]
fn sibling_forks_do_not_leak_bindings_to_each_other() {
    // `q` is bound inside the first fork body only; the second fork body
    // must not see it.
    let prog =
        vec![new_tid("t"), fork("t", vec![new_phaser("q"), adv("q")]), fork("t", vec![adv("q")])];
    let diags = wf::check(&prog);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].var, "q");
}

#[test]
fn scope_seeding_covers_only_the_seeded_names() {
    let prog = vec![adv("#p0"), awaitp("#p1")];
    let diags = check_with_scope(&prog, &["#p0".to_string()]);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].var, "#p1");
}

#[test]
fn seeded_scope_can_still_be_shadowed_by_a_binder() {
    // A program binder of a seeded name: legal, and uses stay bound even
    // after the binder's own sequence ends (the seed keeps it in scope).
    let prog = vec![ploop(vec![new_tid("#t0")]), fork("#t0", vec![skip()])];
    assert!(check_with_scope(&prog, &["#t0".to_string()]).is_empty());
}

// ---- generated programs pass the whole front end -------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated program is well-formed and survives the
    /// pretty-print → parse_spanned round trip with a span on every
    /// top-level instruction.
    #[test]
    fn generated_programs_pass_the_front_end(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let prog = gen_program(&mut rng, &ProgGenConfig::default());
        prop_assert!(wf::check(&prog).is_empty());
        let printed = armus_pl::syntax::pretty(&prog);
        let (reparsed, spans) = parse_spanned(&printed).unwrap();
        prop_assert_eq!(&reparsed, &prog);
        prop_assert!(wf::check_spanned(&reparsed, &spans).is_empty());
        for i in 0..prog.len() {
            prop_assert!(spans.get(&[i]).is_some(), "top-level instruction {} has no span", i);
        }
    }
}
