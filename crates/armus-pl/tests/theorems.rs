//! Property-based validation of the paper's metatheory (§4.3–4.6):
//!
//! * **Equivalence (Theorem 4.8)** — `wfg(ϕ(S))` has a cycle iff
//!   `sg(ϕ(S))` has one (and iff the GRG has one);
//! * **Soundness (Theorem 4.10)** — a cycle implies the state is
//!   deadlocked per Definition 3.2;
//! * **Completeness (Theorem 4.15)** — a deadlocked state yields a cycle;
//!
//! checked on thousands of generated states and along the executions of
//! generated programs, against the *independent* coinductive oracle of
//! `armus_pl::deadlock` (no graph code involved).

use armus_core::{checker, grg, sg, wfg, ModelChoice, DEFAULT_SG_THRESHOLD};
use armus_pl::gen::{gen_program, gen_state, ProgGenConfig, StateGenConfig};
use armus_pl::{deadlock, phi, semantics, State};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn random_state(seed: u64, cfg: &StateGenConfig) -> State {
    gen_state(&mut SmallRng::seed_from_u64(seed), cfg)
}

fn shapes() -> Vec<StateGenConfig> {
    vec![
        StateGenConfig::default(),
        // Many tasks, few phasers (SPMD-ish).
        StateGenConfig { tasks: 16, phasers: 2, ..Default::default() },
        // Few tasks, many phasers (fork/join-ish).
        StateGenConfig { tasks: 3, phasers: 10, ..Default::default() },
        // Dense membership, deeper phases.
        StateGenConfig {
            tasks: 8,
            phasers: 4,
            max_phase: 6,
            membership_density: 0.9,
            blocked_fraction: 1.0,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Theorem 4.8 (+ GRG bridge): cycle presence agrees across models.
    #[test]
    fn equivalence_wfg_sg_grg(seed in any::<u64>(), shape_idx in 0usize..4) {
        let state = random_state(seed, &shapes()[shape_idx]);
        let (snap, _) = phi::phi(&state);
        let wfg_cycle = wfg::wfg(&snap).find_cycle().is_some();
        let sg_cycle = sg::sg(&snap).find_cycle().is_some();
        let grg_cycle = grg::grg(&snap).find_cycle().is_some();
        prop_assert_eq!(wfg_cycle, sg_cycle, "Theorem 4.8 violated");
        prop_assert_eq!(wfg_cycle, grg_cycle, "GRG bridge violated");
    }

    /// Theorems 4.10 + 4.15: cycle ⟺ deadlocked (against the oracle).
    #[test]
    fn soundness_and_completeness(seed in any::<u64>(), shape_idx in 0usize..4) {
        let state = random_state(seed, &shapes()[shape_idx]);
        let (snap, _) = phi::phi(&state);
        let oracle = deadlock::is_deadlocked(&state);
        for model in [ModelChoice::FixedWfg, ModelChoice::FixedSg, ModelChoice::Auto] {
            let cycle = checker::check(&snap, model, DEFAULT_SG_THRESHOLD).report.is_some();
            prop_assert_eq!(
                cycle, oracle,
                "{} disagrees with Definition 3.2 oracle on seed {}", model, seed
            );
        }
    }

    /// The tasks named in a report are a subset of the oracle's deadlocked
    /// task set (a cycle is a deadlocked sub-map, Theorem 4.10).
    #[test]
    fn reported_tasks_are_deadlocked(seed in any::<u64>()) {
        let cfg = StateGenConfig { tasks: 10, phasers: 3, blocked_fraction: 1.0, ..Default::default() };
        let state = random_state(seed, &cfg);
        let (snap, names) = phi::phi(&state);
        if let Some(report) = checker::check(&snap, ModelChoice::FixedWfg, 2).report {
            let oracle = deadlock::deadlocked_tasks(&state).expect("soundness");
            for t in &report.tasks {
                let name = names.task_name(*t).expect("interned").to_string();
                prop_assert!(oracle.contains(&name), "{name} reported but not deadlocked");
            }
            // Completeness detail (Thm 4.15): every deadlocked task set is
            // nonempty when a cycle exists.
            prop_assert!(!report.tasks.is_empty());
        }
    }

    /// Witness cycles are genuine cycles of their graphs.
    #[test]
    fn witnesses_are_valid(seed in any::<u64>()) {
        let cfg = StateGenConfig { tasks: 8, phasers: 3, blocked_fraction: 1.0, ..Default::default() };
        let state = random_state(seed, &cfg);
        let (snap, _) = phi::phi(&state);
        if let Some(report) = checker::check(&snap, ModelChoice::FixedWfg, 2).report {
            match report.witness {
                armus_core::CycleWitness::Tasks(c) => {
                    prop_assert!(wfg::wfg(&snap).is_cycle(&c));
                }
                armus_core::CycleWitness::Resources(_) => prop_assert!(false, "WFG mode"),
            }
        }
        if let Some(report) = checker::check(&snap, ModelChoice::FixedSg, 2).report {
            match report.witness {
                armus_core::CycleWitness::Resources(c) => {
                    prop_assert!(sg::sg(&snap).is_cycle(&c));
                }
                armus_core::CycleWitness::Tasks(_) => prop_assert!(false, "SG mode"),
            }
        }
    }

    /// Along real executions of generated (often buggy) programs, the
    /// graph verdict tracks the oracle at every step, and deadlocks are
    /// stable (once deadlocked, forever deadlocked).
    #[test]
    fn verdicts_track_executions(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = ProgGenConfig { missing_adv_prob: 0.5, missing_dereg_prob: 0.5, ..Default::default() };
        let program = gen_program(&mut rng, &cfg);
        let mut scheduler = semantics::RandomScheduler::new(seed ^ 0xABCD);
        let mut was_deadlocked = false;
        let mut violations: Option<String> = None;
        let (_, final_state) = scheduler.run(State::initial(program), 2_000, |state| {
            if violations.is_some() {
                return;
            }
            let oracle = deadlock::is_deadlocked(state);
            let (snap, _) = phi::phi(state);
            let cycle = checker::check(&snap, ModelChoice::Auto, 2).report.is_some();
            if cycle != oracle {
                violations = Some(format!("verdict {cycle} vs oracle {oracle}"));
            }
            if was_deadlocked && !oracle {
                violations = Some("deadlock evaporated".to_string());
            }
            was_deadlocked = oracle;
        });
        prop_assert!(violations.is_none(), "{:?}", violations);
        // Terminal sanity: a finished state is never deadlocked.
        if final_state.all_finished() {
            prop_assert!(!deadlock::is_deadlocked(&final_state));
        }
    }

    /// Totally deadlocked states (Definition 3.1) are deadlocked states
    /// (Definition 3.2) whose deadlocked set is *every* task.
    #[test]
    fn totally_deadlocked_implies_full_set(seed in any::<u64>()) {
        let cfg = StateGenConfig { tasks: 6, phasers: 2, blocked_fraction: 1.0, ..Default::default() };
        let state = random_state(seed, &cfg);
        if deadlock::is_totally_deadlocked(&state) {
            let set = deadlock::deadlocked_tasks(&state).expect("Def 3.1 ⊆ Def 3.2");
            prop_assert_eq!(set.len(), state.tasks.len());
        }
    }
}
