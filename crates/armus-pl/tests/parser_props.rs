//! Parser/pretty-printer round-trip properties and substitution laws.

use armus_pl::gen::{gen_program, ProgGenConfig};
use armus_pl::parser::parse;
use armus_pl::syntax::{build, free_vars, pretty, subst_seq, Instr, Seq};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy for structurally arbitrary programs (beyond the benchmark-
/// shaped generator): recursive over the grammar with a small variable
/// pool.
fn arb_seq() -> impl Strategy<Value = Seq> {
    let var =
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("t"), Just("p")].prop_map(str::to_string);
    let leaf = prop_oneof![
        Just(Instr::Skip),
        var.clone().prop_map(Instr::NewTid),
        var.clone().prop_map(Instr::NewPhaser),
        (var.clone(), var.clone()).prop_map(|(t, p)| Instr::Reg(t, p)),
        var.clone().prop_map(Instr::Dereg),
        var.clone().prop_map(Instr::Adv),
        var.clone().prop_map(Instr::Await),
    ];
    let instr = leaf.prop_recursive(3, 24, 4, move |inner| {
        let var = prop_oneof![Just("t"), Just("u")].prop_map(str::to_string);
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Instr::Loop),
            (var, proptest::collection::vec(inner, 0..4))
                .prop_map(|(t, body)| Instr::Fork(t, body)),
        ]
    });
    proptest::collection::vec(instr, 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// parse ∘ pretty = id on arbitrary programs.
    #[test]
    fn pretty_parse_round_trip(prog in arb_seq()) {
        let printed = pretty(&prog);
        let reparsed = parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{printed}")))?;
        prop_assert_eq!(reparsed, prog);
    }

    /// Substituting a variable that does not occur freely is the identity.
    #[test]
    fn subst_of_absent_var_is_identity(prog in arb_seq()) {
        prop_assert_eq!(subst_seq(&prog, "zz_not_used", "#x1"), prog);
    }

    /// After substitution the variable no longer occurs *freely*:
    /// occurrences surviving past a rebinding are bound, and `free_vars`
    /// respects binders.
    #[test]
    fn subst_eliminates_free_occurrences(prog in arb_seq()) {
        let out = subst_seq(&prog, "p", "#fresh0");
        prop_assert!(!free_vars(&out).contains(&"p".to_string()));
    }

    /// Substitution is idempotent for a fixed (var, name) pair.
    #[test]
    fn subst_is_idempotent(prog in arb_seq()) {
        let once = subst_seq(&prog, "t", "#t0");
        let twice = subst_seq(&once, "t", "#t0");
        prop_assert_eq!(once, twice);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The benchmark-shaped generator also round-trips (different
    /// distribution than `arb_seq`).
    #[test]
    fn generated_programs_round_trip(seed in any::<u64>()) {
        let prog = gen_program(&mut SmallRng::seed_from_u64(seed), &ProgGenConfig::default());
        let reparsed = parse(&pretty(&prog)).expect("generated programs parse");
        prop_assert_eq!(reparsed, prog);
    }
}

#[test]
fn figure_3_reference_text_round_trips() {
    let prog = vec![
        build::new_phaser("pc"),
        build::new_phaser("pb"),
        build::ploop(vec![
            build::new_tid("t"),
            build::reg("pc", "t"),
            build::reg("pb", "t"),
            build::fork(
                "t",
                vec![
                    build::ploop(vec![
                        build::skip(),
                        build::adv("pc"),
                        build::awaitp("pc"),
                        build::skip(),
                        build::adv("pc"),
                        build::awaitp("pc"),
                    ]),
                    build::dereg("pc"),
                    build::dereg("pb"),
                ],
            ),
        ]),
        build::adv("pb"),
        build::awaitp("pb"),
        build::skip(),
    ];
    assert_eq!(parse(&pretty(&prog)).unwrap(), prog);
}
