//! Bounded model checking of small PL programs: exhaustively explore the
//! reachable state space and check the verification verdict against the
//! semantic oracle in *every* reachable state — soundness and completeness
//! over entire reachable sets, not just sampled runs.

use armus_core::{checker, ModelChoice, DEFAULT_SG_THRESHOLD};
use armus_pl::syntax::build::*;
use armus_pl::{deadlock, phi, semantics, Instr, State};
use std::collections::HashSet;

/// Explores every reachable state (bounded) and returns them.
fn reachable(initial: State, max_states: usize) -> Vec<State> {
    let mut seen: HashSet<State> = HashSet::new();
    let mut frontier = vec![initial];
    while let Some(state) = frontier.pop() {
        if seen.len() >= max_states {
            panic!("state space exceeded the bound ({max_states})");
        }
        if !seen.insert(state.clone()) {
            continue;
        }
        for t in semantics::enabled(&state) {
            frontier.push(semantics::apply(&state, &t));
        }
    }
    seen.into_iter().collect()
}

fn assert_verdicts_match_everywhere(states: &[State]) {
    for state in states {
        let oracle = deadlock::is_deadlocked(state);
        let (snap, _) = phi::phi(state);
        for model in [ModelChoice::FixedWfg, ModelChoice::FixedSg, ModelChoice::Auto] {
            let verdict = checker::check(&snap, model, DEFAULT_SG_THRESHOLD).report.is_some();
            assert_eq!(verdict, oracle, "{model} disagrees with the oracle in state {state:?}");
        }
    }
}

/// Mini Figure 3 (one worker, one step) — the buggy version.
fn buggy_program() -> Vec<Instr> {
    vec![
        new_phaser("pc"),
        new_phaser("pb"),
        new_tid("t"),
        reg("pc", "t"),
        reg("pb", "t"),
        fork("t", vec![adv("pc"), awaitp("pc"), dereg("pc"), dereg("pb")]),
        adv("pb"),
        awaitp("pb"),
    ]
}

/// The fixed version (parent drops pc before the join).
fn fixed_program() -> Vec<Instr> {
    let mut p = buggy_program();
    p.insert(6, dereg("pc"));
    p
}

#[test]
fn buggy_program_entire_state_space_is_verdict_consistent() {
    // 6 straight-line pre-fork states + the 2×2 post-fork interleavings
    // (worker before/after its adv × main before/after its adv) = 10.
    let states = reachable(State::initial(buggy_program()), 200_000);
    assert_eq!(states.len(), 10, "state count changed — semantics drifted?");
    assert_verdicts_match_everywhere(&states);
    // The deadlock is reachable…
    assert!(states.iter().any(deadlock::is_deadlocked), "the Figure 1 deadlock must be reachable");
}

#[test]
fn fixed_program_has_no_deadlocked_reachable_state() {
    let states = reachable(State::initial(fixed_program()), 200_000);
    assert_verdicts_match_everywhere(&states);
    assert!(
        states.iter().all(|s| !deadlock::is_deadlocked(s)),
        "the fixed program must be deadlock-free over its entire state space"
    );
    // And it can actually finish.
    assert!(states.iter().any(State::all_finished));
}

#[test]
fn two_workers_shared_barrier_state_space() {
    // Two workers on one cyclic phaser, driver dropped out properly — a
    // bigger space with real interleavings of reg/adv/await/dereg.
    let prog = vec![
        new_phaser("p"),
        new_tid("a"),
        new_tid("b"),
        reg("p", "a"),
        reg("p", "b"),
        fork("a", vec![adv("p"), awaitp("p"), dereg("p")]),
        fork("b", vec![adv("p"), awaitp("p"), dereg("p")]),
        dereg("p"),
        skip(),
    ];
    let states = reachable(State::initial(prog), 200_000);
    assert_verdicts_match_everywhere(&states);
    assert!(states.iter().all(|s| !deadlock::is_deadlocked(s)));
    assert!(states.iter().any(State::all_finished));
}

#[test]
fn crossed_waits_state_space_contains_exactly_the_expected_deadlocks() {
    // a advances p and awaits it; b advances q and awaits it; each lags
    // the other's phaser: some interleavings deadlock, none should be
    // missed or invented.
    let prog = vec![
        new_phaser("p"),
        new_phaser("q"),
        new_tid("a"),
        new_tid("b"),
        reg("p", "a"),
        reg("q", "a"),
        reg("p", "b"),
        reg("q", "b"),
        fork("a", vec![adv("p"), awaitp("p"), dereg("p"), dereg("q")]),
        fork("b", vec![adv("q"), awaitp("q"), dereg("q"), dereg("p")]),
        dereg("p"),
        dereg("q"),
    ];
    let states = reachable(State::initial(prog), 500_000);
    assert_verdicts_match_everywhere(&states);
    let deadlocked: Vec<&State> = states.iter().filter(|s| deadlock::is_deadlocked(s)).collect();
    assert!(!deadlocked.is_empty(), "the crossed-wait deadlock must be reachable");
    for s in deadlocked {
        // In every deadlocked state both workers are stuck.
        let tasks = deadlock::deadlocked_tasks(s).unwrap();
        assert_eq!(tasks.len(), 2, "{s:?}");
    }
}

#[test]
fn loop_unfolding_keeps_the_state_space_finite_and_clean() {
    // `loop { skip }` unfolds to `skip; loop { skip }` — after the skip
    // reduces, the state recurs, so exploration terminates even though
    // traces are unbounded. (A loop around `adv` would grow phases without
    // bound; PL abstracts data, not clocks.)
    let prog = vec![new_phaser("p"), ploop(vec![skip()]), adv("p"), awaitp("p"), dereg("p")];
    let states = reachable(State::initial(prog), 100_000);
    assert_verdicts_match_everywhere(&states);
    assert!(states.iter().all(|s| !deadlock::is_deadlocked(s)));
    assert!(states.iter().any(State::all_finished));
}
