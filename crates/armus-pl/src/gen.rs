//! Seeded random generators for PL states and programs, used by the
//! property-test suites (soundness, completeness, WFG/SG equivalence) and
//! by the fuzzing example.
//!
//! Generators are plain functions of an [`rand::Rng`] so they compose with
//! proptest (`any::<u64>()` seed → deterministic artefact) and stay usable
//! outside test builds.

use rand::Rng;

use crate::state::{PhaserState, State};
use crate::syntax::{Instr, Seq};

/// Shape of a generated state.
#[derive(Clone, Copy, Debug)]
pub struct StateGenConfig {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of phasers.
    pub phasers: usize,
    /// Local phases are drawn from `0..=max_phase`.
    pub max_phase: u64,
    /// Probability that a given task is a member of a given phaser.
    pub membership_density: f64,
    /// Probability that a task's head instruction is an `await` on one of
    /// its phasers (the rest are "running" tasks).
    pub blocked_fraction: f64,
}

impl Default for StateGenConfig {
    fn default() -> Self {
        StateGenConfig {
            tasks: 6,
            phasers: 3,
            max_phase: 3,
            membership_density: 0.6,
            blocked_fraction: 0.8,
        }
    }
}

/// Generates a random PL state whose blocked tasks satisfy the `[sync]`
/// premise (each awaits a phaser it is a member of, at its own local
/// phase), which is the shape reachable PL states have.
pub fn gen_state(rng: &mut impl Rng, cfg: &StateGenConfig) -> State {
    let mut st = State::initial(vec![]);
    st.tasks.clear();
    let task_names: Vec<String> = (0..cfg.tasks).map(|i| format!("t{i}")).collect();
    let phaser_names: Vec<String> = (0..cfg.phasers).map(|i| format!("p{i}")).collect();

    for p in &phaser_names {
        let mut ph = PhaserState::default();
        for t in &task_names {
            if rng.gen_bool(cfg.membership_density) {
                ph.0.insert(t.clone(), rng.gen_range(0..=cfg.max_phase));
            }
        }
        st.phasers.insert(p.clone(), ph);
    }

    for t in &task_names {
        let my_phasers: Vec<&String> =
            phaser_names.iter().filter(|p| st.phasers[*p].phase_of(t).is_some()).collect();
        let blocked = !my_phasers.is_empty() && rng.gen_bool(cfg.blocked_fraction);
        let seq: Seq = if blocked {
            let p = my_phasers[rng.gen_range(0..my_phasers.len())].clone();
            vec![Instr::Await(p)]
        } else {
            // A runnable task: skip or an advance on some phaser.
            if my_phasers.is_empty() || rng.gen_bool(0.5) {
                vec![Instr::Skip]
            } else {
                let p = my_phasers[rng.gen_range(0..my_phasers.len())].clone();
                vec![Instr::Adv(p)]
            }
        };
        st.tasks.insert(t.clone(), seq);
    }
    st
}

/// Shape of a generated program.
#[derive(Clone, Copy, Debug)]
pub struct ProgGenConfig {
    /// Maximum phasers created by the main task.
    pub max_phasers: usize,
    /// Maximum forked tasks.
    pub max_forks: usize,
    /// Maximum barrier steps (`adv;await` pairs) per body.
    pub max_steps: usize,
    /// Probability a forked task forgets its `dereg` (the classic missing-
    /// participant bug) — the knob that makes deadlocks likely.
    pub missing_dereg_prob: f64,
    /// Probability the main task forgets to advance a phaser it is
    /// registered with before its own await (the Figure 1 bug).
    pub missing_adv_prob: f64,
}

impl Default for ProgGenConfig {
    fn default() -> Self {
        ProgGenConfig {
            max_phasers: 3,
            max_forks: 4,
            max_steps: 3,
            missing_dereg_prob: 0.3,
            missing_adv_prob: 0.3,
        }
    }
}

/// Generates a random barrier program in the SPMD-with-driver shape of the
/// paper's running example: the main task creates phasers, forks workers
/// registered with random subsets, everyone steps a random number of
/// times, and the generator deliberately plants missing-arrival and
/// missing-deregistration bugs with the configured probabilities.
pub fn gen_program(rng: &mut impl Rng, cfg: &ProgGenConfig) -> Seq {
    let phasers = rng.gen_range(1..=cfg.max_phasers.max(1));
    let forks = rng.gen_range(1..=cfg.max_forks.max(1));
    let phaser_names: Vec<String> = (0..phasers).map(|i| format!("ph{i}")).collect();

    let mut prog: Seq = Vec::new();
    for p in &phaser_names {
        prog.push(Instr::NewPhaser(p.clone()));
    }

    for f in 0..forks {
        let t = format!("w{f}");
        prog.push(Instr::NewTid(t.clone()));
        // Register the worker with a random nonempty subset of phasers.
        let mut mine = Vec::new();
        for p in &phaser_names {
            if rng.gen_bool(0.7) {
                mine.push(p.clone());
            }
        }
        if mine.is_empty() {
            mine.push(phaser_names[rng.gen_range(0..phaser_names.len())].clone());
        }
        for p in &mine {
            prog.push(Instr::Reg(t.clone(), p.clone()));
        }
        // Worker body: barrier steps over its phasers, then (maybe) deregs.
        let mut body: Seq = Vec::new();
        let steps = rng.gen_range(1..=cfg.max_steps.max(1));
        for _ in 0..steps {
            body.push(Instr::Skip);
            for p in &mine {
                body.push(Instr::Adv(p.clone()));
                body.push(Instr::Await(p.clone()));
            }
        }
        for p in &mine {
            if !rng.gen_bool(cfg.missing_dereg_prob) {
                body.push(Instr::Dereg(p.clone()));
            }
        }
        prog.push(Instr::Fork(t, body));
    }

    // Main tail: for each phaser, either participate correctly (advance in
    // step with the workers), drop out, or (bug) just await.
    for p in &phaser_names {
        if rng.gen_bool(cfg.missing_adv_prob) {
            // Figure 1 bug: registered but never advancing; half the time
            // the main task even blocks on the phaser itself.
            if rng.gen_bool(0.5) {
                prog.push(Instr::Adv(p.clone()));
                prog.push(Instr::Await(p.clone()));
            }
        } else {
            prog.push(Instr::Dereg(p.clone()));
        }
    }
    prog.push(Instr::Skip);
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gen_state_blocked_tasks_satisfy_sync_premise() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let st = gen_state(&mut rng, &StateGenConfig::default());
            for (t, seq) in &st.tasks {
                if let Some(Instr::Await(p)) = seq.first() {
                    assert!(
                        st.phasers[p].phase_of(t).is_some(),
                        "blocked task must be a member of its awaited phaser"
                    );
                }
            }
        }
    }

    #[test]
    fn gen_state_is_deterministic_per_seed() {
        let a = gen_state(&mut SmallRng::seed_from_u64(3), &StateGenConfig::default());
        let b = gen_state(&mut SmallRng::seed_from_u64(3), &StateGenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn gen_program_produces_wellformed_sequences() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let prog = gen_program(&mut rng, &ProgGenConfig::default());
            // Every program parses back after pretty-printing: a cheap
            // well-formedness proxy that exercises both directions.
            let printed = crate::syntax::pretty(&prog);
            let reparsed = crate::parser::parse(&printed).expect("generated program parses");
            assert_eq!(reparsed, prog);
        }
    }

    #[test]
    fn buggy_generator_actually_produces_deadlocks_sometimes() {
        use crate::deadlock::is_deadlocked;
        use crate::semantics::{Outcome, RandomScheduler};
        let mut rng = SmallRng::seed_from_u64(23);
        let cfg =
            ProgGenConfig { missing_adv_prob: 0.9, missing_dereg_prob: 0.9, ..Default::default() };
        let mut deadlocks = 0;
        for seed in 0..40u64 {
            let prog = gen_program(&mut rng, &cfg);
            let (outcome, st) =
                RandomScheduler::new(seed).run(State::initial(prog), 20_000, |_| {});
            if outcome == Outcome::Stuck && is_deadlocked(&st) {
                deadlocks += 1;
            }
        }
        assert!(deadlocks > 0, "the bug knobs must produce at least one deadlock in 40 runs");
    }
}
