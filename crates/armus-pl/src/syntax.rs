//! Abstract syntax of PL (paper §3).
//!
//! ```text
//! s ::= c; s | end
//! c ::= t = newTid() | fork(t) s | p = newPhaser() | reg(t, p)
//!     | dereg(p) | adv(p) | await(p) | loop s | skip
//! ```
//!
//! Variables and run-time names share one namespace of strings; the
//! operational semantics replaces bound variables with freshly generated
//! names by substitution, exactly as in Figure 4 (`s[t''/t']`, `s[q/p]`).

use std::fmt;

/// A variable or run-time name (task or phaser).
pub type Var = String;

/// An instruction sequence `s`; the empty vector is `end`.
pub type Seq = Vec<Instr>;

/// An instruction `c`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Instr {
    /// `t = newTid()`: binds `t` to a fresh task name in the continuation.
    NewTid(Var),
    /// `fork(t) s`: starts task `t` (created by `newTid`) with body `s`.
    Fork(Var, Seq),
    /// `p = newPhaser()`: creates a phaser, registers the current task at
    /// phase 0, and binds `p` in the continuation.
    NewPhaser(Var),
    /// `reg(t, p)`: registers task `t` with phaser `p`; `t` inherits the
    /// current task's phase.
    Reg(Var, Var),
    /// `dereg(p)`: revokes the current task's membership of `p`.
    Dereg(Var),
    /// `adv(p)`: advances the current task's local phase on `p`.
    Adv(Var),
    /// `await(p)`: blocks until every member of `p` reaches the current
    /// task's local phase.
    Await(Var),
    /// `loop s`: unfolds its body an arbitrary number of times (possibly
    /// zero) — the abstraction of loops and conditionals.
    Loop(Seq),
    /// `skip`: data-related operations.
    Skip,
}

impl Instr {
    /// The variable this instruction binds in its continuation, if any.
    pub fn binder(&self) -> Option<&Var> {
        match self {
            Instr::NewTid(v) | Instr::NewPhaser(v) => Some(v),
            _ => None,
        }
    }
}

/// Capture-avoiding substitution `s[name/var]` over a sequence: replaces
/// free occurrences of `var` with `name`, stopping at rebinding.
pub fn subst_seq(seq: &[Instr], var: &str, name: &str) -> Seq {
    let mut out = Vec::with_capacity(seq.len());
    for (i, instr) in seq.iter().enumerate() {
        let rebinds = instr.binder().map(|b| b == var).unwrap_or(false);
        out.push(subst_instr(instr, var, name));
        if rebinds {
            // The rest of the sequence sees the new binding; copy verbatim.
            out.extend_from_slice(&seq[i + 1..]);
            return out;
        }
    }
    out
}

fn subst_instr(instr: &Instr, var: &str, name: &str) -> Instr {
    let sv = |v: &Var| if v == var { name.to_string() } else { v.clone() };
    match instr {
        // Binders themselves never contain free occurrences.
        Instr::NewTid(v) => Instr::NewTid(v.clone()),
        Instr::NewPhaser(v) => Instr::NewPhaser(v.clone()),
        Instr::Fork(t, body) => Instr::Fork(sv(t), subst_seq(body, var, name)),
        Instr::Reg(t, p) => Instr::Reg(sv(t), sv(p)),
        Instr::Dereg(p) => Instr::Dereg(sv(p)),
        Instr::Adv(p) => Instr::Adv(sv(p)),
        Instr::Await(p) => Instr::Await(sv(p)),
        Instr::Loop(body) => Instr::Loop(subst_seq(body, var, name)),
        Instr::Skip => Instr::Skip,
    }
}

/// Free variables of a sequence (used by the `q ∉ fv(s)` side conditions
/// and by the program generators).
pub fn free_vars(seq: &[Instr]) -> Vec<Var> {
    let mut out = Vec::new();
    collect_free(seq, &mut Vec::new(), &mut out);
    out.sort();
    out.dedup();
    out
}

fn collect_free(seq: &[Instr], bound: &mut Vec<Var>, out: &mut Vec<Var>) {
    let mut pushed = 0usize;
    for instr in seq {
        let mut add = |v: &Var| {
            if !bound.contains(v) {
                out.push(v.clone());
            }
        };
        match instr {
            Instr::NewTid(v) | Instr::NewPhaser(v) => {
                bound.push(v.clone());
                pushed += 1;
            }
            Instr::Fork(t, body) => {
                add(t);
                collect_free(body, bound, out);
            }
            Instr::Reg(t, p) => {
                add(t);
                add(p);
            }
            Instr::Dereg(p) | Instr::Adv(p) | Instr::Await(p) => add(p),
            Instr::Loop(body) => collect_free(body, bound, out),
            Instr::Skip => {}
        }
    }
    bound.truncate(bound.len() - pushed);
}

/// Pretty-prints a sequence in the concrete syntax accepted by
/// [`crate::parser::parse`].
pub fn pretty(seq: &[Instr]) -> String {
    let mut out = String::new();
    pretty_seq(seq, 0, &mut out);
    out
}

fn pretty_seq(seq: &[Instr], indent: usize, out: &mut String) {
    for instr in seq {
        pretty_instr(instr, indent, out);
    }
}

fn pretty_instr(instr: &Instr, indent: usize, out: &mut String) {
    use std::fmt::Write;
    let pad = "  ".repeat(indent);
    match instr {
        Instr::NewTid(v) => writeln!(out, "{pad}{v} = newTid();").unwrap(),
        Instr::NewPhaser(v) => writeln!(out, "{pad}{v} = newPhaser();").unwrap(),
        Instr::Fork(t, body) => {
            writeln!(out, "{pad}fork({t}) {{").unwrap();
            pretty_seq(body, indent + 1, out);
            writeln!(out, "{pad}}}").unwrap();
        }
        Instr::Reg(t, p) => writeln!(out, "{pad}reg({p}, {t});").unwrap(),
        Instr::Dereg(p) => writeln!(out, "{pad}dereg({p});").unwrap(),
        Instr::Adv(p) => writeln!(out, "{pad}adv({p});").unwrap(),
        Instr::Await(p) => writeln!(out, "{pad}await({p});").unwrap(),
        Instr::Loop(body) => {
            writeln!(out, "{pad}loop {{").unwrap();
            pretty_seq(body, indent + 1, out);
            writeln!(out, "{pad}}}").unwrap();
        }
        Instr::Skip => writeln!(out, "{pad}skip;").unwrap(),
    }
}

/// Builder helpers for writing PL programs in Rust (used by tests and the
/// examples).
pub mod build {
    use super::{Instr, Seq};

    /// `t = newTid();`
    pub fn new_tid(v: &str) -> Instr {
        Instr::NewTid(v.into())
    }
    /// `fork(t) { body }`
    pub fn fork(t: &str, body: Seq) -> Instr {
        Instr::Fork(t.into(), body)
    }
    /// `p = newPhaser();`
    pub fn new_phaser(v: &str) -> Instr {
        Instr::NewPhaser(v.into())
    }
    /// `reg(p, t);`
    pub fn reg(p: &str, t: &str) -> Instr {
        Instr::Reg(t.into(), p.into())
    }
    /// `dereg(p);`
    pub fn dereg(p: &str) -> Instr {
        Instr::Dereg(p.into())
    }
    /// `adv(p);`
    pub fn adv(p: &str) -> Instr {
        Instr::Adv(p.into())
    }
    /// `await(p);`
    pub fn awaitp(p: &str) -> Instr {
        Instr::Await(p.into())
    }
    /// `loop { body }`
    pub fn ploop(body: Seq) -> Instr {
        Instr::Loop(body)
    }
    /// `skip;`
    pub fn skip() -> Instr {
        Instr::Skip
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        pretty_instr(self, 0, &mut s);
        write!(f, "{}", s.trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    #[test]
    fn subst_replaces_free_occurrences() {
        let s = vec![adv("p"), awaitp("p"), dereg("q")];
        let out = subst_seq(&s, "p", "#p1");
        assert_eq!(out, vec![adv("#p1"), awaitp("#p1"), dereg("q")]);
    }

    #[test]
    fn subst_stops_at_rebinding() {
        let s = vec![adv("p"), new_phaser("p"), adv("p")];
        let out = subst_seq(&s, "p", "#p1");
        assert_eq!(out, vec![adv("#p1"), new_phaser("p"), adv("p")]);
    }

    #[test]
    fn subst_descends_into_fork_and_loop() {
        let s = vec![fork("t", vec![adv("p")]), ploop(vec![awaitp("p")])];
        let out = subst_seq(&s, "p", "#p1");
        assert_eq!(out, vec![fork("t", vec![adv("#p1")]), ploop(vec![awaitp("#p1")])]);
    }

    #[test]
    fn subst_renames_fork_target() {
        let s = vec![fork("t", vec![skip()])];
        let out = subst_seq(&s, "t", "#t9");
        assert_eq!(out, vec![fork("#t9", vec![skip()])]);
    }

    #[test]
    fn free_vars_respect_binders() {
        let s = vec![
            new_tid("t"),
            reg("p", "t"), // p free, t bound
            fork("t", vec![adv("q")]),
        ];
        assert_eq!(free_vars(&s), vec!["p".to_string(), "q".to_string()]);
    }

    #[test]
    fn free_vars_of_loop_body_propagate() {
        let s = vec![ploop(vec![awaitp("c")])];
        assert_eq!(free_vars(&s), vec!["c".to_string()]);
    }

    #[test]
    fn binder_scope_is_sequential_not_nested() {
        // A binder only scopes over the *rest of its own sequence*.
        let s = vec![ploop(vec![new_tid("t")]), fork("t", vec![])];
        // `t` in the fork is free: the loop-local binder does not escape.
        assert_eq!(free_vars(&s), vec!["t".to_string()]);
    }

    #[test]
    fn pretty_prints_figure3_shape() {
        let prog = vec![
            new_phaser("pc"),
            new_phaser("pb"),
            ploop(vec![
                new_tid("t"),
                reg("pc", "t"),
                reg("pb", "t"),
                fork(
                    "t",
                    vec![
                        ploop(vec![
                            skip(),
                            adv("pc"),
                            awaitp("pc"),
                            skip(),
                            adv("pc"),
                            awaitp("pc"),
                        ]),
                        dereg("pc"),
                        dereg("pb"),
                    ],
                ),
            ]),
            adv("pb"),
            awaitp("pb"),
            skip(),
        ];
        let text = pretty(&prog);
        assert!(text.contains("pc = newPhaser();"));
        assert!(text.contains("fork(t) {"));
        assert!(text.contains("await(pb);"));
    }
}
