//! A concrete syntax for PL with a hand-rolled lexer and recursive-descent
//! parser, inverse to [`crate::syntax::pretty`].
//!
//! ```text
//! pc = newPhaser();
//! t = newTid();
//! reg(pc, t);
//! fork(t) {
//!   loop { skip; adv(pc); await(pc); }
//!   dereg(pc);
//! }
//! adv(pc); await(pc);   // comments run to end of line
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::syntax::{Instr, Seq};

/// A 1-based source position (line and column of an instruction's first
/// token), attached to diagnostics by [`parse_spanned`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Source positions for every instruction of a parsed program, keyed by
/// *path*: the instruction's index at each nesting level (through `fork`
/// and `loop` bodies). The top-level third instruction is `[2]`; the first
/// instruction of a `fork` body at top-level index 4 is `[4, 0]`.
///
/// Paths survive the operational semantics' head-popping and substitution
/// (both preserve the indices of the instructions they keep), which is how
/// [`crate::analysis`] maps residual program points back to source.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanTable {
    map: HashMap<Vec<usize>, Span>,
}

impl SpanTable {
    /// Looks up the span recorded for an instruction path.
    pub fn get(&self, path: &[usize]) -> Option<Span> {
        self.map.get(path).copied()
    }

    /// Number of instructions with recorded positions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A parse error with 1-based line/column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Eq,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), line: self.line, col: self.col }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = *self.src.get(self.pos)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    /// Tokenises the whole input, tagging each token with its position.
    fn tokens(mut self) -> Result<Vec<(Tok, usize, usize)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek() else { break };
            let tok = match b {
                b'=' => {
                    self.bump();
                    Tok::Eq
                }
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'{' => {
                    self.bump();
                    Tok::LBrace
                }
                b'}' => {
                    self.bump();
                    Tok::RBrace
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b';' => {
                    self.bump();
                    Tok::Semi
                }
                b if b.is_ascii_alphabetic() || b == b'_' || b == b'#' => {
                    let mut ident = String::new();
                    while let Some(b) = self.peek() {
                        if b.is_ascii_alphanumeric() || b == b'_' || b == b'#' {
                            ident.push(b as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(ident)
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)))
                }
            };
            out.push((tok, line, col));
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

impl Parser {
    fn error_at(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self
            .toks
            .get(self.pos)
            .map(|&(_, l, c)| (l, c))
            .or_else(|| self.toks.last().map(|&(_, l, c)| (l, c)))
            .unwrap_or((1, 1));
        ParseError { message: message.into(), line, col }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        match self.bump() {
            Some(t) if t == want => Ok(()),
            Some(t) => {
                self.pos -= 1;
                Err(self.error_at(format!("expected {want:?}, found {t:?}")))
            }
            None => Err(self.error_at(format!("expected {want:?}, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => {
                self.pos -= 1;
                Err(self.error_at(format!("expected identifier, found {t:?}")))
            }
            None => Err(self.error_at("expected identifier, found end of input")),
        }
    }

    /// seq := instr* ; stops at `}` or EOF. Records each instruction's
    /// position under `path ++ [index]`.
    fn seq(&mut self, path: &mut Vec<usize>, spans: &mut SpanTable) -> Result<Seq, ParseError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None | Some(Tok::RBrace) => return Ok(out),
                _ => {
                    let span = self
                        .toks
                        .get(self.pos)
                        .map(|&(_, line, col)| Span { line, col })
                        .expect("peeked a token");
                    path.push(out.len());
                    spans.map.insert(path.clone(), span);
                    let instr = self.instr(path, spans);
                    path.pop();
                    out.push(instr?);
                }
            }
        }
    }

    fn instr(&mut self, path: &mut Vec<usize>, spans: &mut SpanTable) -> Result<Instr, ParseError> {
        let ident = self.expect_ident()?;
        match ident.as_str() {
            "fork" => {
                self.expect(Tok::LParen)?;
                let t = self.expect_ident()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::LBrace)?;
                let body = self.seq(path, spans)?;
                self.expect(Tok::RBrace)?;
                Ok(Instr::Fork(t, body))
            }
            "loop" => {
                self.expect(Tok::LBrace)?;
                let body = self.seq(path, spans)?;
                self.expect(Tok::RBrace)?;
                Ok(Instr::Loop(body))
            }
            "skip" => {
                self.expect(Tok::Semi)?;
                Ok(Instr::Skip)
            }
            "reg" => {
                self.expect(Tok::LParen)?;
                let p = self.expect_ident()?;
                self.expect(Tok::Comma)?;
                let t = self.expect_ident()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Instr::Reg(t, p))
            }
            "dereg" | "adv" | "await" => {
                self.expect(Tok::LParen)?;
                let p = self.expect_ident()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(match ident.as_str() {
                    "dereg" => Instr::Dereg(p),
                    "adv" => Instr::Adv(p),
                    _ => Instr::Await(p),
                })
            }
            _ => {
                // Binding form: `x = newTid();` or `x = newPhaser();`
                self.expect(Tok::Eq)?;
                let func = self.expect_ident()?;
                self.expect(Tok::LParen)?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                match func.as_str() {
                    "newTid" => Ok(Instr::NewTid(ident)),
                    "newPhaser" => Ok(Instr::NewPhaser(ident)),
                    other => Err(self.error_at(format!(
                        "expected newTid or newPhaser on the right of `=`, found {other}"
                    ))),
                }
            }
        }
    }
}

/// Parses a PL program.
pub fn parse(src: &str) -> Result<Seq, ParseError> {
    parse_spanned(src).map(|(seq, _)| seq)
}

/// Parses a PL program, also returning the source position of every
/// instruction (keyed by instruction path — see [`SpanTable`]) so
/// diagnostics from [`crate::wf`] and [`crate::analysis`] can point at the
/// offending statement.
pub fn parse_spanned(src: &str) -> Result<(Seq, SpanTable), ParseError> {
    let toks = Lexer::new(src).tokens()?;
    let mut parser = Parser { toks, pos: 0 };
    let mut spans = SpanTable::default();
    let seq = parser.seq(&mut Vec::new(), &mut spans)?;
    if parser.pos != parser.toks.len() {
        return Err(parser.error_at("trailing input after program"));
    }
    Ok((seq, spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{build::*, pretty};

    #[test]
    fn parses_figure_3() {
        let src = r#"
            pc = newPhaser();
            pb = newPhaser();
            loop {
              t = newTid();
              reg(pc, t); reg(pb, t);
              fork(t) {
                loop {
                  skip;
                  adv(pc); await(pc);   // cyclic barrier step
                  skip;
                  adv(pc); await(pc);
                }
                dereg(pc);
                dereg(pb);              // notify finish
              }
            }
            adv(pb); await(pb);         // join barrier step
            skip;
        "#;
        let prog = parse(src).expect("figure 3 parses");
        assert_eq!(prog.len(), 6);
        assert_eq!(prog[0], new_phaser("pc"));
        assert!(matches!(&prog[2], Instr::Loop(body) if body.len() == 4));
        assert_eq!(prog[4], awaitp("pb"));
    }

    #[test]
    fn round_trips_pretty_printed_programs() {
        let prog = vec![
            new_phaser("pc"),
            new_tid("t"),
            reg("pc", "t"),
            fork("t", vec![ploop(vec![adv("pc"), awaitp("pc")]), dereg("pc")]),
            adv("pc"),
            awaitp("pc"),
            skip(),
        ];
        let printed = pretty(&prog);
        let reparsed = parse(&printed).expect("pretty output parses");
        assert_eq!(reparsed, prog);
    }

    #[test]
    fn reg_keeps_phaser_then_task_order() {
        let prog = parse("reg(pc, t);").unwrap();
        assert_eq!(prog, vec![Instr::Reg("t".into(), "pc".into())]);
    }

    #[test]
    fn error_reports_position() {
        let err = parse("adv(p)").unwrap_err(); // missing semicolon
        assert_eq!(err.line, 1);
        assert!(err.message.contains("Semi"));
        let err = parse("x = what();").unwrap_err();
        assert!(err.message.contains("newTid or newPhaser"));
        let err = parse("loop { skip; ").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn rejects_garbage_characters() {
        let err = parse("adv(p); $").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let err = parse("skip; )").unwrap_err();
        assert!(err.message.contains("trailing") || err.message.contains("expected"));
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let prog = parse("// header\n  skip; // tail\n\n\tskip;").unwrap();
        assert_eq!(prog, vec![skip(), skip()]);
    }

    #[test]
    fn generated_names_parse() {
        let prog = parse("adv(#p0); await(#p0);").unwrap();
        assert_eq!(prog, vec![adv("#p0"), awaitp("#p0")]);
    }

    #[test]
    fn spans_record_every_instruction_position() {
        let src =
            "p = newPhaser();\nt = newTid();\nreg(p, t);\nfork(t) {\n  adv(p); await(p);\n}\n";
        let (prog, spans) = parse_spanned(src).unwrap();
        assert_eq!(prog.len(), 4);
        // 4 top-level instructions + 2 inside the fork body.
        assert_eq!(spans.len(), 6);
        assert_eq!(spans.get(&[0]), Some(Span { line: 1, col: 1 }));
        assert_eq!(spans.get(&[2]), Some(Span { line: 3, col: 1 }));
        assert_eq!(spans.get(&[3]), Some(Span { line: 4, col: 1 }));
        // Nested paths index through the fork body.
        assert_eq!(spans.get(&[3, 0]), Some(Span { line: 5, col: 3 }));
        assert_eq!(spans.get(&[3, 1]), Some(Span { line: 5, col: 11 }));
        assert_eq!(spans.get(&[4]), None);
    }

    #[test]
    fn spanned_and_plain_parse_agree() {
        let src = "p = newPhaser(); loop { adv(p); await(p); } dereg(p);";
        let (spanned, _) = parse_spanned(src).unwrap();
        assert_eq!(spanned, parse(src).unwrap());
    }
}
