//! Small-step operational semantics of PL (Figure 4) and schedulers.
//!
//! The semantics is presented as an *enabled-transition enumeration*: for a
//! state we list every rule instance that can fire; applying one yields the
//! successor state. PL has no run-time errors — instructions whose premises
//! fail simply do not reduce (the task is stuck), and a stuck `await` is a
//! *blocked* task, the raw material of deadlocks.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::state::{PhaserState, State};
use crate::syntax::{subst_seq, Instr, Var};

/// One enabled transition: `task` can fire `rule`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// The reducing task.
    pub task: Var,
    /// The rule instance.
    pub rule: Rule,
}

/// The rule instances of Figure 4 (instruction and state levels fused).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `[skip]`.
    Skip,
    /// `[i-loop]`: unfold the loop body once.
    LoopUnfold,
    /// `[e-loop]`: exit the loop.
    LoopExit,
    /// `[new-t]`: bind a fresh task name.
    NewTid,
    /// `[fork]`: start the forked task.
    Fork,
    /// `[new-ph]`: create a phaser registered to the current task.
    NewPhaser,
    /// `[reg]`: register another task, inheriting the current phase.
    Reg,
    /// `[dereg]`.
    Dereg,
    /// `[adv]`.
    Adv,
    /// `[sync]`: complete an `await` whose condition holds.
    Sync,
}

/// Enumerates every enabled transition of `state`.
pub fn enabled(state: &State) -> Vec<Transition> {
    let mut out = Vec::new();
    for (task, seq) in &state.tasks {
        let Some(instr) = seq.first() else { continue };
        match instr {
            Instr::Skip => out.push(Transition { task: task.clone(), rule: Rule::Skip }),
            Instr::Loop(_) => {
                out.push(Transition { task: task.clone(), rule: Rule::LoopUnfold });
                out.push(Transition { task: task.clone(), rule: Rule::LoopExit });
            }
            Instr::NewTid(_) => out.push(Transition { task: task.clone(), rule: Rule::NewTid }),
            Instr::NewPhaser(_) => {
                out.push(Transition { task: task.clone(), rule: Rule::NewPhaser })
            }
            Instr::Fork(t, _) => {
                // [fork] premise: the target exists and is `end` (it was
                // created by newTid and not yet forked).
                if state.tasks.get(t).map(|s| s.is_empty()).unwrap_or(false) {
                    out.push(Transition { task: task.clone(), rule: Rule::Fork });
                }
            }
            Instr::Reg(t, p) => {
                // [reg] premises: current task is a member (M(p)(t) = n);
                // the target can join at that phase.
                if let Some(ph) = state.phasers.get(p) {
                    if let Some(n) = ph.phase_of(task) {
                        let mut probe = ph.clone();
                        if probe.reg(t, n).is_ok() {
                            out.push(Transition { task: task.clone(), rule: Rule::Reg });
                        }
                    }
                }
            }
            Instr::Dereg(p) => {
                if state.phasers.get(p).and_then(|ph| ph.phase_of(task)).is_some() {
                    out.push(Transition { task: task.clone(), rule: Rule::Dereg });
                }
            }
            Instr::Adv(p) => {
                if state.phasers.get(p).and_then(|ph| ph.phase_of(task)).is_some() {
                    out.push(Transition { task: task.clone(), rule: Rule::Adv });
                }
            }
            Instr::Await(p) => {
                // [sync] premises: M(p)(t) = n and await(M(p), n).
                if let Some(ph) = state.phasers.get(p) {
                    if let Some(n) = ph.phase_of(task) {
                        if ph.await_holds(n) {
                            out.push(Transition { task: task.clone(), rule: Rule::Sync });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Applies an enabled transition, returning the successor state.
///
/// # Panics
/// Panics if the transition is not actually enabled in `state` (callers
/// must only apply transitions produced by [`enabled`] on the same state).
pub fn apply(state: &State, transition: &Transition) -> State {
    let mut next = state.clone();
    let task = &transition.task;
    let seq = next.tasks.get(task).expect("transition task exists").clone();
    let instr = seq.first().expect("transition task not finished").clone();
    let rest: Vec<Instr> = seq[1..].to_vec();

    match (&transition.rule, &instr) {
        (Rule::Skip, Instr::Skip) => {
            next.tasks.insert(task.clone(), rest);
        }
        (Rule::LoopUnfold, Instr::Loop(body)) => {
            // loop s'; s → c1; …; cn; (loop s'; s)
            let mut unfolded = body.clone();
            unfolded.push(Instr::Loop(body.clone()));
            unfolded.extend(rest);
            next.tasks.insert(task.clone(), unfolded);
        }
        (Rule::LoopExit, Instr::Loop(_)) => {
            next.tasks.insert(task.clone(), rest);
        }
        (Rule::NewTid, Instr::NewTid(v)) => {
            // (M, T ⊎ {t: t′=newTid(); s}) → (M, T ⊎ {t: s[t″/t′]} ⊎ {t″: end})
            let fresh = next.fresh_task();
            next.tasks.insert(task.clone(), subst_seq(&rest, v, &fresh));
            next.tasks.insert(fresh, Vec::new());
        }
        (Rule::Fork, Instr::Fork(t, body)) => {
            next.tasks.insert(task.clone(), rest);
            next.tasks.insert(t.clone(), body.clone());
        }
        (Rule::NewPhaser, Instr::NewPhaser(v)) => {
            // M --q:=P--> M ⊎ {q: P},  P = {t: 0},  q ∉ fv(s)
            let fresh = next.fresh_phaser();
            next.phasers.insert(fresh.clone(), PhaserState::singleton(task));
            next.tasks.insert(task.clone(), subst_seq(&rest, v, &fresh));
        }
        (Rule::Reg, Instr::Reg(t, p)) => {
            let ph = next.phasers.get_mut(p).expect("reg premise");
            let n = ph.phase_of(task).expect("reg premise");
            ph.reg(t, n).expect("reg premise");
            next.tasks.insert(task.clone(), rest);
        }
        (Rule::Dereg, Instr::Dereg(p)) => {
            next.phasers.get_mut(p).expect("dereg premise").dereg(task).expect("dereg premise");
            next.tasks.insert(task.clone(), rest);
        }
        (Rule::Adv, Instr::Adv(p)) => {
            next.phasers.get_mut(p).expect("adv premise").adv(task).expect("adv premise");
            next.tasks.insert(task.clone(), rest);
        }
        (Rule::Sync, Instr::Await(_)) => {
            next.tasks.insert(task.clone(), rest);
        }
        (rule, instr) => panic!("transition {rule:?} does not match instruction {instr}"),
    }
    next
}

/// Why a run stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every task reached `end`.
    Finished,
    /// No transition is enabled but some task has instructions left: the
    /// state is stuck (blocked awaits and/or failed premises).
    Stuck,
    /// The step budget ran out (loops may unfold forever).
    Budget,
}

/// A random scheduler: repeatedly picks one enabled transition uniformly,
/// with loop-exit bias to keep runs finite-ish.
pub struct RandomScheduler {
    rng: SmallRng,
    /// Probability (numerator / 100) of preferring [`Rule::LoopExit`] over
    /// [`Rule::LoopUnfold`] when both are offered for the same loop.
    exit_bias: u32,
}

impl RandomScheduler {
    /// A scheduler from a seed (deterministic).
    pub fn new(seed: u64) -> RandomScheduler {
        RandomScheduler { rng: SmallRng::seed_from_u64(seed), exit_bias: 40 }
    }

    /// Sets the loop-exit bias percentage (0..=100).
    pub fn with_exit_bias(mut self, pct: u32) -> RandomScheduler {
        self.exit_bias = pct.min(100);
        self
    }

    /// Picks one transition among the enabled ones, or `None` when stuck.
    pub fn pick(&mut self, options: &[Transition]) -> Option<Transition> {
        if options.is_empty() {
            return None;
        }
        let choice = options.choose(&mut self.rng)?.clone();
        // Loop bias: when a loop was chosen, re-decide unfold vs exit.
        if matches!(choice.rule, Rule::LoopUnfold | Rule::LoopExit) {
            let exit = self.rng.gen_range(0..100u32) < self.exit_bias;
            let rule = if exit { Rule::LoopExit } else { Rule::LoopUnfold };
            return Some(Transition { task: choice.task, rule });
        }
        Some(choice)
    }

    /// Runs `state` to completion/stuckness under this scheduler, invoking
    /// `observe` after every step. Returns the outcome and the final state.
    pub fn run(
        &mut self,
        mut state: State,
        max_steps: usize,
        mut observe: impl FnMut(&State),
    ) -> (Outcome, State) {
        for _ in 0..max_steps {
            let options = enabled(&state);
            match self.pick(&options) {
                None => {
                    let outcome =
                        if state.all_finished() { Outcome::Finished } else { Outcome::Stuck };
                    return (outcome, state);
                }
                Some(t) => {
                    state = apply(&state, &t);
                    observe(&state);
                }
            }
        }
        (Outcome::Budget, state)
    }
}

/// Exhaustively explores the reachable state space up to `max_states`
/// states (bounded model checking for small programs). Returns every
/// reachable *stuck* state with unfinished tasks.
pub fn explore_stuck_states(initial: State, max_states: usize) -> Vec<State> {
    use std::collections::HashSet;
    let mut seen: HashSet<State> = HashSet::new();
    let mut frontier = vec![initial];
    let mut stuck = Vec::new();
    while let Some(state) = frontier.pop() {
        if seen.len() >= max_states {
            break;
        }
        if !seen.insert(state.clone()) {
            continue;
        }
        let options = enabled(&state);
        if options.is_empty() {
            if !state.all_finished() {
                stuck.push(state);
            }
            continue;
        }
        for t in options {
            frontier.push(apply(&state, &t));
        }
    }
    stuck
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::build::*;

    fn run(program: Vec<Instr>, seed: u64) -> (Outcome, State) {
        RandomScheduler::new(seed).run(State::initial(program), 10_000, |_| {})
    }

    #[test]
    fn straight_line_program_finishes() {
        let (outcome, st) = run(vec![skip(), skip(), skip()], 1);
        assert_eq!(outcome, Outcome::Finished);
        assert!(st.all_finished());
    }

    #[test]
    fn new_phaser_registers_creator() {
        let (outcome, st) = run(vec![new_phaser("p"), adv("p"), awaitp("p")], 2);
        assert_eq!(outcome, Outcome::Finished);
        // The sole member advanced to 1 and awaited (trivially satisfied).
        let ph = st.phasers.values().next().unwrap();
        assert_eq!(ph.phase_of("#main"), Some(1));
    }

    #[test]
    fn fork_runs_child_body() {
        let prog = vec![
            new_phaser("p"),
            new_tid("t"),
            reg("p", "t"),
            fork("t", vec![adv("p"), dereg("p")]),
            awaitp("p"), // waits for the child's adv? No: #main is at 0,
            // so await(p, 0) holds immediately.
            dereg("p"),
        ];
        let (outcome, st) = run(prog, 3);
        assert_eq!(outcome, Outcome::Finished);
        assert!(st.phasers.values().next().unwrap().0.is_empty());
    }

    #[test]
    fn barrier_synchronises_two_tasks() {
        // Both advance then await: must finish under any schedule.
        let prog = vec![
            new_phaser("p"),
            new_tid("t"),
            reg("p", "t"),
            fork("t", vec![adv("p"), awaitp("p"), dereg("p")]),
            adv("p"),
            awaitp("p"),
            dereg("p"),
        ];
        for seed in 0..20 {
            let (outcome, _) = run(prog.clone(), seed);
            assert_eq!(outcome, Outcome::Finished, "seed {seed}");
        }
    }

    #[test]
    fn missing_arrival_gets_stuck() {
        // The child never advances: #main's await(p) at phase 1 can never
        // fire. The run ends Stuck (once the child has finished).
        let prog = vec![
            new_phaser("p"),
            new_tid("t"),
            reg("p", "t"),
            fork("t", vec![skip()]), // child does not adv, does not dereg
            adv("p"),
            awaitp("p"),
            dereg("p"),
        ];
        let (outcome, st) = run(prog, 7);
        assert_eq!(outcome, Outcome::Stuck);
        assert_eq!(st.blocked_awaits().len(), 1);
    }

    #[test]
    fn reg_of_running_task_is_not_enabled() {
        // fork target must be `end`; a double fork sticks.
        let prog = vec![
            new_tid("t"),
            fork("t", vec![skip()]),
            fork("t", vec![skip()]), // t is running or finished-with-body…
        ];
        // After the first fork, t's sequence is [skip] (not end), so the
        // second fork is disabled until t finishes - and then t is `end`
        // again, so it CAN fire. This is PL's permissive fork; just check
        // we terminate on some schedule.
        let (outcome, _) = run(prog, 11);
        assert!(matches!(outcome, Outcome::Finished | Outcome::Stuck));
    }

    #[test]
    fn loop_unfolds_and_exits() {
        let prog = vec![ploop(vec![skip()]), skip()];
        let (outcome, _) = run(prog, 13);
        assert_eq!(outcome, Outcome::Finished);
    }

    #[test]
    fn explore_finds_the_figure1_deadlock() {
        // Miniature running example: one worker, one iteration.
        let prog = vec![
            new_phaser("pc"),
            new_phaser("pb"),
            new_tid("t"),
            reg("pc", "t"),
            reg("pb", "t"),
            fork("t", vec![adv("pc"), awaitp("pc"), dereg("pc"), dereg("pb")]),
            // BUG: parent never advances pc, goes straight to the join.
            adv("pb"),
            awaitp("pb"),
        ];
        let stuck = explore_stuck_states(State::initial(prog), 100_000);
        assert!(!stuck.is_empty(), "the deadlock must be reachable");
        assert!(
            stuck.iter().any(|s| s.blocked_awaits().len() == 2),
            "worker and parent both blocked in some stuck state"
        );
    }

    #[test]
    fn explore_fixed_program_has_no_stuck_state() {
        // The fix: parent drops pc before the join.
        let prog = vec![
            new_phaser("pc"),
            new_phaser("pb"),
            new_tid("t"),
            reg("pc", "t"),
            reg("pb", "t"),
            fork("t", vec![adv("pc"), awaitp("pc"), dereg("pc"), dereg("pb")]),
            dereg("pc"), // the fix
            adv("pb"),
            awaitp("pb"),
        ];
        let stuck = explore_stuck_states(State::initial(prog), 100_000);
        assert!(stuck.is_empty(), "fixed program deadlock-free: {stuck:?}");
    }

    #[test]
    fn deterministic_under_seed() {
        let prog = vec![
            new_phaser("p"),
            new_tid("t"),
            reg("p", "t"),
            fork("t", vec![ploop(vec![adv("p"), awaitp("p")]), dereg("p")]),
            ploop(vec![adv("p"), awaitp("p")]),
            dereg("p"),
        ];
        let (o1, s1) = run(prog.clone(), 42);
        let (o2, s2) = run(prog, 42);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
    }
}
