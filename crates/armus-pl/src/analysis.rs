//! Static deadlock analysis over PL programs.
//!
//! Where [`crate::trace`] judges *states* a scheduler already reached, this
//! module judges whole *programs* before they run. It abstracts each task's
//! per-phaser phase progression and await structure into a static
//! barrier-dependency graph over **await instances** and classifies every
//! program into the three-point verdict lattice of [`StaticVerdict`]:
//!
//! * [`StaticVerdict::ProvedSafe`] — the graph is acyclic, which (for the
//!   straight-line fragment the analysis handles exactly) implies **no
//!   reachable state is deadlocked** in the sense of Definition 3.2. Note
//!   the contract is deadlock-freedom, not hang-freedom: a task awaiting a
//!   phaser whose laggard terminated while registered never unblocks, but
//!   is not a deadlock (the laggard is not itself blocked) and never
//!   produces a deadlock report.
//! * [`StaticVerdict::DefiniteDeadlock`] — the analysis found a concrete
//!   [`DeadlockWitness`]: a schedule prefix that replays (via
//!   [`crate::semantics::enabled`]/[`crate::semantics::apply`]) from the
//!   program's initial state to a state the Definition 3.2 oracle *and*
//!   the `ϕ(S)` graph checker both report as deadlocked. Witnesses are
//!   validated before they are returned; an unreplayable candidate
//!   degrades to `Unknown`, never to a false `DefiniteDeadlock`.
//! * [`StaticVerdict::Unknown`] — the program leaves the fragment the
//!   abstraction is exact on (loops, stuck or non-prefix creation
//!   instructions, statically failing premises), or a static cycle exists
//!   but no witness was found within budget.
//!
//! # The abstraction
//!
//! First the *creation prefix* (`newTid`/`newPhaser`/`reg`/`fork` heads) of
//! every task is evaluated with the real semantics — creation instructions
//! never block each other permanently and never advance phases, so the
//! membership and phase structure they produce is the same under every
//! interleaving (programs where a creation instruction appears *after* a
//! blocking instruction are sent to `Unknown`). What remains per task is a
//! straight line of `skip`/`adv`/`await`/`dereg`, on which static position
//! determines the dynamic phase exactly.
//!
//! Each `await(p)` of task `t` at local phase `n ≥ 1` is an **await
//! instance**. For every other member `u` of `p` starting at phase `m₀ <
//! n`, task `u` must execute its `(n − m₀)`-th `adv(p)` (or a `dereg(p)`,
//! whichever comes first) before the instance can resolve; the instance
//! therefore depends on every await instance `u` passes strictly before
//! that contribution point — and on *all* of `u`'s instances when `u`
//! never contributes. A deadlocked set in any reachable state induces a
//! cycle among these edges (each blocked task's laggard is blocked at an
//! await the edge rule covers), so an **acyclic graph proves the program
//! deadlock-free**. A cycle is only a candidate: the analysis then hunts
//! for a real schedule (greedy freeze-at-the-cycle first, bounded DFS as
//! fallback) and demotes unconfirmed cycles to `Unknown`.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::deadlock::{deadlocked_tasks, is_deadlocked};
use crate::parser::{Span, SpanTable};
use crate::semantics::{apply, enabled, Rule, Transition};
use crate::state::State;
use crate::syntax::{Instr, Seq, Var};
use crate::trace;

/// Budgets for the witness search.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisConfig {
    /// Maximum states the fallback DFS may visit while hunting for a
    /// deadlock witness after a static cycle is found. The greedy
    /// freeze-at-the-cycle search runs first and usually succeeds without
    /// touching this budget.
    pub dfs_budget: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig { dfs_budget: 4096 }
    }
}

/// One `await` occurrence the static graph reasons about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AwaitSite {
    /// The awaiting task.
    pub task: Var,
    /// The awaited phaser.
    pub phaser: Var,
    /// The task's local phase at the await (statically determined).
    pub phase: u64,
    /// Position of the await in the task's residual straight-line script.
    pub position: usize,
    /// Source position, when the program carries a
    /// [`crate::parser::SpanTable`].
    pub span: Option<Span>,
}

impl std::fmt::Display for AwaitSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} awaits {} at phase {}", self.task, self.phaser, self.phase)?;
        if let Some(span) = self.span {
            write!(f, " ({span})")?;
        }
        Ok(())
    }
}

/// A validated deadlock witness: replaying `schedule` from the analysed
/// entry state (each step enabled) reaches a state where `deadlocked` is
/// exactly the Definition 3.2 deadlocked set and the `ϕ(S)` checker
/// produces a report.
#[derive(Clone, Debug)]
pub struct DeadlockWitness {
    /// The schedule prefix, replayable with
    /// [`crate::semantics::enabled`]/[`crate::semantics::apply`].
    pub schedule: Vec<Transition>,
    /// The deadlocked task set of the final state (sorted).
    pub deadlocked: Vec<Var>,
    /// The static await-instance cycle that prompted the search.
    pub cycle: Vec<AwaitSite>,
}

/// The verdict lattice: `ProvedSafe` and `DefiniteDeadlock` are both
/// *sound* (never claimed wrongly); `Unknown` is the honest top.
#[derive(Clone, Debug)]
pub enum StaticVerdict {
    /// No reachable state of the program is deadlocked (Definition 3.2) —
    /// a dynamic verifier can skip avoidance checks for it.
    ProvedSafe,
    /// A concrete, replay-validated deadlock.
    DefiniteDeadlock {
        /// The validated schedule and cycle.
        witness: DeadlockWitness,
    },
    /// Out of fragment, or cycle without a confirmed witness.
    Unknown {
        /// Why the analysis gave up.
        reason: String,
    },
}

impl StaticVerdict {
    /// Is this `ProvedSafe`?
    pub fn is_proved_safe(&self) -> bool {
        matches!(self, StaticVerdict::ProvedSafe)
    }

    /// Is this `DefiniteDeadlock`?
    pub fn is_definite_deadlock(&self) -> bool {
        matches!(self, StaticVerdict::DefiniteDeadlock { .. })
    }
}

/// Analyses a whole program (as run by [`State::initial`]).
pub fn analyse_program(program: &Seq) -> StaticVerdict {
    analyse_entry(State::initial(program.clone()), None, &AnalysisConfig::default())
}

/// As [`analyse_program`], but attaches source positions from a
/// [`SpanTable`] (see [`crate::parser::parse_spanned`]) to the await sites
/// of any witness cycle.
pub fn analyse_program_spanned(program: &Seq, spans: &SpanTable) -> StaticVerdict {
    analyse_entry(State::initial(program.clone()), Some(spans), &AnalysisConfig::default())
}

/// Analyses an arbitrary entry state (e.g. the canonical initial state of
/// a lowered testkit scenario). Witness schedules replay from this state.
pub fn analyse_state(state: &State) -> StaticVerdict {
    analyse_entry(state.clone(), None, &AnalysisConfig::default())
}

/// [`analyse_state`] with explicit budgets.
pub fn analyse_state_with(state: &State, config: &AnalysisConfig) -> StaticVerdict {
    analyse_entry(state.clone(), None, config)
}

fn unknown(reason: impl Into<String>) -> StaticVerdict {
    StaticVerdict::Unknown { reason: reason.into() }
}

/// The closed form the graph is built on: every creation prefix executed,
/// every task a straight line.
struct Closed {
    /// State after evaluating all creation prefixes.
    state: State,
    /// The transitions that got there (prepended to witness schedules).
    prefix: Vec<Transition>,
    /// Per task: source path base and consumed-instruction offset, so
    /// residual position `j` of task `t` maps to source path
    /// `base ++ [offset + j]`.
    paths: BTreeMap<Var, (Vec<usize>, usize)>,
}

/// Evaluates every task's creation prefix to fixpoint, deterministically
/// (tasks in `BTreeMap` order, each run as far as it will go per pass).
/// Creation instructions never advance phases, so the resulting membership
/// and phase structure is interleaving-independent.
fn close_prefixes(entry: State) -> Result<Closed, String> {
    let mut state = entry;
    let mut prefix = Vec::new();
    let mut paths: BTreeMap<Var, (Vec<usize>, usize)> =
        state.tasks.keys().map(|t| (t.clone(), (Vec::new(), 0))).collect();
    loop {
        let mut progressed = false;
        let tasks: Vec<Var> = state.tasks.keys().cloned().collect();
        for t in tasks {
            while let Some(instr) = state.tasks.get(&t).and_then(|s| s.first()).cloned() {
                let rule = match &instr {
                    Instr::NewTid(_) => Rule::NewTid,
                    Instr::NewPhaser(_) => Rule::NewPhaser,
                    Instr::Reg(_, _) => Rule::Reg,
                    Instr::Fork(_, _) => Rule::Fork,
                    _ => break,
                };
                let transition = Transition { task: t.clone(), rule };
                if !enabled(&state).contains(&transition) {
                    break;
                }
                if let Instr::Fork(target, _) = &instr {
                    // The forked body's source paths nest under the fork
                    // instruction's own path.
                    let (base, offset) = paths.get(&t).cloned().unwrap_or_default();
                    let mut child = base;
                    child.push(offset);
                    paths.insert(target.clone(), (child, 0));
                }
                state = apply(&state, &transition);
                if let Some(entry) = paths.get_mut(&t) {
                    entry.1 += 1;
                }
                prefix.push(transition);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    // Everything left must be straight-line skip/adv/await/dereg; a
    // creation instruction still at a head here is stuck (its premise
    // fails at fixpoint), and one buried deeper is out of fragment either
    // way.
    for (t, seq) in &state.tasks {
        for instr in seq {
            match instr {
                Instr::Skip | Instr::Adv(_) | Instr::Await(_) | Instr::Dereg(_) => {}
                Instr::Loop(_) => return Err(format!("task {t} contains a loop")),
                other => {
                    return Err(format!(
                        "task {t} has non-prefix or stuck creation instruction `{other}`"
                    ))
                }
            }
        }
    }
    Ok(Closed { state, prefix, paths })
}

/// Static facts about one task's residual script.
struct TaskFacts {
    /// Await instances, in script order.
    awaits: Vec<AwaitSite>,
    /// Positions of each `adv(p)`, per phaser, in script order.
    advs: BTreeMap<Var, Vec<usize>>,
    /// Position of the first `dereg(p)`, per phaser.
    deregs: BTreeMap<Var, usize>,
}

/// Walks a residual script, tracking per-phaser phase and membership.
/// Errors on any statically failing premise (op on a non-member phaser).
fn task_facts(closed: &Closed, task: &Var, spans: Option<&SpanTable>) -> Result<TaskFacts, String> {
    let state = &closed.state;
    let script = &state.tasks[task];
    let mut phase: BTreeMap<Var, u64> = BTreeMap::new();
    let mut members: BTreeSet<Var> = BTreeSet::new();
    for (name, ph) in &state.phasers {
        if let Some(n) = ph.phase_of(task) {
            phase.insert(name.clone(), n);
            members.insert(name.clone());
        }
    }
    let mut facts =
        TaskFacts { awaits: Vec::new(), advs: BTreeMap::new(), deregs: BTreeMap::new() };
    let span_at = |position: usize| {
        let (base, offset) = closed.paths.get(task)?;
        let mut path = base.clone();
        path.push(offset + position);
        spans?.get(&path)
    };
    for (position, instr) in script.iter().enumerate() {
        match instr {
            Instr::Skip => {}
            Instr::Adv(p) => {
                if !members.contains(p) {
                    return Err(format!("task {task} advances non-member phaser {p}"));
                }
                *phase.get_mut(p).expect("member has a phase") += 1;
                facts.advs.entry(p.clone()).or_default().push(position);
            }
            Instr::Await(p) => {
                if !members.contains(p) {
                    return Err(format!("task {task} awaits non-member phaser {p}"));
                }
                let n = phase[p];
                // Phase-0 awaits hold vacuously (every member's phase is
                // ≥ 0) and can never block.
                if n >= 1 {
                    facts.awaits.push(AwaitSite {
                        task: task.clone(),
                        phaser: p.clone(),
                        phase: n,
                        position,
                        span: span_at(position),
                    });
                }
            }
            Instr::Dereg(p) => {
                if !members.contains(p) {
                    return Err(format!("task {task} deregisters non-member phaser {p}"));
                }
                members.remove(p);
                facts.deregs.entry(p.clone()).or_insert(position);
            }
            other => unreachable!("closed residuals are straight-line, got {other}"),
        }
    }
    Ok(facts)
}

/// The static await-instance graph: nodes plus forward adjacency.
struct AwaitGraph {
    nodes: Vec<AwaitSite>,
    edges: Vec<Vec<usize>>,
}

fn build_graph(closed: &Closed, spans: Option<&SpanTable>) -> Result<AwaitGraph, String> {
    let state = &closed.state;
    let mut facts: BTreeMap<Var, TaskFacts> = BTreeMap::new();
    for task in state.tasks.keys() {
        facts.insert(task.clone(), task_facts(closed, task, spans)?);
    }
    let mut nodes: Vec<AwaitSite> = Vec::new();
    // (task, position) → node index, plus per-task node lists for the
    // "every await before the contribution point" edge fan-out.
    let mut by_task: BTreeMap<Var, Vec<usize>> = BTreeMap::new();
    for (task, f) in &facts {
        for site in &f.awaits {
            by_task.entry(task.clone()).or_default().push(nodes.len());
            nodes.push(site.clone());
        }
    }
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (a, site) in nodes.iter().enumerate() {
        let ph = &state.phasers[&site.phaser];
        for (u, m0) in &ph.0 {
            if u == &site.task || *m0 >= site.phase {
                // Not a potential laggard: already at (or past) the
                // awaited phase from the start.
                continue;
            }
            let needed = (site.phase - m0) as usize;
            let uf = match facts.get(u) {
                Some(f) => f,
                // A registered name with no task script never advances —
                // it can make the await hang, but a hang is not a
                // deadlock, and it has no await instances to depend on.
                None => continue,
            };
            let adv_pos = uf.advs.get(&site.phaser).and_then(|v| v.get(needed - 1)).copied();
            let dereg_pos = uf.deregs.get(&site.phaser).copied();
            // The await resolves (w.r.t. u) once u reaches its needed adv
            // or deregisters, whichever comes first; until then it depends
            // on every await u must pass. No contribution at all means it
            // depends on all of u's awaits.
            let contribution = match (adv_pos, dereg_pos) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            };
            for &b in by_task.get(u).map(|v| v.as_slice()).unwrap_or(&[]) {
                if contribution.map(|c| nodes[b].position < c).unwrap_or(true) {
                    edges[a].push(b);
                }
            }
        }
    }
    Ok(AwaitGraph { nodes, edges })
}

/// Finds a cycle (as a node-index loop) via iterative three-colour DFS.
fn find_cycle(graph: &AwaitGraph) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let n = graph.nodes.len();
    let mut colour = vec![Colour::White; n];
    for root in 0..n {
        if colour[root] != Colour::White {
            continue;
        }
        // Stack of (node, next-edge-index); `path` mirrors the grey chain.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        colour[root] = Colour::Grey;
        let mut path: Vec<usize> = vec![root];
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < graph.edges[node].len() {
                let succ = graph.edges[node][*next];
                *next += 1;
                match colour[succ] {
                    Colour::White => {
                        colour[succ] = Colour::Grey;
                        stack.push((succ, 0));
                        path.push(succ);
                    }
                    Colour::Grey => {
                        // Back edge: the cycle is the grey path from succ.
                        let start = path.iter().position(|&x| x == succ).expect("grey on path");
                        return Some(path[start..].to_vec());
                    }
                    Colour::Black => {}
                }
            } else {
                colour[node] = Colour::Black;
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

/// Greedy witness search: freeze every cycle task at its (earliest) cycle
/// await position, let everything else run deterministically, and check
/// whether the quiescent state is deadlocked.
fn greedy_freeze(closed: &Closed, cycle: &[AwaitSite]) -> Option<Vec<Transition>> {
    let mut freeze: BTreeMap<Var, usize> = BTreeMap::new();
    for site in cycle {
        let e = freeze.entry(site.task.clone()).or_insert(site.position);
        *e = (*e).min(site.position);
    }
    let mut state = closed.state.clone();
    let mut position: BTreeMap<Var, usize> = state.tasks.keys().map(|t| (t.clone(), 0)).collect();
    let mut schedule = Vec::new();
    loop {
        let mut progressed = false;
        let tasks: Vec<Var> = state.tasks.keys().cloned().collect();
        for t in &tasks {
            loop {
                if freeze.get(t).is_some_and(|&stop| position[t] >= stop) {
                    break;
                }
                let Some(instr) = state.tasks.get(t).and_then(|s| s.first()) else { break };
                let rule = match instr {
                    Instr::Skip => Rule::Skip,
                    Instr::Adv(_) => Rule::Adv,
                    Instr::Await(_) => Rule::Sync,
                    Instr::Dereg(_) => Rule::Dereg,
                    _ => unreachable!("closed residuals are straight-line"),
                };
                let transition = Transition { task: t.clone(), rule };
                if !enabled(&state).contains(&transition) {
                    break;
                }
                state = apply(&state, &transition);
                *position.get_mut(t).expect("task tracked") += 1;
                schedule.push(transition);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    is_deadlocked(&state).then_some(schedule)
}

/// Fallback: bounded DFS over the reachable states of the closed system,
/// returning the path to the first deadlocked state found.
fn dfs_deadlock(start: &State, budget: usize) -> Option<Vec<Transition>> {
    let mut seen: HashSet<State> = HashSet::new();
    seen.insert(start.clone());
    let mut stack: Vec<(State, Vec<Transition>)> = vec![(start.clone(), Vec::new())];
    while let Some((state, path)) = stack.pop() {
        if is_deadlocked(&state) {
            return Some(path);
        }
        if seen.len() >= budget {
            continue;
        }
        for transition in enabled(&state) {
            let next = apply(&state, &transition);
            if seen.insert(next.clone()) {
                let mut extended = path.clone();
                extended.push(transition);
                stack.push((next, extended));
            }
        }
    }
    None
}

/// Replays a candidate schedule from the entry state and demands the full
/// soundness contract: every step enabled, final state deadlocked per
/// Definition 3.2, and the `ϕ(S)` checker agreeing with a report.
fn validate_witness(entry: &State, schedule: &[Transition]) -> Option<Vec<Var>> {
    let mut state = entry.clone();
    for transition in schedule {
        if !enabled(&state).contains(transition) {
            return None;
        }
        state = apply(&state, transition);
    }
    let deadlocked = deadlocked_tasks(&state)?;
    let verdict = trace::analyse(&state);
    if verdict.report.is_none() || !verdict.internally_consistent() {
        return None;
    }
    Some(deadlocked.into_iter().collect())
}

fn analyse_entry(
    entry: State,
    spans: Option<&SpanTable>,
    config: &AnalysisConfig,
) -> StaticVerdict {
    let closed = match close_prefixes(entry.clone()) {
        Ok(closed) => closed,
        Err(reason) => return unknown(reason),
    };
    let graph = match build_graph(&closed, spans) {
        Ok(graph) => graph,
        Err(reason) => return unknown(reason),
    };
    let Some(cycle_nodes) = find_cycle(&graph) else {
        return StaticVerdict::ProvedSafe;
    };
    let cycle: Vec<AwaitSite> = cycle_nodes.iter().map(|&i| graph.nodes[i].clone()).collect();
    // A static cycle is only a candidate — hunt for a schedule that
    // realises it, then validate end to end before claiming anything.
    let candidate =
        greedy_freeze(&closed, &cycle).or_else(|| dfs_deadlock(&closed.state, config.dfs_budget));
    if let Some(suffix) = candidate {
        let mut schedule = closed.prefix.clone();
        schedule.extend(suffix);
        if let Some(deadlocked) = validate_witness(&entry, &schedule) {
            return StaticVerdict::DefiniteDeadlock {
                witness: DeadlockWitness { schedule, deadlocked, cycle },
            };
        }
    }
    unknown(format!(
        "static await cycle ({}) but no deadlock witness within budget",
        cycle.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(" -> ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_spanned};

    fn analyse_src(src: &str) -> StaticVerdict {
        analyse_program(&parse(src).unwrap())
    }

    #[test]
    fn straight_line_spmd_is_proved_safe() {
        // Two workers and the driver advance/await the same phaser twice,
        // in the same order: no cycle.
        let verdict = analyse_src(
            "p = newPhaser();
             t = newTid(); reg(p, t);
             fork(t) { adv(p); await(p); adv(p); await(p); dereg(p); }
             u = newTid(); reg(p, u);
             fork(u) { adv(p); await(p); adv(p); await(p); dereg(p); }
             adv(p); await(p); adv(p); await(p); dereg(p);",
        );
        assert!(verdict.is_proved_safe(), "{verdict:?}");
    }

    #[test]
    fn crossed_wait_is_a_definite_deadlock() {
        // Crossed barrier order: t waits on p (needing main's adv of p,
        // which main only does after its await of q), main waits on q
        // (needing t's adv of q, after t's await of p).
        let src = "p = newPhaser();
             q = newPhaser();
             t = newTid(); reg(p, t); reg(q, t);
             fork(t) { adv(p); await(p); adv(q); dereg(p); dereg(q); }
             adv(q); await(q); adv(p); dereg(p); dereg(q);";
        let verdict = analyse_src(src);
        let StaticVerdict::DefiniteDeadlock { witness } = verdict else {
            panic!("expected DefiniteDeadlock, got {verdict:?}");
        };
        // The witness replays to a Definition 3.2 deadlock.
        let mut state = State::initial(parse(src).unwrap());
        for tr in &witness.schedule {
            assert!(enabled(&state).contains(tr), "witness step {tr:?} not enabled");
            state = apply(&state, tr);
        }
        assert!(is_deadlocked(&state));
        assert_eq!(witness.deadlocked.len(), 2);
        assert!(!witness.cycle.is_empty());
    }

    #[test]
    fn terminated_laggard_hang_is_still_proved_safe() {
        // The forked task terminates while registered: main's await hangs
        // forever but no task set is deadlocked (Definition 3.2 needs the
        // laggard to be blocked too), so ProvedSafe is the correct verdict.
        let verdict = analyse_src(
            "p = newPhaser();
             t = newTid(); reg(p, t);
             fork(t) { skip; }
             adv(p); await(p);",
        );
        assert!(verdict.is_proved_safe(), "{verdict:?}");
    }

    #[test]
    fn loops_are_unknown() {
        let verdict = analyse_src("p = newPhaser(); loop { adv(p); await(p); } dereg(p);");
        assert!(matches!(verdict, StaticVerdict::Unknown { .. }), "{verdict:?}");
    }

    #[test]
    fn late_creation_is_unknown() {
        // A fork after an await leaves the exact fragment.
        let verdict = analyse_src(
            "p = newPhaser();
             t = newTid(); reg(p, t);
             adv(p); await(p);
             fork(t) { dereg(p); }",
        );
        assert!(matches!(verdict, StaticVerdict::Unknown { .. }), "{verdict:?}");
    }

    #[test]
    fn failing_premise_is_unknown() {
        // Adv on a phaser the task never joined.
        let verdict = analyse_src("p = newPhaser(); t = newTid(); fork(t) { adv(p); } await(p);");
        assert!(matches!(verdict, StaticVerdict::Unknown { .. }), "{verdict:?}");
    }

    #[test]
    fn witness_cycle_carries_source_spans() {
        let src = "p = newPhaser();
q = newPhaser();
t = newTid(); reg(p, t); reg(q, t);
fork(t) { adv(p); await(p); adv(q); }
adv(q); await(q); adv(p);";
        let (program, spans) = parse_spanned(src).unwrap();
        let StaticVerdict::DefiniteDeadlock { witness } = analyse_program_spanned(&program, &spans)
        else {
            panic!("expected DefiniteDeadlock");
        };
        for site in &witness.cycle {
            let span = site.span.expect("cycle awaits carry spans");
            assert!(span.line == 4 || span.line == 5, "{site}");
        }
        // The display points at source, compiler-style.
        let shown = witness.cycle[0].to_string();
        assert!(shown.contains("awaits"), "{shown}");
        assert!(shown.contains(':'), "{shown}");
    }

    #[test]
    fn proved_safe_programs_have_no_reachable_deadlock() {
        // Spot-check the soundness contract by exhaustive exploration.
        use crate::semantics::explore_stuck_states;
        let programs = [
            "p = newPhaser();
             t = newTid(); reg(p, t);
             fork(t) { adv(p); await(p); dereg(p); }
             adv(p); await(p); dereg(p);",
            "p = newPhaser(); q = newPhaser();
             t = newTid(); reg(p, t); reg(q, t);
             fork(t) { adv(p); await(p); adv(q); await(q); dereg(p); dereg(q); }
             adv(p); await(p); adv(q); await(q); dereg(p); dereg(q);",
        ];
        for src in programs {
            let program = parse(src).unwrap();
            assert!(analyse_program(&program).is_proved_safe());
            for stuck in explore_stuck_states(State::initial(program.clone()), 100_000) {
                assert!(!is_deadlocked(&stuck), "ProvedSafe program reached a deadlock");
            }
        }
    }
}
