//! The `ϕ` abstraction (Definition 4.1): from a PL state to the
//! resource-dependency state `(I, W)` consumed by the graph analysis.
//!
//! `W` maps each blocked task to the event it awaits; `I` maps each awaited
//! event to the tasks registered below its phase. In the implementation the
//! pair is carried as an [`armus_core::Snapshot`]: per blocked task, its
//! waits and its per-phaser local phases (the finite representation of its
//! impede set). PL names are interned to numeric ids; the interner is
//! returned so reports can be translated back.

use std::collections::BTreeMap;

use armus_core::{BlockedInfo, PhaserId, Registration, Resource, Snapshot, TaskId};

use crate::state::State;
use crate::syntax::Instr;

/// Bidirectional interner between PL names and verifier ids.
#[derive(Clone, Debug, Default)]
pub struct NameTable {
    tasks: BTreeMap<String, TaskId>,
    phasers: BTreeMap<String, PhaserId>,
}

impl NameTable {
    /// The id of task `name`, interning it if new.
    pub fn task(&mut self, name: &str) -> TaskId {
        let next = TaskId(self.tasks.len() as u64 + 1);
        *self.tasks.entry(name.to_string()).or_insert(next)
    }

    /// The id of phaser `name`, interning it if new.
    pub fn phaser(&mut self, name: &str) -> PhaserId {
        let next = PhaserId(self.phasers.len() as u64 + 1);
        *self.phasers.entry(name.to_string()).or_insert(next)
    }

    /// Reverse lookup of a task id.
    pub fn task_name(&self, id: TaskId) -> Option<&str> {
        self.tasks.iter().find(|(_, &v)| v == id).map(|(k, _)| k.as_str())
    }

    /// Reverse lookup of a phaser id.
    pub fn phaser_name(&self, id: PhaserId) -> Option<&str> {
        self.phasers.iter().find(|(_, &v)| v == id).map(|(k, _)| k.as_str())
    }
}

/// `ϕ(M, T)`: the resource-dependency snapshot of `state`.
///
/// A task contributes iff its head instruction is `await(p)` with
/// `M(p)(t) = n` (the `[sync]` premise): it waits `res(p, n)` and impedes,
/// for every phaser `q` it is registered with, the events of `q` above its
/// local phase.
pub fn phi(state: &State) -> (Snapshot, NameTable) {
    let mut names = NameTable::default();
    let mut tasks = Vec::new();
    for (t, seq) in &state.tasks {
        let Some(Instr::Await(p)) = seq.first() else { continue };
        let Some(ph) = state.phasers.get(p) else { continue };
        let Some(n) = ph.phase_of(t) else { continue };
        let task_id = names.task(t);
        let waits = vec![Resource::new(names.phaser(p), n)];
        let mut registered = Vec::new();
        for (q, qph) in &state.phasers {
            if let Some(m) = qph.phase_of(t) {
                registered.push(Registration::new(names.phaser(q), m));
            }
        }
        tasks.push(BlockedInfo::new(task_id, waits, registered));
    }
    (Snapshot::from_tasks(tasks), names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::PhaserState;
    use crate::syntax::build::*;
    use armus_core::{checker, ModelChoice, DEFAULT_SG_THRESHOLD};

    /// Example 4.1 again (shared with the deadlock tests).
    fn example_4_1() -> State {
        let mut st = State::initial(vec![]);
        st.tasks.clear();
        let mut pc = PhaserState::default();
        let mut pb = PhaserState::default();
        for t in ["t1", "t2", "t3"] {
            pc.0.insert(t.into(), 1);
            pb.0.insert(t.into(), 0);
            st.tasks.insert(t.into(), vec![awaitp("pc")]);
        }
        pc.0.insert("t4".into(), 0);
        pb.0.insert("t4".into(), 1);
        st.tasks.insert("t4".into(), vec![awaitp("pb")]);
        st.phasers.insert("pc".into(), pc);
        st.phasers.insert("pb".into(), pb);
        st
    }

    #[test]
    fn phi_of_example_4_1_matches_the_paper() {
        let (snap, mut names) = phi(&example_4_1());
        assert_eq!(snap.len(), 4, "all four tasks are blocked");
        let pc = names.phaser("pc");
        let pb = names.phaser("pb");
        // W1 = { t1:{r1}, t2:{r1}, t3:{r1}, t4:{r2} }
        for t in ["t1", "t2", "t3"] {
            let id = names.task(t);
            let info = snap.get(id).unwrap();
            assert_eq!(info.waits, vec![Resource::new(pc, 1)]);
        }
        let t4 = names.task("t4");
        assert_eq!(snap.get(t4).unwrap().waits, vec![Resource::new(pb, 1)]);
        // I1: t4 impedes r1 = pc@1; workers impede r2 = pb@1.
        assert!(snap.get(t4).unwrap().impedes(Resource::new(pc, 1)));
        for t in ["t1", "t2", "t3"] {
            let id = names.task(t);
            assert!(snap.get(id).unwrap().impedes(Resource::new(pb, 1)));
            assert!(!snap.get(id).unwrap().impedes(Resource::new(pc, 1)));
        }
    }

    #[test]
    fn phi_feeds_the_checker_like_the_paper_says() {
        let (snap, _) = phi(&example_4_1());
        for choice in [ModelChoice::FixedWfg, ModelChoice::FixedSg, ModelChoice::Auto] {
            let out = checker::check(&snap, choice, DEFAULT_SG_THRESHOLD);
            assert!(out.report.is_some(), "{choice} must find the deadlock");
        }
    }

    #[test]
    fn phi_skips_nonblocked_and_nonmember_awaits() {
        let mut st = State::initial(vec![]);
        st.tasks.clear();
        let mut p = PhaserState::default();
        p.0.insert("member".into(), 0);
        st.phasers.insert("p".into(), p);
        // Running task: not in ϕ.
        st.tasks.insert("runner".into(), vec![skip()]);
        // Awaiting a phaser it is not a member of: no [sync] premise.
        st.tasks.insert("outsider".into(), vec![awaitp("p")]);
        // Member awaiting: in ϕ.
        st.tasks.insert("member".into(), vec![awaitp("p")]);
        let (snap, mut names) = phi(&st);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.tasks[0].task, names.task("member"));
    }

    #[test]
    fn name_table_round_trips() {
        let mut names = NameTable::default();
        let a = names.task("alpha");
        let b = names.task("beta");
        assert_ne!(a, b);
        assert_eq!(names.task("alpha"), a, "stable on re-intern");
        assert_eq!(names.task_name(a), Some("alpha"));
        let p = names.phaser("pc");
        assert_eq!(names.phaser_name(p), Some("pc"));
        assert_eq!(names.phaser_name(PhaserId(99)), None);
    }
}
