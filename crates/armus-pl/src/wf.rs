//! Well-formedness of PL programs: every used variable must be bound by an
//! enclosing `newTid`/`newPhaser` (or be a run-time name, in states taken
//! mid-execution). Unbound uses are not *errors* in the operational
//! semantics — they simply never reduce — but for program authors they are
//! almost always bugs, so the interpreter diagnoses them up front.

use std::collections::HashSet;

use crate::parser::{Span, SpanTable};
use crate::syntax::{Instr, Seq, Var};

/// A diagnosed unbound use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnboundUse {
    /// The unbound variable.
    pub var: Var,
    /// The instruction (pretty-printed) where it is used.
    pub instr: String,
    /// Source position of the offending instruction, when the program was
    /// parsed with [`crate::parser::parse_spanned`].
    pub span: Option<Span>,
}

impl UnboundUse {
    fn message(&self) -> String {
        format!("unbound variable `{}` in `{}`", self.var, self.instr.trim_end())
    }

    /// Renders the diagnostic in compiler style: `file:line:col: message`.
    /// Falls back to `file: message` when no span was recorded.
    pub fn rendered(&self, file: &str) -> String {
        match self.span {
            Some(span) => format!("{file}:{span}: {}", self.message()),
            None => format!("{file}: {}", self.message()),
        }
    }
}

impl std::fmt::Display for UnboundUse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message())?;
        if let Some(span) = self.span {
            write!(f, " at {span}")?;
        }
        Ok(())
    }
}

/// Checks a whole program (no pre-bound names). Returns every unbound use.
pub fn check(program: &Seq) -> Vec<UnboundUse> {
    check_inner(program, &[], None)
}

/// As [`check`], but attaches source positions from a [`SpanTable`]
/// (produced by [`crate::parser::parse_spanned`]) to every diagnostic.
pub fn check_spanned(program: &Seq, spans: &SpanTable) -> Vec<UnboundUse> {
    check_inner(program, &[], Some(spans))
}

/// As [`check`], but with names already in scope (e.g. the run-time names
/// of a mid-execution state).
pub fn check_with_scope(program: &Seq, scope: &[Var]) -> Vec<UnboundUse> {
    check_inner(program, scope, None)
}

fn check_inner(program: &Seq, scope: &[Var], spans: Option<&SpanTable>) -> Vec<UnboundUse> {
    let mut bound: HashSet<Var> = scope.iter().cloned().collect();
    let mut out = Vec::new();
    check_seq(program, &mut bound, &mut Vec::new(), spans, &mut out);
    out
}

fn check_seq(
    seq: &[Instr],
    bound: &mut HashSet<Var>,
    path: &mut Vec<usize>,
    spans: Option<&SpanTable>,
    out: &mut Vec<UnboundUse>,
) {
    let mut introduced: Vec<Var> = Vec::new();
    for (i, instr) in seq.iter().enumerate() {
        path.push(i);
        let span = spans.and_then(|t| t.get(path));
        let used = |v: &Var, out: &mut Vec<UnboundUse>, bound: &HashSet<Var>| {
            if !bound.contains(v) {
                out.push(UnboundUse { var: v.clone(), instr: instr.to_string(), span });
            }
        };
        match instr {
            Instr::NewTid(v) | Instr::NewPhaser(v) => {
                if bound.insert(v.clone()) {
                    introduced.push(v.clone());
                }
            }
            Instr::Fork(t, body) => {
                used(t, out, bound);
                // The fork body runs as the new task, in the current scope.
                check_seq(body, bound, path, spans, out);
            }
            Instr::Reg(t, p) => {
                used(t, out, bound);
                used(p, out, bound);
            }
            Instr::Dereg(p) | Instr::Adv(p) | Instr::Await(p) => used(p, out, bound),
            Instr::Loop(body) => check_seq(body, bound, path, spans, out),
            Instr::Skip => {}
        }
        path.pop();
    }
    // Binders scope to the rest of *their own* sequence only.
    for v in introduced {
        bound.remove(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spanned;
    use crate::syntax::build::*;

    #[test]
    fn wellformed_program_has_no_diagnostics() {
        let prog = vec![
            new_phaser("p"),
            new_tid("t"),
            reg("p", "t"),
            fork("t", vec![adv("p"), awaitp("p"), dereg("p")]),
            dereg("p"),
        ];
        assert!(check(&prog).is_empty());
    }

    #[test]
    fn unbound_phaser_is_diagnosed() {
        let prog = vec![adv("p")];
        let diags = check(&prog);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].var, "p");
        assert!(diags[0].to_string().contains("adv(p)"));
    }

    #[test]
    fn fork_of_unbound_tid_is_diagnosed() {
        let prog = vec![fork("t", vec![skip()])];
        let diags = check(&prog);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].var, "t");
    }

    #[test]
    fn binder_scope_does_not_leak_out_of_loops() {
        // `t` bound inside the loop body, used after the loop: unbound.
        let prog = vec![ploop(vec![new_tid("t")]), fork("t", vec![])];
        let diags = check(&prog);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].var, "t");
    }

    #[test]
    fn fork_bodies_see_the_enclosing_scope() {
        let prog = vec![
            new_phaser("p"),
            new_tid("t"),
            reg("p", "t"),
            fork("t", vec![awaitp("p")]), // p visible inside the body
        ];
        assert!(check(&prog).is_empty());
    }

    #[test]
    fn scope_seeding_accepts_runtime_names() {
        let prog = vec![adv("#p0"), awaitp("#p0")];
        assert_eq!(check(&prog).len(), 2);
        assert!(check_with_scope(&prog, &["#p0".to_string()]).is_empty());
    }

    #[test]
    fn spanned_diagnostics_point_at_the_offending_statement() {
        let src = "t = newTid();\nfork(t) {\n  adv(q);\n}\n";
        let (prog, spans) = parse_spanned(src).unwrap();
        let diags = check_spanned(&prog, &spans);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].var, "q");
        assert_eq!(diags[0].span, Some(crate::parser::Span { line: 3, col: 3 }));
        // The compiler-style rendering is exactly `file:line:col: message`.
        assert_eq!(diags[0].rendered("prog.pl"), "prog.pl:3:3: unbound variable `q` in `adv(q);`");
        assert!(diags[0].to_string().ends_with("at 3:3"));
    }

    #[test]
    fn unspanned_diagnostics_render_without_position() {
        let diags = check(&vec![adv("p")]);
        assert_eq!(diags[0].span, None);
        assert_eq!(diags[0].rendered("prog.pl"), "prog.pl: unbound variable `p` in `adv(p);`");
    }

    #[test]
    fn every_generated_program_is_wellformed() {
        use crate::gen::{gen_program, ProgGenConfig};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..100 {
            let prog = gen_program(&mut rng, &ProgGenConfig::default());
            let diags = check(&prog);
            assert!(diags.is_empty(), "{diags:?}");
        }
    }
}
