//! PL run-time states (paper §3, Figure 4 upper half).
//!
//! A state `S = (M, T)` pairs a phaser map `M` (phaser names to phasers)
//! with a task map `T` (task names to instruction sequences). A phaser `P`
//! maps member task names to local phases; `await(P, n)` holds when every
//! member's phase is at least `n`.

use std::collections::BTreeMap;

use crate::syntax::{Seq, Var};

/// A phaser `P`: members to local phases.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhaserState(pub BTreeMap<Var, u64>);

impl PhaserState {
    /// The singleton phaser `{t: 0}` created by `newPhaser`.
    pub fn singleton(task: &str) -> PhaserState {
        let mut map = BTreeMap::new();
        map.insert(task.to_string(), 0);
        PhaserState(map)
    }

    /// `await(P, n)`: every member has local phase at least `n`.
    pub fn await_holds(&self, n: u64) -> bool {
        self.0.values().all(|&m| m >= n)
    }

    /// `P --reg(t, n)--> P ⊎ {t: n}`, with the rule's premises:
    /// `t ∉ dom(P)` and `∃t′: P(t′) ≤ n` (a member must witness that the
    /// inherited phase does not run ahead of the whole phaser).
    pub fn reg(&mut self, task: &str, phase: u64) -> Result<(), PhaserOpError> {
        if self.0.contains_key(task) {
            return Err(PhaserOpError::AlreadyMember);
        }
        if !self.0.values().any(|&m| m <= phase) {
            return Err(PhaserOpError::NoWitness);
        }
        self.0.insert(task.to_string(), phase);
        Ok(())
    }

    /// `P ⊎ {t: n} --dereg(t)--> P`.
    pub fn dereg(&mut self, task: &str) -> Result<(), PhaserOpError> {
        self.0.remove(task).map(|_| ()).ok_or(PhaserOpError::NotMember)
    }

    /// `P ⊎ {t: n} --adv(t)--> P ⊎ {t: n+1}`.
    pub fn adv(&mut self, task: &str) -> Result<(), PhaserOpError> {
        match self.0.get_mut(task) {
            Some(n) => {
                *n += 1;
                Ok(())
            }
            None => Err(PhaserOpError::NotMember),
        }
    }

    /// Local phase of `task`, if a member.
    pub fn phase_of(&self, task: &str) -> Option<u64> {
        self.0.get(task).copied()
    }
}

/// Why a phaser operation's premises failed (the transition is simply not
/// enabled; PL has no run-time errors, only stuck configurations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaserOpError {
    /// `reg` of an existing member (violates the disjoint union).
    AlreadyMember,
    /// `reg` with no member at or below the inherited phase.
    NoWitness,
    /// `dereg`/`adv` by a non-member.
    NotMember,
}

/// A PL state `(M, T)`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct State {
    /// The phaser map `M`.
    pub phasers: BTreeMap<Var, PhaserState>,
    /// The task map `T`.
    pub tasks: BTreeMap<Var, Seq>,
    /// Fresh-name counter (names are `#t0, #t1, …` / `#p0, #p1, …`).
    pub next_fresh: u64,
}

impl State {
    /// The initial state of a program: one root task running `program`.
    pub fn initial(program: Seq) -> State {
        let mut tasks = BTreeMap::new();
        tasks.insert("#main".to_string(), program);
        State { phasers: BTreeMap::new(), tasks, next_fresh: 0 }
    }

    /// Draws a fresh task name.
    pub fn fresh_task(&mut self) -> Var {
        let name = format!("#t{}", self.next_fresh);
        self.next_fresh += 1;
        name
    }

    /// Draws a fresh phaser name.
    pub fn fresh_phaser(&mut self) -> Var {
        let name = format!("#p{}", self.next_fresh);
        self.next_fresh += 1;
        name
    }

    /// All tasks whose sequence is exhausted (`end`).
    pub fn finished_tasks(&self) -> impl Iterator<Item = &Var> {
        self.tasks.iter().filter(|(_, s)| s.is_empty()).map(|(t, _)| t)
    }

    /// True when every task has terminated.
    pub fn all_finished(&self) -> bool {
        self.tasks.values().all(|s| s.is_empty())
    }

    /// The tasks blocked on an `await` whose condition currently fails:
    /// `(task, phaser, phase)` triples. These are the candidates for
    /// deadlock analysis.
    pub fn blocked_awaits(&self) -> Vec<(Var, Var, u64)> {
        let mut out = Vec::new();
        for (t, seq) in &self.tasks {
            if let Some(crate::syntax::Instr::Await(p)) = seq.first() {
                if let Some(ph) = self.phasers.get(p) {
                    if let Some(n) = ph.phase_of(t) {
                        if !ph.await_holds(n) {
                            out.push((t.clone(), p.clone(), n));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::build::*;

    #[test]
    fn await_predicate_matches_definition() {
        let mut p = PhaserState::singleton("a");
        p.reg("b", 0).unwrap();
        assert!(p.await_holds(0));
        assert!(!p.await_holds(1));
        p.adv("a").unwrap();
        assert!(!p.await_holds(1), "b still at 0");
        p.adv("b").unwrap();
        assert!(p.await_holds(1));
        // Empty phaser: await holds vacuously.
        p.dereg("a").unwrap();
        p.dereg("b").unwrap();
        assert!(p.await_holds(99));
    }

    #[test]
    fn reg_premises() {
        let mut p = PhaserState::singleton("a");
        assert_eq!(p.reg("a", 0), Err(PhaserOpError::AlreadyMember));
        // Joining ahead is fine: `a` at 0 witnesses `∃t′: P(t′) ≤ 5`.
        assert_eq!(p.reg("b", 5), Ok(()));
        // Joining *below every member* is refused ([reg] premise): no
        // member sits at or below the inherited phase.
        let mut q = PhaserState::default();
        q.0.insert("x".into(), 3);
        assert_eq!(q.reg("y", 2), Err(PhaserOpError::NoWitness));
        assert_eq!(q.reg("y", 3), Ok(()));
    }

    #[test]
    fn dereg_and_adv_require_membership() {
        let mut p = PhaserState::singleton("a");
        assert_eq!(p.dereg("x"), Err(PhaserOpError::NotMember));
        assert_eq!(p.adv("x"), Err(PhaserOpError::NotMember));
        assert_eq!(p.adv("a"), Ok(()));
        assert_eq!(p.phase_of("a"), Some(1));
        assert_eq!(p.dereg("a"), Ok(()));
        assert_eq!(p.phase_of("a"), None);
    }

    #[test]
    fn fresh_names_never_collide() {
        let mut st = State::initial(vec![]);
        let a = st.fresh_task();
        let b = st.fresh_phaser();
        let c = st.fresh_task();
        assert_ne!(a, c);
        assert_ne!(a, b);
    }

    #[test]
    fn blocked_awaits_lists_unsatisfied_waits_only() {
        let mut st = State::initial(vec![awaitp("#p0")]);
        let mut ph = PhaserState::singleton("#main");
        ph.reg("#t1", 0).unwrap();
        st.phasers.insert("#p0".into(), ph);
        st.tasks.insert("#t1".into(), vec![]);
        // #main at phase 0, awaiting 0: satisfied, not blocked.
        assert!(st.blocked_awaits().is_empty());
        st.phasers.get_mut("#p0").unwrap().adv("#main").unwrap();
        // Now #main awaits 1 but #t1 is at 0: blocked.
        let blocked = st.blocked_awaits();
        assert_eq!(blocked, vec![("#main".to_string(), "#p0".to_string(), 1)]);
    }
}
