//! The model side of the differential oracle: public entry points for
//! checking a *lowered trace* — the sequence of PL states a scheduler
//! (notably the `armus-testkit` simulation harness) reaches while driving
//! the runtime primitives through the matching PL transitions.
//!
//! Each state is analysed twice, independently:
//!
//! * by the **coinductive oracle** of Definition 3.2
//!   ([`crate::deadlock::deadlocked_tasks`]), and
//! * by the **canonical checker** over `ϕ(S)` ([`crate::phi::phi`] +
//!   [`armus_core::checker::check`]) — the exact analysis the runtime
//!   verifier implements incrementally.
//!
//! Soundness (Thm 4.10) and completeness (Thm 4.15) say the two must
//! agree on every reachable state; [`analyse`] returns both verdicts so a
//! differential harness can assert that agreement *and* compare either
//! against a third implementation (the run-time `Verifier`).

use std::collections::BTreeSet;

use armus_core::{checker, DeadlockReport, ModelChoice, DEFAULT_SG_THRESHOLD};

use crate::deadlock::deadlocked_tasks;
use crate::phi::{phi, NameTable};
use crate::state::State;
use crate::syntax::Var;

/// The PL model's verdict on one state of a lowered trace.
pub struct StateVerdict {
    /// Definition 3.2: the largest deadlocked task set, or `None` when the
    /// state is not deadlocked (the coinductive oracle's answer).
    pub deadlocked_tasks: Option<BTreeSet<Var>>,
    /// The canonical checker's report over `ϕ(S)` (adaptive model) — the
    /// graph analysis' answer. Task/phaser ids are interned by `names`.
    pub report: Option<DeadlockReport>,
    /// Interner translating the report's ids back to PL names.
    pub names: NameTable,
}

impl StateVerdict {
    /// Is the state deadlocked according to the coinductive oracle?
    pub fn deadlocked(&self) -> bool {
        self.deadlocked_tasks.is_some()
    }

    /// Do the coinductive oracle and the graph analysis agree? (They must,
    /// on reachable states — Theorems 4.10/4.15; a differential harness
    /// treats disagreement as a model bug.)
    pub fn internally_consistent(&self) -> bool {
        self.deadlocked() == self.report.is_some()
    }
}

/// Analyses one state of a lowered trace: coinductive oracle and canonical
/// checker, side by side.
pub fn analyse(state: &State) -> StateVerdict {
    let deadlocked = deadlocked_tasks(state);
    let (snapshot, names) = phi(state);
    let report = checker::check(&snapshot, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).report;
    StateVerdict { deadlocked_tasks: deadlocked, report, names }
}

/// Checks a whole lowered trace: returns the index of the first deadlocked
/// state, or `None` when no state of the trace is deadlocked. Deadlocks
/// are permanent (deadlocked tasks can never unblock), so the first index
/// is the interesting one.
pub fn first_deadlock<'a>(states: impl IntoIterator<Item = &'a State>) -> Option<usize> {
    states.into_iter().position(|s| analyse(s).deadlocked())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::semantics::{Outcome, RandomScheduler};

    #[test]
    fn analyse_agrees_with_itself_on_the_figure_3_run() {
        let src = "
            pc = newPhaser();
            pb = newPhaser();
            t = newTid();
            reg(pc, t); reg(pb, t);
            fork(t) { adv(pc); await(pc); dereg(pc); dereg(pb); }
            adv(pb); await(pb);
        ";
        let program = parse(src).unwrap();
        let mut trace = vec![State::initial(program)];
        let (outcome, stuck) =
            RandomScheduler::new(1).run(trace[0].clone(), 10_000, |s| trace.push(s.clone()));
        assert_eq!(outcome, Outcome::Stuck);
        let verdict = analyse(&stuck);
        assert!(verdict.deadlocked());
        assert!(verdict.internally_consistent());
        let at = first_deadlock(trace.iter()).expect("the run deadlocks");
        // Every state from the first deadlock onwards stays deadlocked.
        assert!(trace[at..].iter().all(|s| analyse(s).deadlocked()));
        assert!(trace[..at].iter().all(|s| !analyse(s).deadlocked()));
    }

    #[test]
    fn analyse_of_a_healthy_state_is_empty() {
        let program = parse("p = newPhaser(); adv(p); await(p); dereg(p);").unwrap();
        let verdict = analyse(&State::initial(program));
        assert!(!verdict.deadlocked());
        assert!(verdict.report.is_none());
        assert!(verdict.internally_consistent());
    }
}
