//! # armus-pl
//!
//! PL — the core phaser language of the Armus paper (§3) — implemented as
//! an executable formal model: abstract syntax, the small-step operational
//! semantics of Figure 4, the deadlock characterisation of Definitions
//! 3.1/3.2, and the `ϕ` abstraction (Definition 4.1) from PL states to the
//! resource-dependency snapshots consumed by `armus-core`.
//!
//! This crate is where the paper's theorems become executable checks:
//!
//! * **Equivalence (Thm 4.8)**: a WFG cycle exists iff an SG cycle exists;
//! * **Soundness (Thm 4.10)**: a cycle in `wfg(ϕ(S))` implies `S` is
//!   deadlocked;
//! * **Completeness (Thm 4.15)**: a deadlocked `S` yields a cycle.
//!
//! The `tests/` suite validates all three on thousands of generated states
//! and on states reached by running generated programs.
//!
//! ## Example: run Figure 3 and analyse the stuck state
//!
//! ```
//! use armus_pl::parser::parse;
//! use armus_pl::semantics::{RandomScheduler, Outcome};
//! use armus_pl::state::State;
//! use armus_pl::deadlock::is_deadlocked;
//! use armus_pl::phi::phi;
//! use armus_core::{checker, ModelChoice, DEFAULT_SG_THRESHOLD};
//!
//! let src = "
//!     pc = newPhaser();
//!     pb = newPhaser();
//!     t = newTid();
//!     reg(pc, t); reg(pb, t);
//!     fork(t) { adv(pc); await(pc); dereg(pc); dereg(pb); }
//!     adv(pb); await(pb);   // BUG: never advances pc
//! ";
//! let program = parse(src).unwrap();
//! let (outcome, stuck) =
//!     RandomScheduler::new(1).run(State::initial(program), 10_000, |_| {});
//! assert_eq!(outcome, Outcome::Stuck);
//! assert!(is_deadlocked(&stuck));
//! let (snapshot, _names) = phi(&stuck);
//! let found = checker::check(&snapshot, ModelChoice::Auto, DEFAULT_SG_THRESHOLD);
//! assert!(found.report.is_some());
//! ```
//!
//! ## Example: parse → well-formedness → model-check
//!
//! Instead of sampling executions, small programs can be model-checked
//! exhaustively: diagnose unbound names first, then walk every reachable
//! state with [`semantics::enabled`]/[`semantics::apply`] and ask the
//! deadlock oracle in each one.
//!
//! ```
//! use armus_pl::parser::parse;
//! use armus_pl::state::State;
//! use armus_pl::{check_wellformed, deadlock, semantics};
//! use std::collections::HashSet;
//!
//! let program = parse("
//!     p = newPhaser();
//!     t = newTid();
//!     reg(p, t);
//!     fork(t) { adv(p); await(p); dereg(p); }
//!     adv(p); await(p); dereg(p);
//! ").unwrap();
//!
//! // 1. Well-formedness: every used name is bound by a `new…` binder.
//! assert!(check_wellformed(&program).is_empty());
//!
//! // 2. Bounded model check: explore the whole reachable state space…
//! let mut seen: HashSet<State> = HashSet::new();
//! let mut frontier = vec![State::initial(program)];
//! while let Some(state) = frontier.pop() {
//!     if seen.insert(state.clone()) {
//!         for step in semantics::enabled(&state) {
//!             frontier.push(semantics::apply(&state, &step));
//!         }
//!     }
//! }
//!
//! // …and this two-party barrier is deadlock-free in every state.
//! assert!(seen.iter().all(|s| !deadlock::is_deadlocked(s)));
//! assert!(seen.iter().any(State::all_finished));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod deadlock;
pub mod gen;
pub mod parser;
pub mod phi;
pub mod semantics;
pub mod state;
pub mod syntax;
pub mod trace;
pub mod wf;

pub use analysis::{
    analyse_program, analyse_program_spanned, analyse_state, analyse_state_with, AnalysisConfig,
    AwaitSite, DeadlockWitness, StaticVerdict,
};
pub use deadlock::{deadlocked_tasks, is_deadlocked, is_totally_deadlocked};
pub use parser::{parse, parse_spanned, ParseError, Span, SpanTable};
pub use phi::{phi, NameTable};
pub use semantics::{apply, enabled, Outcome, RandomScheduler, Rule, Transition};
pub use state::{PhaserState, State};
pub use syntax::{free_vars, pretty, subst_seq, Instr, Seq, Var};
pub use trace::{analyse, first_deadlock, StateVerdict};
pub use wf::{check as check_wellformed, check_spanned, UnboundUse};
