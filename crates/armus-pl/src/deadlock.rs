//! Deadlocked states (Definitions 3.1 and 3.2) and an independent oracle.
//!
//! The oracle is deliberately *not* graph-based: it computes the greatest
//! set `C` of blocked tasks such that every member waits on a phaser with a
//! laggard inside `C` — the coinductive reading of Definition 3.1. The
//! property tests then validate the paper's soundness/completeness theorems
//! by comparing this oracle against cycle detection on `ϕ(S)`.

use std::collections::BTreeSet;

use crate::state::State;
use crate::syntax::{Instr, Var};

/// Definition 3.1: `(M, T)` is **totally deadlocked** iff `T ≠ ∅` and every
/// task `t` has `T(t) = await(p); s` with `M(p)(t) = n` and some
/// `t′ ∈ dom(T)` with `M(p)(t′) < n`.
pub fn is_totally_deadlocked(state: &State) -> bool {
    if state.tasks.is_empty() {
        return false;
    }
    state.tasks.iter().all(|(t, seq)| {
        let Some(Instr::Await(p)) = seq.first() else { return false };
        let Some(ph) = state.phasers.get(p) else { return false };
        let Some(n) = ph.phase_of(t) else { return false };
        state.tasks.keys().any(|t2| ph.phase_of(t2).map(|m| m < n).unwrap_or(false))
    })
}

/// Definition 3.2: `(M, T′ ⊎ T)` is **deadlocked on `T`** iff `(M, T)` is
/// totally deadlocked. This function returns the *largest* such `T` (the
/// union of all deadlocked sub-maps), or `None` when the state is not
/// deadlocked.
///
/// Computed as a greatest fixpoint: start from all await-blocked tasks and
/// repeatedly discard tasks whose awaited phaser has no laggard left in the
/// candidate set.
pub fn deadlocked_tasks(state: &State) -> Option<BTreeSet<Var>> {
    // Candidates: tasks whose head is await on a phaser they are members of.
    let mut candidates: BTreeSet<Var> = state
        .tasks
        .iter()
        .filter(|(t, seq)| match seq.first() {
            Some(Instr::Await(p)) => {
                state.phasers.get(p).map(|ph| ph.phase_of(t).is_some()).unwrap_or(false)
            }
            _ => false,
        })
        .map(|(t, _)| t.clone())
        .collect();

    loop {
        let mut dropped = Vec::new();
        for t in &candidates {
            let Some(Instr::Await(p)) = state.tasks[t].first() else { unreachable!() };
            let ph = &state.phasers[p];
            let n = ph.phase_of(t).expect("candidate is a member");
            let has_laggard_inside =
                candidates.iter().any(|t2| ph.phase_of(t2).map(|m| m < n).unwrap_or(false));
            if !has_laggard_inside {
                dropped.push(t.clone());
            }
        }
        if dropped.is_empty() {
            break;
        }
        for t in dropped {
            candidates.remove(&t);
        }
    }
    if candidates.is_empty() {
        None
    } else {
        Some(candidates)
    }
}

/// Is the state deadlocked (on any task map)?
pub fn is_deadlocked(state: &State) -> bool {
    deadlocked_tasks(state).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::PhaserState;
    use crate::syntax::build::*;

    /// Builds the paper's Example 4.1 state `(M1, T1)` (I = 3 workers).
    pub fn example_4_1() -> State {
        let mut st = State::initial(vec![]);
        st.tasks.clear();
        let mut pc = PhaserState::default();
        let mut pb = PhaserState::default();
        for t in ["t1", "t2", "t3"] {
            pc.0.insert(t.into(), 1);
            pb.0.insert(t.into(), 0);
            st.tasks.insert(t.into(), vec![awaitp("pc")]);
        }
        pc.0.insert("t4".into(), 0);
        pb.0.insert("t4".into(), 1);
        st.tasks.insert("t4".into(), vec![awaitp("pb")]);
        st.phasers.insert("pc".into(), pc);
        st.phasers.insert("pb".into(), pb);
        st
    }

    #[test]
    fn example_4_1_is_totally_deadlocked() {
        let st = example_4_1();
        assert!(is_totally_deadlocked(&st));
        assert!(is_deadlocked(&st));
        let tasks = deadlocked_tasks(&st).unwrap();
        assert_eq!(tasks.len(), 4);
    }

    #[test]
    fn deadlocked_state_with_extra_running_tasks() {
        // Definition 3.2: adding non-blocked tasks keeps the state
        // deadlocked (on the blocked sub-map) but not *totally* deadlocked.
        let mut st = example_4_1();
        st.tasks.insert("runner".into(), vec![skip(), skip()]);
        assert!(!is_totally_deadlocked(&st));
        assert!(is_deadlocked(&st));
        let tasks = deadlocked_tasks(&st).unwrap();
        assert!(!tasks.contains("runner"));
        assert_eq!(tasks.len(), 4);
    }

    #[test]
    fn satisfiable_await_is_not_deadlock() {
        // Two tasks both arrived and awaiting phase 1 of a shared phaser
        // whose members are all at 1: await holds; nobody is deadlocked.
        let mut st = State::initial(vec![]);
        st.tasks.clear();
        let mut p = PhaserState::default();
        p.0.insert("a".into(), 1);
        p.0.insert("b".into(), 1);
        st.phasers.insert("p".into(), p);
        st.tasks.insert("a".into(), vec![awaitp("p")]);
        st.tasks.insert("b".into(), vec![awaitp("p")]);
        assert!(!is_deadlocked(&st));
        assert!(!is_totally_deadlocked(&st));
    }

    #[test]
    fn wait_for_external_laggard_is_not_deadlock() {
        // `a` awaits phase 1 but the laggard `c` is not blocked — the state
        // can still progress, so it is not deadlocked.
        let mut st = State::initial(vec![]);
        st.tasks.clear();
        let mut p = PhaserState::default();
        p.0.insert("a".into(), 1);
        p.0.insert("c".into(), 0);
        st.phasers.insert("p".into(), p);
        st.tasks.insert("a".into(), vec![awaitp("p")]);
        st.tasks.insert("c".into(), vec![adv("p"), dereg("p")]);
        assert!(!is_deadlocked(&st));
    }

    #[test]
    fn chained_deadlock_closes_over_the_chain() {
        // a waits on p (laggard b); b waits on q (laggard a): a 2-cycle.
        let mut st = State::initial(vec![]);
        st.tasks.clear();
        let mut p = PhaserState::default();
        p.0.insert("a".into(), 1);
        p.0.insert("b".into(), 0);
        let mut q = PhaserState::default();
        q.0.insert("a".into(), 0);
        q.0.insert("b".into(), 1);
        st.phasers.insert("p".into(), p);
        st.phasers.insert("q".into(), q);
        st.tasks.insert("a".into(), vec![awaitp("p")]);
        st.tasks.insert("b".into(), vec![awaitp("q")]);
        let tasks = deadlocked_tasks(&st).unwrap();
        assert_eq!(tasks.len(), 2);
    }

    #[test]
    fn half_open_chain_collapses() {
        // a waits on b; b waits on a *running* task: the fixpoint drops b,
        // then a, leaving nothing.
        let mut st = State::initial(vec![]);
        st.tasks.clear();
        let mut p = PhaserState::default();
        p.0.insert("a".into(), 1);
        p.0.insert("b".into(), 0);
        let mut q = PhaserState::default();
        q.0.insert("b".into(), 1);
        q.0.insert("free".into(), 0);
        st.phasers.insert("p".into(), p);
        st.phasers.insert("q".into(), q);
        st.tasks.insert("a".into(), vec![awaitp("p")]);
        st.tasks.insert("b".into(), vec![awaitp("q")]);
        st.tasks.insert("free".into(), vec![adv("q"), dereg("q")]);
        assert!(!is_deadlocked(&st));
    }

    #[test]
    fn self_deadlock_via_nonmember_await_is_ignored() {
        // A task awaiting a phaser it is NOT a member of does not satisfy
        // the [sync] premise; Definition 3.1 does not classify it (such
        // states are stuck-but-not-deadlocked in PL's vocabulary).
        let mut st = State::initial(vec![]);
        st.tasks.clear();
        let mut p = PhaserState::default();
        p.0.insert("other".into(), 0);
        st.phasers.insert("p".into(), p);
        st.tasks.insert("a".into(), vec![awaitp("p")]);
        st.tasks.insert("other".into(), vec![]);
        assert!(!is_deadlocked(&st));
    }

    #[test]
    fn empty_task_map_is_not_deadlocked() {
        let mut st = State::initial(vec![]);
        st.tasks.clear();
        assert!(!is_totally_deadlocked(&st));
        assert!(!is_deadlocked(&st));
    }
}
