//! Networked-store integration: real `armus-stored` child processes and
//! in-process [`StoredServer`]s, with sites publishing through
//! [`TcpStore`] — the store genuinely crosses a process/socket boundary.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use armus_core::{
    BlockedInfo, JournalRead, PhaserId, Registration, Resource, Snapshot, TaskId, Verifier,
    VerifierConfig,
};
use armus_dist::server::{StoredConfig, StoredServer};
use armus_dist::{
    ChaosConfig, ChaosStore, DeltaAck, Site, SiteConfig, SiteId, Store, StoreError, TcpStore,
    TcpStoreConfig,
};

fn fast_cfg() -> SiteConfig {
    SiteConfig {
        publish_period: Duration::from_millis(10),
        check_period: Duration::from_millis(20),
        ..Default::default()
    }
}

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// The paper's running example split across two sites, with **colliding
/// local task ids** (both sites use 1..): workers on one site blocked on
/// the shared phaser 1, the driver on the other blocked on the shared
/// phaser 2 — a cross-site cycle only the merged view reveals.
fn plant_workers(site: &Site) {
    for i in 1..=3u64 {
        site.runtime()
            .verifier()
            .block(
                TaskId(i),
                vec![Resource::new(PhaserId(1), 1)],
                vec![Registration::new(PhaserId(1), 1), Registration::new(PhaserId(2), 0)],
            )
            .unwrap();
    }
}

fn plant_driver(site: &Site) {
    site.runtime()
        .verifier()
        .block(
            TaskId(1), // collides with a worker id on the other site
            vec![Resource::new(PhaserId(2), 1)],
            vec![Registration::new(PhaserId(1), 0), Registration::new(PhaserId(2), 1)],
        )
        .unwrap();
}

/// The `armus-stored` binary built alongside these tests.
fn stored_binary() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_armus-stored"))
}

#[test]
fn cross_process_deadlock_is_detected_over_the_wire() {
    // The store is a real child process; the two sites talk to it over
    // TCP through independent client connections.
    let stored =
        armus_dist::StoredProcess::spawn(stored_binary(), Some(Duration::from_secs(5)), None)
            .expect("spawn armus-stored");
    let site0 = Site::start(
        SiteId(0),
        Arc::new(TcpStore::new(stored.addr())) as Arc<dyn Store>,
        fast_cfg(),
    );
    let site1 = Site::start(
        SiteId(1),
        Arc::new(TcpStore::new(stored.addr())) as Arc<dyn Store>,
        fast_cfg(),
    );
    plant_workers(&site0);
    plant_driver(&site1);
    assert!(
        eventually(Duration::from_secs(10), || site0.found_deadlock() && site1.found_deadlock()),
        "both sites must independently detect the cross-process cycle"
    );
    // The reports carry site-namespaced ids: the colliding local task 1
    // appears once per site, never aliased.
    let report = site0.reports().into_iter().next().unwrap();
    assert!(report.tasks.contains(&TaskId(1).with_site(0)));
    assert!(report.tasks.contains(&TaskId(1).with_site(1)));
    assert_eq!(report.tasks.len(), 4, "3 workers + driver");
    site0.stop();
    site1.stop();
    stored.stop().expect("drain armus-stored");
}

#[test]
fn tcp_store_reconnects_with_bounded_backoff() {
    // No server yet: operations fail fast as Unavailable.
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    let addr = server.local_addr();
    server.shutdown(); // free the port, remember the address
    let store = TcpStore::with_config(
        addr.to_string(),
        TcpStoreConfig {
            backoff_initial: Duration::from_millis(20),
            backoff_max: Duration::from_millis(100),
            ..Default::default()
        },
    );
    assert_eq!(store.fetch_all().unwrap_err(), StoreError::Unavailable);
    // Inside the backoff window the client fails fast without dialing.
    let start = Instant::now();
    assert_eq!(store.fetch_all().unwrap_err(), StoreError::Unavailable);
    assert!(start.elapsed() < Duration::from_millis(15), "backoff window must fail fast");
    assert_eq!(store.reconnects(), 0);
    assert!(store.failures() >= 2);
    // The server comes back on the same port: after the backoff lapses
    // the client redials transparently.
    let server = StoredServer::bind(addr, StoredConfig::default()).unwrap();
    assert!(
        eventually(Duration::from_secs(5), || store.fetch_all().is_ok()),
        "client must reconnect once the server returns"
    );
    assert_eq!(store.reconnects(), 1);
    server.shutdown();
}

#[test]
fn server_restart_forces_a_full_resync_not_corruption() {
    // A site survives its server being replaced mid-run (empty store):
    // the partition reappears via the NACK → full-snapshot resync path.
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    let addr = server.local_addr();
    let store = Arc::new(TcpStore::new(addr.to_string()));
    let site = Site::start(SiteId(0), Arc::clone(&store) as Arc<dyn Store>, fast_cfg());
    plant_driver(&site);
    assert!(eventually(Duration::from_secs(5), || {
        store.fetch_all().map(|v| v.iter().any(|(_, p)| !p.is_empty())).unwrap_or(false)
    }));
    let resyncs_before = site.publish_resyncs();
    server.shutdown();
    let server = StoredServer::bind(addr, StoredConfig::default()).unwrap();
    assert!(
        eventually(Duration::from_secs(10), || {
            store.fetch_all().map(|v| v.iter().any(|(_, p)| !p.is_empty())).unwrap_or(false)
        }),
        "the partition must be republished to the fresh server"
    );
    assert!(site.publish_resyncs() > resyncs_before, "recovery must be a full resync");
    site.stop();
    server.shutdown();
}

#[test]
fn leases_expire_crashed_sites_over_the_wire() {
    let server = StoredServer::bind(
        "127.0.0.1:0",
        StoredConfig { lease: Some(Duration::from_millis(120)), ..Default::default() },
    )
    .unwrap();
    let store = TcpStore::new(server.local_addr().to_string());
    let partition = Snapshot::from_tasks(vec![BlockedInfo::new(
        TaskId(1),
        vec![Resource::new(PhaserId(1), 1)],
        vec![Registration::new(PhaserId(1), 1)],
    )]);
    store.publish_full(SiteId(0), partition, 1).unwrap();
    assert_eq!(store.fetch_all().unwrap().len(), 1);
    // "Crash": no further publishes. The lease lapses server-side.
    assert!(
        eventually(Duration::from_secs(2), || store.fetch_all().unwrap().is_empty()),
        "a silent site's partition must expire"
    );
    server.shutdown();
}

/// One site publisher round against an arbitrary store, mirroring the
/// sites' delta protocol (same shape as the `ChaosStore` unit suite —
/// here the inner transport is a real TCP connection).
fn publisher_round(
    store: &dyn Store,
    v: &Verifier,
    cursor: &mut u64,
    synced: &mut bool,
    resyncs: &mut u64,
) {
    if *synced {
        match v.deltas_since(*cursor) {
            JournalRead::Deltas(deltas, next) => {
                match store.publish_deltas(SiteId(0), *cursor, &deltas, next) {
                    Ok(DeltaAck::Applied) => *cursor = next,
                    Ok(DeltaAck::NeedSnapshot) => *synced = false,
                    Err(_) => return,
                }
            }
            JournalRead::Behind => *synced = false,
        }
    }
    if !*synced {
        let (snapshot, head) = v.snapshot_with_cursor();
        if store.publish_full(SiteId(0), snapshot, head).is_ok() {
            *cursor = head;
            *synced = true;
            *resyncs += 1;
        }
    }
}

#[test]
fn chaos_over_tcp_costs_resyncs_never_corruption() {
    // The existing ChaosStore differential argument, with the real wire
    // protocol underneath: message chaos on top of TCP still converges
    // the partition to the publisher's exact truth.
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    for seed in 0..8u64 {
        let tcp = TcpStore::new(server.local_addr().to_string());
        let store = ChaosStore::new(tcp, ChaosConfig::default(), seed);
        let v = Verifier::new(VerifierConfig::publish_only().with_journal_capacity(8));
        let (mut cursor, mut synced, mut resyncs) = (0u64, false, 0u64);
        let info = |task: u64| {
            BlockedInfo::new(
                TaskId(task),
                vec![Resource::new(PhaserId(1), 1)],
                vec![Registration::new(PhaserId(1), 1)],
            )
        };
        for i in 0..120u64 {
            let b = info(i % 16);
            v.block(b.task, b.waits, b.registered).unwrap();
            if i % 5 == 0 {
                v.unblock(TaskId(i % 16));
            }
            if i % 3 == 0 {
                publisher_round(&store, &v, &mut cursor, &mut synced, &mut resyncs);
            }
        }
        store.flush_delayed().unwrap();
        for _ in 0..100 {
            publisher_round(&store, &v, &mut cursor, &mut synced, &mut resyncs);
            let caught_up = synced
                && matches!(v.deltas_since(cursor), JournalRead::Deltas(ref d, _) if d.is_empty());
            if caught_up {
                break;
            }
        }
        store.flush_delayed().unwrap();
        let all = store.fetch_all().unwrap();
        let partition = &all.iter().find(|(s, _)| *s == SiteId(0)).unwrap().1;
        assert_eq!(
            partition,
            &v.local_snapshot(),
            "seed {seed}: chaos over TCP must never corrupt the partition"
        );
        store.remove(SiteId(0)).unwrap();
    }
    server.shutdown();
}
