//! Networked-store integration: real `armus-stored` child processes and
//! in-process [`StoredServer`]s, with sites publishing through
//! [`TcpStore`] — the store genuinely crosses a process/socket boundary.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use armus_core::{
    BlockedInfo, JournalRead, PhaserId, Registration, Resource, Snapshot, TaskId, Verifier,
    VerifierConfig,
};
use armus_dist::server::{StoredConfig, StoredServer};
use armus_dist::{
    ChaosConfig, ChaosStore, DeltaAck, Site, SiteConfig, SiteId, Store, StoreError, TcpStore,
    TcpStoreConfig, TenantId,
};

fn fast_cfg() -> SiteConfig {
    SiteConfig {
        publish_period: Duration::from_millis(10),
        check_period: Duration::from_millis(20),
        ..Default::default()
    }
}

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// The paper's running example split across two sites, with **colliding
/// local task ids** (both sites use 1..): workers on one site blocked on
/// the shared phaser 1, the driver on the other blocked on the shared
/// phaser 2 — a cross-site cycle only the merged view reveals.
fn plant_workers(site: &Site) {
    for i in 1..=3u64 {
        site.runtime()
            .verifier()
            .block(
                TaskId(i),
                vec![Resource::new(PhaserId(1), 1)],
                vec![Registration::new(PhaserId(1), 1), Registration::new(PhaserId(2), 0)],
            )
            .unwrap();
    }
}

fn plant_driver(site: &Site) {
    site.runtime()
        .verifier()
        .block(
            TaskId(1), // collides with a worker id on the other site
            vec![Resource::new(PhaserId(2), 1)],
            vec![Registration::new(PhaserId(1), 0), Registration::new(PhaserId(2), 1)],
        )
        .unwrap();
}

/// The `armus-stored` binary built alongside these tests.
fn stored_binary() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_armus-stored"))
}

#[test]
fn cross_process_deadlock_is_detected_over_the_wire() {
    // The store is a real child process; the two sites talk to it over
    // TCP through independent client connections.
    let stored =
        armus_dist::StoredProcess::spawn(stored_binary(), Some(Duration::from_secs(5)), None)
            .expect("spawn armus-stored");
    let site0 = Site::start(
        SiteId(0),
        Arc::new(TcpStore::new(stored.addr())) as Arc<dyn Store>,
        fast_cfg(),
    );
    let site1 = Site::start(
        SiteId(1),
        Arc::new(TcpStore::new(stored.addr())) as Arc<dyn Store>,
        fast_cfg(),
    );
    plant_workers(&site0);
    plant_driver(&site1);
    assert!(
        eventually(Duration::from_secs(10), || site0.found_deadlock() && site1.found_deadlock()),
        "both sites must independently detect the cross-process cycle"
    );
    // The reports carry site-namespaced ids: the colliding local task 1
    // appears once per site, never aliased.
    let report = site0.reports().into_iter().next().unwrap();
    assert!(report.tasks.contains(&TaskId(1).with_site(0)));
    assert!(report.tasks.contains(&TaskId(1).with_site(1)));
    assert_eq!(report.tasks.len(), 4, "3 workers + driver");
    site0.stop();
    site1.stop();
    stored.stop().expect("drain armus-stored");
}

#[test]
fn tcp_store_reconnects_with_bounded_backoff() {
    // No server yet: operations fail fast as Unavailable.
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    let addr = server.local_addr();
    server.shutdown(); // free the port, remember the address
    let store = TcpStore::with_config(
        addr.to_string(),
        TcpStoreConfig {
            backoff_initial: Duration::from_millis(20),
            backoff_max: Duration::from_millis(100),
            ..Default::default()
        },
    );
    assert_eq!(store.fetch_all().unwrap_err(), StoreError::Unavailable);
    // Inside the backoff window the client fails fast without dialing.
    let start = Instant::now();
    assert_eq!(store.fetch_all().unwrap_err(), StoreError::Unavailable);
    assert!(start.elapsed() < Duration::from_millis(15), "backoff window must fail fast");
    assert_eq!(store.reconnects(), 0);
    assert!(store.failures() >= 2);
    // The server comes back on the same port: after the backoff lapses
    // the client redials transparently.
    let server = StoredServer::bind(addr, StoredConfig::default()).unwrap();
    assert!(
        eventually(Duration::from_secs(5), || store.fetch_all().is_ok()),
        "client must reconnect once the server returns"
    );
    assert_eq!(store.reconnects(), 1);
    server.shutdown();
}

#[test]
fn server_restart_forces_a_full_resync_not_corruption() {
    // A site survives its server being replaced mid-run (empty store):
    // the partition reappears via the NACK → full-snapshot resync path.
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    let addr = server.local_addr();
    let store = Arc::new(TcpStore::new(addr.to_string()));
    let site = Site::start(SiteId(0), Arc::clone(&store) as Arc<dyn Store>, fast_cfg());
    plant_driver(&site);
    assert!(eventually(Duration::from_secs(5), || {
        store.fetch_all().map(|v| v.iter().any(|(_, p)| !p.is_empty())).unwrap_or(false)
    }));
    let resyncs_before = site.publish_resyncs();
    server.shutdown();
    let server = StoredServer::bind(addr, StoredConfig::default()).unwrap();
    assert!(
        eventually(Duration::from_secs(10), || {
            store.fetch_all().map(|v| v.iter().any(|(_, p)| !p.is_empty())).unwrap_or(false)
        }),
        "the partition must be republished to the fresh server"
    );
    assert!(site.publish_resyncs() > resyncs_before, "recovery must be a full resync");
    site.stop();
    server.shutdown();
}

#[test]
fn leases_expire_crashed_sites_over_the_wire() {
    let server = StoredServer::bind(
        "127.0.0.1:0",
        StoredConfig { lease: Some(Duration::from_millis(120)), ..Default::default() },
    )
    .unwrap();
    let store = TcpStore::new(server.local_addr().to_string());
    let partition = Snapshot::from_tasks(vec![BlockedInfo::new(
        TaskId(1),
        vec![Resource::new(PhaserId(1), 1)],
        vec![Registration::new(PhaserId(1), 1)],
    )]);
    store.publish_full(SiteId(0), partition, 1).unwrap();
    assert_eq!(store.fetch_all().unwrap().len(), 1);
    // "Crash": no further publishes. The lease lapses server-side.
    assert!(
        eventually(Duration::from_secs(2), || store.fetch_all().unwrap().is_empty()),
        "a silent site's partition must expire"
    );
    server.shutdown();
}

/// One site publisher round against an arbitrary store, mirroring the
/// sites' delta protocol (same shape as the `ChaosStore` unit suite —
/// here the inner transport is a real TCP connection).
fn publisher_round(
    store: &dyn Store,
    v: &Verifier,
    cursor: &mut u64,
    synced: &mut bool,
    resyncs: &mut u64,
) {
    if *synced {
        match v.deltas_since(*cursor) {
            JournalRead::Deltas(deltas, next) => {
                match store.publish_deltas(SiteId(0), *cursor, &deltas, next) {
                    Ok(DeltaAck::Applied) => *cursor = next,
                    Ok(DeltaAck::NeedSnapshot) => *synced = false,
                    Err(_) => return,
                }
            }
            JournalRead::Behind => *synced = false,
        }
    }
    if !*synced {
        let (snapshot, head) = v.snapshot_with_cursor();
        if store.publish_full(SiteId(0), snapshot, head).is_ok() {
            *cursor = head;
            *synced = true;
            *resyncs += 1;
        }
    }
}

/// Runs the three-site deadlock scenario (workers / driver / empty
/// observer) against the given per-site stores and returns each site's
/// first report, serialised — the byte-level artifact the transport must
/// not perturb.
fn scenario_reports(stores: Vec<Arc<dyn Store>>) -> Vec<String> {
    assert_eq!(stores.len(), 3);
    let sites: Vec<Site> = stores
        .into_iter()
        .enumerate()
        .map(|(i, store)| Site::start(SiteId(i as u32), store, fast_cfg()))
        .collect();
    plant_workers(&sites[0]);
    plant_driver(&sites[1]);
    // Site 2 plants nothing: the paper's "every site checks" — an idle
    // observer still detects the cycle from the merged view alone.
    assert!(
        eventually(Duration::from_secs(10), || sites.iter().all(|s| s.found_deadlock())),
        "all three sites must detect the cross-site cycle"
    );
    let reports = sites
        .iter()
        .map(|s| serde_json::to_string(&s.reports()[0]).expect("serialise report"))
        .collect();
    for site in sites {
        site.stop();
    }
    reports
}

#[test]
fn multiplexed_sites_match_dedicated_connections_and_memstore() {
    // One pooled TcpStore shared by all three sites: every publisher and
    // checker multiplexes over a single connection.
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    let shared = Arc::new(TcpStore::new(server.local_addr().to_string()));
    let muxed = scenario_reports(vec![
        Arc::clone(&shared) as Arc<dyn Store>,
        Arc::clone(&shared) as Arc<dyn Store>,
        Arc::clone(&shared) as Arc<dyn Store>,
    ]);
    assert_eq!(shared.reconnects(), 1, "three sites must share one pooled connection");
    assert_eq!(shared.failures(), 0, "a healthy multiplexed run never fails an op");
    server.shutdown();

    // Connection-per-site against a fresh server.
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    let dedicated = scenario_reports(
        (0..3)
            .map(|_| Arc::new(TcpStore::new(server.local_addr().to_string())) as Arc<dyn Store>)
            .collect(),
    );
    server.shutdown();

    // The in-process baseline: no wire at all.
    let mem = Arc::new(armus_dist::MemStore::new());
    let inproc = scenario_reports(vec![
        Arc::clone(&mem) as Arc<dyn Store>,
        Arc::clone(&mem) as Arc<dyn Store>,
        Arc::clone(&mem) as Arc<dyn Store>,
    ]);

    // The transport must be invisible in the analysis: every site's
    // report is byte-identical across all three deployment shapes.
    assert_eq!(muxed, dedicated, "multiplexing must not change any report");
    assert_eq!(muxed, inproc, "the wire must not change any report");
}

#[test]
fn v1_client_against_v2_server_still_round_trips() {
    // A legacy ping-pong client: raw v1 frames, one at a time, no
    // correlation ids. The pipelined server must answer each in v1.
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();
    use std::io::Write;
    let snapshot = Snapshot::from_tasks(vec![BlockedInfo::new(
        TaskId(1),
        vec![Resource::new(PhaserId(1), 1)],
        vec![Registration::new(PhaserId(1), 1)],
    )]);
    let publish = armus_dist::wire::Request::PublishFull {
        site: SiteId(0),
        tenant: TenantId::DEFAULT,
        snapshot,
        version: 1,
    };
    conn.write_all(&armus_dist::wire::encode_frame(&publish).unwrap()).unwrap();
    let ack: armus_dist::wire::Response = armus_dist::wire::read_message(&mut conn)
        .expect("v1 response")
        .expect("server must answer a v1 frame in v1");
    assert_eq!(ack, armus_dist::wire::Response::Ok);
    let fetch = armus_dist::wire::Request::FetchAll { tenant: TenantId::DEFAULT };
    conn.write_all(&armus_dist::wire::encode_frame(&fetch).unwrap()).unwrap();
    let view: armus_dist::wire::Response =
        armus_dist::wire::read_message(&mut conn).expect("v1 response").expect("one frame");
    match view {
        armus_dist::wire::Response::View(view) => {
            assert_eq!(view.len(), 1);
            assert_eq!(view[0].0, SiteId(0));
        }
        other => panic!("expected a view, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn server_death_fails_every_batched_frame_to_unavailable() {
    // Concurrent callers are mid-flight — some batched, some awaiting
    // responses — when the server dies. Every one of them must resolve
    // to Unavailable promptly: no hang, no silent drop, no false ack
    // (an op that returned Ok before the shutdown genuinely landed).
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    let store = Arc::new(TcpStore::with_config(
        server.local_addr().to_string(),
        TcpStoreConfig {
            io_timeout: Duration::from_millis(500),
            backoff_initial: Duration::from_millis(20),
            backoff_max: Duration::from_millis(100),
            ..Default::default()
        },
    ));
    store.fetch_all().expect("warm the connection");
    let deadline = Instant::now() + Duration::from_millis(600);
    let errors: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8u32)
            .map(|i| {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let snap = Snapshot::from_tasks(vec![BlockedInfo::new(
                        TaskId(1),
                        vec![Resource::new(PhaserId(1), 1)],
                        vec![Registration::new(PhaserId(1), 1)],
                    )]);
                    let mut errors = 0u64;
                    let mut version = 0u64;
                    while Instant::now() < deadline {
                        version += 1;
                        match store.publish_full(SiteId(i), snap.clone(), version) {
                            Ok(()) => {}
                            Err(StoreError::Unavailable) => errors += 1,
                        }
                    }
                    errors
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(150));
        server.shutdown(); // mid-burst: in-flight and batched frames die
        handles.into_iter().map(|h| h.join().expect("no caller may panic or hang")).sum()
    });
    assert!(errors > 0, "the killed connection must surface Unavailable to its callers");
    assert!(store.failures() > 0);
}

#[test]
fn chaos_over_tcp_survives_a_server_restart() {
    // The reconnect regression under message chaos: the server restarts
    // mid-run (all partitions lost, every in-flight batched frame failed),
    // and the publisher protocol must still converge the partition to the
    // site's exact truth through NACK → full resync — batched frames that
    // died fail loudly as Unavailable and are retried by the rounds.
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut server = Some(server);
    let tcp = TcpStore::with_config(
        addr.to_string(),
        TcpStoreConfig {
            io_timeout: Duration::from_millis(500),
            backoff_initial: Duration::from_millis(10),
            backoff_max: Duration::from_millis(40),
            ..Default::default()
        },
    );
    let store = ChaosStore::new(tcp, ChaosConfig::default(), 11);
    let v = Verifier::new(VerifierConfig::publish_only().with_journal_capacity(8));
    let (mut cursor, mut synced, mut resyncs) = (0u64, false, 0u64);
    let info = |task: u64| {
        BlockedInfo::new(
            TaskId(task),
            vec![Resource::new(PhaserId(1), 1)],
            vec![Registration::new(PhaserId(1), 1)],
        )
    };
    for i in 0..120u64 {
        if i == 60 {
            // Replace the server: connection severed, store emptied.
            server.take().unwrap().shutdown();
            server = Some(StoredServer::bind(addr, StoredConfig::default()).unwrap());
        }
        let b = info(i % 16);
        v.block(b.task, b.waits, b.registered).unwrap();
        if i % 5 == 0 {
            v.unblock(TaskId(i % 16));
        }
        if i % 3 == 0 {
            publisher_round(&store, &v, &mut cursor, &mut synced, &mut resyncs);
        }
    }
    let _ = store.flush_delayed();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        publisher_round(&store, &v, &mut cursor, &mut synced, &mut resyncs);
        let caught_up = synced
            && matches!(v.deltas_since(cursor), JournalRead::Deltas(ref d, _) if d.is_empty());
        if caught_up || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = store.flush_delayed();
    let all = store.fetch_all().unwrap();
    let partition = &all.iter().find(|(s, _)| *s == SiteId(0)).unwrap().1;
    assert_eq!(
        partition,
        &v.local_snapshot(),
        "a restart under chaos must cost availability, never correctness"
    );
    assert!(store.inner().failures() > 0, "the severed batch must have failed ops loudly");
    assert!(store.inner().reconnects() >= 2, "the client must have redialed the new server");
    server.take().unwrap().shutdown();
}

/// The workers half of the running example as a raw partition: tasks
/// 1..=3 blocked on phaser 1, a phase behind on phaser 2.
fn workers_snapshot() -> Snapshot {
    Snapshot::from_tasks(
        (1..=3u64)
            .map(|i| {
                BlockedInfo::new(
                    TaskId(i),
                    vec![Resource::new(PhaserId(1), 1)],
                    vec![Registration::new(PhaserId(1), 1), Registration::new(PhaserId(2), 0)],
                )
            })
            .collect(),
    )
}

/// The driver half: blocked on phaser 2, a phase behind on phaser 1 —
/// published from another site it closes the cross-site cycle.
fn driver_snapshot() -> Snapshot {
    Snapshot::from_tasks(vec![BlockedInfo::new(
        TaskId(1),
        vec![Resource::new(PhaserId(2), 1)],
        vec![Registration::new(PhaserId(1), 0), Registration::new(PhaserId(2), 1)],
    )])
}

#[test]
fn tenants_with_colliding_sites_are_isolated_over_tcp() {
    // Two tenants reuse SiteId(0) against one server; neither may ever
    // observe the other's partitions, and removes stay scoped.
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let a = TcpStore::new(addr.clone()).for_tenant(TenantId(1));
    let b = TcpStore::new(addr).for_tenant(TenantId(2));
    a.publish_full(SiteId(0), workers_snapshot(), 1).unwrap();
    b.publish_full(SiteId(0), driver_snapshot(), 1).unwrap();
    let view_a = a.fetch_all().unwrap();
    assert_eq!(view_a.len(), 1);
    assert_eq!(view_a[0].1.tasks.len(), 3, "tenant 1 must see only its own partition");
    let view_b = b.fetch_all().unwrap();
    assert_eq!(view_b.len(), 1);
    assert_eq!(view_b[0].1.tasks.len(), 1, "tenant 2 must see only its own partition");
    a.remove(SiteId(0)).unwrap();
    assert!(a.fetch_all().unwrap().is_empty());
    assert_eq!(b.fetch_all().unwrap().len(), 1, "tenant 1's remove must not touch tenant 2");
    server.shutdown();
}

#[test]
fn subscribers_get_streamed_reports_without_polling() {
    let server = StoredServer::bind(
        "127.0.0.1:0",
        StoredConfig { check_period: Duration::from_millis(20), ..Default::default() },
    )
    .unwrap();
    let store = TcpStore::new(server.local_addr().to_string()).for_tenant(TenantId(7));
    let sub = store.subscribe().expect("subscribe");
    store.publish_full(SiteId(0), workers_snapshot(), 1).unwrap();
    store.publish_full(SiteId(1), driver_snapshot(), 1).unwrap();
    let report = sub.recv(Duration::from_secs(10)).expect("a pushed report");
    assert!(report.tasks.contains(&TaskId(1).with_site(0)));
    assert!(report.tasks.contains(&TaskId(1).with_site(1)));
    assert_eq!(report.tasks.len(), 4, "3 workers + driver");
    // The gate for the push channel: detection reached the client with
    // zero fetch_all polls (the server-side checker reads the store
    // in-process, below the request counters).
    let metrics = store.metrics().unwrap();
    assert_eq!(metrics.fetches, 0, "a subscriber must never need to poll");
    assert_eq!(metrics.subscribers, 1);
    assert!(metrics.reports_streamed >= 1);
    // The same deadlock is found every round; dedup pushes it once.
    assert!(
        sub.recv(Duration::from_millis(200)).is_none(),
        "an unchanged deadlock must not be streamed twice"
    );
    server.shutdown();
}

#[test]
fn subscriptions_are_tenant_scoped() {
    let server = StoredServer::bind(
        "127.0.0.1:0",
        StoredConfig { check_period: Duration::from_millis(20), ..Default::default() },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let deadlocked = TcpStore::new(addr.clone()).for_tenant(TenantId(1));
    let bystander = TcpStore::new(addr).for_tenant(TenantId(2));
    let sub_own = deadlocked.subscribe().unwrap();
    let sub_other = bystander.subscribe().unwrap();
    deadlocked.publish_full(SiteId(0), workers_snapshot(), 1).unwrap();
    deadlocked.publish_full(SiteId(1), driver_snapshot(), 1).unwrap();
    assert!(sub_own.recv(Duration::from_secs(10)).is_some(), "own tenant streams the report");
    assert!(
        sub_other.recv(Duration::from_millis(300)).is_none(),
        "tenant 2 must never see tenant 1's deadlock"
    );
    server.shutdown();
}

#[test]
fn metrics_are_served_over_both_wire_versions() {
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    let store = TcpStore::new(server.local_addr().to_string());
    store.publish_full(SiteId(3), driver_snapshot(), 1).unwrap();
    // v2: flat frames through the pipelined client.
    let m2 = store.metrics().unwrap();
    assert_eq!(m2.publishes, 1);
    assert_eq!(m2.tenants.len(), 1);
    assert_eq!(m2.tenants[0].partitions, 1);
    // v1: the legacy ping-pong encoding over a raw socket.
    let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();
    use std::io::Write;
    conn.write_all(&armus_dist::wire::encode_frame(&armus_dist::wire::Request::Metrics).unwrap())
        .unwrap();
    let resp: armus_dist::wire::Response =
        armus_dist::wire::read_message(&mut conn).expect("v1 response").expect("one frame");
    match resp {
        armus_dist::wire::Response::Metrics(m1) => {
            assert_eq!(m1.publishes, 1);
            assert!(m1.served > m2.served, "the v2 scrape itself was served in between");
        }
        other => panic!("expected metrics, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn cross_process_tenants_are_isolated_and_streamed() {
    // The full service deployment: a real armus-stored child process,
    // two tenants with colliding site ids, one subscriber.
    let stored =
        armus_dist::StoredProcess::spawn(stored_binary(), Some(Duration::from_secs(5)), None)
            .expect("spawn armus-stored");
    let a = TcpStore::new(stored.addr()).for_tenant(TenantId(1));
    let b = TcpStore::new(stored.addr()).for_tenant(TenantId(2));
    let sub = a.subscribe().expect("subscribe across the process boundary");
    a.publish_full(SiteId(0), workers_snapshot(), 1).unwrap();
    a.publish_full(SiteId(1), driver_snapshot(), 1).unwrap();
    b.publish_full(SiteId(0), driver_snapshot(), 1).unwrap();
    assert_eq!(a.fetch_all().unwrap().len(), 2);
    assert_eq!(b.fetch_all().unwrap().len(), 1, "colliding site ids must stay namespaced");
    let report =
        sub.recv(Duration::from_secs(10)).expect("report streamed across the process boundary");
    assert_eq!(report.tasks.len(), 4, "tenant 1's cycle only: 3 workers + driver");
    let metrics = a.metrics().unwrap();
    assert_eq!(metrics.tenants.len(), 2);
    assert!(metrics.reports_streamed >= 1);
    stored.stop().expect("drain armus-stored");
}

#[test]
fn chaos_over_tcp_costs_resyncs_never_corruption() {
    // The existing ChaosStore differential argument, with the real wire
    // protocol underneath: message chaos on top of TCP still converges
    // the partition to the publisher's exact truth.
    let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
    for seed in 0..8u64 {
        let tcp = TcpStore::new(server.local_addr().to_string());
        let store = ChaosStore::new(tcp, ChaosConfig::default(), seed);
        let v = Verifier::new(VerifierConfig::publish_only().with_journal_capacity(8));
        let (mut cursor, mut synced, mut resyncs) = (0u64, false, 0u64);
        let info = |task: u64| {
            BlockedInfo::new(
                TaskId(task),
                vec![Resource::new(PhaserId(1), 1)],
                vec![Registration::new(PhaserId(1), 1)],
            )
        };
        for i in 0..120u64 {
            let b = info(i % 16);
            v.block(b.task, b.waits, b.registered).unwrap();
            if i % 5 == 0 {
                v.unblock(TaskId(i % 16));
            }
            if i % 3 == 0 {
                publisher_round(&store, &v, &mut cursor, &mut synced, &mut resyncs);
            }
        }
        store.flush_delayed().unwrap();
        for _ in 0..100 {
            publisher_round(&store, &v, &mut cursor, &mut synced, &mut resyncs);
            let caught_up = synced
                && matches!(v.deltas_since(cursor), JournalRead::Deltas(ref d, _) if d.is_empty());
            if caught_up {
                break;
            }
        }
        store.flush_delayed().unwrap();
        let all = store.fetch_all().unwrap();
        let partition = &all.iter().find(|(s, _)| *s == SiteId(0)).unwrap().1;
        assert_eq!(
            partition,
            &v.local_snapshot(),
            "seed {seed}: chaos over TCP must never corrupt the partition"
        );
        store.remove(SiteId(0)).unwrap();
    }
    server.shutdown();
}
