//! Property tests for the wire protocol: encode∘decode ≡ id on arbitrary
//! snapshots, deltas and messages — on the legacy v1 tree layout and the
//! flat v2 frame layout alike — plus totality on hostile bytes (the
//! decoders error, they never panic or over-allocate) and v1↔v2
//! negotiation through the version-dispatching entry point.

use armus_core::{BlockedInfo, Delta, PhaserId, Registration, Resource, Snapshot, TaskId};
use armus_dist::wire::{self, Request, Response, WireError};
use armus_dist::{SiteId, TenantId};
use proptest::prelude::*;

fn arb_blocked() -> impl Strategy<Value = BlockedInfo> {
    (
        0u64..200,
        0u32..4,
        1u64..6,
        0u64..5,
        proptest::collection::vec((1u64..6, 0u64..5), 0..4),
        0u64..1000,
    )
        .prop_map(|(task, site, wait_ph, wait_phase, regs, epoch)| {
            let mut regs: Vec<Registration> =
                regs.into_iter().map(|(q, m)| Registration::new(PhaserId(q), m)).collect();
            regs.sort_by_key(|r| r.phaser);
            regs.dedup_by_key(|r| r.phaser);
            let mut info = BlockedInfo::new(
                TaskId(task).with_site(site),
                vec![Resource::new(PhaserId(wait_ph), wait_phase + 1)],
                regs,
            );
            info.epoch = epoch;
            info
        })
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    proptest::collection::vec(arb_blocked(), 0..8).prop_map(Snapshot::from_tasks)
}

fn arb_delta() -> impl Strategy<Value = Delta> {
    prop_oneof![
        arb_blocked().prop_map(Delta::Block),
        (0u64..500).prop_map(|t| Delta::Unblock(TaskId(t))),
    ]
}

fn frame_roundtrip<T>(msg: &T) -> T
where
    T: serde::Serialize + serde::Deserialize,
{
    let frame = wire::encode_frame(msg).expect("bounded test message");
    let mut cursor = std::io::Cursor::new(frame);
    wire::read_message(&mut cursor).expect("decode").expect("one frame")
}

/// Encodes as a flat v2 frame and decodes through the negotiating entry
/// point, returning the whole frame (version, correlation id, message).
fn flat_roundtrip<T>(msg: &T, corr: u64) -> wire::Frame<T>
where
    T: wire::FlatMessage + serde::Deserialize,
{
    let mut out = Vec::new();
    wire::encode_frame_v2_into(&mut out, corr, msg).expect("bounded test message");
    wire::decode_frame_payload(&out[4..]).expect("flat decode")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn snapshots_round_trip(snap in arb_snapshot(), tenant in 0u32..8) {
        let back = frame_roundtrip(&Request::PublishFull {
            site: SiteId(3),
            tenant: TenantId(tenant),
            snapshot: snap.clone(),
            version: 17,
        });
        prop_assert_eq!(
            back,
            Request::PublishFull {
                site: SiteId(3),
                tenant: TenantId(tenant),
                snapshot: snap,
                version: 17,
            }
        );
    }

    #[test]
    fn delta_intervals_round_trip(
        deltas in proptest::collection::vec(arb_delta(), 0..10),
        base in 0u64..1000,
        span in 0u64..50,
        tenant in 0u32..8,
    ) {
        let msg = Request::PublishDeltas {
            site: SiteId(1),
            tenant: TenantId(tenant),
            base,
            deltas,
            next: base + span,
        };
        prop_assert_eq!(frame_roundtrip(&msg), msg);
    }

    #[test]
    fn views_round_trip(parts in proptest::collection::vec((0u32..8, arb_snapshot()), 0..5)) {
        let view: Vec<(SiteId, Snapshot)> =
            parts.into_iter().map(|(s, p)| (SiteId(s), p)).collect();
        let msg = Response::View(view);
        prop_assert_eq!(frame_roundtrip(&msg), msg);
    }

    /// Totality: any byte soup either decodes to some request or errors —
    /// never a panic, and never a huge allocation (the input is tiny, so
    /// the count guards must bound everything).
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = wire::decode_payload::<Request>(&payload);
    }

    /// A truncated valid frame is always rejected, never misread: every
    /// strict prefix of an encoded message fails to decode (the payload
    /// is cut, so either the value or its trailing check breaks).
    #[test]
    fn truncated_payloads_are_rejected(snap in arb_snapshot(), cut in 1usize..32) {
        let frame = wire::encode_frame(&Request::Publish {
            site: SiteId(0),
            tenant: TenantId::DEFAULT,
            snapshot: snap,
        })
        .unwrap();
        let payload = &frame[4..]; // strip the length prefix
        if cut < payload.len() {
            let truncated = &payload[..payload.len() - cut];
            prop_assert!(matches!(
                wire::decode_payload::<Request>(truncated),
                Err(WireError::Malformed(_))
            ));
        }
    }

    #[test]
    fn flat_snapshots_round_trip_with_correlation(
        snap in arb_snapshot(),
        corr in any::<u64>(),
        tenant in any::<u32>(),
    ) {
        let msg = Request::PublishFull {
            site: SiteId(3),
            tenant: TenantId(tenant),
            snapshot: snap,
            version: 17,
        };
        let frame = flat_roundtrip(&msg, corr);
        prop_assert_eq!(frame.version, wire::WIRE_V2);
        prop_assert_eq!(frame.corr, corr);
        prop_assert_eq!(frame.msg, msg);
    }

    #[test]
    fn flat_delta_intervals_round_trip(
        deltas in proptest::collection::vec(arb_delta(), 0..10),
        base in 0u64..1000,
        span in 0u64..50,
        corr in any::<u64>(),
    ) {
        let msg = Request::PublishDeltas {
            site: SiteId(1),
            tenant: TenantId(2),
            base,
            deltas,
            next: base + span,
        };
        prop_assert_eq!(flat_roundtrip(&msg, corr).msg, msg);
    }

    #[test]
    fn flat_views_round_trip(
        parts in proptest::collection::vec((0u32..8, arb_snapshot()), 0..5),
        corr in any::<u64>(),
    ) {
        let view: Vec<(SiteId, Snapshot)> =
            parts.into_iter().map(|(s, p)| (SiteId(s), p)).collect();
        let msg = Response::View(view);
        let frame = flat_roundtrip(&msg, corr);
        prop_assert_eq!(frame.corr, corr);
        prop_assert_eq!(frame.msg, msg);
    }

    /// Totality of the negotiating entry point: any byte soup either
    /// decodes (as v1 or v2) or errors — never a panic, never a huge
    /// allocation, for requests and responses alike.
    #[test]
    fn arbitrary_bytes_never_panic_the_flat_decoder(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = wire::decode_frame_payload::<Request>(&payload);
        let _ = wire::decode_frame_payload::<Response>(&payload);
    }

    /// Negotiation: a legacy v1 payload decodes through the same entry
    /// point the pipelined client/server use, with the implicit
    /// correlation id 0 — old clients keep working against new servers.
    #[test]
    fn v1_payloads_negotiate_with_corr_zero(snap in arb_snapshot()) {
        let msg = Request::PublishFull {
            site: SiteId(2),
            tenant: TenantId(5),
            snapshot: snap,
            version: 9,
        };
        let framed = wire::encode_frame(&msg).unwrap();
        let frame = wire::decode_frame_payload::<Request>(&framed[4..]).expect("v1 negotiates");
        prop_assert_eq!(frame.version, wire::WIRE_V1);
        prop_assert_eq!(frame.corr, 0);
        prop_assert_eq!(frame.msg, msg);
    }

    /// Truncating a flat frame is always rejected, never misread — the
    /// fixed-width headers and count guards catch every cut.
    #[test]
    fn truncated_flat_payloads_are_rejected(snap in arb_snapshot(), corr in any::<u64>(), cut in 1usize..32) {
        let msg = Request::PublishFull {
            site: SiteId(0),
            tenant: TenantId::DEFAULT,
            snapshot: snap,
            version: 4,
        };
        let mut out = Vec::new();
        wire::encode_frame_v2_into(&mut out, corr, &msg).unwrap();
        let payload = &out[4..];
        if cut < payload.len() {
            let truncated = &payload[..payload.len() - cut];
            prop_assert!(wire::decode_frame_payload::<Request>(truncated).is_err());
        }
    }

    /// Appending bytes to a flat frame is also rejected: v2 decoding is
    /// exact, so a desynchronised stream can never be misparsed.
    #[test]
    fn flat_trailing_garbage_is_rejected(snap in arb_snapshot(), junk in proptest::collection::vec(any::<u8>(), 1..8)) {
        let msg = Request::PublishFull {
            site: SiteId(0),
            tenant: TenantId::DEFAULT,
            snapshot: snap,
            version: 4,
        };
        let mut out = Vec::new();
        wire::encode_frame_v2_into(&mut out, 7, &msg).unwrap();
        out.extend_from_slice(&junk);
        prop_assert!(matches!(
            wire::decode_frame_payload::<Request>(&out[4..]),
            Err(WireError::Malformed(_))
        ));
    }
}
