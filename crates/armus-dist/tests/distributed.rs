//! End-to-end distributed detection: cross-site deadlocks, fault
//! injection on sites and on the store.

use std::sync::Arc;
use std::time::{Duration, Instant};

use armus_dist::{Cluster, SiteConfig, Store};
use armus_sync::{Phaser, SyncError};

fn fast_cfg() -> SiteConfig {
    SiteConfig {
        publish_period: Duration::from_millis(10),
        check_period: Duration::from_millis(20),
        ..Default::default()
    }
}

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// Plants a two-task crossed-wait deadlock on the given site runtime. The
/// tasks stay blocked forever (detection reports, never breaks).
fn plant_deadlock(rt: &Arc<armus_sync::Runtime>) {
    let p = Phaser::new(rt);
    let q = Phaser::new(rt);
    {
        let p2 = p.clone();
        rt.spawn_clocked(&[&p, &q], move || {
            let _ = p2.arrive_and_await();
        });
    }
    {
        let q2 = q.clone();
        rt.spawn_clocked(&[&p, &q], move || {
            let _ = q2.arrive_and_await();
        });
    }
    // Parent leaves both phasers so only the crossed pair remains.
    p.deregister().unwrap();
    q.deregister().unwrap();
}

/// Runs a clean barrier workload on a site runtime.
fn clean_workload(rt: &Arc<armus_sync::Runtime>) -> Result<(), SyncError> {
    let ph = Phaser::new(rt);
    let mut handles = Vec::new();
    for _ in 0..3 {
        let ph2 = ph.clone();
        handles.push(rt.spawn_clocked(&[&ph], move || -> Result<(), SyncError> {
            for _ in 0..20 {
                ph2.arrive_and_await()?;
            }
            ph2.deregister()
        }));
    }
    for _ in 0..20 {
        ph.arrive_and_await()?;
    }
    ph.deregister()?;
    for h in handles {
        h.join().unwrap()?;
    }
    Ok(())
}

#[test]
fn clean_cluster_reports_nothing() {
    let cluster = Cluster::start(3, fast_cfg());
    cluster.run_on_all(|_i, rt| clean_workload(rt).unwrap());
    // Give the checkers a few rounds to (not) find anything.
    std::thread::sleep(Duration::from_millis(150));
    assert!(!cluster.any_deadlock(), "reports: {:?}", cluster.all_reports());
    cluster.stop();
}

#[test]
fn single_site_deadlock_is_detected_cluster_wide() {
    let cluster = Cluster::start(3, fast_cfg());
    plant_deadlock(cluster.sites()[1].runtime());
    assert!(
        eventually(Duration::from_secs(10), || cluster.any_deadlock()),
        "the cluster must detect the planted deadlock"
    );
    // Every surviving checker sees the same global view, so eventually all
    // sites report (no designated control site).
    assert!(
        eventually(Duration::from_secs(10), || cluster.reporting_sites().len() == 3),
        "all sites must report, got {:?}",
        cluster.reporting_sites()
    );
    cluster.stop();
}

#[test]
fn detection_survives_checker_failures() {
    let mut cluster = Cluster::start(3, fast_cfg());
    // Kill two of the three checkers before planting the deadlock.
    cluster.sites_mut()[0].kill_checker();
    cluster.sites_mut()[2].kill_checker();
    plant_deadlock(cluster.sites()[1].runtime());
    assert!(
        eventually(Duration::from_secs(10), || cluster.any_deadlock()),
        "the one surviving checker must still detect"
    );
    let reporting = cluster.reporting_sites();
    assert_eq!(reporting, vec![armus_dist::SiteId(1)]);
    cluster.stop();
}

#[test]
fn detection_survives_store_outage() {
    let cluster = Cluster::start(2, fast_cfg());
    // Outage from the very start: nothing can be published or fetched.
    cluster.store().set_available(false);
    plant_deadlock(cluster.sites()[0].runtime());
    std::thread::sleep(Duration::from_millis(200));
    assert!(!cluster.any_deadlock(), "nothing can be detected during the outage");
    assert!(cluster.store().rejected_count() > 0, "rounds were attempted and skipped");
    // Outage ends: publishing resumes, detection follows.
    cluster.store().set_available(true);
    assert!(
        eventually(Duration::from_secs(10), || cluster.any_deadlock()),
        "detection must resume after the outage"
    );
    cluster.stop();
}

#[test]
fn site_partitions_are_disjoint_and_replaced() {
    let cluster = Cluster::start(2, fast_cfg());
    // Block one task on site 0 for a while, then release it; the partition
    // must eventually shrink back to empty.
    let rt0 = Arc::clone(cluster.sites()[0].runtime());
    let gate = Phaser::new(&rt0);
    let waiter = {
        let g2 = gate.clone();
        rt0.spawn_clocked(&[&gate], move || {
            let _ = g2.arrive_and_await();
        })
    };
    // The waiter publishes a blocked status.
    assert!(eventually(Duration::from_secs(5), || {
        cluster
            .store()
            .fetch_all()
            .map(|v| v.iter().any(|(s, p)| *s == armus_dist::SiteId(0) && !p.is_empty()))
            .unwrap_or(false)
    }));
    // Release it (the parent arrives), the partition drains.
    gate.arrive_and_deregister().unwrap();
    waiter.join().unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        cluster.store().fetch_all().map(|v| v.iter().all(|(_, p)| p.is_empty())).unwrap_or(false)
    }));
    assert!(!cluster.any_deadlock());
    cluster.stop();
}

#[test]
fn steady_state_publishes_deltas_not_snapshots() {
    let cluster = Cluster::start(2, fast_cfg());
    // Churn blocked statuses so the journal has deltas to ship.
    cluster.run_on_all(|_i, rt| clean_workload(rt).unwrap());
    assert!(
        eventually(Duration::from_secs(5), || cluster.store().delta_publish_count() > 0),
        "steady-state publishing must use the delta path"
    );
    // Each site resynced exactly once: the join snapshot.
    for site in cluster.sites() {
        assert_eq!(site.publish_resyncs(), 1, "{}: no recovery resync was needed", site.id());
    }
    cluster.stop();
}

#[test]
fn lost_partition_recovers_with_a_full_snapshot() {
    let cluster = Cluster::start(1, fast_cfg());
    // Let the join snapshot land.
    assert!(eventually(Duration::from_secs(5), || cluster.sites()[0].publish_resyncs() == 1));
    // Simulate store-side data loss: the partition vanishes. The site is
    // completely quiescent (no block/unblock churn) — the worst case,
    // since a fully-deadlocked site produces no deltas either — so the
    // recovery must come from the heartbeat NACK alone.
    cluster.store().remove(armus_dist::SiteId(0)).unwrap();
    assert!(
        eventually(Duration::from_secs(5), || cluster.sites()[0].publish_resyncs() >= 2),
        "recovery after partition loss must resync even when quiescent"
    );
    // And the partition is back for the checkers to merge.
    assert!(cluster.store().fetch_all().unwrap().iter().any(|(s, _)| *s == armus_dist::SiteId(0)));
    cluster.stop();
}

#[test]
fn stopping_a_site_removes_its_partition() {
    let cluster = Cluster::start(2, fast_cfg());
    let store = Arc::clone(cluster.store());
    cluster.stop();
    let parts = store.fetch_all().unwrap();
    assert!(parts.is_empty(), "stopped sites must clean up: {parts:?}");
}
