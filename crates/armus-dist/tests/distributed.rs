//! End-to-end distributed detection: cross-site deadlocks, fault
//! injection on sites and on the store.

use std::sync::Arc;
use std::time::{Duration, Instant};

use armus_dist::{Cluster, SiteConfig, Store};
use armus_sync::{Phaser, SyncError};

fn fast_cfg() -> SiteConfig {
    SiteConfig {
        publish_period: Duration::from_millis(10),
        check_period: Duration::from_millis(20),
        ..Default::default()
    }
}

fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// Plants a two-task crossed-wait deadlock on the given site runtime. The
/// tasks stay blocked forever (detection reports, never breaks).
fn plant_deadlock(rt: &Arc<armus_sync::Runtime>) {
    let p = Phaser::new(rt);
    let q = Phaser::new(rt);
    {
        let p2 = p.clone();
        rt.spawn_clocked(&[&p, &q], move || {
            let _ = p2.arrive_and_await();
        });
    }
    {
        let q2 = q.clone();
        rt.spawn_clocked(&[&p, &q], move || {
            let _ = q2.arrive_and_await();
        });
    }
    // Parent leaves both phasers so only the crossed pair remains.
    p.deregister().unwrap();
    q.deregister().unwrap();
}

/// Runs a clean barrier workload on a site runtime.
fn clean_workload(rt: &Arc<armus_sync::Runtime>) -> Result<(), SyncError> {
    let ph = Phaser::new(rt);
    let mut handles = Vec::new();
    for _ in 0..3 {
        let ph2 = ph.clone();
        handles.push(rt.spawn_clocked(&[&ph], move || -> Result<(), SyncError> {
            for _ in 0..20 {
                ph2.arrive_and_await()?;
            }
            ph2.deregister()
        }));
    }
    for _ in 0..20 {
        ph.arrive_and_await()?;
    }
    ph.deregister()?;
    for h in handles {
        h.join().unwrap()?;
    }
    Ok(())
}

#[test]
fn clean_cluster_reports_nothing() {
    let cluster = Cluster::start(3, fast_cfg());
    cluster.run_on_all(|_i, rt| clean_workload(rt).unwrap());
    // Give the checkers a few rounds to (not) find anything.
    std::thread::sleep(Duration::from_millis(150));
    assert!(!cluster.any_deadlock(), "reports: {:?}", cluster.all_reports());
    cluster.stop();
}

#[test]
fn single_site_deadlock_is_detected_cluster_wide() {
    let cluster = Cluster::start(3, fast_cfg());
    plant_deadlock(cluster.sites()[1].runtime());
    assert!(
        eventually(Duration::from_secs(10), || cluster.any_deadlock()),
        "the cluster must detect the planted deadlock"
    );
    // Every surviving checker sees the same global view, so eventually all
    // sites report (no designated control site).
    assert!(
        eventually(Duration::from_secs(10), || cluster.reporting_sites().len() == 3),
        "all sites must report, got {:?}",
        cluster.reporting_sites()
    );
    cluster.stop();
}

#[test]
fn detection_survives_checker_failures() {
    let mut cluster = Cluster::start(3, fast_cfg());
    // Kill two of the three checkers before planting the deadlock.
    cluster.sites_mut()[0].kill_checker();
    cluster.sites_mut()[2].kill_checker();
    plant_deadlock(cluster.sites()[1].runtime());
    assert!(
        eventually(Duration::from_secs(10), || cluster.any_deadlock()),
        "the one surviving checker must still detect"
    );
    let reporting = cluster.reporting_sites();
    assert_eq!(reporting, vec![armus_dist::SiteId(1)]);
    cluster.stop();
}

#[test]
fn detection_survives_store_outage() {
    let cluster = Cluster::start(2, fast_cfg());
    // Outage from the very start: nothing can be published or fetched.
    cluster.store().set_available(false);
    plant_deadlock(cluster.sites()[0].runtime());
    std::thread::sleep(Duration::from_millis(200));
    assert!(!cluster.any_deadlock(), "nothing can be detected during the outage");
    assert!(cluster.store().rejected_count() > 0, "rounds were attempted and skipped");
    // Outage ends: publishing resumes, detection follows.
    cluster.store().set_available(true);
    assert!(
        eventually(Duration::from_secs(10), || cluster.any_deadlock()),
        "detection must resume after the outage"
    );
    cluster.stop();
}

#[test]
fn site_partitions_are_disjoint_and_replaced() {
    let cluster = Cluster::start(2, fast_cfg());
    // Block one task on site 0 for a while, then release it; the partition
    // must eventually shrink back to empty.
    let rt0 = Arc::clone(cluster.sites()[0].runtime());
    let gate = Phaser::new(&rt0);
    let waiter = {
        let g2 = gate.clone();
        rt0.spawn_clocked(&[&gate], move || {
            let _ = g2.arrive_and_await();
        })
    };
    // The waiter publishes a blocked status.
    assert!(eventually(Duration::from_secs(5), || {
        cluster
            .store()
            .fetch_all()
            .map(|v| v.iter().any(|(s, p)| *s == armus_dist::SiteId(0) && !p.is_empty()))
            .unwrap_or(false)
    }));
    // Release it (the parent arrives), the partition drains.
    gate.arrive_and_deregister().unwrap();
    waiter.join().unwrap();
    assert!(eventually(Duration::from_secs(5), || {
        cluster.store().fetch_all().map(|v| v.iter().all(|(_, p)| p.is_empty())).unwrap_or(false)
    }));
    assert!(!cluster.any_deadlock());
    cluster.stop();
}

#[test]
fn steady_state_publishes_deltas_not_snapshots() {
    let cluster = Cluster::start(2, fast_cfg());
    // Churn blocked statuses so the journal has deltas to ship.
    cluster.run_on_all(|_i, rt| clean_workload(rt).unwrap());
    assert!(
        eventually(Duration::from_secs(5), || cluster.store().delta_publish_count() > 0),
        "steady-state publishing must use the delta path"
    );
    // Each site resynced exactly once: the join snapshot.
    for site in cluster.sites() {
        assert_eq!(site.publish_resyncs(), 1, "{}: no recovery resync was needed", site.id());
    }
    cluster.stop();
}

#[test]
fn lost_partition_recovers_with_a_full_snapshot() {
    let cluster = Cluster::start(1, fast_cfg());
    // Let the join snapshot land.
    assert!(eventually(Duration::from_secs(5), || cluster.sites()[0].publish_resyncs() == 1));
    // Simulate store-side data loss: the partition vanishes. The site is
    // completely quiescent (no block/unblock churn) — the worst case,
    // since a fully-deadlocked site produces no deltas either — so the
    // recovery must come from the heartbeat NACK alone.
    cluster.store().remove(armus_dist::SiteId(0)).unwrap();
    assert!(
        eventually(Duration::from_secs(5), || cluster.sites()[0].publish_resyncs() >= 2),
        "recovery after partition loss must resync even when quiescent"
    );
    // And the partition is back for the checkers to merge.
    assert!(cluster.store().fetch_all().unwrap().iter().any(|(s, _)| *s == armus_dist::SiteId(0)));
    cluster.stop();
}

#[test]
fn stopping_a_site_removes_its_partition() {
    let cluster = Cluster::start(2, fast_cfg());
    let store = Arc::clone(cluster.store());
    cluster.stop();
    let parts = store.fetch_all().unwrap();
    assert!(parts.is_empty(), "stopped sites must clean up: {parts:?}");
}

#[test]
fn stop_is_interruptible_not_a_sum_of_periods() {
    // Multi-second publish/check periods: a stop that sleeps out the
    // periods would take seconds; the interruptible wait must return in
    // well under 100 ms (wake-up + joins + one bounded remove).
    let cfg = SiteConfig {
        publish_period: Duration::from_secs(5),
        check_period: Duration::from_secs(5),
        ..Default::default()
    };
    let cluster = Cluster::start(2, cfg);
    // Let both sites park in their first full waits.
    std::thread::sleep(Duration::from_millis(50));
    let start = Instant::now();
    cluster.stop();
    let elapsed = start.elapsed();
    assert!(elapsed < Duration::from_millis(100), "stop took {elapsed:?}");
}

#[test]
fn stop_against_a_dead_store_is_bounded_not_an_endless_retry() {
    // The store never recovers. Stop must give up on the remove within
    // its bounded budget instead of spinning forever — a service being
    // restarted can't wait on a dead backend.
    let cluster = Cluster::start(1, fast_cfg());
    let store = Arc::clone(cluster.store());
    assert!(eventually(Duration::from_secs(5), || {
        store.fetch_all().map(|v| !v.is_empty()).unwrap_or(false)
    }));
    store.set_available(false);
    let start = Instant::now();
    cluster.stop();
    let elapsed = start.elapsed();
    assert!(elapsed < Duration::from_millis(100), "stop took {elapsed:?} against a dead store");
    // The partition genuinely could not be removed; that is the trade.
    store.set_available(true);
    assert!(!store.fetch_all().unwrap().is_empty());
}

#[test]
fn stop_retries_the_remove_through_a_brief_outage() {
    // The store is down at the instant of stop; it recovers 40 ms later —
    // inside the bounded retry window — so the partition must still be
    // removed (no ghost left for other sites to merge).
    let cluster = Cluster::start(1, fast_cfg());
    let store = Arc::clone(cluster.store());
    assert!(eventually(Duration::from_secs(5), || {
        store.fetch_all().map(|v| !v.is_empty()).unwrap_or(false)
    }));
    store.set_available(false);
    let revive = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            store.set_available(true);
        })
    };
    cluster.stop();
    revive.join().unwrap();
    let parts = store.fetch_all().unwrap();
    assert!(parts.is_empty(), "remove must retry past the outage: {parts:?}");
}

/// The ghost-partition regression (soundness): a site whose tasks
/// unblocked during a store outage dies without removing its partition;
/// its stale blocked statuses must not let the surviving site *confirm* a
/// deadlock that no longer exists. The partition lease is the fix: with
/// no publishes refreshing it, the ghost expires and the merged view
/// drops it.
#[test]
fn dead_sites_ghost_partition_cannot_confirm_a_false_deadlock() {
    use armus_core::{BlockedInfo, PhaserId, Registration, Resource, Snapshot, TaskId};
    use armus_dist::{MemStore, Site, SiteId};

    // The would-be cross-site cycle: the ghost's task g1 waits on p2@1
    // while impeding p1@1; the live task a1 waits on p1@1 while impeding
    // p2@1. If both were really blocked this *would* be a deadlock — but
    // g1 unblocked during the outage; only its stale status lingers.
    let ghost_partition = Snapshot::from_tasks(vec![BlockedInfo::new(
        TaskId(9001),
        vec![Resource::new(PhaserId(2), 1)],
        vec![Registration::new(PhaserId(1), 0), Registration::new(PhaserId(2), 1)],
    )]);
    let live_blocked = |site: &Site| {
        site.runtime()
            .verifier()
            .block(
                TaskId(9002),
                vec![Resource::new(PhaserId(1), 1)],
                vec![Registration::new(PhaserId(1), 1), Registration::new(PhaserId(2), 0)],
            )
            .unwrap();
    };

    let run = |lease: Option<Duration>| -> bool {
        let inner = match lease {
            Some(ttl) => MemStore::with_lease(ttl),
            None => MemStore::new(),
        };
        let store = Arc::new(armus_dist::FaultyStore::new(inner));
        // Outage starts; the ghost's partition was written before it.
        store.set_available(false);
        store.inner().publish_full(SiteId(9), ghost_partition.clone(), 1).unwrap();
        let site = Site::start(SiteId(0), Arc::clone(&store) as Arc<dyn Store>, fast_cfg());
        live_blocked(&site);
        // The outage outlives the lease; the ghost site "dies" during it
        // (no further publishes, no remove).
        std::thread::sleep(Duration::from_millis(250));
        store.set_available(true);
        // Give the survivor's checker ample rounds to (not) confirm.
        std::thread::sleep(Duration::from_millis(300));
        let found = site.found_deadlock();
        site.stop();
        found
    };

    assert!(
        run(None),
        "control: without a lease the ghost partition does confirm the false deadlock \
         (the bug this regression pins down)"
    );
    assert!(
        !run(Some(Duration::from_millis(100))),
        "with a lease shorter than the outage, the ghost expires and no false deadlock \
         is confirmed"
    );
}
