//! The store wire protocol: compact length-prefixed binary frames for the
//! site ↔ `armus-stored` conversation.
//!
//! Every frame is `[u32 LE payload length][u8 version][body]`, where the
//! body is a binary encoding of the message's [`serde::Value`] tree —
//! varint (LEB128) integers and lengths, zigzag signed integers, raw IEEE
//! floats, length-prefixed strings. Framing through the serde tree means
//! every `Serialize`/`Deserialize` type ships unchanged, and the explicit
//! version byte leaves room for incompatible evolutions (a peer speaking a
//! newer version is rejected cleanly instead of misparsed).
//!
//! Decoding is **total**: truncated frames, oversized length prefixes
//! ([`MAX_FRAME_LEN`]), unknown value tags, unknown message variants and
//! over-deep nesting all surface as [`WireError`]s — the server answers by
//! closing the connection, never by panicking (see the malformed-input
//! tests in `tests/wire_props.rs`).

use std::io::{self, Read, Write};

use armus_core::{Delta, Snapshot};
use serde::{Deserialize, Serialize, Value};

use crate::store::SiteId;

/// Protocol version spoken by this build. A frame carrying any other
/// version is rejected (forward compatibility: new versions change the
/// byte, old peers fail cleanly instead of misparsing).
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a frame's payload length. A length prefix beyond this is
/// treated as malformed before any allocation happens, so a garbage or
/// hostile peer cannot make the server reserve gigabytes.
pub const MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// Maximum [`Value`] nesting depth accepted by the decoder (the messages
/// of this protocol are at most a handful of levels deep).
const MAX_DEPTH: u32 = 64;

/// Elements the decoder pre-reserves per container at most. Declared
/// counts are peer-controlled; anything beyond this grows organically,
/// bounding the up-front allocation a hostile count can trigger.
const PREALLOC_CAP: usize = 4096;

/// Wire failures. Transport-level ([`WireError::Io`]) and protocol-level
/// ([`WireError::Malformed`], [`WireError::Version`]) failures are
/// distinguished so callers can log precisely, but both end the
/// connection: there is no in-band resync point mid-stream.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (includes mid-frame EOF).
    Io(io::Error),
    /// The peer announced an unsupported protocol version.
    Version(u8),
    /// The bytes do not decode to a message of the expected shape.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire transport error: {e}"),
            WireError::Version(v) => {
                write!(f, "unsupported wire version {v} (this build speaks {WIRE_VERSION})")
            }
            WireError::Malformed(m) => write!(f, "malformed wire frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

// --- requests and responses ------------------------------------------------

/// A client → server message: the [`crate::store::Store`] operations plus
/// the administrative drain command.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// [`crate::store::Store::publish`] (legacy unversioned replace).
    Publish {
        /// Publishing site.
        site: SiteId,
        /// Replacement partition.
        snapshot: Snapshot,
    },
    /// [`crate::store::Store::publish_full`].
    PublishFull {
        /// Publishing site.
        site: SiteId,
        /// Replacement partition.
        snapshot: Snapshot,
        /// The publisher's journal cursor the partition is at.
        version: u64,
    },
    /// [`crate::store::Store::publish_deltas`].
    PublishDeltas {
        /// Publishing site.
        site: SiteId,
        /// Journal version the deltas start from.
        base: u64,
        /// The delta interval `[base, next)`.
        deltas: Vec<Delta>,
        /// Journal version after the interval.
        next: u64,
    },
    /// [`crate::store::Store::fetch_all`].
    FetchAll,
    /// [`crate::store::Store::remove`].
    Remove {
        /// Site whose partition is dropped.
        site: SiteId,
    },
    /// Administrative graceful drain: the server stops accepting, finishes
    /// in-flight requests, and exits — the SIGTERM equivalent of a
    /// containerised deployment, delivered in-band.
    Shutdown,
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The operation succeeded with nothing to return.
    Ok,
    /// A delta publish was applied at the new version.
    Applied,
    /// A delta publish was declined: the site must resync with a full
    /// snapshot.
    NeedSnapshot,
    /// The global view, one partition per live site.
    View(Vec<(SiteId, Snapshot)>),
    /// The server could not serve the request.
    Error(String),
}

// --- varints ---------------------------------------------------------------

fn put_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, WireError> {
    let mut n: u64 = 0;
    for shift in (0..64).step_by(7) {
        let (&byte, rest) = buf.split_first().ok_or_else(|| malformed("truncated varint"))?;
        *buf = rest;
        n |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            // Reject non-canonical overlong encodings at the top limb.
            if shift == 63 && byte > 1 {
                return Err(malformed("varint overflows u64"));
            }
            return Ok(n);
        }
    }
    Err(malformed("varint longer than 10 bytes"))
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

// --- value codec -----------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_UINT: u8 = 3;
const TAG_INT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::UInt(n) => {
            out.push(TAG_UINT);
            put_varint(*n, out);
        }
        Value::Int(n) => {
            out.push(TAG_INT);
            put_varint(zigzag(*n), out);
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            put_varint(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            put_varint(entries.len() as u64, out);
            for (key, item) in entries {
                put_varint(key.len() as u64, out);
                out.extend_from_slice(key.as_bytes());
                encode_value(item, out);
            }
        }
    }
}

/// Reads a declared element count, rejecting counts that could not
/// possibly fit in the remaining bytes (each element takes ≥ 1 byte), so
/// a malicious count cannot drive a huge up-front allocation.
fn get_count(buf: &mut &[u8], what: &str) -> Result<usize, WireError> {
    let n = get_varint(buf)?;
    if n > buf.len() as u64 {
        return Err(malformed(format!("{what} count {n} exceeds remaining {} bytes", buf.len())));
    }
    Ok(n as usize)
}

fn get_str(buf: &mut &[u8], what: &str) -> Result<String, WireError> {
    let len = get_count(buf, what)?;
    let (bytes, rest) = buf.split_at(len);
    *buf = rest;
    String::from_utf8(bytes.to_vec()).map_err(|_| malformed(format!("{what} is not UTF-8")))
}

fn decode_value(buf: &mut &[u8], depth: u32) -> Result<Value, WireError> {
    if depth > MAX_DEPTH {
        return Err(malformed("value nesting exceeds the protocol depth limit"));
    }
    let (&tag, rest) = buf.split_first().ok_or_else(|| malformed("truncated value tag"))?;
    *buf = rest;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_UINT => Ok(Value::UInt(get_varint(buf)?)),
        TAG_INT => Ok(Value::Int(unzigzag(get_varint(buf)?))),
        TAG_FLOAT => {
            if buf.len() < 8 {
                return Err(malformed("truncated float"));
            }
            let (bytes, rest) = buf.split_at(8);
            *buf = rest;
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(bytes.try_into().unwrap()))))
        }
        TAG_STR => Ok(Value::Str(get_str(buf, "string")?)),
        TAG_SEQ => {
            let count = get_count(buf, "sequence")?;
            // Pre-reserve only a bounded prefix: a declared count is
            // attacker-controlled, and `count × size_of::<Value>()` can
            // dwarf the frame itself. Growth past the cap is amortised.
            let mut items = Vec::with_capacity(count.min(PREALLOC_CAP));
            for _ in 0..count {
                items.push(decode_value(buf, depth + 1)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let count = get_count(buf, "map")?;
            let mut entries = Vec::with_capacity(count.min(PREALLOC_CAP));
            for _ in 0..count {
                let key = get_str(buf, "map key")?;
                entries.push((key, decode_value(buf, depth + 1)?));
            }
            Ok(Value::Map(entries))
        }
        other => Err(malformed(format!("unknown value tag {other}"))),
    }
}

// --- framing ---------------------------------------------------------------

/// Encodes `message` into one complete frame (length prefix included).
/// Fails with [`WireError::Malformed`] when the encoding exceeds
/// [`MAX_FRAME_LEN`] — a frame no receiver would accept must not be sent
/// (the sender would otherwise desync every peer, forever, in release
/// builds too).
pub fn encode_frame<T: Serialize>(message: &T) -> Result<Vec<u8>, WireError> {
    let mut payload = vec![WIRE_VERSION];
    encode_value(&message.to_value(), &mut payload);
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(malformed(format!(
            "message encodes to {} bytes, over MAX_FRAME_LEN",
            payload.len()
        )));
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Decodes a frame **payload** (version byte + body, the length prefix
/// already stripped) into a message.
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, WireError> {
    let (&version, body) = payload.split_first().ok_or_else(|| malformed("empty frame payload"))?;
    if version != WIRE_VERSION {
        return Err(WireError::Version(version));
    }
    let mut rest = body;
    let value = decode_value(&mut rest, 0)?;
    if !rest.is_empty() {
        return Err(malformed(format!("{} trailing bytes after value", rest.len())));
    }
    T::from_value(&value).map_err(|e| malformed(e.to_string()))
}

/// Writes one frame to `w` and flushes it.
pub fn write_message<W: Write, T: Serialize>(w: &mut W, message: &T) -> Result<(), WireError> {
    w.write_all(&encode_frame(message)?)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`. Returns `Ok(None)` on a clean end of stream
/// (EOF at a frame boundary); EOF mid-frame is an [`WireError::Io`]
/// error, an oversized length prefix a [`WireError::Malformed`] one.
pub fn read_message<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>, WireError> {
    let mut len_bytes = [0u8; 4];
    match read_exact_or_eof(r, &mut len_bytes)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(malformed(format!("length prefix {len} exceeds MAX_FRAME_LEN")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_payload(&payload).map(Some)
}

enum ReadOutcome {
    Filled,
    Eof,
}

/// `read_exact`, except an EOF *before the first byte* is reported as
/// [`ReadOutcome::Eof`] (a peer hanging up between frames) rather than an
/// error; EOF after a partial read stays an error (a truncated frame).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside a frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(ReadOutcome::Filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use armus_core::{BlockedInfo, PhaserId, Registration, Resource, TaskId};

    fn snap() -> Snapshot {
        Snapshot::from_tasks(vec![BlockedInfo::new(
            TaskId(3).with_site(1),
            vec![Resource::new(PhaserId(1), 1)],
            vec![Registration::new(PhaserId(1), 0), Registration::new(PhaserId(2), 4)],
        )])
    }

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(msg: &T) {
        let frame = encode_frame(msg).expect("bounded test message");
        let mut cursor = io::Cursor::new(frame);
        let back: T = read_message(&mut cursor).unwrap().expect("one frame");
        assert_eq!(&back, msg);
    }

    #[test]
    fn requests_round_trip() {
        roundtrip(&Request::Publish { site: SiteId(0), snapshot: snap() });
        roundtrip(&Request::PublishFull { site: SiteId(7), snapshot: snap(), version: 42 });
        roundtrip(&Request::PublishDeltas {
            site: SiteId(1),
            base: 5,
            deltas: vec![Delta::Block(snap().tasks[0].clone()), Delta::Unblock(TaskId(9))],
            next: 7,
        });
        roundtrip(&Request::FetchAll);
        roundtrip(&Request::Remove { site: SiteId(3) });
        roundtrip(&Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        roundtrip(&Response::Ok);
        roundtrip(&Response::Applied);
        roundtrip(&Response::NeedSnapshot);
        roundtrip(&Response::View(vec![(SiteId(0), snap()), (SiteId(1), Snapshot::empty())]));
        roundtrip(&Response::Error("partition store on fire".into()));
    }

    #[test]
    fn varints_round_trip_at_the_edges() {
        for n in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut out = Vec::new();
            put_varint(n, &mut out);
            let mut buf = out.as_slice();
            assert_eq!(get_varint(&mut buf).unwrap(), n);
            assert!(buf.is_empty());
        }
        for n in [0i64, 1, -1, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(n)), n);
        }
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_message::<_, Request>(&mut empty), Ok(None)));
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut frame = encode_frame(&Request::FetchAll).unwrap();
        frame.truncate(frame.len() - 1);
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(read_message::<_, Request>(&mut cursor), Err(WireError::Io(_))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(read_message::<_, Request>(&mut cursor), Err(WireError::Malformed(_))));
    }

    #[test]
    fn future_versions_are_rejected_cleanly() {
        let mut frame = encode_frame(&Request::FetchAll).unwrap();
        frame[4] = WIRE_VERSION + 1; // the version byte follows the length
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(
            read_message::<_, Request>(&mut cursor),
            Err(WireError::Version(v)) if v == WIRE_VERSION + 1
        ));
    }

    #[test]
    fn unknown_message_variants_are_malformed_not_panics() {
        let rogue = Value::Map(vec![("LaunchMissiles".into(), Value::UInt(1))]);
        let mut payload = vec![WIRE_VERSION];
        encode_value(&rogue, &mut payload);
        assert!(matches!(decode_payload::<Request>(&payload), Err(WireError::Malformed(_))));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A sequence claiming u64::MAX elements in a 3-byte body.
        let mut payload = vec![WIRE_VERSION, TAG_SEQ];
        put_varint(u64::MAX, &mut payload);
        assert!(matches!(decode_payload::<Request>(&payload), Err(WireError::Malformed(_))));
    }

    #[test]
    fn over_deep_nesting_is_rejected() {
        let mut payload = vec![WIRE_VERSION];
        for _ in 0..(MAX_DEPTH + 8) {
            payload.push(TAG_SEQ);
            payload.push(1); // one element each level
        }
        payload.push(TAG_NULL);
        assert!(matches!(decode_payload::<Value>(&payload), Err(WireError::Malformed(_))));
    }
}
