//! The store wire protocol: compact length-prefixed binary frames for the
//! site ↔ `armus-stored` conversation.
//!
//! Every frame is `[u32 LE payload length][u8 version][…]`. Two payload
//! versions coexist:
//!
//! * **v1** (legacy, strict ping-pong): the rest of the payload is a
//!   binary encoding of the message's [`serde::Value`] tree — varint
//!   (LEB128) integers and lengths, zigzag signed integers, raw IEEE
//!   floats, length-prefixed strings. Framing through the serde tree
//!   means every `Serialize`/`Deserialize` type ships unchanged.
//! * **v2** (current, pipelined): the payload is
//!   `[u8 version = 2][u64 LE correlation id][u8 kind][flat body]` — a
//!   hand-rolled flat layout with fixed-width little-endian headers and
//!   contiguous arrays (no intermediate `Value` tree on either side, one
//!   pass each way). The correlation id lets many requests be in flight
//!   per connection: responses carry the id of the request they answer,
//!   so a demultiplexer ([`crate::tcp::TcpStore`]) can share one
//!   connection between many sites. Encoding appends into a caller-owned
//!   reused buffer ([`encode_frame_v2_into`]) so the hot publish path
//!   allocates nothing in steady state.
//!
//! Version negotiation is per-frame: the server answers each frame in the
//! version it arrived in, so v1 clients keep working against a v2 server
//! (tested in `tests/wire_props.rs`).
//!
//! Decoding is **total** for both versions: truncated frames, oversized
//! length prefixes ([`MAX_FRAME_LEN`]), unknown value tags/kinds, unknown
//! message variants, hostile element counts and over-deep nesting all
//! surface as [`WireError`]s — the server answers by closing the
//! connection, never by panicking (see `tests/wire_props.rs`).

use std::io::{self, Read, Write};

use armus_core::{
    BlockedInfo, CycleWitness, DeadlockReport, Delta, GraphModel, PhaserId, Resource, Snapshot,
    TaskId,
};
use serde::{Deserialize, Serialize, Value};

use crate::store::{SiteId, SiteStats, TenantId};

/// The legacy serde-Value-tree payload version (strict ping-pong, no
/// correlation ids). Still accepted on decode; see the module docs.
pub const WIRE_V1: u8 = 1;

/// The flat pipelined payload version carrying correlation ids.
pub const WIRE_V2: u8 = 2;

/// Protocol version spoken by this build's clients. Frames carrying a
/// version that is neither [`WIRE_V1`] nor [`WIRE_V2`] are rejected
/// (forward compatibility: new versions change the byte, old peers fail
/// cleanly instead of misparsing).
pub const WIRE_VERSION: u8 = WIRE_V2;

/// Upper bound on a frame's payload length. A length prefix beyond this is
/// treated as malformed before any allocation happens, so a garbage or
/// hostile peer cannot make the server reserve gigabytes.
pub const MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// Maximum [`Value`] nesting depth accepted by the decoder (the messages
/// of this protocol are at most a handful of levels deep).
const MAX_DEPTH: u32 = 64;

/// Elements the decoder pre-reserves per container at most. Declared
/// counts are peer-controlled; anything beyond this grows organically,
/// bounding the up-front allocation a hostile count can trigger.
const PREALLOC_CAP: usize = 4096;

/// Wire failures. Transport-level ([`WireError::Io`]) and protocol-level
/// ([`WireError::Malformed`], [`WireError::Version`]) failures are
/// distinguished so callers can log precisely, but both end the
/// connection: there is no in-band resync point mid-stream.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (includes mid-frame EOF).
    Io(io::Error),
    /// The peer announced an unsupported protocol version.
    Version(u8),
    /// The bytes do not decode to a message of the expected shape.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire transport error: {e}"),
            WireError::Version(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks v{WIRE_V1} and v{WIRE_V2})"
                )
            }
            WireError::Malformed(m) => write!(f, "malformed wire frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

// --- requests and responses ------------------------------------------------

/// A client → server message: the [`crate::store::Store`] operations —
/// every data-path op tagged with the caller's [`TenantId`] namespace —
/// plus the observability ops and the administrative drain command.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// [`crate::store::Store::publish`] (legacy unversioned replace).
    Publish {
        /// Publishing site.
        site: SiteId,
        /// The caller's namespace.
        tenant: TenantId,
        /// Replacement partition.
        snapshot: Snapshot,
    },
    /// [`crate::store::Store::publish_full`].
    PublishFull {
        /// Publishing site.
        site: SiteId,
        /// The caller's namespace.
        tenant: TenantId,
        /// Replacement partition.
        snapshot: Snapshot,
        /// The publisher's journal cursor the partition is at.
        version: u64,
    },
    /// [`crate::store::Store::publish_deltas`].
    PublishDeltas {
        /// Publishing site.
        site: SiteId,
        /// The caller's namespace.
        tenant: TenantId,
        /// Journal version the deltas start from.
        base: u64,
        /// The delta interval `[base, next)`.
        deltas: Vec<Delta>,
        /// Journal version after the interval.
        next: u64,
    },
    /// [`crate::store::Store::fetch_all`], scoped to one tenant's
    /// partitions.
    FetchAll {
        /// The caller's namespace.
        tenant: TenantId,
    },
    /// [`crate::store::Store::remove`].
    Remove {
        /// Site whose partition is dropped.
        site: SiteId,
        /// The caller's namespace.
        tenant: TenantId,
    },
    /// Administrative graceful drain: the server stops accepting, finishes
    /// in-flight requests, and exits — the SIGTERM equivalent of a
    /// containerised deployment, delivered in-band.
    Shutdown,
    /// Observability scrape: answered with [`Response::Metrics`]. Not
    /// tenant-scoped — the metrics surface is operator-facing and reports
    /// on every tenant.
    Metrics,
    /// Turns this connection into a push channel for `tenant`'s deadlock
    /// reports: the server acks with [`Response::Subscribed`] (echoing this
    /// request's correlation id), then streams a [`Response::Report`]
    /// frame carrying the *same* correlation id for every fresh deadlock
    /// its checker confirms in the tenant's merged view. The subscription
    /// lives until the connection closes.
    Subscribe {
        /// The namespace whose reports are streamed.
        tenant: TenantId,
    },
    /// [`crate::store::Store::publish_stats`]: a site's observability
    /// counters, folded into the server's metrics surface.
    PublishStats {
        /// Publishing site.
        site: SiteId,
        /// The caller's namespace.
        tenant: TenantId,
        /// The counters.
        stats: SiteStats,
    },
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The operation succeeded with nothing to return.
    Ok,
    /// A delta publish was applied at the new version.
    Applied,
    /// A delta publish was declined: the site must resync with a full
    /// snapshot.
    NeedSnapshot,
    /// The global view, one partition per live site.
    View(Vec<(SiteId, Snapshot)>),
    /// The server could not serve the request.
    Error(String),
    /// The metrics scrape answering [`Request::Metrics`].
    Metrics(ServerMetrics),
    /// Acknowledges [`Request::Subscribe`]: reports will now stream on
    /// this correlation id.
    Subscribed,
    /// A pushed deadlock report on a subscribed correlation id.
    Report(DeadlockReport),
}

/// Per-tenant slice of the server's metrics surface.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantMetrics {
    /// The namespace.
    pub tenant: TenantId,
    /// Live (lease-respecting) partitions.
    pub partitions: u64,
    /// Partitions dropped by lease expiry since the server started.
    pub lease_expiries: u64,
    /// Connections currently subscribed to this tenant's reports.
    pub subscribers: u64,
}

impl TenantMetrics {
    /// A zeroed slice for `tenant`.
    pub fn new(tenant: TenantId) -> TenantMetrics {
        TenantMetrics { tenant, ..TenantMetrics::default() }
    }
}

/// The server's observability snapshot, answered to [`Request::Metrics`]
/// over either wire version.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerMetrics {
    /// Requests served since the server started.
    pub served: u64,
    /// Connections dropped for undecodable traffic.
    pub protocol_errors: u64,
    /// Connections currently open.
    pub live_connections: u64,
    /// Subscriptions currently live (across all tenants).
    pub subscribers: u64,
    /// Full-snapshot publishes served (legacy + versioned).
    pub publishes: u64,
    /// Delta publishes served.
    pub delta_publishes: u64,
    /// `FetchAll` requests served.
    pub fetches: u64,
    /// `Remove` requests served.
    pub removes: u64,
    /// Deadlock reports pushed to subscribers.
    pub reports_streamed: u64,
    /// High-water mark of any connection's reply queue within a burst.
    pub reply_queue_max: u64,
    /// Per-tenant gauges, sorted by tenant.
    pub tenants: Vec<TenantMetrics>,
    /// The latest [`SiteStats`] each site published, keyed
    /// `(tenant, site)`.
    pub sites: Vec<(TenantId, SiteId, SiteStats)>,
}

// --- varints ---------------------------------------------------------------

fn put_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, WireError> {
    let mut n: u64 = 0;
    for shift in (0..64).step_by(7) {
        let (&byte, rest) = buf.split_first().ok_or_else(|| malformed("truncated varint"))?;
        *buf = rest;
        n |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            // Reject non-canonical overlong encodings at the top limb.
            if shift == 63 && byte > 1 {
                return Err(malformed("varint overflows u64"));
            }
            return Ok(n);
        }
    }
    Err(malformed("varint longer than 10 bytes"))
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

// --- value codec -----------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_UINT: u8 = 3;
const TAG_INT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::UInt(n) => {
            out.push(TAG_UINT);
            put_varint(*n, out);
        }
        Value::Int(n) => {
            out.push(TAG_INT);
            put_varint(zigzag(*n), out);
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            put_varint(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            put_varint(entries.len() as u64, out);
            for (key, item) in entries {
                put_varint(key.len() as u64, out);
                out.extend_from_slice(key.as_bytes());
                encode_value(item, out);
            }
        }
    }
}

/// Reads a declared element count, rejecting counts that could not
/// possibly fit in the remaining bytes (each element takes ≥ 1 byte), so
/// a malicious count cannot drive a huge up-front allocation.
fn get_count(buf: &mut &[u8], what: &str) -> Result<usize, WireError> {
    let n = get_varint(buf)?;
    if n > buf.len() as u64 {
        return Err(malformed(format!("{what} count {n} exceeds remaining {} bytes", buf.len())));
    }
    Ok(n as usize)
}

fn get_str(buf: &mut &[u8], what: &str) -> Result<String, WireError> {
    let len = get_count(buf, what)?;
    let (bytes, rest) = buf.split_at(len);
    *buf = rest;
    String::from_utf8(bytes.to_vec()).map_err(|_| malformed(format!("{what} is not UTF-8")))
}

fn decode_value(buf: &mut &[u8], depth: u32) -> Result<Value, WireError> {
    if depth > MAX_DEPTH {
        return Err(malformed("value nesting exceeds the protocol depth limit"));
    }
    let (&tag, rest) = buf.split_first().ok_or_else(|| malformed("truncated value tag"))?;
    *buf = rest;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_UINT => Ok(Value::UInt(get_varint(buf)?)),
        TAG_INT => Ok(Value::Int(unzigzag(get_varint(buf)?))),
        TAG_FLOAT => {
            if buf.len() < 8 {
                return Err(malformed("truncated float"));
            }
            let (bytes, rest) = buf.split_at(8);
            *buf = rest;
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(bytes.try_into().unwrap()))))
        }
        TAG_STR => Ok(Value::Str(get_str(buf, "string")?)),
        TAG_SEQ => {
            let count = get_count(buf, "sequence")?;
            // Pre-reserve only a bounded prefix: a declared count is
            // attacker-controlled, and `count × size_of::<Value>()` can
            // dwarf the frame itself. Growth past the cap is amortised.
            let mut items = Vec::with_capacity(count.min(PREALLOC_CAP));
            for _ in 0..count {
                items.push(decode_value(buf, depth + 1)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let count = get_count(buf, "map")?;
            let mut entries = Vec::with_capacity(count.min(PREALLOC_CAP));
            for _ in 0..count {
                let key = get_str(buf, "map key")?;
                entries.push((key, decode_value(buf, depth + 1)?));
            }
            Ok(Value::Map(entries))
        }
        other => Err(malformed(format!("unknown value tag {other}"))),
    }
}

// --- framing ---------------------------------------------------------------

/// Encodes `message` into one complete **v1** frame (length prefix
/// included). Fails with [`WireError::Malformed`] when the encoding
/// exceeds [`MAX_FRAME_LEN`] — a frame no receiver would accept must not
/// be sent (the sender would otherwise desync every peer, forever, in
/// release builds too).
pub fn encode_frame<T: Serialize>(message: &T) -> Result<Vec<u8>, WireError> {
    let mut payload = vec![WIRE_V1];
    encode_value(&message.to_value(), &mut payload);
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(malformed(format!(
            "message encodes to {} bytes, over MAX_FRAME_LEN",
            payload.len()
        )));
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Decodes a **v1** frame payload (version byte + body, the length prefix
/// already stripped) into a message. This is the strict-v1 entry point
/// used by legacy ping-pong peers; version-negotiating receivers go
/// through [`decode_frame_payload`] instead.
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, WireError> {
    let (&version, body) = payload.split_first().ok_or_else(|| malformed("empty frame payload"))?;
    if version != WIRE_V1 {
        return Err(WireError::Version(version));
    }
    let mut rest = body;
    let value = decode_value(&mut rest, 0)?;
    if !rest.is_empty() {
        return Err(malformed(format!("{} trailing bytes after value", rest.len())));
    }
    T::from_value(&value).map_err(|e| malformed(e.to_string()))
}

/// Writes one frame to `w` and flushes it.
pub fn write_message<W: Write, T: Serialize>(w: &mut W, message: &T) -> Result<(), WireError> {
    w.write_all(&encode_frame(message)?)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`. Returns `Ok(None)` on a clean end of stream
/// (EOF at a frame boundary); EOF mid-frame is an [`WireError::Io`]
/// error, an oversized length prefix a [`WireError::Malformed`] one.
pub fn read_message<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>, WireError> {
    let mut len_bytes = [0u8; 4];
    match read_exact_or_eof(r, &mut len_bytes)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(malformed(format!("length prefix {len} exceeds MAX_FRAME_LEN")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_payload(&payload).map(Some)
}

enum ReadOutcome {
    Filled,
    Eof,
}

/// `read_exact`, except an EOF *before the first byte* is reported as
/// [`ReadOutcome::Eof`] (a peer hanging up between frames) rather than an
/// error; EOF after a partial read stays an error (a truncated frame).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside a frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(ReadOutcome::Filled)
}

// --- flat v2 codec ---------------------------------------------------------

/// Flat fixed-width byte size of a `Resource` / `Registration`: two
/// little-endian `u64`s.
const FLAT_PAIR: usize = 16;
/// Flat header size of a [`BlockedInfo`]: task + epoch + two u32 counts.
const FLAT_INFO_HEADER: usize = 8 + 8 + 4 + 4;
/// Minimum flat size of a [`Delta`]: tag byte + an Unblock task id.
const FLAT_DELTA_MIN: usize = 1 + 8;
/// Minimum flat size of a `View` entry: site id + empty snapshot count.
const FLAT_VIEW_ENTRY_MIN: usize = 4 + 4;

fn take_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    let (&b, rest) = buf.split_first().ok_or_else(|| malformed("truncated u8"))?;
    *buf = rest;
    Ok(b)
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    if buf.len() < 4 {
        return Err(malformed("truncated u32"));
    }
    let (bytes, rest) = buf.split_at(4);
    *buf = rest;
    Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    if buf.len() < 8 {
        return Err(malformed("truncated u64"));
    }
    let (bytes, rest) = buf.split_at(8);
    *buf = rest;
    Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
}

/// Reads a flat element count, rejecting counts whose minimum encoding
/// could not fit in the remaining bytes — the flat-layout analogue of
/// [`get_count`], so a hostile count cannot drive a huge up-front
/// allocation.
fn take_flat_count(buf: &mut &[u8], min_element: usize, what: &str) -> Result<usize, WireError> {
    let n = take_u32(buf)?;
    if u64::from(n) * (min_element as u64) > buf.len() as u64 {
        return Err(malformed(format!("{what} count {n} exceeds remaining {} bytes", buf.len())));
    }
    Ok(n as usize)
}

fn put_flat_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take_flat_str(buf: &mut &[u8], what: &str) -> Result<String, WireError> {
    let len = take_flat_count(buf, 1, what)?;
    let (bytes, rest) = buf.split_at(len);
    *buf = rest;
    String::from_utf8(bytes.to_vec()).map_err(|_| malformed(format!("{what} is not UTF-8")))
}

fn put_info(info: &BlockedInfo, out: &mut Vec<u8>) {
    out.extend_from_slice(&info.task.0.to_le_bytes());
    out.extend_from_slice(&info.epoch.to_le_bytes());
    out.extend_from_slice(&(info.waits.len() as u32).to_le_bytes());
    out.extend_from_slice(&(info.registered.len() as u32).to_le_bytes());
    for w in &info.waits {
        out.extend_from_slice(&w.phaser.0.to_le_bytes());
        out.extend_from_slice(&w.phase.to_le_bytes());
    }
    for r in &info.registered {
        out.extend_from_slice(&r.phaser.0.to_le_bytes());
        out.extend_from_slice(&r.local_phase.to_le_bytes());
    }
}

fn take_info(buf: &mut &[u8]) -> Result<BlockedInfo, WireError> {
    use armus_core::{PhaserId, Registration, Resource};
    let task = TaskId(take_u64(buf)?);
    let epoch = take_u64(buf)?;
    let n_waits = take_flat_count(buf, FLAT_PAIR, "waits")?;
    let n_regs = take_flat_count(buf, FLAT_PAIR, "registrations")?;
    let mut waits = Vec::with_capacity(n_waits.min(PREALLOC_CAP));
    for _ in 0..n_waits {
        waits.push(Resource::new(PhaserId(take_u64(buf)?), take_u64(buf)?));
    }
    let mut registered = Vec::with_capacity(n_regs.min(PREALLOC_CAP));
    for _ in 0..n_regs {
        registered.push(Registration::new(PhaserId(take_u64(buf)?), take_u64(buf)?));
    }
    let mut info = BlockedInfo::new(task, waits, registered);
    info.epoch = epoch;
    Ok(info)
}

fn put_snapshot(snap: &Snapshot, out: &mut Vec<u8>) {
    out.extend_from_slice(&(snap.tasks.len() as u32).to_le_bytes());
    for info in &snap.tasks {
        put_info(info, out);
    }
}

fn take_snapshot(buf: &mut &[u8]) -> Result<Snapshot, WireError> {
    let count = take_flat_count(buf, FLAT_INFO_HEADER, "snapshot")?;
    let mut tasks = Vec::with_capacity(count.min(PREALLOC_CAP));
    for _ in 0..count {
        tasks.push(take_info(buf)?);
    }
    // Route through the sorting constructor so the sorted-by-task-id
    // invariant survives a peer that sends entries out of order.
    Ok(Snapshot::from_tasks(tasks))
}

const DELTA_BLOCK: u8 = 0;
const DELTA_UNBLOCK: u8 = 1;

fn put_deltas(deltas: &[Delta], out: &mut Vec<u8>) {
    out.extend_from_slice(&(deltas.len() as u32).to_le_bytes());
    for delta in deltas {
        match delta {
            Delta::Block(info) => {
                out.push(DELTA_BLOCK);
                put_info(info, out);
            }
            Delta::Unblock(task) => {
                out.push(DELTA_UNBLOCK);
                out.extend_from_slice(&task.0.to_le_bytes());
            }
        }
    }
}

fn take_deltas(buf: &mut &[u8]) -> Result<Vec<Delta>, WireError> {
    let count = take_flat_count(buf, FLAT_DELTA_MIN, "deltas")?;
    let mut deltas = Vec::with_capacity(count.min(PREALLOC_CAP));
    for _ in 0..count {
        deltas.push(match take_u8(buf)? {
            DELTA_BLOCK => Delta::Block(take_info(buf)?),
            DELTA_UNBLOCK => Delta::Unblock(TaskId(take_u64(buf)?)),
            other => return Err(malformed(format!("unknown delta tag {other}"))),
        });
    }
    Ok(deltas)
}

const REQ_PUBLISH: u8 = 0;
const REQ_PUBLISH_FULL: u8 = 1;
const REQ_PUBLISH_DELTAS: u8 = 2;
const REQ_FETCH_ALL: u8 = 3;
const REQ_REMOVE: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;
const REQ_METRICS: u8 = 6;
const REQ_SUBSCRIBE: u8 = 7;
const REQ_PUBLISH_STATS: u8 = 8;

const RESP_OK: u8 = 0;
const RESP_APPLIED: u8 = 1;
const RESP_NEED_SNAPSHOT: u8 = 2;
const RESP_VIEW: u8 = 3;
const RESP_ERROR: u8 = 4;
const RESP_METRICS: u8 = 5;
const RESP_SUBSCRIBED: u8 = 6;
const RESP_REPORT: u8 = 7;

/// Flat size of a [`SiteStats`] record: nine `u64` counters.
const FLAT_SITE_STATS: usize = 9 * 8;
/// Flat size of a [`TenantMetrics`] entry: tenant + three `u64` gauges.
const FLAT_TENANT_METRICS: usize = 4 + 3 * 8;
/// Flat size of a `sites` entry: tenant + site + the stats record.
const FLAT_SITE_ENTRY: usize = 4 + 4 + FLAT_SITE_STATS;
/// Witness graph-model tags.
const MODEL_WFG: u8 = 0;
const MODEL_SG: u8 = 1;
/// Witness shape tags.
const WITNESS_TASKS: u8 = 0;
const WITNESS_RESOURCES: u8 = 1;

fn put_site_stats(stats: &SiteStats, out: &mut Vec<u8>) {
    for n in [
        stats.blocks,
        stats.unblocks,
        stats.fastpath_skips,
        stats.publish_resyncs,
        stats.async_waits,
        stats.waker_wakes,
        stats.checker_rounds,
        stats.incremental_detections,
        stats.reports_dropped,
    ] {
        out.extend_from_slice(&n.to_le_bytes());
    }
}

fn take_site_stats(buf: &mut &[u8]) -> Result<SiteStats, WireError> {
    Ok(SiteStats {
        blocks: take_u64(buf)?,
        unblocks: take_u64(buf)?,
        fastpath_skips: take_u64(buf)?,
        publish_resyncs: take_u64(buf)?,
        async_waits: take_u64(buf)?,
        waker_wakes: take_u64(buf)?,
        checker_rounds: take_u64(buf)?,
        incremental_detections: take_u64(buf)?,
        reports_dropped: take_u64(buf)?,
    })
}

fn put_metrics(metrics: &ServerMetrics, out: &mut Vec<u8>) {
    for n in [
        metrics.served,
        metrics.protocol_errors,
        metrics.live_connections,
        metrics.subscribers,
        metrics.publishes,
        metrics.delta_publishes,
        metrics.fetches,
        metrics.removes,
        metrics.reports_streamed,
        metrics.reply_queue_max,
    ] {
        out.extend_from_slice(&n.to_le_bytes());
    }
    out.extend_from_slice(&(metrics.tenants.len() as u32).to_le_bytes());
    for t in &metrics.tenants {
        out.extend_from_slice(&t.tenant.0.to_le_bytes());
        out.extend_from_slice(&t.partitions.to_le_bytes());
        out.extend_from_slice(&t.lease_expiries.to_le_bytes());
        out.extend_from_slice(&t.subscribers.to_le_bytes());
    }
    out.extend_from_slice(&(metrics.sites.len() as u32).to_le_bytes());
    for (tenant, site, stats) in &metrics.sites {
        out.extend_from_slice(&tenant.0.to_le_bytes());
        out.extend_from_slice(&site.0.to_le_bytes());
        put_site_stats(stats, out);
    }
}

fn take_metrics(buf: &mut &[u8]) -> Result<ServerMetrics, WireError> {
    let mut metrics = ServerMetrics {
        served: take_u64(buf)?,
        protocol_errors: take_u64(buf)?,
        live_connections: take_u64(buf)?,
        subscribers: take_u64(buf)?,
        publishes: take_u64(buf)?,
        delta_publishes: take_u64(buf)?,
        fetches: take_u64(buf)?,
        removes: take_u64(buf)?,
        reports_streamed: take_u64(buf)?,
        reply_queue_max: take_u64(buf)?,
        ..ServerMetrics::default()
    };
    let n_tenants = take_flat_count(buf, FLAT_TENANT_METRICS, "tenant metrics")?;
    metrics.tenants.reserve(n_tenants.min(PREALLOC_CAP));
    for _ in 0..n_tenants {
        metrics.tenants.push(TenantMetrics {
            tenant: TenantId(take_u32(buf)?),
            partitions: take_u64(buf)?,
            lease_expiries: take_u64(buf)?,
            subscribers: take_u64(buf)?,
        });
    }
    let n_sites = take_flat_count(buf, FLAT_SITE_ENTRY, "site stats")?;
    metrics.sites.reserve(n_sites.min(PREALLOC_CAP));
    for _ in 0..n_sites {
        let tenant = TenantId(take_u32(buf)?);
        let site = SiteId(take_u32(buf)?);
        metrics.sites.push((tenant, site, take_site_stats(buf)?));
    }
    Ok(metrics)
}

fn put_report(report: &DeadlockReport, out: &mut Vec<u8>) {
    out.extend_from_slice(&(report.tasks.len() as u32).to_le_bytes());
    for t in &report.tasks {
        out.extend_from_slice(&t.0.to_le_bytes());
    }
    out.extend_from_slice(&(report.resources.len() as u32).to_le_bytes());
    for r in &report.resources {
        out.extend_from_slice(&r.phaser.0.to_le_bytes());
        out.extend_from_slice(&r.phase.to_le_bytes());
    }
    out.push(match report.model {
        GraphModel::Wfg => MODEL_WFG,
        GraphModel::Sg => MODEL_SG,
    });
    match &report.witness {
        CycleWitness::Tasks(tasks) => {
            out.push(WITNESS_TASKS);
            out.extend_from_slice(&(tasks.len() as u32).to_le_bytes());
            for t in tasks {
                out.extend_from_slice(&t.0.to_le_bytes());
            }
        }
        CycleWitness::Resources(resources) => {
            out.push(WITNESS_RESOURCES);
            out.extend_from_slice(&(resources.len() as u32).to_le_bytes());
            for r in resources {
                out.extend_from_slice(&r.phaser.0.to_le_bytes());
                out.extend_from_slice(&r.phase.to_le_bytes());
            }
        }
    }
    out.extend_from_slice(&(report.task_epochs.len() as u32).to_le_bytes());
    for (task, epoch) in &report.task_epochs {
        out.extend_from_slice(&task.0.to_le_bytes());
        out.extend_from_slice(&epoch.to_le_bytes());
    }
}

fn take_report(buf: &mut &[u8]) -> Result<DeadlockReport, WireError> {
    let n_tasks = take_flat_count(buf, 8, "report tasks")?;
    let mut tasks = Vec::with_capacity(n_tasks.min(PREALLOC_CAP));
    for _ in 0..n_tasks {
        tasks.push(TaskId(take_u64(buf)?));
    }
    let n_resources = take_flat_count(buf, FLAT_PAIR, "report resources")?;
    let mut resources = Vec::with_capacity(n_resources.min(PREALLOC_CAP));
    for _ in 0..n_resources {
        resources.push(Resource::new(PhaserId(take_u64(buf)?), take_u64(buf)?));
    }
    let model = match take_u8(buf)? {
        MODEL_WFG => GraphModel::Wfg,
        MODEL_SG => GraphModel::Sg,
        other => return Err(malformed(format!("unknown graph model tag {other}"))),
    };
    let witness = match take_u8(buf)? {
        WITNESS_TASKS => {
            let n = take_flat_count(buf, 8, "witness tasks")?;
            let mut cycle = Vec::with_capacity(n.min(PREALLOC_CAP));
            for _ in 0..n {
                cycle.push(TaskId(take_u64(buf)?));
            }
            CycleWitness::Tasks(cycle)
        }
        WITNESS_RESOURCES => {
            let n = take_flat_count(buf, FLAT_PAIR, "witness resources")?;
            let mut cycle = Vec::with_capacity(n.min(PREALLOC_CAP));
            for _ in 0..n {
                cycle.push(Resource::new(PhaserId(take_u64(buf)?), take_u64(buf)?));
            }
            CycleWitness::Resources(cycle)
        }
        other => return Err(malformed(format!("unknown witness tag {other}"))),
    };
    let n_epochs = take_flat_count(buf, FLAT_PAIR, "task epochs")?;
    let mut task_epochs = Vec::with_capacity(n_epochs.min(PREALLOC_CAP));
    for _ in 0..n_epochs {
        task_epochs.push((TaskId(take_u64(buf)?), take_u64(buf)?));
    }
    Ok(DeadlockReport { tasks, resources, model, witness, task_epochs })
}

/// A message with a hand-rolled flat v2 body: one kind byte followed by
/// fixed-width little-endian fields and contiguous arrays. Implemented by
/// [`Request`] and [`Response`]; see the module docs for the layout.
pub trait FlatMessage: Sized {
    /// Appends `kind byte + flat body` to `out`.
    fn encode_flat(&self, out: &mut Vec<u8>);
    /// Decodes `kind byte + flat body` from the front of `buf`.
    fn decode_flat(buf: &mut &[u8]) -> Result<Self, WireError>;
}

impl FlatMessage for Request {
    fn encode_flat(&self, out: &mut Vec<u8>) {
        match self {
            Request::Publish { site, tenant, snapshot } => {
                out.push(REQ_PUBLISH);
                out.extend_from_slice(&site.0.to_le_bytes());
                out.extend_from_slice(&tenant.0.to_le_bytes());
                put_snapshot(snapshot, out);
            }
            Request::PublishFull { site, tenant, snapshot, version } => {
                out.push(REQ_PUBLISH_FULL);
                out.extend_from_slice(&site.0.to_le_bytes());
                out.extend_from_slice(&tenant.0.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                put_snapshot(snapshot, out);
            }
            Request::PublishDeltas { site, tenant, base, deltas, next } => {
                out.push(REQ_PUBLISH_DELTAS);
                out.extend_from_slice(&site.0.to_le_bytes());
                out.extend_from_slice(&tenant.0.to_le_bytes());
                out.extend_from_slice(&base.to_le_bytes());
                out.extend_from_slice(&next.to_le_bytes());
                put_deltas(deltas, out);
            }
            Request::FetchAll { tenant } => {
                out.push(REQ_FETCH_ALL);
                out.extend_from_slice(&tenant.0.to_le_bytes());
            }
            Request::Remove { site, tenant } => {
                out.push(REQ_REMOVE);
                out.extend_from_slice(&site.0.to_le_bytes());
                out.extend_from_slice(&tenant.0.to_le_bytes());
            }
            Request::Shutdown => out.push(REQ_SHUTDOWN),
            Request::Metrics => out.push(REQ_METRICS),
            Request::Subscribe { tenant } => {
                out.push(REQ_SUBSCRIBE);
                out.extend_from_slice(&tenant.0.to_le_bytes());
            }
            Request::PublishStats { site, tenant, stats } => {
                out.push(REQ_PUBLISH_STATS);
                out.extend_from_slice(&site.0.to_le_bytes());
                out.extend_from_slice(&tenant.0.to_le_bytes());
                put_site_stats(stats, out);
            }
        }
    }

    fn decode_flat(buf: &mut &[u8]) -> Result<Request, WireError> {
        Ok(match take_u8(buf)? {
            REQ_PUBLISH => {
                let site = SiteId(take_u32(buf)?);
                let tenant = TenantId(take_u32(buf)?);
                Request::Publish { site, tenant, snapshot: take_snapshot(buf)? }
            }
            REQ_PUBLISH_FULL => {
                let site = SiteId(take_u32(buf)?);
                let tenant = TenantId(take_u32(buf)?);
                let version = take_u64(buf)?;
                Request::PublishFull { site, tenant, snapshot: take_snapshot(buf)?, version }
            }
            REQ_PUBLISH_DELTAS => {
                let site = SiteId(take_u32(buf)?);
                let tenant = TenantId(take_u32(buf)?);
                let base = take_u64(buf)?;
                let next = take_u64(buf)?;
                Request::PublishDeltas { site, tenant, base, deltas: take_deltas(buf)?, next }
            }
            REQ_FETCH_ALL => Request::FetchAll { tenant: TenantId(take_u32(buf)?) },
            REQ_REMOVE => {
                let site = SiteId(take_u32(buf)?);
                let tenant = TenantId(take_u32(buf)?);
                Request::Remove { site, tenant }
            }
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_METRICS => Request::Metrics,
            REQ_SUBSCRIBE => Request::Subscribe { tenant: TenantId(take_u32(buf)?) },
            REQ_PUBLISH_STATS => {
                let site = SiteId(take_u32(buf)?);
                let tenant = TenantId(take_u32(buf)?);
                Request::PublishStats { site, tenant, stats: take_site_stats(buf)? }
            }
            other => return Err(malformed(format!("unknown request kind {other}"))),
        })
    }
}

impl FlatMessage for Response {
    fn encode_flat(&self, out: &mut Vec<u8>) {
        match self {
            Response::Ok => out.push(RESP_OK),
            Response::Applied => out.push(RESP_APPLIED),
            Response::NeedSnapshot => out.push(RESP_NEED_SNAPSHOT),
            Response::View(view) => {
                out.push(RESP_VIEW);
                out.extend_from_slice(&(view.len() as u32).to_le_bytes());
                for (site, snapshot) in view {
                    out.extend_from_slice(&site.0.to_le_bytes());
                    put_snapshot(snapshot, out);
                }
            }
            Response::Error(message) => {
                out.push(RESP_ERROR);
                put_flat_str(message, out);
            }
            Response::Metrics(metrics) => {
                out.push(RESP_METRICS);
                put_metrics(metrics, out);
            }
            Response::Subscribed => out.push(RESP_SUBSCRIBED),
            Response::Report(report) => {
                out.push(RESP_REPORT);
                put_report(report, out);
            }
        }
    }

    fn decode_flat(buf: &mut &[u8]) -> Result<Response, WireError> {
        Ok(match take_u8(buf)? {
            RESP_OK => Response::Ok,
            RESP_APPLIED => Response::Applied,
            RESP_NEED_SNAPSHOT => Response::NeedSnapshot,
            RESP_VIEW => {
                let count = take_flat_count(buf, FLAT_VIEW_ENTRY_MIN, "view")?;
                let mut view = Vec::with_capacity(count.min(PREALLOC_CAP));
                for _ in 0..count {
                    let site = SiteId(take_u32(buf)?);
                    view.push((site, take_snapshot(buf)?));
                }
                Response::View(view)
            }
            RESP_ERROR => Response::Error(take_flat_str(buf, "error message")?),
            RESP_METRICS => Response::Metrics(take_metrics(buf)?),
            RESP_SUBSCRIBED => Response::Subscribed,
            RESP_REPORT => Response::Report(take_report(buf)?),
            other => return Err(malformed(format!("unknown response kind {other}"))),
        })
    }
}

// --- pipelined framing -----------------------------------------------------

/// A decoded frame: the message plus the wire metadata a pipelining peer
/// needs to answer it — the correlation id to echo and the version to
/// answer in. v1 frames decode with `corr == 0`.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame<T> {
    /// Payload version the frame arrived in ([`WIRE_V1`] or [`WIRE_V2`]).
    pub version: u8,
    /// Correlation id (0 for v1 frames, which are strictly ping-pong).
    pub corr: u64,
    /// The decoded message.
    pub msg: T,
}

/// Appends one complete **v2** frame (length prefix included) for `msg`
/// to `out`, tagged with correlation id `corr`. Appending to a
/// caller-owned buffer is what lets the write-side coalescer pack many
/// frames into one flush without allocating per frame. On overflow the
/// buffer is restored and [`WireError::Malformed`] returned — a frame no
/// receiver would accept must never be sent.
pub fn encode_frame_v2_into<T: FlatMessage>(
    out: &mut Vec<u8>,
    corr: u64,
    msg: &T,
) -> Result<(), WireError> {
    let frame_start = out.len();
    out.extend_from_slice(&[0; 4]); // length prefix, patched below
    out.push(WIRE_V2);
    out.extend_from_slice(&corr.to_le_bytes());
    msg.encode_flat(out);
    let payload_len = out.len() - frame_start - 4;
    if payload_len as u64 > MAX_FRAME_LEN as u64 {
        out.truncate(frame_start);
        return Err(malformed(format!(
            "message encodes to {payload_len} bytes, over MAX_FRAME_LEN"
        )));
    }
    out[frame_start..frame_start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    Ok(())
}

/// Decodes a frame payload of **either** version (the length prefix
/// already stripped): v2 payloads through the flat codec, v1 payloads
/// through the serde-Value tree (with `corr = 0`). Any other version is a
/// clean [`WireError::Version`].
pub fn decode_frame_payload<T: FlatMessage + Deserialize>(
    payload: &[u8],
) -> Result<Frame<T>, WireError> {
    let (&version, body) = payload.split_first().ok_or_else(|| malformed("empty frame payload"))?;
    match version {
        WIRE_V1 => {
            let mut rest = body;
            let value = decode_value(&mut rest, 0)?;
            if !rest.is_empty() {
                return Err(malformed(format!("{} trailing bytes after value", rest.len())));
            }
            let msg = T::from_value(&value).map_err(|e| malformed(e.to_string()))?;
            Ok(Frame { version, corr: 0, msg })
        }
        WIRE_V2 => {
            let mut rest = body;
            let corr = take_u64(&mut rest)?;
            let msg = T::decode_flat(&mut rest)?;
            if !rest.is_empty() {
                return Err(malformed(format!("{} trailing bytes after flat body", rest.len())));
            }
            Ok(Frame { version, corr, msg })
        }
        other => Err(WireError::Version(other)),
    }
}

/// Incremental frame extraction over a byte stream: feed raw reads in,
/// pull complete frames out. This is how both ends read **bursts** — one
/// `read(2)` can deliver many pipelined frames (or half of one), and the
/// buffer hands them over one by one without ever blocking mid-frame.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends freshly read bytes (compacting consumed space first).
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Whether bytes of an incomplete frame are pending — the receiver is
    /// mid-frame, so a read timeout now means a stalled peer rather than a
    /// quiet one.
    pub fn has_partial(&self) -> bool {
        self.buf.len() > self.start
    }

    /// Extracts the next complete frame; `Ok(None)` when more bytes are
    /// needed. Errors (oversized prefix, undecodable payload) are
    /// unrecoverable for the connection — there is no resync point
    /// mid-stream.
    pub fn next_frame<T: FlatMessage + Deserialize>(
        &mut self,
    ) -> Result<Option<Frame<T>>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(malformed(format!("length prefix {len} exceeds MAX_FRAME_LEN")));
        }
        let end = 4 + len as usize;
        if avail.len() < end {
            return Ok(None);
        }
        let frame = decode_frame_payload(&avail[4..end])?;
        self.start += end;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armus_core::{BlockedInfo, PhaserId, Registration, Resource, TaskId};

    fn snap() -> Snapshot {
        Snapshot::from_tasks(vec![BlockedInfo::new(
            TaskId(3).with_site(1),
            vec![Resource::new(PhaserId(1), 1)],
            vec![Registration::new(PhaserId(1), 0), Registration::new(PhaserId(2), 4)],
        )])
    }

    fn stats() -> SiteStats {
        SiteStats {
            blocks: 10,
            unblocks: 9,
            fastpath_skips: 8,
            publish_resyncs: 7,
            async_waits: 6,
            waker_wakes: 5,
            checker_rounds: 4,
            incremental_detections: 3,
            reports_dropped: 2,
        }
    }

    fn metrics() -> ServerMetrics {
        ServerMetrics {
            served: 100,
            protocol_errors: 1,
            live_connections: 4,
            subscribers: 2,
            publishes: 40,
            delta_publishes: 50,
            fetches: 9,
            removes: 3,
            reports_streamed: 6,
            reply_queue_max: 12,
            tenants: vec![
                TenantMetrics {
                    tenant: TenantId(1),
                    partitions: 2,
                    lease_expiries: 1,
                    subscribers: 1,
                },
                TenantMetrics::new(TenantId(9)),
            ],
            sites: vec![(TenantId(1), SiteId(0), stats()), (TenantId(9), SiteId(4), stats())],
        }
    }

    fn report(witness: CycleWitness) -> DeadlockReport {
        let model = if matches!(witness, CycleWitness::Tasks(_)) {
            GraphModel::Wfg
        } else {
            GraphModel::Sg
        };
        DeadlockReport {
            tasks: vec![TaskId(1), TaskId(2)],
            resources: vec![Resource::new(PhaserId(1), 1), Resource::new(PhaserId(2), 0)],
            model,
            witness,
            task_epochs: vec![(TaskId(1), 3), (TaskId(2), 0)],
        }
    }

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(msg: &T) {
        let frame = encode_frame(msg).expect("bounded test message");
        let mut cursor = io::Cursor::new(frame);
        let back: T = read_message(&mut cursor).unwrap().expect("one frame");
        assert_eq!(&back, msg);
    }

    #[test]
    fn requests_round_trip() {
        roundtrip(&Request::Publish { site: SiteId(0), tenant: TenantId(2), snapshot: snap() });
        roundtrip(&Request::PublishFull {
            site: SiteId(7),
            tenant: TenantId::DEFAULT,
            snapshot: snap(),
            version: 42,
        });
        roundtrip(&Request::PublishDeltas {
            site: SiteId(1),
            tenant: TenantId(3),
            base: 5,
            deltas: vec![Delta::Block(snap().tasks[0].clone()), Delta::Unblock(TaskId(9))],
            next: 7,
        });
        roundtrip(&Request::FetchAll { tenant: TenantId(4) });
        roundtrip(&Request::Remove { site: SiteId(3), tenant: TenantId(1) });
        roundtrip(&Request::Shutdown);
        roundtrip(&Request::Metrics);
        roundtrip(&Request::Subscribe { tenant: TenantId(5) });
        roundtrip(&Request::PublishStats { site: SiteId(2), tenant: TenantId(1), stats: stats() });
    }

    #[test]
    fn responses_round_trip() {
        roundtrip(&Response::Ok);
        roundtrip(&Response::Applied);
        roundtrip(&Response::NeedSnapshot);
        roundtrip(&Response::View(vec![(SiteId(0), snap()), (SiteId(1), Snapshot::empty())]));
        roundtrip(&Response::Error("partition store on fire".into()));
        roundtrip(&Response::Metrics(metrics()));
        roundtrip(&Response::Metrics(ServerMetrics::default()));
        roundtrip(&Response::Subscribed);
        roundtrip(&Response::Report(report(CycleWitness::Tasks(vec![
            TaskId(1),
            TaskId(2),
            TaskId(1),
        ]))));
        roundtrip(&Response::Report(report(CycleWitness::Resources(vec![Resource::new(
            PhaserId(1),
            1,
        )]))));
    }

    #[test]
    fn varints_round_trip_at_the_edges() {
        for n in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut out = Vec::new();
            put_varint(n, &mut out);
            let mut buf = out.as_slice();
            assert_eq!(get_varint(&mut buf).unwrap(), n);
            assert!(buf.is_empty());
        }
        for n in [0i64, 1, -1, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(n)), n);
        }
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_message::<_, Request>(&mut empty), Ok(None)));
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut frame = encode_frame(&Request::FetchAll { tenant: TenantId::DEFAULT }).unwrap();
        frame.truncate(frame.len() - 1);
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(read_message::<_, Request>(&mut cursor), Err(WireError::Io(_))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(read_message::<_, Request>(&mut cursor), Err(WireError::Malformed(_))));
    }

    #[test]
    fn future_versions_are_rejected_cleanly() {
        let mut frame = encode_frame(&Request::FetchAll { tenant: TenantId::DEFAULT }).unwrap();
        frame[4] = WIRE_VERSION + 1; // the version byte follows the length
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(
            read_message::<_, Request>(&mut cursor),
            Err(WireError::Version(v)) if v == WIRE_VERSION + 1
        ));
    }

    #[test]
    fn unknown_message_variants_are_malformed_not_panics() {
        let rogue = Value::Map(vec![("LaunchMissiles".into(), Value::UInt(1))]);
        let mut payload = vec![WIRE_V1];
        encode_value(&rogue, &mut payload);
        assert!(matches!(decode_payload::<Request>(&payload), Err(WireError::Malformed(_))));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A sequence claiming u64::MAX elements in a 3-byte body.
        let mut payload = vec![WIRE_V1, TAG_SEQ];
        put_varint(u64::MAX, &mut payload);
        assert!(matches!(decode_payload::<Request>(&payload), Err(WireError::Malformed(_))));
    }

    fn v2_roundtrip<T: FlatMessage + Deserialize + PartialEq + std::fmt::Debug>(
        corr: u64,
        msg: &T,
    ) {
        let mut out = Vec::new();
        encode_frame_v2_into(&mut out, corr, msg).unwrap();
        let len = u32::from_le_bytes(out[..4].try_into().unwrap()) as usize;
        assert_eq!(len + 4, out.len(), "one exact frame");
        let frame: Frame<T> = decode_frame_payload(&out[4..]).unwrap();
        assert_eq!(frame.version, WIRE_V2);
        assert_eq!(frame.corr, corr);
        assert_eq!(&frame.msg, msg);
    }

    #[test]
    fn flat_frames_round_trip_with_correlation_ids() {
        v2_roundtrip(
            0,
            &Request::Publish { site: SiteId(0), tenant: TenantId(6), snapshot: snap() },
        );
        v2_roundtrip(
            1,
            &Request::PublishFull {
                site: SiteId(7),
                tenant: TenantId::DEFAULT,
                snapshot: snap(),
                version: 42,
            },
        );
        v2_roundtrip(
            u64::MAX,
            &Request::PublishDeltas {
                site: SiteId(1),
                tenant: TenantId(2),
                base: 5,
                deltas: vec![Delta::Block(snap().tasks[0].clone()), Delta::Unblock(TaskId(9))],
                next: 7,
            },
        );
        v2_roundtrip(3, &Request::FetchAll { tenant: TenantId(1) });
        v2_roundtrip(4, &Request::Remove { site: SiteId(3), tenant: TenantId(8) });
        v2_roundtrip(5, &Request::Shutdown);
        v2_roundtrip(51, &Request::Metrics);
        v2_roundtrip(52, &Request::Subscribe { tenant: TenantId(7) });
        v2_roundtrip(
            53,
            &Request::PublishStats { site: SiteId(1), tenant: TenantId(7), stats: stats() },
        );
        v2_roundtrip(6, &Response::Ok);
        v2_roundtrip(7, &Response::Applied);
        v2_roundtrip(8, &Response::NeedSnapshot);
        v2_roundtrip(9, &Response::View(vec![(SiteId(0), snap()), (SiteId(1), Snapshot::empty())]));
        v2_roundtrip(10, &Response::Error("partition store on fire".into()));
        v2_roundtrip(11, &Response::Metrics(metrics()));
        v2_roundtrip(12, &Response::Metrics(ServerMetrics::default()));
        v2_roundtrip(13, &Response::Subscribed);
        v2_roundtrip(
            14,
            &Response::Report(report(CycleWitness::Tasks(vec![TaskId(1), TaskId(2), TaskId(1)]))),
        );
        v2_roundtrip(
            15,
            &Response::Report(report(CycleWitness::Resources(vec![
                Resource::new(PhaserId(1), 1),
                Resource::new(PhaserId(2), 0),
                Resource::new(PhaserId(1), 1),
            ]))),
        );
    }

    #[test]
    fn hostile_metrics_counts_do_not_allocate() {
        // A v2 Metrics response claiming u32::MAX tenant entries in a
        // body that only holds the fixed counters.
        let mut payload = vec![WIRE_V2];
        payload.extend_from_slice(&0u64.to_le_bytes()); // corr
        payload.push(RESP_METRICS);
        for _ in 0..10 {
            payload.extend_from_slice(&0u64.to_le_bytes()); // fixed counters
        }
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // tenant count
        assert!(matches!(decode_frame_payload::<Response>(&payload), Err(WireError::Malformed(_))));
    }

    #[test]
    fn unknown_witness_tags_are_malformed_not_panics() {
        let mut out = Vec::new();
        encode_frame_v2_into(
            &mut out,
            1,
            &Response::Report(report(CycleWitness::Tasks(vec![TaskId(1)]))),
        )
        .unwrap();
        // Corrupt the witness tag, whose offset is fixed by the flat
        // layout: prefix+version+corr+kind, then 2 tasks, 2 resources,
        // and the model byte.
        let witness_tag_at = (4 + 1 + 8 + 1) + (4 + 2 * 8) + (4 + 2 * 16) + 1;
        assert_eq!(out[witness_tag_at], WITNESS_TASKS);
        out[witness_tag_at] = 0x7F;
        assert!(matches!(
            decode_frame_payload::<Response>(&out[4..]),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn flat_encoding_appends_and_restores_on_overflow() {
        // Appending leaves earlier frames in the buffer intact…
        let mut out = Vec::new();
        encode_frame_v2_into(&mut out, 1, &Request::FetchAll { tenant: TenantId::DEFAULT })
            .unwrap();
        let first = out.clone();
        encode_frame_v2_into(
            &mut out,
            2,
            &Request::Remove { site: SiteId(9), tenant: TenantId::DEFAULT },
        )
        .unwrap();
        assert_eq!(&out[..first.len()], &first[..], "first frame untouched");
        // …and an oversized message truncates back to the prior frames.
        let huge = Response::Error("x".repeat(MAX_FRAME_LEN as usize + 1));
        let len_before = out.len();
        assert!(matches!(encode_frame_v2_into(&mut out, 3, &huge), Err(WireError::Malformed(_))));
        assert_eq!(out.len(), len_before);
    }

    #[test]
    fn frame_buffer_extracts_bursts_and_waits_on_partials() {
        let mut wire_bytes = Vec::new();
        encode_frame_v2_into(&mut wire_bytes, 11, &Request::FetchAll { tenant: TenantId(4) })
            .unwrap();
        encode_frame_v2_into(
            &mut wire_bytes,
            12,
            &Request::Remove { site: SiteId(2), tenant: TenantId(4) },
        )
        .unwrap();
        let mut tail = encode_frame(&Request::Shutdown).unwrap(); // a v1 straggler
        wire_bytes.append(&mut tail);

        let mut fb = FrameBuffer::new();
        // Feed in awkward 7-byte chunks: frames must come out whole anyway.
        let mut got: Vec<Frame<Request>> = Vec::new();
        for chunk in wire_bytes.chunks(7) {
            fb.feed(chunk);
            while let Some(frame) = fb.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert!(!fb.has_partial());
        assert_eq!(got.len(), 3);
        assert_eq!(
            (got[0].version, got[0].corr, got[0].msg.clone()),
            (WIRE_V2, 11, Request::FetchAll { tenant: TenantId(4) })
        );
        assert_eq!(
            (got[1].version, got[1].corr, got[1].msg.clone()),
            (WIRE_V2, 12, Request::Remove { site: SiteId(2), tenant: TenantId(4) })
        );
        assert_eq!(
            (got[2].version, got[2].corr, got[2].msg.clone()),
            (WIRE_V1, 0, Request::Shutdown)
        );
    }

    #[test]
    fn v1_payloads_decode_through_the_negotiating_entry_point() {
        let frame = encode_frame(&Response::Applied).unwrap();
        let decoded: Frame<Response> = decode_frame_payload(&frame[4..]).unwrap();
        assert_eq!(decoded, Frame { version: WIRE_V1, corr: 0, msg: Response::Applied });
    }

    #[test]
    fn flat_trailing_bytes_are_rejected() {
        let mut out = Vec::new();
        encode_frame_v2_into(&mut out, 1, &Request::FetchAll { tenant: TenantId::DEFAULT })
            .unwrap();
        out.push(0xEE); // a trailing byte inside the *payload* …
        let len = (out.len() - 4) as u32;
        out[..4].copy_from_slice(&len.to_le_bytes()); // … the prefix covers
        assert!(matches!(decode_frame_payload::<Request>(&out[4..]), Err(WireError::Malformed(_))));
    }

    #[test]
    fn flat_hostile_counts_do_not_allocate() {
        // A v2 PublishDeltas claiming u32::MAX deltas in a tiny body.
        let mut payload = vec![WIRE_V2];
        payload.extend_from_slice(&0u64.to_le_bytes()); // corr
        payload.push(REQ_PUBLISH_DELTAS);
        payload.extend_from_slice(&3u32.to_le_bytes()); // site
        payload.extend_from_slice(&0u32.to_le_bytes()); // tenant
        payload.extend_from_slice(&0u64.to_le_bytes()); // base
        payload.extend_from_slice(&1u64.to_le_bytes()); // next
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // delta count
        assert!(matches!(decode_frame_payload::<Request>(&payload), Err(WireError::Malformed(_))));
    }

    #[test]
    fn flat_unknown_kinds_are_malformed_not_panics() {
        let mut payload = vec![WIRE_V2];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(0xAB);
        assert!(matches!(decode_frame_payload::<Request>(&payload), Err(WireError::Malformed(_))));
        assert!(matches!(decode_frame_payload::<Response>(&payload), Err(WireError::Malformed(_))));
    }

    #[test]
    fn unknown_versions_are_rejected_by_both_entry_points() {
        let payload = [WIRE_V2 + 1, 0, 0, 0];
        assert!(matches!(
            decode_frame_payload::<Request>(&payload),
            Err(WireError::Version(v)) if v == WIRE_V2 + 1
        ));
        assert!(matches!(
            decode_payload::<Request>(&payload),
            Err(WireError::Version(v)) if v == WIRE_V2 + 1
        ));
    }

    #[test]
    fn over_deep_nesting_is_rejected() {
        let mut payload = vec![WIRE_V1];
        for _ in 0..(MAX_DEPTH + 8) {
            payload.push(TAG_SEQ);
            payload.push(1); // one element each level
        }
        payload.push(TAG_NULL);
        assert!(matches!(decode_payload::<Value>(&payload), Err(WireError::Malformed(_))));
    }
}
