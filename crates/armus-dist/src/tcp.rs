//! [`TcpStore`]: the networked [`Store`] client — one multiplexed,
//! pipelined connection shared by every site in the process.
//!
//! The client speaks the flat v2 [`crate::wire`] protocol. Three layers
//! close the gap to the in-process store:
//!
//! * **Batching** — operations append their encoded frame to a shared
//!   *outbox* under a short lock; the first submitter becomes the flusher
//!   and keeps writing swapped-out batches until the outbox is empty
//!   (flat combining, the way lamellar coalesces active messages). Frames
//!   that arrive while a flush is in flight ride the next `write(2)`
//!   instead of paying their own syscall.
//! * **Pipelining** — every frame carries a correlation id, so callers do
//!   not serialize on request/response round trips: many requests are in
//!   flight at once and a dedicated demux reader thread completes each
//!   waiting caller as its response arrives, in whatever order.
//! * **Multiplexing** — because calls never hold the connection, one
//!   `TcpStore` (one socket, one reader thread) serves any number of
//!   [`crate::site::Site`]s concurrently; sharing the client via `Arc` is
//!   the intended deployment shape, replacing connection-per-site.
//!
//! The failure model is unchanged from the ping-pong client: every
//! transport failure — connect refusal, timeout, mid-frame hangup,
//! protocol desync — maps onto [`StoreError::Unavailable`], the exact
//! error the sites' publisher and checker loops already tolerate by
//! skipping the round. When a connection dies, **every** in-flight and
//! batched-but-unsent operation on it fails to `Unavailable`: the
//! coalescer never drops a delta silently and never acknowledges one it
//! cannot prove the server applied (the publisher's NACK/resync protocol
//! recovers state, exercised by the chaos tests in `tests/net.rs`).
//! Reconnects are paced by a bounded exponential backoff: while the
//! backoff window is open, operations fail fast instead of hammering a
//! dead server with connect attempts every publish period.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use armus_core::{DeadlockReport, Delta, Snapshot};
use parking_lot::{Condvar, Mutex};

use crate::store::{DeltaAck, SiteId, SiteStats, Store, StoreError, TenantId};
use crate::wire::{self, Request, Response, ServerMetrics};

/// Tuning of a [`TcpStore`].
#[derive(Clone, Copy, Debug)]
pub struct TcpStoreConfig {
    /// Bound on one connect attempt.
    pub connect_timeout: Duration,
    /// Bound on waiting for one response (and on writing one batch).
    pub io_timeout: Duration,
    /// First reconnect backoff after a failure.
    pub backoff_initial: Duration,
    /// Backoff ceiling (exponential doubling stops here).
    pub backoff_max: Duration,
}

impl Default for TcpStoreConfig {
    fn default() -> Self {
        TcpStoreConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(2),
            backoff_initial: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
        }
    }
}

/// Where a caller's response lands: filled by the demux reader, failed en
/// masse when the connection dies.
#[derive(Default)]
struct ResponseSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

#[derive(Default)]
enum SlotState {
    #[default]
    Waiting,
    Done(Response),
    Failed,
}

impl ResponseSlot {
    /// Stores the response without waking the waiter — the demux reader
    /// fills every slot of a burst first and notifies afterwards, so the
    /// woken callers' next frames coalesce into one flush instead of the
    /// first waker preempting the burst.
    fn fill(&self, response: Response) {
        *self.state.lock() = SlotState::Done(response);
    }

    /// Wakes the waiter of a previously [`ResponseSlot::fill`]ed slot.
    /// Safe to call without the lock: a waiter that races in between sees
    /// the filled state and never parks.
    fn notify(&self) {
        self.cv.notify_all();
    }

    fn fail(&self) {
        *self.state.lock() = SlotState::Failed;
        self.cv.notify_all();
    }

    /// Blocks until the slot is filled or `timeout` elapses; `None` on
    /// timeout or connection death.
    fn wait(&self, timeout: Duration) -> Option<Response> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock();
        loop {
            match std::mem::take(&mut *state) {
                SlotState::Done(response) => return Some(response),
                SlotState::Failed => return None,
                SlotState::Waiting => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.cv.wait_for(&mut state, deadline - now);
        }
    }
}

/// Where pushed frames of one long-lived stream (a [`Subscription`])
/// land: the demux reader appends, the subscriber drains in order. Unlike
/// a [`ResponseSlot`] the entry stays registered across any number of
/// frames — a push channel, not a one-shot exchange.
#[derive(Default)]
struct StreamSlot {
    state: Mutex<StreamState>,
    cv: Condvar,
}

#[derive(Default)]
struct StreamState {
    queue: VecDeque<Response>,
    dead: bool,
}

impl StreamSlot {
    fn push(&self, response: Response) {
        self.state.lock().queue.push_back(response);
    }

    fn notify(&self) {
        self.cv.notify_all();
    }

    fn fail(&self) {
        self.state.lock().dead = true;
        self.cv.notify_all();
    }

    /// Next pushed frame, in arrival order; `None` on timeout or
    /// connection death (queued frames drain before death surfaces).
    fn recv(&self, timeout: Duration) -> Option<Response> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock();
        loop {
            if let Some(response) = state.queue.pop_front() {
                return Some(response);
            }
            if state.dead {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.cv.wait_for(&mut state, deadline - now);
        }
    }
}

/// Write-side coalescer: frames accumulate in `buf`; `spare` is the
/// recycled second buffer the flusher swaps in, so steady state allocates
/// nothing. `flushing` elects exactly one flusher at a time.
#[derive(Default)]
struct Outbox {
    buf: Vec<u8>,
    spare: Vec<u8>,
    flushing: bool,
}

/// Wire-level traffic counters, shared between the live connection and
/// the owning [`TcpStore`] so they survive reconnects.
#[derive(Default)]
struct WireStats {
    frames: AtomicU64,
    flushes: AtomicU64,
}

/// State shared between callers and the demux reader of one connection.
struct MuxShared {
    stream: TcpStream,
    outbox: Mutex<Outbox>,
    pending: Mutex<HashMap<u64, Arc<ResponseSlot>>>,
    /// Long-lived demux routes: correlation ids claimed by subscriptions.
    /// Checked before `pending` so a pushed frame can never complete a
    /// one-shot slot.
    streams: Mutex<HashMap<u64, Arc<StreamSlot>>>,
    next_corr: AtomicU64,
    dead: AtomicBool,
    stats: Arc<WireStats>,
}

impl MuxShared {
    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// One pipelined exchange: register a slot, coalesce the frame into
    /// the outbox (flushing if no flusher is active), wait for the demux
    /// reader to fill the slot.
    fn call(&self, request: &Request, io_timeout: Duration) -> Result<Response, StoreError> {
        if self.is_dead() {
            return Err(StoreError::Unavailable);
        }
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ResponseSlot::default());
        self.pending.lock().insert(corr, Arc::clone(&slot));
        if self.is_dead() {
            // The reader may have drained `pending` before our insert
            // landed; don't wait a full timeout on a corpse.
            self.pending.lock().remove(&corr);
            return Err(StoreError::Unavailable);
        }
        if let Err(_e) = self.submit(corr, request) {
            self.fail_all();
            self.pending.lock().remove(&corr);
            return Err(StoreError::Unavailable);
        }
        match slot.wait(io_timeout) {
            Some(response) => Ok(response),
            None => {
                self.pending.lock().remove(&corr);
                Err(StoreError::Unavailable)
            }
        }
    }

    /// Opens a long-lived push stream: registers a [`StreamSlot`] route
    /// **before** the request goes out (so no pushed frame can race past
    /// the registration and be dropped), then requires the first frame on
    /// the route to be the server's [`Response::Subscribed`] ack.
    fn open_stream(
        &self,
        request: &Request,
        io_timeout: Duration,
    ) -> Result<(u64, Arc<StreamSlot>), StoreError> {
        if self.is_dead() {
            return Err(StoreError::Unavailable);
        }
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(StreamSlot::default());
        self.streams.lock().insert(corr, Arc::clone(&slot));
        if self.is_dead() {
            self.streams.lock().remove(&corr);
            return Err(StoreError::Unavailable);
        }
        if self.submit(corr, request).is_err() {
            self.fail_all();
            self.streams.lock().remove(&corr);
            return Err(StoreError::Unavailable);
        }
        match slot.recv(io_timeout) {
            Some(Response::Subscribed) => Ok((corr, slot)),
            _ => {
                self.streams.lock().remove(&corr);
                Err(StoreError::Unavailable)
            }
        }
    }

    /// Appends the encoded frame to the outbox; becomes the flusher when
    /// none is active and drains swapped-out batches until the outbox is
    /// empty. Returning `Ok` does **not** mean "sent": it means the frame
    /// is on the wire or owned by a live flusher — whose failure fails
    /// every pending slot, ours included.
    fn submit(&self, corr: u64, request: &Request) -> Result<(), wire::WireError> {
        let mut outbox = self.outbox.lock();
        wire::encode_frame_v2_into(&mut outbox.buf, corr, request)?;
        self.stats.frames.fetch_add(1, Ordering::Relaxed);
        if outbox.flushing {
            return Ok(());
        }
        outbox.flushing = true;
        // Flat-combining window: before the first sweep, briefly release
        // the outbox and yield so concurrent callers (typically a burst
        // of sites woken by the previous reply batch) can enqueue their
        // frames into this flush. On an idle connection the yield is a
        // no-op; under fan-in it turns k wakeups into one k-frame write.
        drop(outbox);
        std::thread::yield_now();
        outbox = self.outbox.lock();
        loop {
            let spare = std::mem::take(&mut outbox.spare);
            let mut batch = std::mem::replace(&mut outbox.buf, spare);
            drop(outbox);
            let wrote = (&self.stream).write_all(&batch);
            self.stats.flushes.fetch_add(1, Ordering::Relaxed);
            batch.clear();
            outbox = self.outbox.lock();
            outbox.spare = batch;
            match wrote {
                Err(e) => {
                    outbox.flushing = false;
                    return Err(wire::WireError::Io(e));
                }
                Ok(()) => {
                    if outbox.buf.is_empty() {
                        outbox.flushing = false;
                        return Ok(());
                    }
                    // Frames landed while we were writing: sweep again.
                }
            }
        }
    }

    /// Marks the connection dead and fails every pending caller — the
    /// "re-send or fail" reconnect contract resolves to *fail*: a frame
    /// whose response we cannot correlate must surface as
    /// [`StoreError::Unavailable`], never as a silent drop or a false ack.
    fn fail_all(&self) {
        self.dead.store(true, Ordering::Release);
        let drained: Vec<Arc<ResponseSlot>> =
            self.pending.lock().drain().map(|(_, slot)| slot).collect();
        for slot in drained {
            slot.fail();
        }
        // Streams are failed but not drained: subscribers consume any
        // frames queued before the death, then observe `None`.
        let streams: Vec<Arc<StreamSlot>> = self.streams.lock().values().map(Arc::clone).collect();
        for stream in streams {
            stream.fail();
        }
    }

    /// `fail_all` plus a socket shutdown so the demux reader unblocks
    /// promptly.
    fn kill(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.stream.shutdown(Shutdown::Both);
        self.fail_all();
    }
}

/// The demux reader: extracts response bursts and completes the matching
/// slot per correlation id. Exits (failing all pending callers) on EOF,
/// transport error, or protocol desync.
fn demux_loop(shared: Arc<MuxShared>) {
    let mut frames = wire::FrameBuffer::new();
    let mut chunk = vec![0u8; 64 * 1024];
    loop {
        if shared.is_dead() {
            break;
        }
        match (&shared.stream).read(&mut chunk) {
            Ok(0) => break, // server hung up
            Ok(n) => {
                frames.feed(&chunk[..n]);
                // Two passes over the burst: fill every slot first, wake
                // the callers after. Waking as we decode would let the
                // first caller preempt this thread (wake-preemption) and
                // flush a one-frame batch while its peers are still
                // asleep; deferring the wakeups lets the whole cohort
                // enqueue into one combined write.
                let mut woken = Vec::new();
                loop {
                    match frames.next_frame::<Response>() {
                        Ok(Some(frame)) => {
                            let stream = shared.streams.lock().get(&frame.corr).map(Arc::clone);
                            if let Some(stream) = stream {
                                stream.push(frame.msg);
                                stream.notify();
                            } else if let Some(slot) = shared.pending.lock().remove(&frame.corr) {
                                slot.fill(frame.msg);
                                woken.push(slot);
                            }
                            // An unmatched id is a caller that timed out
                            // and moved on: the late response is dropped.
                        }
                        Ok(None) => break,
                        Err(_) => {
                            for slot in woken {
                                slot.notify();
                            }
                            shared.kill();
                            return;
                        }
                    }
                }
                for slot in woken {
                    slot.notify();
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle poll tick: re-check the dead flag and keep waiting.
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    shared.fail_all();
}

/// One live multiplexed connection: the shared state plus the demux
/// reader's handle, joined on drop.
struct MuxConn {
    shared: Arc<MuxShared>,
    reader: Mutex<Option<thread::JoinHandle<()>>>,
}

impl MuxConn {
    fn open(stream: TcpStream, stats: Arc<WireStats>) -> MuxConn {
        let shared = Arc::new(MuxShared {
            stream,
            outbox: Mutex::new(Outbox::default()),
            pending: Mutex::new(HashMap::new()),
            streams: Mutex::new(HashMap::new()),
            next_corr: AtomicU64::new(1),
            dead: AtomicBool::new(false),
            stats,
        });
        let reader = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("tcpstore-demux".into())
                .spawn(move || demux_loop(shared))
                .expect("spawn tcpstore demux reader")
        };
        MuxConn { shared, reader: Mutex::new(Some(reader)) }
    }
}

impl Drop for MuxConn {
    fn drop(&mut self) {
        self.shared.kill();
        if let Some(handle) = self.reader.lock().take() {
            let _ = handle.join();
        }
    }
}

/// A live report stream from the server: the server-side checker pushes
/// a [`DeadlockReport`] frame whenever it finds a *new* deadlock in the
/// subscriber's tenant — no polling, no [`Store::fetch_all`] round trips.
///
/// The handle pins its connection alive (it holds the `Arc<MuxConn>`),
/// and dropping it unregisters the demux route. Subscriptions do **not**
/// survive reconnects: when the connection dies, [`Subscription::recv`]
/// drains any already-received reports and then returns `None` forever —
/// re-subscribe via [`TcpStore::subscribe`] to resume.
pub struct Subscription {
    conn: Arc<MuxConn>,
    corr: u64,
    slot: Arc<StreamSlot>,
}

impl Subscription {
    /// The next pushed report, in arrival order; `None` on timeout or
    /// after the connection died and the queue drained.
    pub fn recv(&self, timeout: Duration) -> Option<DeadlockReport> {
        match self.slot.recv(timeout)? {
            Response::Report(report) => Some(report),
            // Anything but a report on a subscribed stream is protocol
            // desync: stop trusting the stream.
            _ => None,
        }
    }

    /// Whether the underlying connection is still alive. A dead
    /// subscription never yields new reports (queued ones still drain).
    pub fn is_live(&self) -> bool {
        !self.conn.shared.is_dead()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.conn.shared.streams.lock().remove(&self.corr);
    }
}

/// The client's connection state: a live multiplexed connection, or the
/// backoff schedule for the next dial.
struct ClientState {
    conn: Option<Arc<MuxConn>>,
    /// Next backoff delay to impose after a failure.
    backoff: Duration,
    /// Operations fail fast until this instant.
    retry_at: Option<Instant>,
}

/// A [`Store`] over TCP. Share one instance (behind `Arc`) between all
/// the sites of a process: calls multiplex over a single connection.
pub struct TcpStore {
    addr: String,
    cfg: TcpStoreConfig,
    tenant: TenantId,
    state: Mutex<ClientState>,
    reconnects: AtomicU64,
    failures: AtomicU64,
    stats: Arc<WireStats>,
}

impl TcpStore {
    /// A store client for the server at `addr` (e.g. `127.0.0.1:7007`).
    /// Connection is lazy: the first operation dials.
    pub fn new(addr: impl Into<String>) -> TcpStore {
        TcpStore::with_config(addr, TcpStoreConfig::default())
    }

    /// A store client with explicit timeouts and backoff bounds.
    pub fn with_config(addr: impl Into<String>, cfg: TcpStoreConfig) -> TcpStore {
        TcpStore {
            addr: addr.into(),
            cfg,
            tenant: TenantId::DEFAULT,
            state: Mutex::new(ClientState {
                conn: None,
                backoff: cfg.backoff_initial,
                retry_at: None,
            }),
            reconnects: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            stats: Arc::new(WireStats::default()),
        }
    }

    /// Scopes every operation of this client to `tenant`. Tenants are
    /// disjoint namespaces on the server: publishes land in the tenant's
    /// partition space, `fetch_all` sees only that tenant's partitions,
    /// and subscriptions stream only that tenant's reports. Two clients
    /// with different tenants can reuse the same [`SiteId`]s freely.
    pub fn for_tenant(mut self, tenant: TenantId) -> TcpStore {
        self.tenant = tenant;
        self
    }

    /// The tenant namespace this client operates in.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The server address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Successful (re)connects so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Operations that failed as [`StoreError::Unavailable`] so far
    /// (fast-failed backoff windows included).
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Request frames submitted to the coalescer so far (across
    /// reconnects).
    pub fn frames_sent(&self) -> u64 {
        self.stats.frames.load(Ordering::Relaxed)
    }

    /// `write(2)` flushes so far. Under concurrent load this stays below
    /// [`Self::frames_sent`]: the difference is frames that rode another
    /// caller's flush.
    pub fn flushes(&self) -> u64 {
        self.stats.flushes.load(Ordering::Relaxed)
    }

    /// Sends the in-band drain command ([`Request::Shutdown`]) to the
    /// server — the administrative stop used by cluster teardown.
    pub fn shutdown_server(&self) -> Result<(), StoreError> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            _ => Err(StoreError::Unavailable),
        }
    }

    /// Scrapes the server's live [`ServerMetrics`] counters — the
    /// observability endpoint for service deployments.
    pub fn metrics(&self) -> Result<ServerMetrics, StoreError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(metrics) => Ok(metrics),
            _ => Err(StoreError::Unavailable),
        }
    }

    /// Subscribes to streamed deadlock reports for this client's tenant.
    /// The server pushes each newly detected (deduplicated) report to the
    /// returned handle; see [`Subscription`] for the delivery and
    /// reconnect semantics.
    pub fn subscribe(&self) -> Result<Subscription, StoreError> {
        let conn = self.connection()?;
        let request = Request::Subscribe { tenant: self.tenant };
        match conn.shared.open_stream(&request, self.cfg.io_timeout) {
            Ok((corr, slot)) => Ok(Subscription { conn, corr, slot }),
            Err(e) => {
                // Same contract as try_call: a failed exchange means the
                // pipelined stream can no longer be trusted.
                conn.shared.kill();
                self.retire(&conn);
                self.failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn dial(&self) -> io::Result<TcpStream> {
        let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no address resolved");
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.cfg.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    // The demux reader polls with this as its tick; socket
                    // shutdown (not the timeout) is what unblocks it on
                    // teardown, so idle ticks only gate dead-flag checks.
                    stream.set_read_timeout(Some(self.cfg.io_timeout))?;
                    stream.set_write_timeout(Some(self.cfg.io_timeout))?;
                    return Ok(stream);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// The live connection, dialing if necessary. Honors the fail-fast
    /// backoff window; a successful dial resets the backoff.
    fn connection(&self) -> Result<Arc<MuxConn>, StoreError> {
        let mut state = self.state.lock();
        let mut carcass = None;
        if let Some(conn) = &state.conn {
            if !conn.shared.is_dead() {
                return Ok(Arc::clone(conn));
            }
            // The demux reader noticed the death before any caller did
            // (e.g. a server restart while we were idle): retire the
            // connection and open the backoff window.
            carcass = state.conn.take();
            self.open_backoff(&mut state);
        }
        let result = (|| {
            if let Some(retry_at) = state.retry_at {
                if Instant::now() < retry_at {
                    return Err(StoreError::Unavailable); // fail fast in the window
                }
            }
            match self.dial() {
                Ok(stream) => {
                    let conn = Arc::new(MuxConn::open(stream, Arc::clone(&self.stats)));
                    state.conn = Some(Arc::clone(&conn));
                    state.backoff = self.cfg.backoff_initial;
                    state.retry_at = None;
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                    Ok(conn)
                }
                Err(_) => {
                    self.open_backoff(&mut state);
                    Err(StoreError::Unavailable)
                }
            }
        })();
        drop(state);
        drop(carcass); // outside the state lock: may join the demux reader
        result
    }

    fn open_backoff(&self, state: &mut ClientState) {
        state.retry_at = Some(Instant::now() + state.backoff);
        state.backoff = (state.backoff * 2).min(self.cfg.backoff_max);
    }

    /// Retires `failed` if it is still the current connection, opening
    /// the backoff window. Concurrent callers failing on the same
    /// connection retire it once (and double the backoff once).
    fn retire(&self, failed: &Arc<MuxConn>) {
        let mut state = self.state.lock();
        let mut carcass = None;
        if let Some(current) = &state.conn {
            if Arc::ptr_eq(current, failed) {
                carcass = state.conn.take();
                self.open_backoff(&mut state);
            }
        }
        drop(state);
        drop(carcass);
    }

    /// One pipelined exchange. On any failure the connection is retired,
    /// the backoff window opens (doubling up to the ceiling), every
    /// in-flight operation on it — batched or awaiting a response — fails
    /// as [`StoreError::Unavailable`], and the next operation after the
    /// window redials.
    fn call(&self, request: &Request) -> Result<Response, StoreError> {
        let result = self.try_call(request);
        if result.is_err() {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn try_call(&self, request: &Request) -> Result<Response, StoreError> {
        let conn = self.connection()?;
        match conn.shared.call(request, self.cfg.io_timeout) {
            Ok(response) => Ok(response),
            Err(e) => {
                // Timeout, transport error, or desync: the pipelined
                // stream cannot be trusted to correlate anything further.
                conn.shared.kill();
                self.retire(&conn);
                Err(e)
            }
        }
    }
}

impl Drop for TcpStore {
    fn drop(&mut self) {
        // Retire the connection explicitly so the demux reader is joined
        // even when callers still hold clones of the Arc.
        if let Some(conn) = self.state.lock().conn.take() {
            conn.shared.kill();
        }
    }
}

impl Store for TcpStore {
    fn publish(&self, site: SiteId, partition: Snapshot) -> Result<(), StoreError> {
        let request = Request::Publish { site, tenant: self.tenant, snapshot: partition };
        match self.call(&request)? {
            Response::Ok => Ok(()),
            _ => Err(StoreError::Unavailable),
        }
    }

    fn publish_full(
        &self,
        site: SiteId,
        partition: Snapshot,
        version: u64,
    ) -> Result<(), StoreError> {
        let request =
            Request::PublishFull { site, tenant: self.tenant, snapshot: partition, version };
        match self.call(&request)? {
            Response::Ok => Ok(()),
            _ => Err(StoreError::Unavailable),
        }
    }

    fn publish_deltas(
        &self,
        site: SiteId,
        base: u64,
        deltas: &[Delta],
        next: u64,
    ) -> Result<DeltaAck, StoreError> {
        let request = Request::PublishDeltas {
            site,
            tenant: self.tenant,
            base,
            deltas: deltas.to_vec(),
            next,
        };
        match self.call(&request)? {
            Response::Applied => Ok(DeltaAck::Applied),
            Response::NeedSnapshot => Ok(DeltaAck::NeedSnapshot),
            _ => Err(StoreError::Unavailable),
        }
    }

    fn publish_stats(&self, site: SiteId, stats: SiteStats) -> Result<(), StoreError> {
        match self.call(&Request::PublishStats { site, tenant: self.tenant, stats })? {
            Response::Ok => Ok(()),
            _ => Err(StoreError::Unavailable),
        }
    }

    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
        match self.call(&Request::FetchAll { tenant: self.tenant })? {
            Response::View(view) => Ok(view),
            _ => Err(StoreError::Unavailable),
        }
    }

    fn remove(&self, site: SiteId) -> Result<(), StoreError> {
        match self.call(&Request::Remove { site, tenant: self.tenant })? {
            Response::Ok => Ok(()),
            _ => Err(StoreError::Unavailable),
        }
    }
}
