//! [`TcpStore`]: the networked [`Store`] client.
//!
//! One pooled connection to an `armus-stored` server, speaking the
//! [`crate::wire`] protocol. Every transport failure — connect refusal,
//! timeout, mid-frame hangup, protocol desync — maps onto
//! [`StoreError::Unavailable`], the exact error the sites' publisher and
//! checker loops already tolerate by skipping the round; the network
//! changes *where* the store lives, not the failure model. Reconnects are
//! paced by a bounded exponential backoff: while the backoff window is
//! open, operations fail fast instead of hammering a dead server with
//! connect attempts every publish period.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use armus_core::{Delta, Snapshot};
use parking_lot::Mutex;

use crate::store::{DeltaAck, SiteId, Store, StoreError};
use crate::wire::{self, Request, Response};

/// Tuning of a [`TcpStore`].
#[derive(Clone, Copy, Debug)]
pub struct TcpStoreConfig {
    /// Bound on one connect attempt.
    pub connect_timeout: Duration,
    /// Bound on reading one response / writing one request.
    pub io_timeout: Duration,
    /// First reconnect backoff after a failure.
    pub backoff_initial: Duration,
    /// Backoff ceiling (exponential doubling stops here).
    pub backoff_max: Duration,
}

impl Default for TcpStoreConfig {
    fn default() -> Self {
        TcpStoreConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(2),
            backoff_initial: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
        }
    }
}

/// The client's connection state: an open stream, or the backoff schedule
/// for the next attempt.
struct ConnState {
    stream: Option<TcpStream>,
    /// Next backoff delay to impose after a failure.
    backoff: Duration,
    /// Operations fail fast until this instant.
    retry_at: Option<Instant>,
}

/// A [`Store`] over TCP.
pub struct TcpStore {
    addr: String,
    cfg: TcpStoreConfig,
    conn: Mutex<ConnState>,
    reconnects: AtomicU64,
    failures: AtomicU64,
}

impl TcpStore {
    /// A store client for the server at `addr` (e.g. `127.0.0.1:7007`).
    /// Connection is lazy: the first operation dials.
    pub fn new(addr: impl Into<String>) -> TcpStore {
        TcpStore::with_config(addr, TcpStoreConfig::default())
    }

    /// A store client with explicit timeouts and backoff bounds.
    pub fn with_config(addr: impl Into<String>, cfg: TcpStoreConfig) -> TcpStore {
        TcpStore {
            addr: addr.into(),
            cfg,
            conn: Mutex::new(ConnState {
                stream: None,
                backoff: cfg.backoff_initial,
                retry_at: None,
            }),
            reconnects: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// The server address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Successful (re)connects so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Operations that failed as [`StoreError::Unavailable`] so far
    /// (fast-failed backoff windows included).
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Sends the in-band drain command ([`Request::Shutdown`]) to the
    /// server — the administrative stop used by cluster teardown.
    pub fn shutdown_server(&self) -> Result<(), StoreError> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            _ => Err(StoreError::Unavailable),
        }
    }

    fn dial(&self) -> io::Result<TcpStream> {
        let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no address resolved");
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.cfg.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(self.cfg.io_timeout))?;
                    stream.set_write_timeout(Some(self.cfg.io_timeout))?;
                    return Ok(stream);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// One request/response exchange. On any failure the connection is
    /// dropped, the backoff window opens (doubling up to the ceiling), and
    /// the caller sees [`StoreError::Unavailable`]; the next operation
    /// after the window redials. A successful exchange resets the backoff.
    fn call(&self, request: &Request) -> Result<Response, StoreError> {
        let mut conn = self.conn.lock();
        if conn.stream.is_none() {
            if let Some(retry_at) = conn.retry_at {
                if Instant::now() < retry_at {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    return Err(StoreError::Unavailable); // fail fast in the window
                }
            }
            match self.dial() {
                Ok(stream) => {
                    conn.stream = Some(stream);
                    conn.backoff = self.cfg.backoff_initial;
                    conn.retry_at = None;
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => return Err(self.note_failure(&mut conn)),
            }
        }
        let stream = conn.stream.as_mut().expect("connected above");
        let exchange = wire::write_message(stream, request)
            .and_then(|()| wire::read_message::<_, Response>(stream));
        match exchange {
            Ok(Some(response)) => Ok(response),
            // EOF where a response was due, or any transport/protocol
            // error: the stream is useless now.
            Ok(None) | Err(_) => Err(self.note_failure(&mut conn)),
        }
    }

    fn note_failure(&self, conn: &mut ConnState) -> StoreError {
        conn.stream = None;
        conn.retry_at = Some(Instant::now() + conn.backoff);
        conn.backoff = (conn.backoff * 2).min(self.cfg.backoff_max);
        self.failures.fetch_add(1, Ordering::Relaxed);
        StoreError::Unavailable
    }
}

impl Store for TcpStore {
    fn publish(&self, site: SiteId, partition: Snapshot) -> Result<(), StoreError> {
        match self.call(&Request::Publish { site, snapshot: partition })? {
            Response::Ok => Ok(()),
            _ => Err(StoreError::Unavailable),
        }
    }

    fn publish_full(
        &self,
        site: SiteId,
        partition: Snapshot,
        version: u64,
    ) -> Result<(), StoreError> {
        match self.call(&Request::PublishFull { site, snapshot: partition, version })? {
            Response::Ok => Ok(()),
            _ => Err(StoreError::Unavailable),
        }
    }

    fn publish_deltas(
        &self,
        site: SiteId,
        base: u64,
        deltas: &[Delta],
        next: u64,
    ) -> Result<DeltaAck, StoreError> {
        let request = Request::PublishDeltas { site, base, deltas: deltas.to_vec(), next };
        match self.call(&request)? {
            Response::Applied => Ok(DeltaAck::Applied),
            Response::NeedSnapshot => Ok(DeltaAck::NeedSnapshot),
            _ => Err(StoreError::Unavailable),
        }
    }

    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
        match self.call(&Request::FetchAll)? {
            Response::View(view) => Ok(view),
            _ => Err(StoreError::Unavailable),
        }
    }

    fn remove(&self, site: SiteId) -> Result<(), StoreError> {
        match self.call(&Request::Remove { site })? {
            Response::Ok => Ok(()),
            _ => Err(StoreError::Unavailable),
        }
    }
}
