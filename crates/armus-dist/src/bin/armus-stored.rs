//! `armus-stored` — the standalone networked global store (paper §5.2's
//! Redis role), serving the Armus wire protocol.
//!
//! ```text
//! armus-stored [--listen ADDR] [--lease-ms N | --no-lease]
//!              [--read-timeout-ms N] [--write-timeout-ms N]
//!
//!   --listen ADDR          bind address (default 127.0.0.1:7007; use
//!                          port 0 for an ephemeral port)
//!   --lease-ms N           partition lease TTL (default 5000); a site
//!                          that stops publishing for N ms expires
//!   --no-lease             disable partition expiry
//!   --read-timeout-ms N    reap connections idle for N ms (default 30000)
//!   --write-timeout-ms N   bound on writing one response (default 5000)
//! ```
//!
//! The server speaks wire protocol v1 (legacy ping-pong) and v2 (flat
//! frames, pipelined with correlation ids), negotiated per frame:
//! every connection can carry bursts of in-flight requests and is
//! answered out of a per-connection reply queue, so one socket serves a
//! whole multi-site client process.
//!
//! On startup the server prints `armus-stored listening on ADDR` to
//! stdout (parents scrape the ephemeral port from it) and logs to stderr.
//! It exits on the in-band [`Request::Shutdown`] drain command — the
//! SIGTERM equivalent — finishing in-flight requests first.
//!
//! [`Request::Shutdown`]: armus_dist::wire::Request::Shutdown

use std::io::Write;
use std::time::Duration;

use armus_dist::server::{StoredConfig, StoredServer};

fn usage(err: &str) -> ! {
    eprintln!("armus-stored: {err}");
    eprintln!(
        "usage: armus-stored [--listen ADDR] [--lease-ms N | --no-lease] \
         [--read-timeout-ms N] [--write-timeout-ms N]"
    );
    std::process::exit(2);
}

fn millis(args: &mut impl Iterator<Item = String>, flag: &str) -> Duration {
    match args.next().and_then(|v| v.parse::<u64>().ok()) {
        Some(n) => Duration::from_millis(n),
        None => usage(&format!("{flag} needs a millisecond count")),
    }
}

fn main() {
    let mut listen = "127.0.0.1:7007".to_string();
    let mut cfg = StoredConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => usage("--listen needs an address"),
            },
            "--lease-ms" => cfg.lease = Some(millis(&mut args, "--lease-ms")),
            "--no-lease" => cfg.lease = None,
            "--read-timeout-ms" => cfg.read_timeout = millis(&mut args, "--read-timeout-ms"),
            "--write-timeout-ms" => cfg.write_timeout = millis(&mut args, "--write-timeout-ms"),
            other => usage(&format!("unknown option {other}")),
        }
    }

    let server = match StoredServer::bind(listen.as_str(), cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("armus-stored: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    // The banner parents scrape the (possibly ephemeral) port from.
    println!("armus-stored listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "armus-stored: serving on {} (protocol v1+v2 pipelined, lease {:?}, read timeout {:?})",
        server.local_addr(),
        cfg.lease,
        cfg.read_timeout
    );
    server.wait();
    eprintln!("armus-stored: drained, exiting");
}
