//! `armus-stored` — the standalone networked global store (paper §5.2's
//! Redis role), serving the Armus wire protocol.
//!
//! ```text
//! armus-stored [--listen ADDR] [--lease-ms N | --no-lease]
//!              [--read-timeout-ms N] [--write-timeout-ms N]
//!              [--check-period-ms N] [--metrics-period-ms N]
//!
//!   --listen ADDR          bind address (default 127.0.0.1:7007; use
//!                          port 0 for an ephemeral port)
//!   --lease-ms N           partition lease TTL (default 5000); a site
//!                          that stops publishing for N ms expires
//!   --no-lease             disable partition expiry
//!   --read-timeout-ms N    reap connections idle for N ms (default 30000)
//!   --write-timeout-ms N   bound on writing one response (default 5000)
//!   --check-period-ms N    server-side checker cadence for subscribers
//!                          (default 100)
//!   --metrics-period-ms N  log a metrics line to stderr every N ms
//!                          (default off)
//! ```
//!
//! The server speaks wire protocol v1 (legacy ping-pong) and v2 (flat
//! frames, pipelined with correlation ids), negotiated per frame:
//! every connection can carry bursts of in-flight requests and is
//! answered out of a per-connection reply queue, so one socket serves a
//! whole multi-site client process.
//!
//! On startup the server prints `armus-stored listening on ADDR` to
//! stdout (parents scrape the ephemeral port from it) and logs to stderr.
//! It exits on the in-band [`Request::Shutdown`] drain command — the
//! SIGTERM equivalent — finishing in-flight requests first.
//!
//! [`Request::Shutdown`]: armus_dist::wire::Request::Shutdown

use std::io::Write;
use std::time::Duration;

use armus_dist::server::{StoredConfig, StoredServer};

fn usage(err: &str) -> ! {
    eprintln!("armus-stored: {err}");
    eprintln!(
        "usage: armus-stored [--listen ADDR] [--lease-ms N | --no-lease] \
         [--read-timeout-ms N] [--write-timeout-ms N] \
         [--check-period-ms N] [--metrics-period-ms N]"
    );
    std::process::exit(2);
}

fn millis(args: &mut impl Iterator<Item = String>, flag: &str) -> Duration {
    match args.next().and_then(|v| v.parse::<u64>().ok()) {
        Some(n) => Duration::from_millis(n),
        None => usage(&format!("{flag} needs a millisecond count")),
    }
}

fn main() {
    let mut listen = "127.0.0.1:7007".to_string();
    let mut cfg = StoredConfig::default();
    let mut metrics_period: Option<Duration> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => usage("--listen needs an address"),
            },
            "--lease-ms" => cfg.lease = Some(millis(&mut args, "--lease-ms")),
            "--no-lease" => cfg.lease = None,
            "--read-timeout-ms" => cfg.read_timeout = millis(&mut args, "--read-timeout-ms"),
            "--write-timeout-ms" => cfg.write_timeout = millis(&mut args, "--write-timeout-ms"),
            "--check-period-ms" => cfg.check_period = millis(&mut args, "--check-period-ms"),
            "--metrics-period-ms" => {
                metrics_period = Some(millis(&mut args, "--metrics-period-ms"));
            }
            other => usage(&format!("unknown option {other}")),
        }
    }

    let server = match StoredServer::bind(listen.as_str(), cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("armus-stored: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    // The banner parents scrape the (possibly ephemeral) port from.
    println!("armus-stored listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "armus-stored: serving on {} (protocol v1+v2 pipelined, lease {:?}, read timeout {:?})",
        server.local_addr(),
        cfg.lease,
        cfg.read_timeout
    );
    if let Some(period) = metrics_period {
        // In-process sampling (no wire round trip), so the scrape itself
        // does not inflate the served-request counters it reports.
        let handle = server.metrics_handle();
        std::thread::Builder::new()
            .name("armus-stored-metrics".into())
            .spawn(move || {
                while !handle.is_shutdown() {
                    std::thread::sleep(period);
                    let m = handle.sample();
                    let tenants: Vec<String> = m
                        .tenants
                        .iter()
                        .map(|t| {
                            format!(
                                "{}: {} partitions, {} expiries, {} subscribers",
                                t.tenant, t.partitions, t.lease_expiries, t.subscribers
                            )
                        })
                        .collect();
                    eprintln!(
                        "armus-stored: metrics served={} errors={} conns={} subs={} \
                         publishes={}+{}Δ fetches={} removes={} streamed={} \
                         reply-queue-max={} [{}]",
                        m.served,
                        m.protocol_errors,
                        m.live_connections,
                        m.subscribers,
                        m.publishes,
                        m.delta_publishes,
                        m.fetches,
                        m.removes,
                        m.reports_streamed,
                        m.reply_queue_max,
                        tenants.join("; ")
                    );
                }
            })
            .expect("spawn metrics logger");
    }
    server.wait();
    eprintln!("armus-stored: drained, exiting");
}
