//! `armus-stored`: the networked global store (paper §5.2's Redis role),
//! embeddable in-process ([`StoredServer`]) or run standalone (the
//! `armus-stored` binary in `src/bin/`).
//!
//! The server is a thread-per-connection loop over the same [`MemStore`]
//! core the in-process cluster uses, speaking the versioned frame protocol
//! of [`crate::wire`]. Connections are **pipelined**: each `read(2)` may
//! deliver a burst of frames (a [`wire::FrameBuffer`] reassembles them
//! across reads), every frame is handled in arrival order, and the
//! responses accumulate in a per-connection reply queue flushed with one
//! write per burst — a multiplexing client ([`crate::tcp::TcpStore`])
//! keeps dozens of requests in flight on one socket. Version negotiation
//! is per-frame: a frame that arrived as v1 is answered as v1 (strict
//! ping-pong peers keep working), a v2 frame is answered as v2 with its
//! correlation id echoed. Per-connection read/write timeouts reap dead
//! peers, partitions carry a lease TTL refreshed by every publish (crashed
//! sites expire instead of ghosting the merged view), and shutdown is a
//! graceful drain: a flag — set in-band by
//! [`crate::wire::Request::Shutdown`], the SIGTERM equivalent — stops the
//! accept loop, lets in-flight requests finish, and joins every
//! connection thread.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use armus_core::{DeadlockReport, ModelChoice, Snapshot, DEFAULT_SG_THRESHOLD};
use parking_lot::Mutex;

use crate::detector::{check_store, ReportDedup};
use crate::store::{MemStore, SiteId, Store, StoreError, TenantId};
use crate::wire::{self, Request, Response, ServerMetrics, TenantMetrics, WireError};

/// Default partition lease: a site that has not published for this long is
/// considered dead and its partition stops contributing to fetches. Must
/// comfortably exceed the sites' publish period (50 ms by default).
pub const DEFAULT_LEASE: Duration = Duration::from_secs(5);

/// Default idle timeout before a silent connection is reaped.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Default bound on writing one response back to a peer.
pub const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Default cadence of the server-side checker that feeds subscribers
/// (paper's 200 ms check period, halved so a push usually beats a
/// client's own polling round).
pub const DEFAULT_CHECK_PERIOD: Duration = Duration::from_millis(100);

/// Granularity of the accept loop's shutdown poll and of a connection's
/// first-byte wait (bounds drain latency without burning CPU).
const POLL_PERIOD: Duration = Duration::from_millis(25);

/// Tuning of a [`StoredServer`].
#[derive(Clone, Copy, Debug)]
pub struct StoredConfig {
    /// Partition lease TTL; `None` disables expiry.
    pub lease: Option<Duration>,
    /// Reap a connection that sends nothing for this long.
    pub read_timeout: Duration,
    /// Bound on writing one response.
    pub write_timeout: Duration,
    /// How often the server-side checker scans subscribed tenants' merged
    /// views for deadlocks to stream.
    pub check_period: Duration,
}

impl Default for StoredConfig {
    fn default() -> Self {
        StoredConfig {
            lease: Some(DEFAULT_LEASE),
            read_timeout: DEFAULT_READ_TIMEOUT,
            write_timeout: DEFAULT_WRITE_TIMEOUT,
            check_period: DEFAULT_CHECK_PERIOD,
        }
    }
}

/// A running store server.
pub struct StoredServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    checker: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// One connection's registration for streamed reports: which tenant it
/// watches, the correlation id and wire version its report frames must
/// carry, and a weak handle to the connection's push buffer (dropping the
/// connection unregisters it implicitly).
struct Subscriber {
    tenant: TenantId,
    corr: u64,
    version: u8,
    queue: Weak<Mutex<Vec<u8>>>,
}

/// The subscription registry: connections register their push buffers,
/// the server-side checker fans fresh reports out to them.
#[derive(Default)]
struct SubHub {
    subs: Mutex<Vec<Subscriber>>,
}

impl SubHub {
    fn subscribe(&self, tenant: TenantId, corr: u64, version: u8, queue: &Arc<Mutex<Vec<u8>>>) {
        self.subs.lock().push(Subscriber { tenant, corr, version, queue: Arc::downgrade(queue) });
    }

    /// Tenants with at least one live subscriber (pruning dead ones).
    fn tenants(&self) -> Vec<TenantId> {
        let mut subs = self.subs.lock();
        subs.retain(|s| s.queue.strong_count() > 0);
        let mut tenants: Vec<TenantId> = subs.iter().map(|s| s.tenant).collect();
        tenants.sort_unstable();
        tenants.dedup();
        tenants
    }

    /// Live subscriptions: the total and the per-tenant breakdown.
    fn counts(&self) -> (u64, Vec<(TenantId, u64)>) {
        let mut subs = self.subs.lock();
        subs.retain(|s| s.queue.strong_count() > 0);
        let mut per_tenant: BTreeMap<TenantId, u64> = BTreeMap::new();
        for s in subs.iter() {
            *per_tenant.entry(s.tenant).or_insert(0) += 1;
        }
        (subs.len() as u64, per_tenant.into_iter().collect())
    }

    /// Queues `report` for every live subscriber of `tenant`, each framed
    /// in the version (and with the correlation id) its subscription
    /// arrived in. Returns how many subscribers received it.
    fn push(&self, tenant: TenantId, report: &DeadlockReport) -> u64 {
        let response = Response::Report(report.clone());
        let mut delivered = 0;
        self.subs.lock().retain(|s| {
            let Some(queue) = s.queue.upgrade() else { return false };
            if s.tenant != tenant {
                return true;
            }
            let mut q = queue.lock();
            let ok = if s.version == wire::WIRE_V1 {
                match wire::encode_frame(&response) {
                    Ok(frame) => {
                        q.extend_from_slice(&frame);
                        true
                    }
                    Err(_) => false,
                }
            } else {
                wire::encode_frame_v2_into(&mut q, s.corr, &response).is_ok()
            };
            if ok {
                delivered += 1;
            }
            true
        });
        delivered
    }
}

/// A read-only [`Store`] view of one tenant's partitions, fed to the
/// server-side checker: `fetch_all` is the only operation
/// [`check_store`] uses, and it must see exactly the tenant's slice.
struct TenantView<'a> {
    store: &'a MemStore,
    tenant: TenantId,
}

impl Store for TenantView<'_> {
    fn publish(&self, _site: SiteId, _partition: Snapshot) -> Result<(), StoreError> {
        unreachable!("the server-side checker only fetches")
    }

    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
        self.store.fetch_all_in(self.tenant)
    }

    fn remove(&self, _site: SiteId) -> Result<(), StoreError> {
        unreachable!("the server-side checker only fetches")
    }
}

/// State shared between the accept loop, connection threads, and the
/// server-side checker.
struct Shared {
    store: MemStore,
    cfg: StoredConfig,
    shutdown: Arc<AtomicBool>,
    /// Finished-or-running connection threads, joined on drain.
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// The subscription registry.
    hub: SubHub,
    /// Served requests (all kinds), for observability and tests.
    served: AtomicU64,
    /// Connections dropped for protocol violations (malformed frames,
    /// version mismatches) — never panics, always a clean close.
    protocol_errors: AtomicU64,
    /// Connections currently open (a gauge, not a counter).
    live_connections: AtomicU64,
    /// Full-snapshot publish requests served (legacy + versioned).
    publishes: AtomicU64,
    /// Delta publish requests served.
    delta_publishes: AtomicU64,
    /// `FetchAll` requests served.
    fetches: AtomicU64,
    /// `Remove` requests served.
    removes: AtomicU64,
    /// Reports pushed to subscribers by the server-side checker.
    reports_streamed: AtomicU64,
    /// High-water mark of replies queued within one burst on any
    /// connection.
    reply_queue_max: AtomicU64,
}

impl Shared {
    /// Assembles the metrics snapshot answered to [`Request::Metrics`].
    fn metrics(&self) -> ServerMetrics {
        let (total_subs, per_tenant_subs) = self.hub.counts();
        let mut tenants: BTreeMap<TenantId, TenantMetrics> = BTreeMap::new();
        for (tenant, partitions) in self.store.tenant_partitions() {
            tenants.entry(tenant).or_insert_with(|| TenantMetrics::new(tenant)).partitions =
                partitions;
        }
        for (tenant, expiries) in self.store.tenant_expiries() {
            tenants.entry(tenant).or_insert_with(|| TenantMetrics::new(tenant)).lease_expiries =
                expiries;
        }
        for (tenant, subscribers) in per_tenant_subs {
            tenants.entry(tenant).or_insert_with(|| TenantMetrics::new(tenant)).subscribers =
                subscribers;
        }
        ServerMetrics {
            served: self.served.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            live_connections: self.live_connections.load(Ordering::Relaxed),
            subscribers: total_subs,
            publishes: self.publishes.load(Ordering::Relaxed),
            delta_publishes: self.delta_publishes.load(Ordering::Relaxed),
            fetches: self.fetches.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            reports_streamed: self.reports_streamed.load(Ordering::Relaxed),
            reply_queue_max: self.reply_queue_max.load(Ordering::Relaxed),
            tenants: tenants.into_values().collect(),
            sites: self.store.site_stats(),
        }
    }
}

/// The server-side checker loop: every
/// [`StoredConfig::check_period`], run the distributed check over each
/// subscribed tenant's merged view and stream fresh reports to that
/// tenant's subscribers. Detection happens *at the store* — subscribers
/// learn about deadlocks without a single `fetch_all` poll, and
/// cross-tenant isolation holds because each check round sees exactly one
/// tenant's partitions ([`TenantView`]).
fn checker_loop(shared: Arc<Shared>) {
    let mut dedups: HashMap<TenantId, ReportDedup> = HashMap::new();
    let mut next_check = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Park in drain-observable slices until the next round is due.
        let now = Instant::now();
        if now < next_check {
            std::thread::sleep((next_check - now).min(POLL_PERIOD));
            continue;
        }
        next_check = now + shared.cfg.check_period;
        for tenant in shared.hub.tenants() {
            let view = TenantView { store: &shared.store, tenant };
            let Ok(check) = check_store(&view, ModelChoice::Auto, DEFAULT_SG_THRESHOLD) else {
                continue; // MemStore cannot actually fail; stay total anyway
            };
            if let Some(report) = check.report {
                if dedups.entry(tenant).or_default().is_new(&report) {
                    let delivered = shared.hub.push(tenant, &report);
                    shared.reports_streamed.fetch_add(delivered, Ordering::Relaxed);
                }
            }
        }
    }
}

impl StoredServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop.
    pub fn bind(addr: impl ToSocketAddrs, cfg: StoredConfig) -> io::Result<StoredServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let store = match cfg.lease {
            Some(ttl) => MemStore::with_lease(ttl),
            None => MemStore::new(),
        };
        let shared = Arc::new(Shared {
            store,
            cfg,
            shutdown: Arc::clone(&shutdown),
            conns: Mutex::new(Vec::new()),
            hub: SubHub::default(),
            served: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            live_connections: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            delta_publishes: AtomicU64::new(0),
            fetches: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            reports_streamed: AtomicU64::new(0),
            reply_queue_max: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("armus-stored-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn accept loop")
        };
        let checker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("armus-stored-checker".into())
                .spawn(move || checker_loop(shared))
                .expect("spawn server checker")
        };
        Ok(StoredServer { addr, shutdown, accept: Some(accept), checker: Some(checker), shared })
    }

    /// The bound address (the actual port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests received so far (across all connections).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Connections closed on protocol violations so far.
    pub fn protocol_errors(&self) -> u64 {
        self.shared.protocol_errors.load(Ordering::Relaxed)
    }

    /// The same observability snapshot [`Request::Metrics`] answers over
    /// the wire, for embedded servers and benches.
    pub fn metrics(&self) -> ServerMetrics {
        self.shared.metrics()
    }

    /// A detachable sampling handle onto this server's metrics — lets the
    /// standalone binary's periodic logger keep observing counters while
    /// the main thread is parked in [`StoredServer::wait`].
    pub fn metrics_handle(&self) -> MetricsHandle {
        MetricsHandle { shared: Arc::clone(&self.shared) }
    }

    /// Has a drain been requested (locally or via
    /// [`Request::Shutdown`][crate::wire::Request::Shutdown])?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain and blocks until the accept loop and all
    /// connection threads have exited.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join();
    }

    /// Blocks until the server drains (a peer sent
    /// [`Request::Shutdown`][crate::wire::Request::Shutdown], or
    /// [`StoredServer::shutdown`] ran) — the standalone binary's main
    /// loop.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.checker.take() {
            let _ = h.join();
        }
        // After the accept loop exits no new connection threads appear;
        // drain the ones that ran.
        let conns = std::mem::take(&mut *self.shared.conns.lock());
        for h in conns {
            let _ = h.join();
        }
    }
}

impl Drop for StoredServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join();
    }
}

/// A cloneable handle sampling a running [`StoredServer`]'s metrics
/// without a wire round trip (so the scrape itself does not inflate the
/// served-request counters).
#[derive(Clone)]
pub struct MetricsHandle {
    shared: Arc<Shared>,
}

impl MetricsHandle {
    /// Samples the live [`ServerMetrics`].
    pub fn sample(&self) -> ServerMetrics {
        self.shared.metrics()
    }

    /// Whether the server has drained — the periodic logger's stop
    /// condition.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared2 = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("armus-stored-conn".into())
                    .spawn(move || serve_connection(stream, shared2))
                    .expect("spawn connection thread");
                let mut conns = shared.conns.lock();
                // Reap finished handles so a long-lived server does not
                // accumulate one per past connection.
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_PERIOD);
            }
            Err(_) => std::thread::sleep(POLL_PERIOD),
        }
    }
}

/// Serves one connection until the peer hangs up, violates the protocol,
/// idles past the read timeout, or the server drains.
///
/// The loop reads in [`POLL_PERIOD`] slices (so the drain flag stays
/// observed even mid-frame), extracts every complete frame the read
/// delivered, handles them in order, and answers the whole burst with one
/// flush of the reply queue — each reply in the version its request
/// arrived in.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_PERIOD)).is_err() {
        return;
    }
    shared.live_connections.fetch_add(1, Ordering::Relaxed);
    let mut stream = stream;
    let mut frames = wire::FrameBuffer::new();
    let mut replies: Vec<u8> = Vec::new();
    // Server-initiated frames (streamed reports): the checker queues them
    // here via the SubHub's weak handle; the loop drains them between
    // reads, so pushes ride the same [`POLL_PERIOD`] cadence as the drain
    // poll even on an otherwise idle connection.
    let pushes: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let mut chunk = vec![0u8; 64 * 1024];
    // Both the idle bound and the mid-frame stall bound: a peer that goes
    // quiet for the read timeout is reaped whether or not it left half a
    // frame behind. A subscribed peer is legitimately quiet forever, so
    // subscribing exempts the connection from idle reaping.
    let mut last_data = Instant::now();
    let mut subscribed = false;
    'conn: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer hung up
            Ok(n) => {
                last_data = Instant::now();
                frames.feed(&chunk[..n]);
                let mut drain = false;
                let mut burst = 0u64;
                while !drain {
                    match frames.next_frame::<Request>() {
                        Ok(Some(frame)) => {
                            shared.served.fetch_add(1, Ordering::Relaxed);
                            let (response, drain_after) = handle(&frame, &shared, &pushes);
                            subscribed |= matches!(frame.msg, Request::Subscribe { .. });
                            if drain_after {
                                // Set the flag *before* answering: a drain
                                // must not be lost to a failed response
                                // write (the peer may fire-and-close), or
                                // the server lives forever.
                                shared.shutdown.store(true, Ordering::SeqCst);
                                drain = true;
                            }
                            if encode_reply(&mut replies, &frame, &response).is_err() {
                                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                break 'conn;
                            }
                            burst += 1;
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Malformed traffic: answer what the burst
                            // already earned, close, never panic. There
                            // is no resync point mid-stream — the peer
                            // reconnects.
                            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            let _ = flush_replies(&mut stream, &mut replies, &shared);
                            break 'conn;
                        }
                    }
                }
                shared.reply_queue_max.fetch_max(burst, Ordering::Relaxed);
                if flush_replies(&mut stream, &mut replies, &shared).is_err() || drain {
                    break;
                }
                if flush_pushes(&mut stream, &pushes, &shared).is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if flush_pushes(&mut stream, &pushes, &shared).is_err() {
                    break;
                }
                if !subscribed && last_data.elapsed() >= shared.cfg.read_timeout {
                    break; // reap the idle (or mid-frame stalled) peer
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    shared.live_connections.fetch_sub(1, Ordering::Relaxed);
}

/// Appends the response frame for `request` to the reply queue, in the
/// version the request arrived in (v1 → v1 tree frame, v2 → flat frame
/// echoing the correlation id).
fn encode_reply(
    out: &mut Vec<u8>,
    request: &wire::Frame<Request>,
    response: &Response,
) -> Result<(), WireError> {
    if request.version == wire::WIRE_V1 {
        out.extend_from_slice(&wire::encode_frame(response)?);
        Ok(())
    } else {
        wire::encode_frame_v2_into(out, request.corr, response)
    }
}

/// Writes the queued replies for one burst in a single `write_all` and
/// clears the queue.
fn flush_replies(stream: &mut TcpStream, replies: &mut Vec<u8>, shared: &Shared) -> io::Result<()> {
    if replies.is_empty() {
        return Ok(());
    }
    stream.set_write_timeout(Some(shared.cfg.write_timeout))?;
    let result = stream.write_all(replies);
    replies.clear();
    result
}

/// Writes any server-initiated frames the checker queued for this
/// connection (streamed reports). The queue is swapped out under the lock
/// and written outside it, so a slow peer never blocks the checker.
fn flush_pushes(
    stream: &mut TcpStream,
    pushes: &Arc<Mutex<Vec<u8>>>,
    shared: &Shared,
) -> io::Result<()> {
    let queued = std::mem::take(&mut *pushes.lock());
    if queued.is_empty() {
        return Ok(());
    }
    stream.set_write_timeout(Some(shared.cfg.write_timeout))?;
    stream.write_all(&queued)
}

/// Rejects a publish whose ids could not survive the checkers'
/// site-namespacing merge: the site must fit the tag range and every
/// task id must be un-namespaced (≤ [`armus_core::MAX_LOCAL_TASK`]).
/// Catching this at the boundary gives the out-of-protocol peer an
/// explicit error instead of a silently skipped partition.
fn validate_publish<'a>(
    site: crate::store::SiteId,
    mut tasks: impl Iterator<Item = &'a armus_core::TaskId>,
) -> Option<Response> {
    if site.0 > armus_core::MAX_SITE_TAG {
        return Some(Response::Error(format!("site {} beyond the namespace tag range", site.0)));
    }
    tasks
        .find(|t| t.checked_with_site(site.0).is_none())
        .map(|task| Response::Error(format!("task id {:#x} cannot be site-namespaced", task.0)))
}

/// Task ids a delta interval touches.
fn delta_tasks(deltas: &[armus_core::Delta]) -> impl Iterator<Item = &armus_core::TaskId> {
    deltas.iter().map(|d| match d {
        armus_core::Delta::Block(info) => &info.task,
        armus_core::Delta::Unblock(task) => task,
    })
}

/// Applies one request to the store, dispatching every data-path
/// operation into the request's tenant namespace. The boolean asks the
/// connection loop to begin the drain after responding.
fn handle(
    frame: &wire::Frame<Request>,
    shared: &Shared,
    pushes: &Arc<Mutex<Vec<u8>>>,
) -> (Response, bool) {
    let store = &shared.store;
    let request = &frame.msg;
    let response = match request {
        Request::Publish { site, tenant, snapshot } => {
            shared.publishes.fetch_add(1, Ordering::Relaxed);
            match validate_publish(*site, snapshot.tasks.iter().map(|b| &b.task)) {
                Some(rejection) => rejection,
                None => match store.publish_in(*tenant, *site, snapshot.clone()) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error(e.to_string()),
                },
            }
        }
        Request::PublishFull { site, tenant, snapshot, version } => {
            shared.publishes.fetch_add(1, Ordering::Relaxed);
            match validate_publish(*site, snapshot.tasks.iter().map(|b| &b.task)) {
                Some(rejection) => rejection,
                None => match store.publish_full_in(*tenant, *site, snapshot.clone(), *version) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error(e.to_string()),
                },
            }
        }
        Request::PublishDeltas { site, tenant, base, deltas, next } => {
            shared.delta_publishes.fetch_add(1, Ordering::Relaxed);
            match validate_publish(*site, delta_tasks(deltas)) {
                Some(rejection) => rejection,
                None => match store.publish_deltas_in(*tenant, *site, *base, deltas, *next) {
                    Ok(crate::store::DeltaAck::Applied) => Response::Applied,
                    Ok(crate::store::DeltaAck::NeedSnapshot) => Response::NeedSnapshot,
                    Err(e) => Response::Error(e.to_string()),
                },
            }
        }
        Request::FetchAll { tenant } => {
            shared.fetches.fetch_add(1, Ordering::Relaxed);
            match store.fetch_all_in(*tenant) {
                Ok(view) => Response::View(view),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::Remove { site, tenant } => {
            shared.removes.fetch_add(1, Ordering::Relaxed);
            match store.remove_in(*tenant, *site) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::PublishStats { site, tenant, stats } => {
            match store.publish_stats_in(*tenant, *site, *stats) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::Metrics => Response::Metrics(shared.metrics()),
        Request::Subscribe { tenant } => {
            // Register this connection's push buffer under the request's
            // correlation id and version: every future report frame for
            // the tenant carries them, so the client's demultiplexer can
            // route the stream beside its ordinary request traffic.
            shared.hub.subscribe(*tenant, frame.corr, frame.version, pushes);
            Response::Subscribed
        }
        Request::Shutdown => Response::Ok,
    };
    (response, matches!(request, Request::Shutdown))
}

/// A child `armus-stored` process: spawn, address scraping, drain —
/// the multi-process cluster's server-side glue (see
/// [`crate::cluster::NetCluster`]).
pub struct StoredProcess {
    child: std::process::Child,
    addr: String,
}

impl StoredProcess {
    /// Spawns `binary` listening on an ephemeral loopback port, waits for
    /// its `listening on <addr>` banner, and redirects its stderr log to
    /// `log` (when given) for post-mortem upload.
    pub fn spawn(
        binary: &std::path::Path,
        lease: Option<Duration>,
        log: Option<&std::path::Path>,
    ) -> io::Result<StoredProcess> {
        let mut cmd = std::process::Command::new(binary);
        cmd.arg("--listen").arg("127.0.0.1:0").stdout(std::process::Stdio::piped());
        if let Some(ttl) = lease {
            cmd.arg("--lease-ms").arg(ttl.as_millis().to_string());
        }
        match log {
            Some(path) => {
                cmd.stderr(std::fs::File::create(path)?);
            }
            None => {
                cmd.stderr(std::process::Stdio::inherit());
            }
        }
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().expect("stdout piped");
        let mut banner = String::new();
        io::BufRead::read_line(&mut io::BufReader::new(stdout), &mut banner)?;
        let addr = banner
            .trim()
            .rsplit(' ')
            .next()
            .filter(|a| a.contains(':'))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("no listen address in armus-stored banner {banner:?}"),
                )
            })?
            .to_string();
        Ok(StoredProcess { child, addr })
    }

    /// The child's listen address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends the in-band drain command, waits for the server's ack (so
    /// the request is known delivered before the socket closes), then
    /// waits for the child to exit; falls back to killing it when the
    /// drain cannot be delivered.
    pub fn stop(mut self) -> io::Result<()> {
        let drained = TcpStream::connect(&self.addr).and_then(|mut s| {
            s.set_write_timeout(Some(Duration::from_secs(2)))?;
            s.set_read_timeout(Some(Duration::from_secs(2)))?;
            let frame = wire::encode_frame(&Request::Shutdown)
                .expect("Shutdown is a tiny fixed-size message");
            s.write_all(&frame)?;
            s.flush()?;
            // Wait for the ack (or the server's close): closing our end
            // immediately could RST the request away before it is read.
            let _ = wire::read_message::<_, Response>(&mut s);
            Ok(())
        });
        if drained.is_err() {
            let _ = self.child.kill();
        }
        self.child.wait().map(|_| ())
    }
}

impl Drop for StoredProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SiteId;
    use armus_core::{BlockedInfo, PhaserId, Registration, Resource, Snapshot, TaskId};

    fn snap(task: u64) -> Snapshot {
        Snapshot::from_tasks(vec![BlockedInfo::new(
            TaskId(task),
            vec![Resource::new(PhaserId(1), 1)],
            vec![Registration::new(PhaserId(1), 1)],
        )])
    }

    fn talk(addr: SocketAddr, request: &Request) -> Response {
        let mut stream = TcpStream::connect(addr).unwrap();
        wire::write_message(&mut stream, request).unwrap();
        wire::read_message(&mut stream).unwrap().expect("a response")
    }

    const T0: TenantId = TenantId::DEFAULT;

    #[test]
    fn serves_the_store_protocol() {
        let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
        let addr = server.local_addr();
        assert_eq!(
            talk(
                addr,
                &Request::PublishFull {
                    site: SiteId(0),
                    tenant: T0,
                    snapshot: snap(1),
                    version: 3
                }
            ),
            Response::Ok
        );
        assert_eq!(
            talk(
                addr,
                &Request::PublishDeltas {
                    site: SiteId(0),
                    tenant: T0,
                    base: 3,
                    deltas: vec![armus_core::Delta::Unblock(TaskId(1))],
                    next: 4
                }
            ),
            Response::Applied
        );
        assert_eq!(
            talk(
                addr,
                &Request::PublishDeltas {
                    site: SiteId(0),
                    tenant: T0,
                    base: 9,
                    deltas: vec![],
                    next: 9
                }
            ),
            Response::NeedSnapshot
        );
        match talk(addr, &Request::FetchAll { tenant: T0 }) {
            Response::View(view) => {
                assert_eq!(view.len(), 1);
                assert!(view[0].1.is_empty(), "the unblock delta applied");
            }
            other => panic!("expected a view, got {other:?}"),
        }
        assert_eq!(talk(addr, &Request::Remove { site: SiteId(0), tenant: T0 }), Response::Ok);
        assert_eq!(server.served(), 5);
        server.shutdown();
    }

    #[test]
    fn multiple_requests_per_connection() {
        let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        for task in 1..=5u64 {
            wire::write_message(
                &mut stream,
                &Request::Publish { site: SiteId(task as u32), tenant: T0, snapshot: snap(task) },
            )
            .unwrap();
            assert_eq!(
                wire::read_message::<_, Response>(&mut stream).unwrap().unwrap(),
                Response::Ok
            );
        }
        match talk(server.local_addr(), &Request::FetchAll { tenant: T0 }) {
            Response::View(view) => assert_eq!(view.len(), 5),
            other => panic!("expected a view, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn metrics_report_live_counters_per_tenant() {
        let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
        let addr = server.local_addr();
        let (a, b) = (TenantId(1), TenantId(2));
        for (tenant, site) in [(a, 0u32), (a, 1), (b, 0)] {
            assert_eq!(
                talk(
                    addr,
                    &Request::PublishFull {
                        site: SiteId(site),
                        tenant,
                        snapshot: snap(u64::from(site) + 1),
                        version: 1
                    }
                ),
                Response::Ok
            );
        }
        assert_eq!(
            talk(
                addr,
                &Request::PublishStats {
                    site: SiteId(0),
                    tenant: a,
                    stats: crate::store::SiteStats { blocks: 7, ..Default::default() }
                }
            ),
            Response::Ok
        );
        let Response::Metrics(m) = talk(addr, &Request::Metrics) else {
            panic!("expected metrics");
        };
        assert_eq!(m.publishes, 3);
        assert_eq!(m.served, 5, "publishes + stats publish + this scrape");
        assert_eq!(m.fetches, 0);
        let t_a = m.tenants.iter().find(|t| t.tenant == a).expect("tenant a present");
        let t_b = m.tenants.iter().find(|t| t.tenant == b).expect("tenant b present");
        assert_eq!((t_a.partitions, t_b.partitions), (2, 1));
        assert_eq!(
            m.sites,
            vec![(a, SiteId(0), crate::store::SiteStats { blocks: 7, ..Default::default() })]
        );
        server.shutdown();
    }

    #[test]
    fn tenants_with_colliding_sites_are_isolated_over_the_wire() {
        let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
        let addr = server.local_addr();
        let (a, b) = (TenantId(1), TenantId(2));
        // Same SiteId(0) in both tenants, different blocked tasks.
        for (tenant, task) in [(a, 1u64), (b, 2)] {
            assert_eq!(
                talk(
                    addr,
                    &Request::PublishFull {
                        site: SiteId(0),
                        tenant,
                        snapshot: snap(task),
                        version: 1
                    }
                ),
                Response::Ok
            );
        }
        for (tenant, task) in [(a, 1u64), (b, 2)] {
            match talk(addr, &Request::FetchAll { tenant }) {
                Response::View(view) => {
                    assert_eq!(view.len(), 1, "exactly the tenant's own partition");
                    assert_eq!(view[0].1.tasks[0].task, TaskId(task));
                }
                other => panic!("expected a view, got {other:?}"),
            }
        }
        // Removing tenant a's partition leaves tenant b's untouched.
        assert_eq!(talk(addr, &Request::Remove { site: SiteId(0), tenant: a }), Response::Ok);
        match talk(addr, &Request::FetchAll { tenant: b }) {
            Response::View(view) => assert_eq!(view.len(), 1),
            other => panic!("expected a view, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn in_band_shutdown_drains_the_server() {
        let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
        let addr = server.local_addr();
        assert_eq!(talk(addr, &Request::Shutdown), Response::Ok);
        // wait() returns because the drain flag is set; afterwards the
        // port no longer accepts a conversation.
        server.wait();
        let refused = TcpStream::connect(addr)
            .and_then(|mut s| {
                s.set_read_timeout(Some(Duration::from_millis(200)))?;
                s.write_all(&wire::encode_frame(&Request::FetchAll { tenant: T0 }).unwrap())?;
                let mut byte = [0u8; 1];
                match s.read(&mut byte) {
                    Ok(0) => Err(io::Error::new(io::ErrorKind::ConnectionReset, "closed")),
                    Ok(_) => Ok(()),
                    Err(e) => Err(e),
                }
            })
            .is_err();
        assert!(refused, "a drained server must not serve");
    }

    #[test]
    fn malformed_traffic_closes_the_connection_but_not_the_server() {
        let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
        let addr = server.local_addr();
        // Oversized length prefix.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut buf = [0u8; 1];
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(s.read(&mut buf).unwrap(), 0, "server must close on oversized prefix");
        // Garbage payload under a plausible prefix.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&8u32.to_le_bytes()).unwrap();
        s.write_all(&[0xff; 8]).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(s.read(&mut buf).unwrap(), 0, "server must close on garbage");
        // The server survives and still serves valid peers.
        assert_eq!(
            talk(addr, &Request::Publish { site: SiteId(0), tenant: T0, snapshot: snap(1) }),
            Response::Ok
        );
        assert!(server.protocol_errors() >= 2);
        server.shutdown();
    }

    #[test]
    fn publishes_with_unnamespaceable_ids_are_rejected() {
        let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
        let addr = server.local_addr();
        // Task id already carrying a site tag: renaming cannot be
        // injective, so the publish is refused at the boundary.
        let rogue = Snapshot::from_tasks(vec![BlockedInfo::new(
            TaskId(1).with_site(2),
            vec![Resource::new(PhaserId(1), 1)],
            vec![Registration::new(PhaserId(1), 1)],
        )]);
        assert!(matches!(
            talk(
                addr,
                &Request::PublishFull { site: SiteId(0), tenant: T0, snapshot: rogue, version: 1 }
            ),
            Response::Error(_)
        ));
        // Site id beyond the tag range: same refusal, delta path included.
        assert!(matches!(
            talk(
                addr,
                &Request::Publish {
                    site: SiteId(armus_core::MAX_SITE_TAG + 1),
                    tenant: T0,
                    snapshot: snap(1)
                }
            ),
            Response::Error(_)
        ));
        assert!(matches!(
            talk(
                addr,
                &Request::PublishDeltas {
                    site: SiteId(0),
                    tenant: T0,
                    base: 0,
                    deltas: vec![armus_core::Delta::Unblock(TaskId(u64::MAX))],
                    next: 1
                }
            ),
            Response::Error(_)
        ));
        // Nothing landed; well-formed traffic still works.
        match talk(addr, &Request::FetchAll { tenant: T0 }) {
            Response::View(view) => assert!(view.is_empty()),
            other => panic!("expected a view, got {other:?}"),
        }
        assert_eq!(
            talk(addr, &Request::Publish { site: SiteId(0), tenant: T0, snapshot: snap(1) }),
            Response::Ok
        );
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_after_the_read_timeout() {
        let cfg =
            StoredConfig { read_timeout: Duration::from_millis(120), ..StoredConfig::default() };
        let server = StoredServer::bind("127.0.0.1:0", cfg).unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
        let start = Instant::now();
        let mut buf = [0u8; 1];
        assert_eq!(s.read(&mut buf).unwrap(), 0, "idle peer must be reaped");
        assert!(start.elapsed() >= Duration::from_millis(100));
        server.shutdown();
    }
}
