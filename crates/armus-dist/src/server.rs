//! `armus-stored`: the networked global store (paper §5.2's Redis role),
//! embeddable in-process ([`StoredServer`]) or run standalone (the
//! `armus-stored` binary in `src/bin/`).
//!
//! The server is a thread-per-connection loop over the same [`MemStore`]
//! core the in-process cluster uses, speaking the versioned frame protocol
//! of [`crate::wire`]. Connections are **pipelined**: each `read(2)` may
//! deliver a burst of frames (a [`wire::FrameBuffer`] reassembles them
//! across reads), every frame is handled in arrival order, and the
//! responses accumulate in a per-connection reply queue flushed with one
//! write per burst — a multiplexing client ([`crate::tcp::TcpStore`])
//! keeps dozens of requests in flight on one socket. Version negotiation
//! is per-frame: a frame that arrived as v1 is answered as v1 (strict
//! ping-pong peers keep working), a v2 frame is answered as v2 with its
//! correlation id echoed. Per-connection read/write timeouts reap dead
//! peers, partitions carry a lease TTL refreshed by every publish (crashed
//! sites expire instead of ghosting the merged view), and shutdown is a
//! graceful drain: a flag — set in-band by
//! [`crate::wire::Request::Shutdown`], the SIGTERM equivalent — stops the
//! accept loop, lets in-flight requests finish, and joins every
//! connection thread.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::store::{MemStore, Store};
use crate::wire::{self, Request, Response, WireError};

/// Default partition lease: a site that has not published for this long is
/// considered dead and its partition stops contributing to fetches. Must
/// comfortably exceed the sites' publish period (50 ms by default).
pub const DEFAULT_LEASE: Duration = Duration::from_secs(5);

/// Default idle timeout before a silent connection is reaped.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Default bound on writing one response back to a peer.
pub const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Granularity of the accept loop's shutdown poll and of a connection's
/// first-byte wait (bounds drain latency without burning CPU).
const POLL_PERIOD: Duration = Duration::from_millis(25);

/// Tuning of a [`StoredServer`].
#[derive(Clone, Copy, Debug)]
pub struct StoredConfig {
    /// Partition lease TTL; `None` disables expiry.
    pub lease: Option<Duration>,
    /// Reap a connection that sends nothing for this long.
    pub read_timeout: Duration,
    /// Bound on writing one response.
    pub write_timeout: Duration,
}

impl Default for StoredConfig {
    fn default() -> Self {
        StoredConfig {
            lease: Some(DEFAULT_LEASE),
            read_timeout: DEFAULT_READ_TIMEOUT,
            write_timeout: DEFAULT_WRITE_TIMEOUT,
        }
    }
}

/// A running store server.
pub struct StoredServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// State shared between the accept loop and connection threads.
struct Shared {
    store: MemStore,
    cfg: StoredConfig,
    shutdown: Arc<AtomicBool>,
    /// Finished-or-running connection threads, joined on drain.
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// Served requests (all kinds), for observability and tests.
    served: AtomicU64,
    /// Connections dropped for protocol violations (malformed frames,
    /// version mismatches) — never panics, always a clean close.
    protocol_errors: AtomicU64,
}

impl StoredServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop.
    pub fn bind(addr: impl ToSocketAddrs, cfg: StoredConfig) -> io::Result<StoredServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let store = match cfg.lease {
            Some(ttl) => MemStore::with_lease(ttl),
            None => MemStore::new(),
        };
        let shared = Arc::new(Shared {
            store,
            cfg,
            shutdown: Arc::clone(&shutdown),
            conns: Mutex::new(Vec::new()),
            served: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("armus-stored-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn accept loop")
        };
        Ok(StoredServer { addr, shutdown, accept: Some(accept), shared })
    }

    /// The bound address (the actual port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests received so far (across all connections).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Connections closed on protocol violations so far.
    pub fn protocol_errors(&self) -> u64 {
        self.shared.protocol_errors.load(Ordering::Relaxed)
    }

    /// Has a drain been requested (locally or via
    /// [`Request::Shutdown`][crate::wire::Request::Shutdown])?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain and blocks until the accept loop and all
    /// connection threads have exited.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join();
    }

    /// Blocks until the server drains (a peer sent
    /// [`Request::Shutdown`][crate::wire::Request::Shutdown], or
    /// [`StoredServer::shutdown`] ran) — the standalone binary's main
    /// loop.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // After the accept loop exits no new connection threads appear;
        // drain the ones that ran.
        let conns = std::mem::take(&mut *self.shared.conns.lock());
        for h in conns {
            let _ = h.join();
        }
    }
}

impl Drop for StoredServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared2 = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("armus-stored-conn".into())
                    .spawn(move || serve_connection(stream, shared2))
                    .expect("spawn connection thread");
                let mut conns = shared.conns.lock();
                // Reap finished handles so a long-lived server does not
                // accumulate one per past connection.
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_PERIOD);
            }
            Err(_) => std::thread::sleep(POLL_PERIOD),
        }
    }
}

/// Serves one connection until the peer hangs up, violates the protocol,
/// idles past the read timeout, or the server drains.
///
/// The loop reads in [`POLL_PERIOD`] slices (so the drain flag stays
/// observed even mid-frame), extracts every complete frame the read
/// delivered, handles them in order, and answers the whole burst with one
/// flush of the reply queue — each reply in the version its request
/// arrived in.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_PERIOD)).is_err() {
        return;
    }
    let mut stream = stream;
    let mut frames = wire::FrameBuffer::new();
    let mut replies: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; 64 * 1024];
    // Both the idle bound and the mid-frame stall bound: a peer that goes
    // quiet for the read timeout is reaped whether or not it left half a
    // frame behind.
    let mut last_data = Instant::now();
    'conn: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer hung up
            Ok(n) => {
                last_data = Instant::now();
                frames.feed(&chunk[..n]);
                let mut drain = false;
                while !drain {
                    match frames.next_frame::<Request>() {
                        Ok(Some(frame)) => {
                            shared.served.fetch_add(1, Ordering::Relaxed);
                            let (response, drain_after) = handle(&frame.msg, &shared);
                            if drain_after {
                                // Set the flag *before* answering: a drain
                                // must not be lost to a failed response
                                // write (the peer may fire-and-close), or
                                // the server lives forever.
                                shared.shutdown.store(true, Ordering::SeqCst);
                                drain = true;
                            }
                            if encode_reply(&mut replies, &frame, &response).is_err() {
                                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                break 'conn;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Malformed traffic: answer what the burst
                            // already earned, close, never panic. There
                            // is no resync point mid-stream — the peer
                            // reconnects.
                            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            let _ = flush_replies(&mut stream, &mut replies, &shared);
                            break 'conn;
                        }
                    }
                }
                if flush_replies(&mut stream, &mut replies, &shared).is_err() || drain {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_data.elapsed() >= shared.cfg.read_timeout {
                    break; // reap the idle (or mid-frame stalled) peer
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Appends the response frame for `request` to the reply queue, in the
/// version the request arrived in (v1 → v1 tree frame, v2 → flat frame
/// echoing the correlation id).
fn encode_reply(
    out: &mut Vec<u8>,
    request: &wire::Frame<Request>,
    response: &Response,
) -> Result<(), WireError> {
    if request.version == wire::WIRE_V1 {
        out.extend_from_slice(&wire::encode_frame(response)?);
        Ok(())
    } else {
        wire::encode_frame_v2_into(out, request.corr, response)
    }
}

/// Writes the queued replies for one burst in a single `write_all` and
/// clears the queue.
fn flush_replies(stream: &mut TcpStream, replies: &mut Vec<u8>, shared: &Shared) -> io::Result<()> {
    if replies.is_empty() {
        return Ok(());
    }
    stream.set_write_timeout(Some(shared.cfg.write_timeout))?;
    let result = stream.write_all(replies);
    replies.clear();
    result
}

/// Rejects a publish whose ids could not survive the checkers'
/// site-namespacing merge: the site must fit the tag range and every
/// task id must be un-namespaced (≤ [`armus_core::MAX_LOCAL_TASK`]).
/// Catching this at the boundary gives the out-of-protocol peer an
/// explicit error instead of a silently skipped partition.
fn validate_publish<'a>(
    site: crate::store::SiteId,
    mut tasks: impl Iterator<Item = &'a armus_core::TaskId>,
) -> Result<(), Response> {
    if site.0 > armus_core::MAX_SITE_TAG {
        return Err(Response::Error(format!("site {} beyond the namespace tag range", site.0)));
    }
    match tasks.find(|t| t.checked_with_site(site.0).is_none()) {
        Some(task) => {
            Err(Response::Error(format!("task id {:#x} cannot be site-namespaced", task.0)))
        }
        None => Ok(()),
    }
}

/// Task ids a delta interval touches.
fn delta_tasks(deltas: &[armus_core::Delta]) -> impl Iterator<Item = &armus_core::TaskId> {
    deltas.iter().map(|d| match d {
        armus_core::Delta::Block(info) => &info.task,
        armus_core::Delta::Unblock(task) => task,
    })
}

/// Applies one request to the store. The boolean asks the connection loop
/// to begin the drain after responding.
fn handle(request: &Request, shared: &Shared) -> (Response, bool) {
    let store = &shared.store;
    let response = match request {
        Request::Publish { site, snapshot } => {
            match validate_publish(*site, snapshot.tasks.iter().map(|b| &b.task)) {
                Err(rejection) => rejection,
                Ok(()) => match store.publish(*site, snapshot.clone()) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error(e.to_string()),
                },
            }
        }
        Request::PublishFull { site, snapshot, version } => {
            match validate_publish(*site, snapshot.tasks.iter().map(|b| &b.task)) {
                Err(rejection) => rejection,
                Ok(()) => match store.publish_full(*site, snapshot.clone(), *version) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error(e.to_string()),
                },
            }
        }
        Request::PublishDeltas { site, base, deltas, next } => {
            match validate_publish(*site, delta_tasks(deltas)) {
                Err(rejection) => rejection,
                Ok(()) => match store.publish_deltas(*site, *base, deltas, *next) {
                    Ok(crate::store::DeltaAck::Applied) => Response::Applied,
                    Ok(crate::store::DeltaAck::NeedSnapshot) => Response::NeedSnapshot,
                    Err(e) => Response::Error(e.to_string()),
                },
            }
        }
        Request::FetchAll => match store.fetch_all() {
            Ok(view) => Response::View(view),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Remove { site } => match store.remove(*site) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Shutdown => Response::Ok,
    };
    (response, matches!(request, Request::Shutdown))
}

/// A child `armus-stored` process: spawn, address scraping, drain —
/// the multi-process cluster's server-side glue (see
/// [`crate::cluster::NetCluster`]).
pub struct StoredProcess {
    child: std::process::Child,
    addr: String,
}

impl StoredProcess {
    /// Spawns `binary` listening on an ephemeral loopback port, waits for
    /// its `listening on <addr>` banner, and redirects its stderr log to
    /// `log` (when given) for post-mortem upload.
    pub fn spawn(
        binary: &std::path::Path,
        lease: Option<Duration>,
        log: Option<&std::path::Path>,
    ) -> io::Result<StoredProcess> {
        let mut cmd = std::process::Command::new(binary);
        cmd.arg("--listen").arg("127.0.0.1:0").stdout(std::process::Stdio::piped());
        if let Some(ttl) = lease {
            cmd.arg("--lease-ms").arg(ttl.as_millis().to_string());
        }
        match log {
            Some(path) => {
                cmd.stderr(std::fs::File::create(path)?);
            }
            None => {
                cmd.stderr(std::process::Stdio::inherit());
            }
        }
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().expect("stdout piped");
        let mut banner = String::new();
        io::BufRead::read_line(&mut io::BufReader::new(stdout), &mut banner)?;
        let addr = banner
            .trim()
            .rsplit(' ')
            .next()
            .filter(|a| a.contains(':'))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("no listen address in armus-stored banner {banner:?}"),
                )
            })?
            .to_string();
        Ok(StoredProcess { child, addr })
    }

    /// The child's listen address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends the in-band drain command, waits for the server's ack (so
    /// the request is known delivered before the socket closes), then
    /// waits for the child to exit; falls back to killing it when the
    /// drain cannot be delivered.
    pub fn stop(mut self) -> io::Result<()> {
        let drained = TcpStream::connect(&self.addr).and_then(|mut s| {
            s.set_write_timeout(Some(Duration::from_secs(2)))?;
            s.set_read_timeout(Some(Duration::from_secs(2)))?;
            let frame = wire::encode_frame(&Request::Shutdown)
                .expect("Shutdown is a tiny fixed-size message");
            s.write_all(&frame)?;
            s.flush()?;
            // Wait for the ack (or the server's close): closing our end
            // immediately could RST the request away before it is read.
            let _ = wire::read_message::<_, Response>(&mut s);
            Ok(())
        });
        if drained.is_err() {
            let _ = self.child.kill();
        }
        self.child.wait().map(|_| ())
    }
}

impl Drop for StoredProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SiteId;
    use armus_core::{BlockedInfo, PhaserId, Registration, Resource, Snapshot, TaskId};

    fn snap(task: u64) -> Snapshot {
        Snapshot::from_tasks(vec![BlockedInfo::new(
            TaskId(task),
            vec![Resource::new(PhaserId(1), 1)],
            vec![Registration::new(PhaserId(1), 1)],
        )])
    }

    fn talk(addr: SocketAddr, request: &Request) -> Response {
        let mut stream = TcpStream::connect(addr).unwrap();
        wire::write_message(&mut stream, request).unwrap();
        wire::read_message(&mut stream).unwrap().expect("a response")
    }

    #[test]
    fn serves_the_store_protocol() {
        let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
        let addr = server.local_addr();
        assert_eq!(
            talk(addr, &Request::PublishFull { site: SiteId(0), snapshot: snap(1), version: 3 }),
            Response::Ok
        );
        assert_eq!(
            talk(
                addr,
                &Request::PublishDeltas {
                    site: SiteId(0),
                    base: 3,
                    deltas: vec![armus_core::Delta::Unblock(TaskId(1))],
                    next: 4
                }
            ),
            Response::Applied
        );
        assert_eq!(
            talk(
                addr,
                &Request::PublishDeltas { site: SiteId(0), base: 9, deltas: vec![], next: 9 }
            ),
            Response::NeedSnapshot
        );
        match talk(addr, &Request::FetchAll) {
            Response::View(view) => {
                assert_eq!(view.len(), 1);
                assert!(view[0].1.is_empty(), "the unblock delta applied");
            }
            other => panic!("expected a view, got {other:?}"),
        }
        assert_eq!(talk(addr, &Request::Remove { site: SiteId(0) }), Response::Ok);
        assert_eq!(server.served(), 5);
        server.shutdown();
    }

    #[test]
    fn multiple_requests_per_connection() {
        let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        for task in 1..=5u64 {
            wire::write_message(
                &mut stream,
                &Request::Publish { site: SiteId(task as u32), snapshot: snap(task) },
            )
            .unwrap();
            assert_eq!(
                wire::read_message::<_, Response>(&mut stream).unwrap().unwrap(),
                Response::Ok
            );
        }
        match talk(server.local_addr(), &Request::FetchAll) {
            Response::View(view) => assert_eq!(view.len(), 5),
            other => panic!("expected a view, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn in_band_shutdown_drains_the_server() {
        let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
        let addr = server.local_addr();
        assert_eq!(talk(addr, &Request::Shutdown), Response::Ok);
        // wait() returns because the drain flag is set; afterwards the
        // port no longer accepts a conversation.
        server.wait();
        let refused = TcpStream::connect(addr)
            .and_then(|mut s| {
                s.set_read_timeout(Some(Duration::from_millis(200)))?;
                s.write_all(&wire::encode_frame(&Request::FetchAll).unwrap())?;
                let mut byte = [0u8; 1];
                match s.read(&mut byte) {
                    Ok(0) => Err(io::Error::new(io::ErrorKind::ConnectionReset, "closed")),
                    Ok(_) => Ok(()),
                    Err(e) => Err(e),
                }
            })
            .is_err();
        assert!(refused, "a drained server must not serve");
    }

    #[test]
    fn malformed_traffic_closes_the_connection_but_not_the_server() {
        let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
        let addr = server.local_addr();
        // Oversized length prefix.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut buf = [0u8; 1];
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(s.read(&mut buf).unwrap(), 0, "server must close on oversized prefix");
        // Garbage payload under a plausible prefix.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&8u32.to_le_bytes()).unwrap();
        s.write_all(&[0xff; 8]).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        assert_eq!(s.read(&mut buf).unwrap(), 0, "server must close on garbage");
        // The server survives and still serves valid peers.
        assert_eq!(
            talk(addr, &Request::Publish { site: SiteId(0), snapshot: snap(1) }),
            Response::Ok
        );
        assert!(server.protocol_errors() >= 2);
        server.shutdown();
    }

    #[test]
    fn publishes_with_unnamespaceable_ids_are_rejected() {
        let server = StoredServer::bind("127.0.0.1:0", StoredConfig::default()).unwrap();
        let addr = server.local_addr();
        // Task id already carrying a site tag: renaming cannot be
        // injective, so the publish is refused at the boundary.
        let rogue = Snapshot::from_tasks(vec![BlockedInfo::new(
            TaskId(1).with_site(2),
            vec![Resource::new(PhaserId(1), 1)],
            vec![Registration::new(PhaserId(1), 1)],
        )]);
        assert!(matches!(
            talk(addr, &Request::PublishFull { site: SiteId(0), snapshot: rogue, version: 1 }),
            Response::Error(_)
        ));
        // Site id beyond the tag range: same refusal, delta path included.
        assert!(matches!(
            talk(
                addr,
                &Request::Publish { site: SiteId(armus_core::MAX_SITE_TAG + 1), snapshot: snap(1) }
            ),
            Response::Error(_)
        ));
        assert!(matches!(
            talk(
                addr,
                &Request::PublishDeltas {
                    site: SiteId(0),
                    base: 0,
                    deltas: vec![armus_core::Delta::Unblock(TaskId(u64::MAX))],
                    next: 1
                }
            ),
            Response::Error(_)
        ));
        // Nothing landed; well-formed traffic still works.
        match talk(addr, &Request::FetchAll) {
            Response::View(view) => assert!(view.is_empty()),
            other => panic!("expected a view, got {other:?}"),
        }
        assert_eq!(
            talk(addr, &Request::Publish { site: SiteId(0), snapshot: snap(1) }),
            Response::Ok
        );
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_after_the_read_timeout() {
        let cfg =
            StoredConfig { read_timeout: Duration::from_millis(120), ..StoredConfig::default() };
        let server = StoredServer::bind("127.0.0.1:0", cfg).unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
        let start = Instant::now();
        let mut buf = [0u8; 1];
        assert_eq!(s.read(&mut buf).unwrap(), 0, "idle peer must be reaped");
        assert!(start.elapsed() >= Duration::from_millis(100));
        server.shutdown();
    }
}
