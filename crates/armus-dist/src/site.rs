//! A site: one place of the distributed system, with its own runtime, a
//! publisher thread, and an independent checker thread (paper §5.2: "all
//! sites check for deadlocks"; "the deadlock checker executes at each site
//! and does not depend on the cooperation of other sites").
//!
//! The publisher speaks the store's delta protocol: it tracks a journal
//! cursor into its runtime's registry and normally ships only the deltas
//! since its previous round — an empty interval when nothing changed,
//! which doubles as a partition heartbeat. It falls back to a
//! **full-snapshot resync** when it joins, when the bounded journal
//! truncated past its cursor, or when the store NACKs the delta interval
//! (partition lost, version mismatch, or a store without delta support) —
//! so recovery never depends on delta continuity, and a lost partition is
//! repaired within one round even from a fully quiescent site.
//!
//! Sites take the store as `Arc<dyn Store>` and never assume exclusive
//! ownership, so the intended networked deployment is **many sites
//! sharing one [`crate::tcp::TcpStore`]**: its pipelined connection
//! multiplexes every site's publisher and checker traffic (correlation
//! ids demultiplex the responses), one socket and one demux thread per
//! process instead of per site. `tests/net.rs` proves the multiplexed
//! path produces reports byte-identical to connection-per-site and to
//! the in-process [`crate::store::MemStore`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use armus_core::{
    DeadlockReport, JournalRead, ModelChoice, Verifier, VerifierConfig, DEFAULT_SG_THRESHOLD,
};
use armus_sync::{Runtime, RuntimeConfig};
use parking_lot::{Condvar, Mutex};

use crate::detector::{DistCheckerStats, IncrementalDistChecker, ReportDedup};
use crate::store::{DeltaAck, SiteId, SiteStats, Store};

/// An interruptible stop flag: loop threads park on it between rounds
/// instead of `thread::sleep`ing, so [`Site::stop`] latency is bounded by
/// the wake-up cost, not by the sum of the publish/check periods.
pub(crate) struct StopSignal {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl StopSignal {
    pub(crate) fn new() -> StopSignal {
        StopSignal { stopped: Mutex::new(false), cv: Condvar::new() }
    }

    /// Sets the flag and wakes every parked thread.
    pub(crate) fn stop(&self) {
        *self.stopped.lock() = true;
        self.cv.notify_all();
    }

    pub(crate) fn is_stopped(&self) -> bool {
        *self.stopped.lock()
    }

    /// Parks for up to `period` or until [`StopSignal::stop`]; returns
    /// true when stopped. Loops on an absolute deadline: a spurious
    /// condvar wakeup re-parks for the residual time instead of cutting
    /// the round short (the publish cadence is a lease heartbeat — a
    /// shortened round skews the timing leases are tuned against; a
    /// lengthened one could let a lease lapse).
    pub(crate) fn wait(&self, period: Duration) -> bool {
        let deadline = Instant::now() + period;
        let mut stopped = self.stopped.lock();
        while !*stopped {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let _ = self.cv.wait_for(&mut stopped, deadline - now);
        }
        true
    }

    /// Test hook: a condvar notify *without* setting the flag — exactly
    /// the spurious wakeup [`StopSignal::wait`] must absorb.
    #[cfg(test)]
    pub(crate) fn poke(&self) {
        self.cv.notify_all();
    }
}

/// The bounded store of a site's deadlock reports. The checker pushes
/// behind a [`crate::detector::ReportDedup`], so entries are distinct
/// deadlocks — but a long-lived site in a deadlock-heavy workload still
/// accretes them forever; the ring keeps the newest
/// [`SiteConfig::report_capacity`] and counts evictions instead of
/// growing without bound.
pub(crate) struct ReportRing {
    buf: VecDeque<DeadlockReport>,
    cap: usize,
    dropped: u64,
}

impl ReportRing {
    pub(crate) fn new(cap: usize) -> ReportRing {
        ReportRing { buf: VecDeque::with_capacity(cap.min(64)), cap, dropped: 0 }
    }

    /// Appends, evicting the oldest entry when full. A zero-capacity ring
    /// drops everything (reports still reach subscribers and logs via the
    /// server; only the local backlog is bounded away).
    pub(crate) fn push(&mut self, report: DeadlockReport) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(report);
    }

    pub(crate) fn to_vec(&self) -> Vec<DeadlockReport> {
        self.buf.iter().cloned().collect()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Per-site verification configuration.
#[derive(Clone, Copy, Debug)]
pub struct SiteConfig {
    /// How often the local blocked set is pushed to the store.
    pub publish_period: Duration,
    /// How often this site checks the global view (paper: 200 ms).
    pub check_period: Duration,
    /// Graph-model selection for the distributed check.
    pub model: ModelChoice,
    /// SG-abort threshold.
    pub sg_threshold: usize,
    /// Most deadlock reports retained locally; older ones are evicted
    /// (counted by [`Site::reports_dropped`]). Distinct reports only — a
    /// dedup filter runs in front of the ring.
    pub report_capacity: usize,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig {
            publish_period: Duration::from_millis(50),
            check_period: Duration::from_millis(200),
            model: ModelChoice::Auto,
            sg_threshold: DEFAULT_SG_THRESHOLD,
            report_capacity: 256,
        }
    }
}

/// A running site.
pub struct Site {
    id: SiteId,
    runtime: Arc<Runtime>,
    stop: Arc<StopSignal>,
    checker_stop: Arc<StopSignal>,
    cleanup_abort: Arc<StopSignal>,
    reports: Arc<Mutex<ReportRing>>,
    resyncs: Arc<AtomicU64>,
    checker_stats: Arc<Mutex<DistCheckerStats>>,
    publisher: Option<JoinHandle<()>>,
    checker: Option<JoinHandle<()>>,
}

/// Total wall-clock budget for the partition remove on site stop. Retries
/// with doubling backoff run inside this deadline, so a transiently
/// unavailable store still gets the remove (no ghost partition confirming
/// false deadlocks), while a permanently dead one delays [`Site::stop`]
/// by at most the budget — comfortably inside the sub-100 ms shutdown
/// contract; past that, the partition lease is the backstop.
const REMOVE_BUDGET: Duration = Duration::from_millis(50);

/// Initial backoff between remove retries.
const REMOVE_BACKOFF: Duration = Duration::from_millis(5);

/// Best-effort partition cleanup on stop: deadline-bounded retry with
/// doubling backoff, interruptible through `abort` (fired when the owning
/// [`Site`] is dropped without `stop`, so an abandoned site never sleeps
/// out the backoff). Returns whether the remove landed.
fn remove_with_retry(store: &dyn Store, id: SiteId, abort: &StopSignal) -> bool {
    let deadline = Instant::now() + REMOVE_BUDGET;
    let mut backoff = REMOVE_BACKOFF;
    loop {
        if store.remove(id).is_ok() {
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        if abort.wait(backoff.min(deadline - now)) {
            return false;
        }
        backoff *= 2;
    }
}

/// One publisher round: ship the deltas since `cursor`, or a full
/// versioned snapshot when not (or no longer) in sync. Returns the updated
/// `(cursor, synced)` pair; store failures leave both untouched so the
/// next round retries. Bumps `resyncs` per full-snapshot publish.
fn publish_round(
    store: &dyn Store,
    verifier: &Verifier,
    id: SiteId,
    mut cursor: u64,
    mut synced: bool,
    resyncs: &AtomicU64,
) -> (u64, bool) {
    if synced {
        match verifier.deltas_since(cursor) {
            JournalRead::Deltas(deltas, next) => {
                // Publish even when the interval is empty: it doubles as a
                // partition heartbeat. A store that lost the partition
                // NACKs it, triggering the resync below — crucial because
                // a site whose tasks are all deadlocked is exactly
                // quiescent, and its partition matters most then.
                match store.publish_deltas(id, cursor, &deltas, next) {
                    Ok(DeltaAck::Applied) => cursor = next,
                    Ok(DeltaAck::NeedSnapshot) => synced = false,
                    Err(_) => return (cursor, synced), // outage: retry later
                }
            }
            JournalRead::Behind => synced = false,
        }
    }
    if !synced {
        let (snapshot, head) = verifier.snapshot_with_cursor();
        if store.publish_full(id, snapshot, head).is_ok() {
            cursor = head;
            synced = true;
            resyncs.fetch_add(1, Ordering::Relaxed);
        }
    }
    (cursor, synced)
}

/// Assembles the site's current [`SiteStats`] record from its verifier
/// snapshot, publisher counter, checker counters, and report ring.
fn gather_stats(
    verifier: &Verifier,
    resyncs: &AtomicU64,
    checker_stats: &Mutex<DistCheckerStats>,
    reports: &Mutex<ReportRing>,
) -> SiteStats {
    let v = verifier.stats();
    let c = *checker_stats.lock();
    SiteStats {
        blocks: v.blocks,
        unblocks: v.unblocks,
        fastpath_skips: v.fastpath_skips,
        publish_resyncs: resyncs.load(Ordering::Relaxed),
        async_waits: v.async_waits,
        waker_wakes: v.waker_wakes,
        checker_rounds: c.rounds,
        incremental_detections: c.incremental_detections,
        reports_dropped: reports.lock().dropped(),
    }
}

impl Site {
    /// Starts a site against the shared store: spawns its publisher and
    /// checker threads. Workloads run on [`Site::runtime`].
    pub fn start(id: SiteId, store: Arc<dyn Store>, cfg: SiteConfig) -> Site {
        let runtime =
            Runtime::new(RuntimeConfig::unchecked().with_verifier(VerifierConfig::publish_only()));
        let stop = Arc::new(StopSignal::new());
        let checker_stop = Arc::new(StopSignal::new());
        let cleanup_abort = Arc::new(StopSignal::new());
        let reports = Arc::new(Mutex::new(ReportRing::new(cfg.report_capacity)));
        let resyncs = Arc::new(AtomicU64::new(0));
        let checker_stats = Arc::new(Mutex::new(DistCheckerStats::default()));

        let publisher = {
            let runtime = Arc::clone(&runtime);
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let cleanup_abort = Arc::clone(&cleanup_abort);
            let resyncs = Arc::clone(&resyncs);
            let checker_stats = Arc::clone(&checker_stats);
            let reports = Arc::clone(&reports);
            std::thread::Builder::new()
                .name(format!("{id}-publisher"))
                .spawn(move || {
                    let mut cursor = 0u64;
                    let mut synced = false; // first round publishes the join snapshot
                    while !stop.is_stopped() {
                        (cursor, synced) = publish_round(
                            store.as_ref(),
                            runtime.verifier(),
                            id,
                            cursor,
                            synced,
                            &resyncs,
                        );
                        // Piggyback the observability counters on the
                        // publish cadence (best-effort: a store without a
                        // metrics surface discards them, an outage skips
                        // the round).
                        let _ = store.publish_stats(
                            id,
                            gather_stats(runtime.verifier(), &resyncs, &checker_stats, &reports),
                        );
                        // Interruptible: stop() wakes us immediately
                        // instead of eating a whole publish period.
                        if stop.wait(cfg.publish_period) {
                            break;
                        }
                    }
                    // Retire the partition so other sites stop merging it.
                    // A transient outage is retried within the bounded
                    // budget; if the store stays down the lease expiry is
                    // the backstop.
                    remove_with_retry(store.as_ref(), id, &cleanup_abort);
                })
                .expect("spawn publisher")
        };

        let checker = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let checker_stop = Arc::clone(&checker_stop);
            let reports = Arc::clone(&reports);
            let checker_stats = Arc::clone(&checker_stats);
            std::thread::Builder::new()
                .name(format!("{id}-checker"))
                .spawn(move || {
                    let mut dedup = ReportDedup::new();
                    // The checker engine persists across rounds: each round
                    // diffs the merged view against the previous one and
                    // answers cycle existence from the maintained order —
                    // O(churn between rounds), not O(cluster blocked set).
                    let mut checker = IncrementalDistChecker::new();
                    while !stop.is_stopped() && !checker_stop.is_stopped() {
                        if checker_stop.wait(cfg.check_period) || stop.is_stopped() {
                            break;
                        }
                        // Fetch failures are tolerated: skip the round.
                        match checker.check_round(store.as_ref(), cfg.model, cfg.sg_threshold) {
                            Ok(out) => {
                                if let Some(report) = out.report {
                                    if dedup.is_new(&report) {
                                        reports.lock().push(report);
                                    }
                                }
                            }
                            // Conservative: after a store outage, rebuild
                            // from the next successful fetch rather than
                            // trust the diff path — delta continuity must
                            // never be load-bearing for correctness.
                            Err(_) => checker.resync(),
                        }
                        *checker_stats.lock() = checker.stats();
                    }
                })
                .expect("spawn checker")
        };

        Site {
            id,
            runtime,
            stop,
            checker_stop,
            cleanup_abort,
            reports,
            resyncs,
            checker_stats,
            publisher: Some(publisher),
            checker: Some(checker),
        }
    }

    /// This site's id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// Full-snapshot publishes performed so far (the join counts as one;
    /// anything beyond it is a recovery resync).
    pub fn publish_resyncs(&self) -> u64 {
        self.resyncs.load(Ordering::Relaxed)
    }

    /// Counters of this site's checker thread as of its latest round:
    /// rounds run, confirmation re-fetches, deltas diffed in, and how
    /// often detection stayed on the incremental path — the observability
    /// needed to see that a multiplexed store still serves every site's
    /// check cadence.
    pub fn checker_stats(&self) -> DistCheckerStats {
        *self.checker_stats.lock()
    }

    /// The runtime workloads should use on this site.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// This site's local verifier counters (blocks, fast-path skips,
    /// `async_waits`/`waker_wakes`, …) — the front-end-side observability
    /// twin of [`Site::checker_stats`].
    pub fn verifier_stats(&self) -> armus_core::StatsSnapshot {
        self.runtime.verifier().stats()
    }

    /// Deadlocks this site's checker has reported, newest last (the
    /// retained window of the bounded report ring).
    pub fn reports(&self) -> Vec<DeadlockReport> {
        self.reports.lock().to_vec()
    }

    /// Distinct reports evicted from the bounded report ring so far.
    pub fn reports_dropped(&self) -> u64 {
        self.reports.lock().dropped()
    }

    /// The site's current observability record — exactly what its
    /// publisher pushes to the store's metrics surface every round.
    pub fn stats(&self) -> SiteStats {
        gather_stats(self.runtime.verifier(), &self.resyncs, &self.checker_stats, &self.reports)
    }

    /// Has this site reported any deadlock?
    pub fn found_deadlock(&self) -> bool {
        !self.reports.lock().is_empty()
    }

    /// Kills this site's *checker* thread only (the publisher keeps
    /// running) — the fault-injection used to show detection survives site
    /// checker failures: there is no designated control site, so the
    /// remaining sites still find the deadlock.
    pub fn kill_checker(&mut self) {
        self.checker_stop.stop();
        if let Some(h) = self.checker.take() {
            let _ = h.join();
        }
    }

    /// Stops the site's threads and removes its partition.
    pub fn stop(mut self) {
        self.shutdown();
        if let Some(h) = self.publisher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.checker.take() {
            let _ = h.join();
        }
    }

    fn shutdown(&self) {
        // Wake both loops out of their parked waits: stop latency is
        // bounded by the wake-up (and the bounded remove retry), not by
        // the publish/check periods.
        self.stop.stop();
        self.checker_stop.stop();
        self.runtime.shutdown();
    }
}

impl Drop for Site {
    fn drop(&mut self) {
        self.shutdown();
        // Dropped without `stop` (nobody will join the publisher): also
        // abort the cleanup backoff so the abandoned thread exits promptly
        // instead of sleeping out the remove budget against a dead store.
        // After a normal `stop` the publisher is already joined and this
        // is a no-op.
        self.cleanup_abort.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreError;
    use armus_core::{CycleWitness, GraphModel, PhaserId, Resource, Snapshot, TaskId};

    fn report(n: u64) -> DeadlockReport {
        DeadlockReport {
            tasks: vec![TaskId(n), TaskId(n + 1)],
            resources: vec![Resource::new(PhaserId(n), 1)],
            model: GraphModel::Wfg,
            witness: CycleWitness::Tasks(vec![TaskId(n), TaskId(n + 1), TaskId(n)]),
            task_epochs: vec![(TaskId(n), 0), (TaskId(n + 1), 0)],
        }
    }

    #[test]
    fn report_ring_evicts_oldest_first_and_counts_drops() {
        let mut ring = ReportRing::new(2);
        ring.push(report(1));
        ring.push(report(2));
        assert_eq!(ring.dropped(), 0);
        ring.push(report(3));
        let kept: Vec<u64> = ring.to_vec().iter().map(|r| r.tasks[0].0).collect();
        assert_eq!(kept, vec![2, 3], "oldest report evicted, newest kept in order");
        assert_eq!(ring.dropped(), 1);
        ring.push(report(4));
        assert_eq!(ring.dropped(), 2);
        assert!(!ring.is_empty());
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = ReportRing::new(0);
        ring.push(report(1));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn wait_absorbs_spurious_wakeups() {
        let signal = Arc::new(StopSignal::new());
        let period = Duration::from_millis(60);
        // A poker that fires condvar notifies throughout the wait without
        // ever setting the flag — forced spurious wakeups.
        let poker = {
            let signal = Arc::clone(&signal);
            std::thread::spawn(move || {
                for _ in 0..30 {
                    signal.poke();
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };
        let begin = Instant::now();
        let stopped = signal.wait(period);
        let elapsed = begin.elapsed();
        poker.join().unwrap();
        assert!(!stopped, "no stop was requested");
        assert!(
            elapsed >= period,
            "wait returned after {elapsed:?}, before the {period:?} deadline — \
             a spurious wakeup cut the round short"
        );
    }

    #[test]
    fn wait_still_interrupts_immediately_on_stop() {
        let signal = Arc::new(StopSignal::new());
        let waiter = {
            let signal = Arc::clone(&signal);
            std::thread::spawn(move || {
                let begin = Instant::now();
                assert!(signal.wait(Duration::from_secs(30)), "stop must be observed");
                begin.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        signal.stop();
        let elapsed = waiter.join().unwrap();
        assert!(elapsed < Duration::from_secs(5), "stop must interrupt the park promptly");
    }

    /// A store that is permanently down.
    struct DeadStore;
    impl Store for DeadStore {
        fn publish(&self, _: SiteId, _: Snapshot) -> Result<(), StoreError> {
            Err(StoreError::Unavailable)
        }
        fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
            Err(StoreError::Unavailable)
        }
        fn remove(&self, _: SiteId) -> Result<(), StoreError> {
            Err(StoreError::Unavailable)
        }
    }

    #[test]
    fn remove_retry_is_deadline_bounded_against_a_dead_store() {
        let abort = StopSignal::new();
        let begin = Instant::now();
        assert!(!remove_with_retry(&DeadStore, SiteId(0), &abort));
        let elapsed = begin.elapsed();
        assert!(
            elapsed < REMOVE_BUDGET + Duration::from_millis(30),
            "remove retries ran {elapsed:?}, past the {REMOVE_BUDGET:?} budget"
        );
        assert!(elapsed >= REMOVE_BACKOFF, "at least one backoff round was attempted");
    }

    #[test]
    fn remove_retry_aborts_immediately_when_signalled() {
        let abort = StopSignal::new();
        abort.stop();
        let begin = Instant::now();
        assert!(!remove_with_retry(&DeadStore, SiteId(0), &abort));
        assert!(
            begin.elapsed() < REMOVE_BUDGET,
            "an aborted cleanup must not sleep out the budget"
        );
    }
}
