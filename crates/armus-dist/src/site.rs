//! A site: one place of the distributed system, with its own runtime, a
//! publisher thread, and an independent checker thread (paper §5.2: "all
//! sites check for deadlocks"; "the deadlock checker executes at each site
//! and does not depend on the cooperation of other sites").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use armus_core::{DeadlockReport, ModelChoice, VerifierConfig, DEFAULT_SG_THRESHOLD};
use armus_sync::{Runtime, RuntimeConfig};
use parking_lot::Mutex;

use crate::detector::{check_store, ReportDedup};
use crate::store::{SiteId, Store};

/// Per-site verification configuration.
#[derive(Clone, Copy, Debug)]
pub struct SiteConfig {
    /// How often the local blocked set is pushed to the store.
    pub publish_period: Duration,
    /// How often this site checks the global view (paper: 200 ms).
    pub check_period: Duration,
    /// Graph-model selection for the distributed check.
    pub model: ModelChoice,
    /// SG-abort threshold.
    pub sg_threshold: usize,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig {
            publish_period: Duration::from_millis(50),
            check_period: Duration::from_millis(200),
            model: ModelChoice::Auto,
            sg_threshold: DEFAULT_SG_THRESHOLD,
        }
    }
}

/// A running site.
pub struct Site {
    id: SiteId,
    runtime: Arc<Runtime>,
    stop: Arc<AtomicBool>,
    checker_stop: Arc<AtomicBool>,
    reports: Arc<Mutex<Vec<DeadlockReport>>>,
    publisher: Option<JoinHandle<()>>,
    checker: Option<JoinHandle<()>>,
}

impl Site {
    /// Starts a site against the shared store: spawns its publisher and
    /// checker threads. Workloads run on [`Site::runtime`].
    pub fn start(id: SiteId, store: Arc<dyn Store>, cfg: SiteConfig) -> Site {
        let runtime =
            Runtime::new(RuntimeConfig::unchecked().with_verifier(VerifierConfig::publish_only()));
        let stop = Arc::new(AtomicBool::new(false));
        let checker_stop = Arc::new(AtomicBool::new(false));
        let reports = Arc::new(Mutex::new(Vec::new()));

        let publisher = {
            let runtime = Arc::clone(&runtime);
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("{id}-publisher"))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        // Store failures are tolerated: skip the round.
                        let _ = store.publish(id, runtime.verifier().local_snapshot());
                        std::thread::sleep(cfg.publish_period);
                    }
                    let _ = store.remove(id);
                })
                .expect("spawn publisher")
        };

        let checker = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let checker_stop = Arc::clone(&checker_stop);
            let reports = Arc::clone(&reports);
            std::thread::Builder::new()
                .name(format!("{id}-checker"))
                .spawn(move || {
                    let mut dedup = ReportDedup::new();
                    while !stop.load(Ordering::SeqCst) && !checker_stop.load(Ordering::SeqCst) {
                        std::thread::sleep(cfg.check_period);
                        // Fetch failures are tolerated: skip the round.
                        if let Ok(out) = check_store(store.as_ref(), cfg.model, cfg.sg_threshold) {
                            if let Some(report) = out.report {
                                if dedup.is_new(&report) {
                                    reports.lock().push(report);
                                }
                            }
                        }
                    }
                })
                .expect("spawn checker")
        };

        Site {
            id,
            runtime,
            stop,
            checker_stop,
            reports,
            publisher: Some(publisher),
            checker: Some(checker),
        }
    }

    /// This site's id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// The runtime workloads should use on this site.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// Deadlocks this site's checker has reported.
    pub fn reports(&self) -> Vec<DeadlockReport> {
        self.reports.lock().clone()
    }

    /// Has this site reported any deadlock?
    pub fn found_deadlock(&self) -> bool {
        !self.reports.lock().is_empty()
    }

    /// Kills this site's *checker* thread only (the publisher keeps
    /// running) — the fault-injection used to show detection survives site
    /// checker failures: there is no designated control site, so the
    /// remaining sites still find the deadlock.
    pub fn kill_checker(&mut self) {
        self.checker_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.checker.take() {
            let _ = h.join();
        }
    }

    /// Stops the site's threads and removes its partition.
    pub fn stop(mut self) {
        self.shutdown();
        if let Some(h) = self.publisher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.checker.take() {
            let _ = h.join();
        }
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.runtime.shutdown();
    }
}

impl Drop for Site {
    fn drop(&mut self) {
        self.shutdown();
    }
}
