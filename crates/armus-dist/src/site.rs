//! A site: one place of the distributed system, with its own runtime, a
//! publisher thread, and an independent checker thread (paper §5.2: "all
//! sites check for deadlocks"; "the deadlock checker executes at each site
//! and does not depend on the cooperation of other sites").
//!
//! The publisher speaks the store's delta protocol: it tracks a journal
//! cursor into its runtime's registry and normally ships only the deltas
//! since its previous round — an empty interval when nothing changed,
//! which doubles as a partition heartbeat. It falls back to a
//! **full-snapshot resync** when it joins, when the bounded journal
//! truncated past its cursor, or when the store NACKs the delta interval
//! (partition lost, version mismatch, or a store without delta support) —
//! so recovery never depends on delta continuity, and a lost partition is
//! repaired within one round even from a fully quiescent site.
//!
//! Sites take the store as `Arc<dyn Store>` and never assume exclusive
//! ownership, so the intended networked deployment is **many sites
//! sharing one [`crate::tcp::TcpStore`]**: its pipelined connection
//! multiplexes every site's publisher and checker traffic (correlation
//! ids demultiplex the responses), one socket and one demux thread per
//! process instead of per site. `tests/net.rs` proves the multiplexed
//! path produces reports byte-identical to connection-per-site and to
//! the in-process [`crate::store::MemStore`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use armus_core::{
    DeadlockReport, JournalRead, ModelChoice, Verifier, VerifierConfig, DEFAULT_SG_THRESHOLD,
};
use armus_sync::{Runtime, RuntimeConfig};
use parking_lot::{Condvar, Mutex};

use crate::detector::{DistCheckerStats, IncrementalDistChecker, ReportDedup};
use crate::store::{DeltaAck, SiteId, Store};

/// An interruptible stop flag: loop threads park on it between rounds
/// instead of `thread::sleep`ing, so [`Site::stop`] latency is bounded by
/// the wake-up cost, not by the sum of the publish/check periods.
pub(crate) struct StopSignal {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl StopSignal {
    pub(crate) fn new() -> StopSignal {
        StopSignal { stopped: Mutex::new(false), cv: Condvar::new() }
    }

    /// Sets the flag and wakes every parked thread.
    pub(crate) fn stop(&self) {
        *self.stopped.lock() = true;
        self.cv.notify_all();
    }

    pub(crate) fn is_stopped(&self) -> bool {
        *self.stopped.lock()
    }

    /// Parks for up to `period` or until [`StopSignal::stop`]; returns
    /// true when stopped.
    pub(crate) fn wait(&self, period: Duration) -> bool {
        let mut stopped = self.stopped.lock();
        if *stopped {
            return true;
        }
        let _ = self.cv.wait_for(&mut stopped, period);
        *stopped
    }
}

/// Per-site verification configuration.
#[derive(Clone, Copy, Debug)]
pub struct SiteConfig {
    /// How often the local blocked set is pushed to the store.
    pub publish_period: Duration,
    /// How often this site checks the global view (paper: 200 ms).
    pub check_period: Duration,
    /// Graph-model selection for the distributed check.
    pub model: ModelChoice,
    /// SG-abort threshold.
    pub sg_threshold: usize,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig {
            publish_period: Duration::from_millis(50),
            check_period: Duration::from_millis(200),
            model: ModelChoice::Auto,
            sg_threshold: DEFAULT_SG_THRESHOLD,
        }
    }
}

/// A running site.
pub struct Site {
    id: SiteId,
    runtime: Arc<Runtime>,
    stop: Arc<StopSignal>,
    checker_stop: Arc<StopSignal>,
    reports: Arc<Mutex<Vec<DeadlockReport>>>,
    resyncs: Arc<AtomicU64>,
    checker_stats: Arc<Mutex<DistCheckerStats>>,
    publisher: Option<JoinHandle<()>>,
    checker: Option<JoinHandle<()>>,
}

/// Bounded retries of the partition remove on site stop, with doubling
/// backoff starting at [`REMOVE_BACKOFF`]. A transiently unavailable
/// store therefore still gets the remove (no ghost partition confirming
/// false deadlocks), while a dead store only delays stop by the bounded
/// total (~150 ms) — past that, the partition lease is the backstop.
const REMOVE_RETRIES: u32 = 5;

/// Initial backoff between remove retries.
const REMOVE_BACKOFF: Duration = Duration::from_millis(10);

/// Best-effort partition cleanup on stop: bounded retry with doubling
/// backoff. Returns whether the remove landed.
fn remove_with_retry(store: &dyn Store, id: SiteId) -> bool {
    let mut backoff = REMOVE_BACKOFF;
    for attempt in 0..REMOVE_RETRIES {
        if store.remove(id).is_ok() {
            return true;
        }
        if attempt + 1 < REMOVE_RETRIES {
            std::thread::sleep(backoff);
            backoff *= 2;
        }
    }
    false
}

/// One publisher round: ship the deltas since `cursor`, or a full
/// versioned snapshot when not (or no longer) in sync. Returns the updated
/// `(cursor, synced)` pair; store failures leave both untouched so the
/// next round retries. Bumps `resyncs` per full-snapshot publish.
fn publish_round(
    store: &dyn Store,
    verifier: &Verifier,
    id: SiteId,
    mut cursor: u64,
    mut synced: bool,
    resyncs: &AtomicU64,
) -> (u64, bool) {
    if synced {
        match verifier.deltas_since(cursor) {
            JournalRead::Deltas(deltas, next) => {
                // Publish even when the interval is empty: it doubles as a
                // partition heartbeat. A store that lost the partition
                // NACKs it, triggering the resync below — crucial because
                // a site whose tasks are all deadlocked is exactly
                // quiescent, and its partition matters most then.
                match store.publish_deltas(id, cursor, &deltas, next) {
                    Ok(DeltaAck::Applied) => cursor = next,
                    Ok(DeltaAck::NeedSnapshot) => synced = false,
                    Err(_) => return (cursor, synced), // outage: retry later
                }
            }
            JournalRead::Behind => synced = false,
        }
    }
    if !synced {
        let (snapshot, head) = verifier.snapshot_with_cursor();
        if store.publish_full(id, snapshot, head).is_ok() {
            cursor = head;
            synced = true;
            resyncs.fetch_add(1, Ordering::Relaxed);
        }
    }
    (cursor, synced)
}

impl Site {
    /// Starts a site against the shared store: spawns its publisher and
    /// checker threads. Workloads run on [`Site::runtime`].
    pub fn start(id: SiteId, store: Arc<dyn Store>, cfg: SiteConfig) -> Site {
        let runtime =
            Runtime::new(RuntimeConfig::unchecked().with_verifier(VerifierConfig::publish_only()));
        let stop = Arc::new(StopSignal::new());
        let checker_stop = Arc::new(StopSignal::new());
        let reports = Arc::new(Mutex::new(Vec::new()));
        let resyncs = Arc::new(AtomicU64::new(0));
        let checker_stats = Arc::new(Mutex::new(DistCheckerStats::default()));

        let publisher = {
            let runtime = Arc::clone(&runtime);
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let resyncs = Arc::clone(&resyncs);
            std::thread::Builder::new()
                .name(format!("{id}-publisher"))
                .spawn(move || {
                    let mut cursor = 0u64;
                    let mut synced = false; // first round publishes the join snapshot
                    while !stop.is_stopped() {
                        (cursor, synced) = publish_round(
                            store.as_ref(),
                            runtime.verifier(),
                            id,
                            cursor,
                            synced,
                            &resyncs,
                        );
                        // Interruptible: stop() wakes us immediately
                        // instead of eating a whole publish period.
                        if stop.wait(cfg.publish_period) {
                            break;
                        }
                    }
                    // Retire the partition so other sites stop merging it.
                    // A transient outage is retried; if the store stays
                    // down the lease expiry is the backstop.
                    remove_with_retry(store.as_ref(), id);
                })
                .expect("spawn publisher")
        };

        let checker = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let checker_stop = Arc::clone(&checker_stop);
            let reports = Arc::clone(&reports);
            let checker_stats = Arc::clone(&checker_stats);
            std::thread::Builder::new()
                .name(format!("{id}-checker"))
                .spawn(move || {
                    let mut dedup = ReportDedup::new();
                    // The checker engine persists across rounds: each round
                    // diffs the merged view against the previous one and
                    // answers cycle existence from the maintained order —
                    // O(churn between rounds), not O(cluster blocked set).
                    let mut checker = IncrementalDistChecker::new();
                    while !stop.is_stopped() && !checker_stop.is_stopped() {
                        if checker_stop.wait(cfg.check_period) || stop.is_stopped() {
                            break;
                        }
                        // Fetch failures are tolerated: skip the round.
                        match checker.check_round(store.as_ref(), cfg.model, cfg.sg_threshold) {
                            Ok(out) => {
                                if let Some(report) = out.report {
                                    if dedup.is_new(&report) {
                                        reports.lock().push(report);
                                    }
                                }
                            }
                            // Conservative: after a store outage, rebuild
                            // from the next successful fetch rather than
                            // trust the diff path — delta continuity must
                            // never be load-bearing for correctness.
                            Err(_) => checker.resync(),
                        }
                        *checker_stats.lock() = checker.stats();
                    }
                })
                .expect("spawn checker")
        };

        Site {
            id,
            runtime,
            stop,
            checker_stop,
            reports,
            resyncs,
            checker_stats,
            publisher: Some(publisher),
            checker: Some(checker),
        }
    }

    /// This site's id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// Full-snapshot publishes performed so far (the join counts as one;
    /// anything beyond it is a recovery resync).
    pub fn publish_resyncs(&self) -> u64 {
        self.resyncs.load(Ordering::Relaxed)
    }

    /// Counters of this site's checker thread as of its latest round:
    /// rounds run, confirmation re-fetches, deltas diffed in, and how
    /// often detection stayed on the incremental path — the observability
    /// needed to see that a multiplexed store still serves every site's
    /// check cadence.
    pub fn checker_stats(&self) -> DistCheckerStats {
        *self.checker_stats.lock()
    }

    /// The runtime workloads should use on this site.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// This site's local verifier counters (blocks, fast-path skips,
    /// `async_waits`/`waker_wakes`, …) — the front-end-side observability
    /// twin of [`Site::checker_stats`].
    pub fn verifier_stats(&self) -> armus_core::StatsSnapshot {
        self.runtime.verifier().stats()
    }

    /// Deadlocks this site's checker has reported.
    pub fn reports(&self) -> Vec<DeadlockReport> {
        self.reports.lock().clone()
    }

    /// Has this site reported any deadlock?
    pub fn found_deadlock(&self) -> bool {
        !self.reports.lock().is_empty()
    }

    /// Kills this site's *checker* thread only (the publisher keeps
    /// running) — the fault-injection used to show detection survives site
    /// checker failures: there is no designated control site, so the
    /// remaining sites still find the deadlock.
    pub fn kill_checker(&mut self) {
        self.checker_stop.stop();
        if let Some(h) = self.checker.take() {
            let _ = h.join();
        }
    }

    /// Stops the site's threads and removes its partition.
    pub fn stop(mut self) {
        self.shutdown();
        if let Some(h) = self.publisher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.checker.take() {
            let _ = h.join();
        }
    }

    fn shutdown(&self) {
        // Wake both loops out of their parked waits: stop latency is
        // bounded by the wake-up (and the bounded remove retry), not by
        // the publish/check periods.
        self.stop.stop();
        self.checker_stop.stop();
        self.runtime.shutdown();
    }
}

impl Drop for Site {
    fn drop(&mut self) {
        self.shutdown();
    }
}
