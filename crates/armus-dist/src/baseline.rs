//! The membership-tracking baseline Armus argues against (paper §2.1/§7).
//!
//! State-of-the-art distributed barrier-deadlock detectors (Umpire/MUST
//! style) aggregate the *arrival status of each participant per barrier* —
//! a global structure that must be kept consistent across sites. This
//! module implements that representation so the benches can quantify the
//! difference against the event-based one: the ledger's update payload
//! grows with total membership (every member of every phaser), whereas the
//! event-based partition only carries *blocked* tasks.

use std::collections::BTreeMap;

use armus_core::graph::DiGraph;
use armus_core::{Phase, PhaserId, TaskId};

use crate::store::SiteId;

/// One site's full membership report: for every phaser it hosts members
/// of, every member and its arrival status.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MembershipReport {
    /// `phaser → member → (local phase, blocked-waiting-on-this-phaser)`.
    pub members: BTreeMap<PhaserId, BTreeMap<TaskId, (Phase, bool)>>,
}

impl MembershipReport {
    /// Number of `(phaser, member)` entries — the payload-size proxy the
    /// ablation bench reports.
    pub fn entries(&self) -> usize {
        self.members.values().map(|m| m.len()).sum()
    }
}

/// The aggregated global ledger.
#[derive(Default)]
pub struct MembershipLedger {
    sites: BTreeMap<SiteId, MembershipReport>,
}

impl MembershipLedger {
    /// Creates an empty ledger.
    pub fn new() -> MembershipLedger {
        MembershipLedger::default()
    }

    /// Replaces a site's report (the per-round global synchronisation the
    /// event-based representation avoids).
    pub fn apply(&mut self, site: SiteId, report: MembershipReport) {
        self.sites.insert(site, report);
    }

    /// Total `(phaser, member)` entries currently held.
    pub fn entries(&self) -> usize {
        self.sites.values().map(|r| r.entries()).sum()
    }

    /// Builds the WFG from the aggregated membership: `t1 → t2` iff `t1`
    /// is blocked on a phaser where `t2` lags behind `t1`'s phase. This is
    /// the classical construction — note it needs the *entire* membership,
    /// not just blocked tasks.
    pub fn wfg(&self) -> DiGraph<TaskId> {
        // Merge per-phaser membership across sites.
        let mut merged: BTreeMap<PhaserId, BTreeMap<TaskId, (Phase, bool)>> = BTreeMap::new();
        for report in self.sites.values() {
            for (&ph, members) in &report.members {
                let entry = merged.entry(ph).or_default();
                for (&t, &st) in members {
                    entry.insert(t, st);
                }
            }
        }
        let mut g = DiGraph::new();
        for members in merged.values() {
            for (&t1, &(n1, blocked)) in members {
                if !blocked {
                    continue;
                }
                g.add_node(t1);
                for (&t2, &(n2, _)) in members {
                    if n2 < n1 {
                        g.add_edge(t1, t2);
                    }
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }

    fn report(entries: &[(u64, u64, u64, bool)]) -> MembershipReport {
        let mut r = MembershipReport::default();
        for &(ph, task, phase, blocked) in entries {
            r.members.entry(p(ph)).or_default().insert(t(task), (phase, blocked));
        }
        r
    }

    #[test]
    fn ledger_finds_the_running_example_deadlock() {
        let mut ledger = MembershipLedger::new();
        // Site 0: workers on pc (arrived 1, blocked) and pb (at 0).
        ledger.apply(
            SiteId(0),
            report(&[
                (1, 1, 1, true),
                (1, 2, 1, true),
                (1, 3, 1, true),
                (2, 1, 0, false),
                (2, 2, 0, false),
                (2, 3, 0, false),
            ]),
        );
        // Site 1: driver lags pc at 0, blocked on pb at 1.
        ledger.apply(SiteId(1), report(&[(1, 4, 0, false), (2, 4, 1, true)]));
        let g = ledger.wfg();
        assert!(g.find_cycle().is_some());
    }

    #[test]
    fn payload_grows_with_total_membership_not_blocked_count() {
        // 1 blocked task among 100 members: the ledger still ships 100
        // entries, the event-based snapshot ships 1 record.
        let mut r = MembershipReport::default();
        for i in 0..100 {
            r.members.entry(p(1)).or_default().insert(t(i), (1, i == 0));
        }
        assert_eq!(r.entries(), 100);
        let mut ledger = MembershipLedger::new();
        ledger.apply(SiteId(0), r);
        assert_eq!(ledger.entries(), 100);
    }

    #[test]
    fn apply_replaces_a_sites_report() {
        let mut ledger = MembershipLedger::new();
        ledger.apply(SiteId(0), report(&[(1, 1, 0, false)]));
        ledger.apply(SiteId(0), report(&[(1, 1, 1, false), (1, 2, 0, false)]));
        assert_eq!(ledger.entries(), 2);
    }
}
