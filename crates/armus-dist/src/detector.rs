//! The distributed deadlock check: merge partitions, analyse, confirm.
//!
//! Armus adapts the one-phase detection algorithm of Kshemkalyani–Singhal:
//! every site independently pulls the global view and checks it — there is
//! no designated control site (fault tolerance), and thanks to the
//! event-based representation the partitions need no cross-site
//! consistency: each blocked task's status is internally consistent, and
//! phases only grow. A found cycle is *confirmed* by re-fetching the view
//! and requiring every `(task, epoch)` pair of the cycle to still be
//! present — deadlocked tasks can never unblock, so confirmation is
//! conclusive, while in-flight unblockings disappear.

#[cfg(test)]
use armus_core::TaskId;
use armus_core::{
    checker, CheckStats, DeadlockReport, Delta, IncrementalEngine, ModelChoice, Snapshot,
};

use crate::store::{SiteId, Store, StoreError};

/// Merges per-site partitions into one global snapshot, **site-namespacing
/// every task id** ([`armus_core::TaskId::with_site`]): the injective
/// `(site, local id)` renaming that keeps tasks from independent processes
/// distinct even when their process-local ids collide. Phaser ids are left
/// alone — a phaser is a distributed clock, so the same phaser id on two
/// sites names the same synchronisation object, and the cross-site edges
/// of a distributed cycle run exactly through that shared identity.
/// Reports therefore carry namespaced ids (rendered `s1:t4`); strip them
/// with [`armus_core::TaskId::local`]/`site_tag` when mapping a report
/// back to one site's tasks.
///
/// A partition whose ids cannot be injectively renamed (an
/// out-of-protocol peer shipped a too-wide or already-namespaced id, or
/// a site id beyond the tag range) is **skipped**, not panicked on: ids
/// arrive over the wire, and a checker thread dying on hostile input
/// would silently end detection cluster-wide. Skipping can only delay a
/// report (the site reads as absent), never fabricate one — and the
/// `armus-stored` server additionally rejects such publishes up front.
pub fn merge(partitions: &[(SiteId, Snapshot)]) -> Snapshot {
    let mut tasks = Vec::with_capacity(partitions.iter().map(|(_, s)| s.len()).sum());
    for (site, snap) in partitions {
        match snap.clone().with_site_namespace(site.0) {
            Some(namespaced) => tasks.extend(namespaced.tasks),
            None => continue, // out-of-protocol partition: treat as absent
        }
    }
    let merged = Snapshot::from_tasks(tasks);
    // The renaming is injective and a store partition holds at most one
    // status per task, so the merged (sorted) view has no duplicate ids —
    // a duplicate would mean two statuses for one task, i.e. a nonsense
    // graph over aliased nodes.
    debug_assert!(
        merged.tasks.windows(2).all(|w| w[0].task != w[1].task),
        "merged view must have unique task ids"
    );
    merged
}

/// Outcome of one distributed check round.
pub struct DistCheck {
    /// A *confirmed* deadlock, if any.
    pub report: Option<DeadlockReport>,
    /// Statistics of the (first) analysis pass.
    pub stats: Option<CheckStats>,
}

/// Runs one check round against the store: fetch, analyse, and on a hit
/// re-fetch to confirm. Store errors surface as `Err` — callers skip the
/// round (resilience) rather than fail.
pub fn check_store(
    store: &dyn Store,
    model: ModelChoice,
    sg_threshold: usize,
) -> Result<DistCheck, StoreError> {
    let view = store.fetch_all()?;
    let merged = merge(&view);
    if merged.is_empty() {
        return Ok(DistCheck { report: None, stats: None });
    }
    let outcome = checker::check(&merged, model, sg_threshold);
    let stats = Some(outcome.stats);
    let Some(report) = outcome.report else {
        return Ok(DistCheck { report: None, stats });
    };
    // Confirmation pass: one more fetch; every participant must still be
    // in the same blocking operation.
    let view2 = store.fetch_all()?;
    let merged2 = merge(&view2);
    let confirmed = report
        .task_epochs
        .iter()
        .all(|&(task, epoch)| merged2.get(task).map(|info| info.epoch == epoch).unwrap_or(false));
    Ok(DistCheck { report: confirmed.then_some(report), stats })
}

/// Per-checker counters of the incremental distributed detection path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistCheckerStats {
    /// Block/unblock deltas derived by diffing successive merged views.
    pub deltas_applied: u64,
    /// Rounds whose detection was answered entirely from the maintained
    /// topological order (no full graph walk).
    pub incremental_detections: u64,
    /// From-scratch rebuilds of the engine (and its orders) from a merged
    /// snapshot: the first round and every explicit
    /// [`IncrementalDistChecker::resync`].
    pub order_rebuilds: u64,
    /// Check rounds completed (the fetch and the analysis both
    /// succeeded).
    pub rounds: u64,
    /// Confirmation re-fetches (a cycle was found and had to be verified
    /// against a second view before reporting).
    pub confirm_fetches: u64,
}

/// A *persistent* distributed checker: the stateful counterpart of
/// [`check_store`]. It keeps an [`IncrementalEngine`] alive across rounds
/// and feeds it the **difference between successive merged views** as
/// block/unblock deltas, so cycle existence is answered from the
/// maintained Pearce–Kelly order in O(round-over-round churn) instead of
/// rebuilding the dependency graphs from the full global view every 200 ms
/// — the distributed analogue of the local verifier's journal-following
/// detection. The first round (and every explicit
/// [`IncrementalDistChecker::resync`]) rebuilds the engine from the merged
/// snapshot, mirroring the local `Behind` → snapshot-resync fallback;
/// reports stay byte-identical to [`check_store`]'s because a hit falls
/// back to the same canonical `checker::check` extraction and the same
/// confirmation re-fetch.
pub struct IncrementalDistChecker {
    engine: IncrementalEngine,
    /// The merged view the engine currently reflects; `None` forces a
    /// from-snapshot rebuild on the next round (join and resync).
    prev: Option<Snapshot>,
    stats: DistCheckerStats,
}

impl Default for IncrementalDistChecker {
    fn default() -> Self {
        IncrementalDistChecker::new()
    }
}

impl IncrementalDistChecker {
    /// A fresh checker: the first round rebuilds from the merged view.
    pub fn new() -> IncrementalDistChecker {
        IncrementalDistChecker {
            engine: IncrementalEngine::new(),
            prev: None,
            stats: DistCheckerStats::default(),
        }
    }

    /// Drops the delta continuity: the next round rebuilds the engine from
    /// the merged snapshot (counted as an order rebuild). Callers use this
    /// after any suspicion of a missed view — the incremental path must
    /// never be load-bearing for correctness.
    pub fn resync(&mut self) {
        self.prev = None;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> DistCheckerStats {
        self.stats
    }

    /// Advances the engine to `merged` — by diffing against the previous
    /// round's view (both sorted by task id, so a two-pointer sweep), or
    /// by a full rebuild when continuity was lost.
    fn advance_to(&mut self, merged: &Snapshot) {
        match self.prev.take() {
            None => {
                self.engine.reset_to(merged);
                self.stats.order_rebuilds += 1;
            }
            Some(prev) => {
                let (old, new) = (&prev.tasks, &merged.tasks);
                let (mut i, mut j) = (0, 0);
                while i < old.len() || j < new.len() {
                    let delta = match (old.get(i), new.get(j)) {
                        (Some(o), Some(n)) if o.task == n.task => {
                            i += 1;
                            j += 1;
                            if o == n {
                                continue; // unchanged: the common case
                            }
                            // Same task, new status (epoch or waits moved):
                            // a Block replaces the previous contribution.
                            Delta::Block(n.clone())
                        }
                        (Some(o), Some(n)) if o.task < n.task => {
                            i += 1;
                            Delta::Unblock(o.task)
                        }
                        (Some(_) | None, Some(n)) => {
                            j += 1;
                            Delta::Block(n.clone())
                        }
                        (Some(o), None) => {
                            i += 1;
                            Delta::Unblock(o.task)
                        }
                        (None, None) => unreachable!("loop condition"),
                    };
                    self.engine.apply(delta);
                    self.stats.deltas_applied += 1;
                }
            }
        }
        self.prev = Some(merged.clone());
        debug_assert_eq!(self.engine.materialize(), *merged, "diff replay must be exact");
    }

    /// Runs one check round against the store: fetch + merge, advance the
    /// engine by the diff, answer cycle existence from the maintained
    /// order, and on a hit extract the canonical report and confirm it
    /// with a re-fetch — the exact semantics of [`check_store`], minus the
    /// per-round graph rebuild. Store errors surface as `Err` and leave
    /// the engine untouched, so the next round's diff stays sound.
    pub fn check_round(
        &mut self,
        store: &dyn Store,
        model: ModelChoice,
        sg_threshold: usize,
    ) -> Result<DistCheck, StoreError> {
        let view = store.fetch_all()?;
        let merged = merge(&view);
        self.advance_to(&merged);
        self.stats.rounds += 1;
        if merged.is_empty() {
            return Ok(DistCheck { report: None, stats: None });
        }
        let det = self.engine.check_full_detailed(model, sg_threshold);
        if det.incremental {
            self.stats.incremental_detections += 1;
        }
        let stats = Some(det.outcome.stats);
        let Some(report) = det.outcome.report else {
            return Ok(DistCheck { report: None, stats });
        };
        // Confirmation pass, identical to `check_store`: one more fetch;
        // every participant must still be in the same blocking operation.
        // The confirmation view is deliberately NOT fed to the engine —
        // the next round re-fetches and diffs from `merged`.
        self.stats.confirm_fetches += 1;
        let view2 = store.fetch_all()?;
        let merged2 = merge(&view2);
        let confirmed = report.task_epochs.iter().all(|&(task, epoch)| {
            merged2.get(task).map(|info| info.epoch == epoch).unwrap_or(false)
        });
        Ok(DistCheck { report: confirmed.then_some(report), stats })
    }
}

// The deadlock-report LRU dedup now lives in armus-core (the local
// verifier's detection monitor bounds its reported-set memory with the
// same scheme); re-exported here for the cluster checker's historical
// import path.
pub use armus_core::checker::{ReportDedup, DEFAULT_DEDUP_CAPACITY};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use armus_core::{BlockedInfo, PhaserId, Registration, Resource, DEFAULT_SG_THRESHOLD};

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }
    fn r(ph: u64, n: u64) -> Resource {
        Resource::new(p(ph), n)
    }

    /// The running example split across two sites: workers on site 0,
    /// driver on site 1 (a distributed clock, as in `at (p) async`).
    fn split_example(store: &MemStore) {
        let workers = (1..=3)
            .map(|i| {
                BlockedInfo::new(
                    t(i),
                    vec![r(1, 1)],
                    vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
                )
            })
            .collect();
        store.publish(SiteId(0), Snapshot::from_tasks(workers)).unwrap();
        let driver = BlockedInfo::new(
            t(4),
            vec![r(2, 1)],
            vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
        );
        store.publish(SiteId(1), Snapshot::from_tasks(vec![driver])).unwrap();
    }

    #[test]
    fn merge_concatenates_partitions() {
        let store = MemStore::new();
        split_example(&store);
        let merged = merge(&store.fetch_all().unwrap());
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn merge_namespaces_task_ids_by_site() {
        let store = MemStore::new();
        split_example(&store);
        let merged = merge(&store.fetch_all().unwrap());
        // Workers live on site 0, the driver on site 1.
        for worker in 1..=3 {
            let global = t(worker).with_site(0);
            assert_eq!(merged.get(global).unwrap().task.local(), t(worker));
        }
        assert_eq!(merged.get(t(4).with_site(1)).unwrap().task.site_tag(), Some(1));
        assert!(merged.get(t(4)).is_none(), "un-namespaced ids must not appear");
    }

    #[test]
    fn colliding_local_ids_stay_distinct_in_the_merge() {
        // Two independent processes may both host a local task 1; the
        // injective renaming keeps both statuses. Before the namespacing
        // this silently kept both under one id — a nonsense merged view.
        let store = MemStore::new();
        let local = |waits: Resource| {
            Snapshot::from_tasks(vec![BlockedInfo::new(
                t(1),
                vec![waits],
                vec![Registration::new(p(1), 0)],
            )])
        };
        store.publish(SiteId(0), local(r(1, 1))).unwrap();
        store.publish(SiteId(1), local(r(1, 2))).unwrap();
        let merged = merge(&store.fetch_all().unwrap());
        assert_eq!(merged.len(), 2, "both colliding tasks must survive the merge");
        let ids: Vec<_> = merged.tasks.iter().map(|b| b.task).collect();
        assert_eq!(ids, vec![t(1).with_site(0), t(1).with_site(1)]);
        assert!(ids.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn out_of_protocol_partitions_are_skipped_not_panicked_on() {
        // A hostile or buggy peer can put any u64 in a published task id
        // and any u32 in a site id; the merge — which runs on every
        // checker thread — must stay total. The rogue partition reads as
        // absent; the healthy ones still merge.
        let store = MemStore::new();
        split_example(&store);
        let rogue = Snapshot::from_tasks(vec![BlockedInfo::new(
            // Already-namespaced (too-wide) id: cannot be renamed again.
            t(1).with_site(3),
            vec![r(1, 1)],
            vec![Registration::new(p(1), 0)],
        )]);
        store.publish(SiteId(7), rogue).unwrap();
        let merged = merge(&store.fetch_all().unwrap());
        assert_eq!(merged.len(), 4, "the rogue partition is skipped, the rest survive");
        // Detection still works on the healthy partitions.
        let out = check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert!(out.report.is_some());
        // An out-of-range *site id* is likewise skipped, not panicked on.
        let store2 = MemStore::new();
        store2
            .publish(
                SiteId(armus_core::MAX_SITE_TAG + 1),
                Snapshot::from_tasks(vec![BlockedInfo::new(
                    t(1),
                    vec![r(1, 1)],
                    vec![Registration::new(p(1), 0)],
                )]),
            )
            .unwrap();
        assert!(merge(&store2.fetch_all().unwrap()).is_empty());
    }

    #[test]
    fn cross_site_deadlock_is_found_and_confirmed() {
        let store = MemStore::new();
        split_example(&store);
        let out = check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        let report = out.report.expect("cross-site cycle");
        assert!(report.tasks.contains(&t(4).with_site(1)), "driver participates, namespaced");
        assert!(out.stats.is_some());
    }

    fn json(report: &Option<DeadlockReport>) -> String {
        serde_json::to_string(report).expect("reports serialise")
    }

    #[test]
    fn incremental_checker_matches_check_store_byte_identically() {
        let store = MemStore::new();
        let mut inc = IncrementalDistChecker::new();
        // Round 1 — healthy workers only: the join rebuild, then a purely
        // order-answered "no cycle".
        let workers: Vec<_> = (1..=3)
            .map(|i| {
                BlockedInfo::new(
                    t(i),
                    vec![r(1, 1)],
                    vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
                )
            })
            .collect();
        store.publish(SiteId(0), Snapshot::from_tasks(workers)).unwrap();
        let round = inc.check_round(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert!(round.report.is_none());
        let stats = inc.stats();
        assert_eq!(stats.order_rebuilds, 1, "the join round rebuilds: {stats:?}");
        assert_eq!(stats.incremental_detections, 1, "no-cycle verdict from the order: {stats:?}");
        assert_eq!(stats.deltas_applied, 0);

        // Round 2 — the driver joins on site 1, closing the cross-site
        // cycle: exactly one diffed Block delta, and the report is
        // byte-identical to the stateless `check_store`'s.
        let driver = BlockedInfo::new(
            t(4),
            vec![r(2, 1)],
            vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
        );
        store.publish(SiteId(1), Snapshot::from_tasks(vec![driver])).unwrap();
        let round = inc.check_round(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        let baseline = check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert!(baseline.report.is_some());
        assert_eq!(json(&round.report), json(&baseline.report), "hit round must match");
        let stats = inc.stats();
        assert_eq!(stats.deltas_applied, 1, "one task joined: {stats:?}");
        assert_eq!(stats.order_rebuilds, 1, "the hit must not force a rebuild: {stats:?}");
        assert_eq!(stats.incremental_detections, 1, "a hit is not order-answered: {stats:?}");

        // Round 3 — quiescent store: zero deltas, same confirmed report.
        let round = inc.check_round(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert_eq!(json(&round.report), json(&baseline.report));
        assert_eq!(inc.stats().deltas_applied, 1, "nothing changed, nothing applied");

        // Round 4 — the driver's partition retires: one Unblock delta,
        // the cycle is gone, and the verdict is order-answered again.
        store.remove(SiteId(1)).unwrap();
        let round = inc.check_round(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert!(round.report.is_none());
        let stats = inc.stats();
        assert_eq!(stats.deltas_applied, 2, "{stats:?}");
        assert_eq!(stats.incremental_detections, 2, "{stats:?}");
    }

    #[test]
    fn incremental_checker_resync_rereports_byte_identically() {
        // The distributed analogue of the journal-resync regression: a
        // pre-existing cycle must survive an explicit engine rebuild and
        // be re-reported with the exact bytes the stateless check emits.
        let store = MemStore::new();
        let mut inc = IncrementalDistChecker::new();
        split_example(&store);
        let before = inc.check_round(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert!(before.report.is_some());
        assert_eq!(inc.stats().order_rebuilds, 1);

        inc.resync();
        let after = inc.check_round(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        let stats = inc.stats();
        assert_eq!(stats.order_rebuilds, 2, "explicit resync rebuilds: {stats:?}");
        assert_eq!(json(&after.report), json(&before.report), "byte-identical across resync");
        let baseline = check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert_eq!(json(&after.report), json(&baseline.report), "and to the stateless check");
    }

    #[test]
    fn incremental_checker_discards_unconfirmed_cycles() {
        // Same staleness protocol as `check_store`: the confirmation
        // re-fetch sees the driver gone, so no report — and the *next*
        // round diffs from the analysis view, staying exact.
        struct TwoPhase {
            inner: MemStore,
            flips: std::sync::atomic::AtomicU32,
        }
        impl Store for TwoPhase {
            fn publish(&self, s: SiteId, p: Snapshot) -> Result<(), StoreError> {
                self.inner.publish(s, p)
            }
            fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
                let n = self.flips.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if n == 1 {
                    self.inner.remove(SiteId(1)).unwrap();
                }
                self.inner.fetch_all()
            }
            fn remove(&self, s: SiteId) -> Result<(), StoreError> {
                self.inner.remove(s)
            }
        }
        let store = TwoPhase { inner: MemStore::new(), flips: 0.into() };
        split_example(&store.inner);
        let mut inc = IncrementalDistChecker::new();
        let out = inc.check_round(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert!(out.report.is_none(), "stale cycle must not be reported");
        // Next round: the engine diffs the driver's departure and settles
        // on the cycle-free view.
        let out = inc.check_round(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert!(out.report.is_none());
        assert_eq!(inc.stats().deltas_applied, 1, "the driver's departure, as a diffed Unblock");
    }

    #[test]
    fn unconfirmed_cycles_are_discarded() {
        // Manually stale: after the first fetch the driver's partition is
        // replaced with a *newer epoch* for the same task — the confirm
        // pass must reject. We emulate by wrapping the store so the second
        // fetch sees different data.
        struct TwoPhase {
            inner: MemStore,
            flips: std::sync::atomic::AtomicU32,
        }
        impl Store for TwoPhase {
            fn publish(&self, s: SiteId, p: Snapshot) -> Result<(), StoreError> {
                self.inner.publish(s, p)
            }
            fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
                let n = self.flips.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if n == 1 {
                    // Second fetch: the driver unblocked (partition empty).
                    self.inner.remove(SiteId(1)).unwrap();
                }
                self.inner.fetch_all()
            }
            fn remove(&self, s: SiteId) -> Result<(), StoreError> {
                self.inner.remove(s)
            }
        }
        let store = TwoPhase { inner: MemStore::new(), flips: 0.into() };
        split_example(&store.inner);
        let out = check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert!(out.report.is_none(), "stale cycle must not be reported");
    }

    #[test]
    fn healthy_partitions_yield_no_report() {
        let store = MemStore::new();
        let workers = (1..=3)
            .map(|i| BlockedInfo::new(t(i), vec![r(1, 1)], vec![Registration::new(p(1), 1)]))
            .collect();
        store.publish(SiteId(0), Snapshot::from_tasks(workers)).unwrap();
        let out = check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert!(out.report.is_none());
    }

    #[test]
    fn dedup_reports_once_per_task_set() {
        let store = MemStore::new();
        split_example(&store);
        let mut dedup = ReportDedup::new();
        let r1 =
            check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap().report.unwrap();
        assert!(dedup.is_new(&r1));
        let r2 =
            check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap().report.unwrap();
        assert!(!dedup.is_new(&r2));
    }

    fn report_over(tasks: Vec<TaskId>) -> DeadlockReport {
        DeadlockReport {
            tasks: tasks.clone(),
            resources: vec![r(1, 1)],
            model: armus_core::GraphModel::Wfg,
            witness: armus_core::CycleWitness::Tasks(tasks.clone()),
            task_epochs: tasks.into_iter().map(|t| (t, 1)).collect(),
        }
    }

    #[test]
    fn dedup_is_bounded_with_lru_eviction() {
        let mut dedup = ReportDedup::with_capacity(2);
        let (a, b, c) = (report_over(vec![t(1)]), report_over(vec![t(2)]), report_over(vec![t(3)]));
        assert!(dedup.is_new(&a));
        assert!(dedup.is_new(&b));
        // Re-seeing `a` refreshes it, so `b` is now least recent...
        assert!(!dedup.is_new(&a));
        assert!(dedup.is_new(&c)); // ...and gets evicted here.
        assert_eq!(dedup.len(), 2);
        assert!(dedup.is_new(&b), "evicted set is reported again");
        assert!(!dedup.is_new(&c), "retained set still deduplicates");
    }

    #[test]
    fn reexported_dedup_is_the_armus_core_type_with_identical_lru_order() {
        // The distributed checker deduplicates with armus-core's type:
        // the re-export must be the same type, and the eviction order a
        // site checker observes must match the core semantics exactly.
        let mut core: armus_core::ReportDedup = crate::ReportDedup::with_capacity(3);
        for n in 1..=3 {
            assert!(core.is_new(&report_over(vec![t(n)])));
        }
        // Refresh order 3, 1 → least-recent is now 2.
        assert!(!core.is_new(&report_over(vec![t(3)])));
        assert!(!core.is_new(&report_over(vec![t(1)])));
        assert!(core.is_new(&report_over(vec![t(4)]))); // evicts 2
        assert!(core.is_new(&report_over(vec![t(2)])), "2 was evicted first");
        assert!(core.is_new(&report_over(vec![t(3)])), "3 was evicted next");
    }

    #[test]
    fn persisting_distributed_deadlock_rereports_after_eviction() {
        // A deadlock that outlives a full dedup window is re-reported on
        // the next check round — loud beats silent for a stuck cluster.
        let store = MemStore::new();
        split_example(&store);
        let mut dedup = ReportDedup::with_capacity(1);
        let round = || {
            check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap().report.unwrap()
        };
        assert!(dedup.is_new(&round()));
        assert!(!dedup.is_new(&round()), "retained: suppressed");
        // An unrelated report on another site flushes the 1-entry window.
        assert!(dedup.is_new(&report_over(vec![t(99)])));
        assert!(dedup.is_new(&round()), "the still-live deadlock re-reports after eviction");
    }
}
