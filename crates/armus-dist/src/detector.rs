//! The distributed deadlock check: merge partitions, analyse, confirm.
//!
//! Armus adapts the one-phase detection algorithm of Kshemkalyani–Singhal:
//! every site independently pulls the global view and checks it — there is
//! no designated control site (fault tolerance), and thanks to the
//! event-based representation the partitions need no cross-site
//! consistency: each blocked task's status is internally consistent, and
//! phases only grow. A found cycle is *confirmed* by re-fetching the view
//! and requiring every `(task, epoch)` pair of the cycle to still be
//! present — deadlocked tasks can never unblock, so confirmation is
//! conclusive, while in-flight unblockings disappear.

#[cfg(test)]
use armus_core::TaskId;
use armus_core::{checker, CheckStats, DeadlockReport, ModelChoice, Snapshot};

use crate::store::{SiteId, Store, StoreError};

/// Merges per-site partitions into one global snapshot. Task ids are
/// process-unique in this embedding, so a plain concatenation is the
/// correct join (in a networked deployment ids would be namespaced by
/// site, which is an injective renaming — nothing else changes).
pub fn merge(partitions: &[(SiteId, Snapshot)]) -> Snapshot {
    let mut tasks = Vec::with_capacity(partitions.iter().map(|(_, s)| s.len()).sum());
    for (_, snap) in partitions {
        tasks.extend(snap.tasks.iter().cloned());
    }
    Snapshot::from_tasks(tasks)
}

/// Outcome of one distributed check round.
pub struct DistCheck {
    /// A *confirmed* deadlock, if any.
    pub report: Option<DeadlockReport>,
    /// Statistics of the (first) analysis pass.
    pub stats: Option<CheckStats>,
}

/// Runs one check round against the store: fetch, analyse, and on a hit
/// re-fetch to confirm. Store errors surface as `Err` — callers skip the
/// round (resilience) rather than fail.
pub fn check_store(
    store: &dyn Store,
    model: ModelChoice,
    sg_threshold: usize,
) -> Result<DistCheck, StoreError> {
    let view = store.fetch_all()?;
    let merged = merge(&view);
    if merged.is_empty() {
        return Ok(DistCheck { report: None, stats: None });
    }
    let outcome = checker::check(&merged, model, sg_threshold);
    let stats = Some(outcome.stats);
    let Some(report) = outcome.report else {
        return Ok(DistCheck { report: None, stats });
    };
    // Confirmation pass: one more fetch; every participant must still be
    // in the same blocking operation.
    let view2 = store.fetch_all()?;
    let merged2 = merge(&view2);
    let confirmed = report
        .task_epochs
        .iter()
        .all(|&(task, epoch)| merged2.get(task).map(|info| info.epoch == epoch).unwrap_or(false));
    Ok(DistCheck { report: confirmed.then_some(report), stats })
}

// The deadlock-report LRU dedup now lives in armus-core (the local
// verifier's detection monitor bounds its reported-set memory with the
// same scheme); re-exported here for the cluster checker's historical
// import path.
pub use armus_core::checker::{ReportDedup, DEFAULT_DEDUP_CAPACITY};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use armus_core::{BlockedInfo, PhaserId, Registration, Resource, DEFAULT_SG_THRESHOLD};

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }
    fn r(ph: u64, n: u64) -> Resource {
        Resource::new(p(ph), n)
    }

    /// The running example split across two sites: workers on site 0,
    /// driver on site 1 (a distributed clock, as in `at (p) async`).
    fn split_example(store: &MemStore) {
        let workers = (1..=3)
            .map(|i| {
                BlockedInfo::new(
                    t(i),
                    vec![r(1, 1)],
                    vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
                )
            })
            .collect();
        store.publish(SiteId(0), Snapshot::from_tasks(workers)).unwrap();
        let driver = BlockedInfo::new(
            t(4),
            vec![r(2, 1)],
            vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
        );
        store.publish(SiteId(1), Snapshot::from_tasks(vec![driver])).unwrap();
    }

    #[test]
    fn merge_concatenates_partitions() {
        let store = MemStore::new();
        split_example(&store);
        let merged = merge(&store.fetch_all().unwrap());
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn cross_site_deadlock_is_found_and_confirmed() {
        let store = MemStore::new();
        split_example(&store);
        let out = check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        let report = out.report.expect("cross-site cycle");
        assert!(report.tasks.contains(&t(4)));
        assert!(out.stats.is_some());
    }

    #[test]
    fn unconfirmed_cycles_are_discarded() {
        // Manually stale: after the first fetch the driver's partition is
        // replaced with a *newer epoch* for the same task — the confirm
        // pass must reject. We emulate by wrapping the store so the second
        // fetch sees different data.
        struct TwoPhase {
            inner: MemStore,
            flips: std::sync::atomic::AtomicU32,
        }
        impl Store for TwoPhase {
            fn publish(&self, s: SiteId, p: Snapshot) -> Result<(), StoreError> {
                self.inner.publish(s, p)
            }
            fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
                let n = self.flips.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if n == 1 {
                    // Second fetch: the driver unblocked (partition empty).
                    self.inner.remove(SiteId(1)).unwrap();
                }
                self.inner.fetch_all()
            }
            fn remove(&self, s: SiteId) -> Result<(), StoreError> {
                self.inner.remove(s)
            }
        }
        let store = TwoPhase { inner: MemStore::new(), flips: 0.into() };
        split_example(&store.inner);
        let out = check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert!(out.report.is_none(), "stale cycle must not be reported");
    }

    #[test]
    fn healthy_partitions_yield_no_report() {
        let store = MemStore::new();
        let workers = (1..=3)
            .map(|i| BlockedInfo::new(t(i), vec![r(1, 1)], vec![Registration::new(p(1), 1)]))
            .collect();
        store.publish(SiteId(0), Snapshot::from_tasks(workers)).unwrap();
        let out = check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap();
        assert!(out.report.is_none());
    }

    #[test]
    fn dedup_reports_once_per_task_set() {
        let store = MemStore::new();
        split_example(&store);
        let mut dedup = ReportDedup::new();
        let r1 =
            check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap().report.unwrap();
        assert!(dedup.is_new(&r1));
        let r2 =
            check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap().report.unwrap();
        assert!(!dedup.is_new(&r2));
    }

    fn report_over(tasks: Vec<TaskId>) -> DeadlockReport {
        DeadlockReport {
            tasks: tasks.clone(),
            resources: vec![r(1, 1)],
            model: armus_core::GraphModel::Wfg,
            witness: armus_core::CycleWitness::Tasks(tasks.clone()),
            task_epochs: tasks.into_iter().map(|t| (t, 1)).collect(),
        }
    }

    #[test]
    fn dedup_is_bounded_with_lru_eviction() {
        let mut dedup = ReportDedup::with_capacity(2);
        let (a, b, c) = (report_over(vec![t(1)]), report_over(vec![t(2)]), report_over(vec![t(3)]));
        assert!(dedup.is_new(&a));
        assert!(dedup.is_new(&b));
        // Re-seeing `a` refreshes it, so `b` is now least recent...
        assert!(!dedup.is_new(&a));
        assert!(dedup.is_new(&c)); // ...and gets evicted here.
        assert_eq!(dedup.len(), 2);
        assert!(dedup.is_new(&b), "evicted set is reported again");
        assert!(!dedup.is_new(&c), "retained set still deduplicates");
    }

    #[test]
    fn reexported_dedup_is_the_armus_core_type_with_identical_lru_order() {
        // The distributed checker deduplicates with armus-core's type:
        // the re-export must be the same type, and the eviction order a
        // site checker observes must match the core semantics exactly.
        let mut core: armus_core::ReportDedup = crate::ReportDedup::with_capacity(3);
        for n in 1..=3 {
            assert!(core.is_new(&report_over(vec![t(n)])));
        }
        // Refresh order 3, 1 → least-recent is now 2.
        assert!(!core.is_new(&report_over(vec![t(3)])));
        assert!(!core.is_new(&report_over(vec![t(1)])));
        assert!(core.is_new(&report_over(vec![t(4)]))); // evicts 2
        assert!(core.is_new(&report_over(vec![t(2)])), "2 was evicted first");
        assert!(core.is_new(&report_over(vec![t(3)])), "3 was evicted next");
    }

    #[test]
    fn persisting_distributed_deadlock_rereports_after_eviction() {
        // A deadlock that outlives a full dedup window is re-reported on
        // the next check round — loud beats silent for a stuck cluster.
        let store = MemStore::new();
        split_example(&store);
        let mut dedup = ReportDedup::with_capacity(1);
        let round = || {
            check_store(&store, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).unwrap().report.unwrap()
        };
        assert!(dedup.is_new(&round()));
        assert!(!dedup.is_new(&round()), "retained: suppressed");
        // An unrelated report on another site flushes the 1-entry window.
        assert!(dedup.is_new(&report_over(vec![t(99)])));
        assert!(dedup.is_new(&round()), "the still-live deadlock re-reports after eviction");
    }
}
