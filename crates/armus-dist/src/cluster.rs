//! A test-bench cluster: N sites over one (fault-injectable) store, with
//! helpers to run per-site workloads — the in-process equivalent of
//! `finish for (p in CLUSTER) at (p) async example();` (paper §2.1).

use std::sync::Arc;

use armus_core::DeadlockReport;
use armus_sync::Runtime;

use crate::site::{Site, SiteConfig};
use crate::store::{FaultyStore, MemStore, SiteId, Store};

/// A running cluster.
pub struct Cluster {
    store: Arc<FaultyStore<MemStore>>,
    sites: Vec<Site>,
}

impl Cluster {
    /// Starts `n` sites sharing a fresh store.
    pub fn start(n: usize, cfg: SiteConfig) -> Cluster {
        let store = Arc::new(FaultyStore::new(MemStore::new()));
        let sites = (0..n)
            .map(|i| Site::start(SiteId(i as u32), Arc::clone(&store) as Arc<dyn Store>, cfg))
            .collect();
        Cluster { store, sites }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the cluster has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The shared store (for outage injection and traffic counters).
    pub fn store(&self) -> &Arc<FaultyStore<MemStore>> {
        &self.store
    }

    /// The sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Mutable access (for [`Site::kill_checker`] fault injection).
    pub fn sites_mut(&mut self) -> &mut [Site] {
        &mut self.sites
    }

    /// Runs `work(site_index, runtime)` concurrently on every site (one
    /// OS thread per site), returning when all complete. The workload
    /// spawns its own tasks on the given runtime.
    pub fn run_on_all<F>(&self, work: F)
    where
        F: Fn(usize, &Arc<Runtime>) + Send + Sync,
    {
        std::thread::scope(|scope| {
            for (i, site) in self.sites.iter().enumerate() {
                let work = &work;
                let rt = site.runtime();
                scope.spawn(move || work(i, rt));
            }
        });
    }

    /// All reports from all site checkers.
    pub fn all_reports(&self) -> Vec<DeadlockReport> {
        self.sites.iter().flat_map(|s| s.reports()).collect()
    }

    /// Has any site reported a deadlock?
    pub fn any_deadlock(&self) -> bool {
        self.sites.iter().any(|s| s.found_deadlock())
    }

    /// Which sites reported at least one deadlock?
    pub fn reporting_sites(&self) -> Vec<SiteId> {
        self.sites.iter().filter(|s| s.found_deadlock()).map(|s| s.id()).collect()
    }

    /// Stops every site.
    pub fn stop(self) {
        for site in self.sites {
            site.stop();
        }
    }
}
