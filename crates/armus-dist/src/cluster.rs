//! A test-bench cluster: N sites over one (fault-injectable) store, with
//! helpers to run per-site workloads — the in-process equivalent of
//! `finish for (p in CLUSTER) at (p) async example();` (paper §2.1) —
//! plus [`NetCluster`], the **multi-process** equivalent: one spawned
//! `armus-stored` server and N site *processes* talking to it over the
//! wire protocol.

use std::io;
use std::path::Path;
use std::process::{Child, Command, Output};
use std::sync::Arc;
use std::time::Duration;

use armus_core::DeadlockReport;
use armus_sync::Runtime;

use crate::server::StoredProcess;
use crate::site::{Site, SiteConfig};
use crate::store::{FaultyStore, MemStore, SiteId, Store};

/// A running cluster.
pub struct Cluster {
    store: Arc<FaultyStore<MemStore>>,
    sites: Vec<Site>,
}

impl Cluster {
    /// Starts `n` sites sharing a fresh store.
    pub fn start(n: usize, cfg: SiteConfig) -> Cluster {
        let store = Arc::new(FaultyStore::new(MemStore::new()));
        let sites = (0..n)
            .map(|i| Site::start(SiteId(i as u32), Arc::clone(&store) as Arc<dyn Store>, cfg))
            .collect();
        Cluster { store, sites }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the cluster has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The shared store (for outage injection and traffic counters).
    pub fn store(&self) -> &Arc<FaultyStore<MemStore>> {
        &self.store
    }

    /// The sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Mutable access (for [`Site::kill_checker`] fault injection).
    pub fn sites_mut(&mut self) -> &mut [Site] {
        &mut self.sites
    }

    /// Runs `work(site_index, runtime)` concurrently on every site (one
    /// OS thread per site), returning when all complete. The workload
    /// spawns its own tasks on the given runtime.
    pub fn run_on_all<F>(&self, work: F)
    where
        F: Fn(usize, &Arc<Runtime>) + Send + Sync,
    {
        std::thread::scope(|scope| {
            for (i, site) in self.sites.iter().enumerate() {
                let work = &work;
                let rt = site.runtime();
                scope.spawn(move || work(i, rt));
            }
        });
    }

    /// All reports from all site checkers.
    pub fn all_reports(&self) -> Vec<DeadlockReport> {
        self.sites.iter().flat_map(|s| s.reports()).collect()
    }

    /// Has any site reported a deadlock?
    pub fn any_deadlock(&self) -> bool {
        self.sites.iter().any(|s| s.found_deadlock())
    }

    /// Which sites reported at least one deadlock?
    pub fn reporting_sites(&self) -> Vec<SiteId> {
        self.sites.iter().filter(|s| s.found_deadlock()).map(|s| s.id()).collect()
    }

    /// Stops every site.
    pub fn stop(self) {
        for site in self.sites {
            site.stop();
        }
    }
}

/// A true multi-process cluster: one `armus-stored` child serving the
/// wire protocol, plus N site child processes (built by the caller's
/// command factory — typically the current executable re-invoked in a
/// site role) publishing and checking through [`crate::TcpStore`].
pub struct NetCluster {
    stored: StoredProcess,
    sites: Vec<Child>,
}

impl NetCluster {
    /// Spawns the server from `stored_binary` (ephemeral loopback port,
    /// stderr log to `server_log` when given), then spawns `n` site
    /// processes: `site_cmd(i, addr)` builds each child's command, with
    /// `addr` the server's listen address. Site stdout/stderr are
    /// inherited unless the command says otherwise.
    pub fn start(
        stored_binary: &Path,
        server_log: Option<&Path>,
        lease: Option<Duration>,
        n: usize,
        mut site_cmd: impl FnMut(usize, &str) -> Command,
    ) -> io::Result<NetCluster> {
        let stored = StoredProcess::spawn(stored_binary, lease, server_log)?;
        let mut sites = Vec::with_capacity(n);
        for i in 0..n {
            sites.push(site_cmd(i, stored.addr()).spawn()?);
        }
        Ok(NetCluster { stored, sites })
    }

    /// The server's listen address.
    pub fn addr(&self) -> &str {
        self.stored.addr()
    }

    /// Waits for every site process to exit, collecting their outputs
    /// (in site order). Fails if any site exits unsuccessfully — but only
    /// after reaping *all* of them, so no child is left running (or
    /// unkillable: a drained handle leaves [`NetCluster::stop`] nothing
    /// to terminate).
    pub fn wait_sites(&mut self) -> io::Result<Vec<Output>> {
        let mut outputs = Vec::with_capacity(self.sites.len());
        for child in self.sites.drain(..) {
            outputs.push(child.wait_with_output());
        }
        let mut failure = None;
        for (i, output) in outputs.iter().enumerate() {
            match output {
                Ok(output) if output.status.success() => {}
                Ok(output) => {
                    failure.get_or_insert_with(|| {
                        io::Error::other(format!(
                            "site process {i} failed ({}): {}",
                            output.status,
                            String::from_utf8_lossy(&output.stderr)
                        ))
                    });
                }
                Err(e) => {
                    failure
                        .get_or_insert_with(|| io::Error::new(e.kind(), format!("site {i}: {e}")));
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => outputs.into_iter().collect(),
        }
    }

    /// Drains the server (in-band shutdown, falling back to kill) after
    /// terminating any still-running site processes.
    pub fn stop(mut self) -> io::Result<()> {
        for mut child in self.sites.drain(..) {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.stored.stop()
    }
}
