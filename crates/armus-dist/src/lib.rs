//! # armus-dist
//!
//! Distributed deadlock detection for barrier synchronisation (paper
//! §5.2): each *site* (place) runs its workload on a local runtime whose
//! verifier only maintains blocked statuses; a publisher thread pushes the
//! site's partition to a shared fault-tolerant store (the paper uses
//! Redis; here an in-process [`store::MemStore`], wrapped in a
//! fault-injecting [`store::FaultyStore`]); and every site independently
//! pulls the merged view and runs the graph analysis — the adapted
//! one-phase algorithm with a confirmation pass.
//!
//! Fault tolerance, as claimed by the paper and tested here:
//! * a site's checker can die — the other sites still detect;
//! * the store can be unavailable for windows — rounds are skipped and
//!   detection resumes after the outage.
//!
//! ```no_run
//! use armus_dist::{Cluster, SiteConfig};
//! use armus_sync::{Clock, Finish};
//!
//! let cluster = Cluster::start(4, SiteConfig::default());
//! cluster.run_on_all(|_site, rt| {
//!     // every site operates a distinct instance of the clock, as in
//!     // `at (p) async example()`
//!     let c = Clock::make(rt);
//!     let finish = Finish::new(rt);
//!     /* … the running example … */
//! });
//! assert!(!cluster.any_deadlock());
//! cluster.stop();
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod chaos;
pub mod cluster;
pub mod detector;
pub mod site;
pub mod store;

pub use chaos::{ChaosConfig, ChaosStore};
pub use cluster::Cluster;
pub use detector::{check_store, merge, DistCheck, ReportDedup, DEFAULT_DEDUP_CAPACITY};
pub use site::{Site, SiteConfig};
pub use store::{DeltaAck, FaultyStore, MemStore, SiteId, Store, StoreError};
