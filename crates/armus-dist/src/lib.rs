//! # armus-dist
//!
//! Distributed deadlock detection for barrier synchronisation (paper
//! §5.2): each *site* (place) runs its workload on a local runtime whose
//! verifier only maintains blocked statuses; a publisher thread pushes the
//! site's partition to a shared fault-tolerant store; and every site
//! independently pulls the merged view — task ids injectively
//! site-namespaced by [`detector::merge`] — and runs the graph analysis:
//! the adapted one-phase algorithm with a confirmation pass.
//!
//! The store (the paper uses Redis) comes in two embeddings:
//! * **in-process** — [`store::MemStore`], wrapped in the outage-injecting
//!   [`store::FaultyStore`] or the message-chaos [`chaos::ChaosStore`];
//! * **networked** — the `armus-stored` server ([`server::StoredServer`]
//!   and the binary under `src/bin/`) speaking the length-prefixed binary
//!   protocol of [`wire`] (flat v2 frames with correlation ids, pipelined
//!   in bursts; legacy v1 negotiated per frame), with [`tcp::TcpStore`] as
//!   the client-side [`store::Store`] — one multiplexed connection that
//!   batches concurrent callers' frames per flush, so many [`site::Site`]s
//!   can share a single `Arc<TcpStore>`; [`cluster::NetCluster`] wires a
//!   true multi-process cluster (one spawned server + N site processes).
//!
//! Fault tolerance, as claimed by the paper and tested here:
//! * a site's checker can die — the other sites still detect;
//! * the store can be unavailable for windows — rounds are skipped and
//!   detection resumes after the outage;
//! * a whole site can crash without cleanup — its partition's lease
//!   ([`store::MemStore::with_lease`]) expires instead of its ghost
//!   blocked statuses confirming deadlocks that no longer exist.
//!
//! ```no_run
//! use armus_dist::{Cluster, SiteConfig};
//! use armus_sync::{Clock, Finish};
//!
//! let cluster = Cluster::start(4, SiteConfig::default());
//! cluster.run_on_all(|_site, rt| {
//!     // every site operates a distinct instance of the clock, as in
//!     // `at (p) async example()`
//!     let c = Clock::make(rt);
//!     let finish = Finish::new(rt);
//!     /* … the running example … */
//! });
//! assert!(!cluster.any_deadlock());
//! cluster.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod chaos;
pub mod cluster;
pub mod detector;
pub mod server;
pub mod site;
pub mod store;
pub mod tcp;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosStore};
pub use cluster::{Cluster, NetCluster};
pub use detector::{
    check_store, merge, DistCheck, DistCheckerStats, IncrementalDistChecker, ReportDedup,
    DEFAULT_DEDUP_CAPACITY,
};
pub use server::{StoredConfig, StoredProcess, StoredServer, DEFAULT_CHECK_PERIOD};
pub use site::{Site, SiteConfig};
pub use store::{DeltaAck, FaultyStore, MemStore, SiteId, SiteStats, Store, StoreError, TenantId};
pub use tcp::{Subscription, TcpStore, TcpStoreConfig};
pub use wire::{ServerMetrics, TenantMetrics};
