//! The global resource-dependency store (paper §5.2).
//!
//! The paper keeps the global blocked status in a dedicated Redis server;
//! each Armus instance periodically updates a disjoint portion of the
//! global resource-dependency with the contents of its local
//! resource-dependencies (§5.2). [`MemStore`] reproduces that interaction
//! surface in-process: per-site partitions, whole-view fetch. The
//! [`FaultyStore`] wrapper injects the outage behaviour the algorithm must
//! tolerate ("the algorithm resists (ii) because Redis itself is
//! fault-tolerant" — here we instead *test* tolerance by making the store
//! unavailable for windows of time).
//!
//! Partitions are updated **incrementally**: a site normally publishes only
//! the journal [`Delta`]s since its previous publish
//! ([`Store::publish_deltas`]), tagged with the journal interval they
//! cover; the store applies them only when its recorded version matches
//! the interval's base, and answers [`DeltaAck::NeedSnapshot`] otherwise.
//! The full-snapshot path ([`Store::publish_full`]) remains for joins and
//! recovery — a fresh site, a store that lost the partition, or a
//! publisher whose journal truncated past its cursor.
//!
//! A long-lived shared store serves many independent *applications*, not
//! just many sites of one: partitions are keyed `(tenant, site)` — a
//! [`TenantId`] generalising the site-namespacing of task ids one level
//! up — and fetches are tenant-scoped, so two applications using the same
//! `SiteId`s never see (or confirm deadlocks against) each other's
//! blocked sets. The [`Store`] trait itself stays tenant-agnostic: a
//! handle is bound to one tenant (the networked
//! [`crate::tcp::TcpStore`] stamps its tenant on every request; the plain
//! [`MemStore`] methods operate on [`TenantId::DEFAULT`]).
//!
//! Implementations are `Send + Sync` and are routinely **shared** across
//! sites and threads behind one `Arc` — the networked
//! [`crate::tcp::TcpStore`] multiplexes every sharer over a single
//! pipelined connection, so concurrent calls from many sites batch into
//! shared flushes rather than serialising on a socket each.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use armus_core::{BlockedInfo, Delta, Snapshot, TaskId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A site (place) identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// A tenant (application namespace) identifier: the isolation tag that
/// lets many independent applications share one store server. Partitions
/// are keyed `(tenant, site)`, and fetches/subscriptions are scoped to one
/// tenant, so colliding `SiteId`s across applications never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The namespace used by handles that never picked one — single-tenant
    /// deployments and the in-process [`Store`] impls.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl Default for TenantId {
    fn default() -> TenantId {
        TenantId::DEFAULT
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Store failures surfaced to publishers/checkers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The store is (temporarily) unreachable.
    Unavailable,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global store unavailable")
    }
}

impl std::error::Error for StoreError {}

/// The store's answer to a delta publish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaAck {
    /// The deltas were applied; the partition is now at the new version.
    Applied,
    /// The store cannot apply the interval (unknown partition, version
    /// mismatch, or no delta support): the site must resync with a full
    /// snapshot via [`Store::publish_full`].
    NeedSnapshot,
}

/// A site's front-end/checker counters as published to the store — the
/// fixed-width observability record behind the server's metrics endpoint
/// (`fastpath_skips`, `resyncs`, `async_waits`, `waker_wakes` and friends,
/// aggregated per `(tenant, site)` by `armus-stored`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteStats {
    /// Blocked-status publications on the site's local verifier.
    pub blocks: u64,
    /// Unblocks on the site's local verifier.
    pub unblocks: u64,
    /// Avoidance checks answered by the resource-cardinality fast path.
    pub fastpath_skips: u64,
    /// Full-snapshot publishes by the site's publisher (join + recovery).
    pub publish_resyncs: u64,
    /// Async-front-end waits that parked a waker instead of a thread.
    pub async_waits: u64,
    /// Parked wakers woken by fate-resolving events.
    pub waker_wakes: u64,
    /// Check rounds completed by the site's distributed checker.
    pub checker_rounds: u64,
    /// Rounds answered entirely from the maintained topological order.
    pub incremental_detections: u64,
    /// Deadlock reports evicted from the site's bounded report ring.
    pub reports_dropped: u64,
}

/// The store interface used by sites: publish-partition (full or
/// delta-based) and fetch-all. Tenant-agnostic by design — a handle is
/// bound to one tenant namespace (see the module docs).
pub trait Store: Send + Sync {
    /// Replaces `site`'s partition of the global resource-dependency
    /// (unversioned legacy path; a partition published this way always
    /// NACKs subsequent delta publishes).
    fn publish(&self, site: SiteId, partition: Snapshot) -> Result<(), StoreError>;

    /// Replaces `site`'s partition and records `version` (the publisher's
    /// journal cursor) so that subsequent [`Store::publish_deltas`] calls
    /// can resume from it. The default forwards to [`Store::publish`],
    /// discarding the version — correct for stores without delta support.
    fn publish_full(
        &self,
        site: SiteId,
        partition: Snapshot,
        version: u64,
    ) -> Result<(), StoreError> {
        let _ = version;
        self.publish(site, partition)
    }

    /// Applies the journal deltas covering versions `[base, next)` to
    /// `site`'s partition, provided the stored version equals `base`. The
    /// default declines ([`DeltaAck::NeedSnapshot`]), which makes every
    /// site fall back to full publishes against delta-unaware stores.
    fn publish_deltas(
        &self,
        site: SiteId,
        base: u64,
        deltas: &[Delta],
        next: u64,
    ) -> Result<DeltaAck, StoreError> {
        let _ = (site, base, deltas, next);
        Ok(DeltaAck::NeedSnapshot)
    }

    /// Publishes the site's observability counters ([`SiteStats`]) so the
    /// store's metrics surface can aggregate them. Best-effort and
    /// side-channel: the default discards (a store without a metrics
    /// surface has nowhere to put them), and publishers ignore failures.
    fn publish_stats(&self, site: SiteId, stats: SiteStats) -> Result<(), StoreError> {
        let _ = (site, stats);
        Ok(())
    }

    /// Fetches every partition (the checker's global view).
    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError>;

    /// Drops `site`'s partition (site shutdown or failure cleanup).
    fn remove(&self, site: SiteId) -> Result<(), StoreError>;
}

/// One site's stored partition: the blocked map, the journal version it is
/// at (`None` for unversioned legacy publishes), and the instant of the
/// last publish that touched it (the lease refresh time).
struct Partition {
    version: Option<u64>,
    tasks: HashMap<TaskId, BlockedInfo>,
    refreshed: Instant,
}

impl Partition {
    fn from_snapshot(snapshot: Snapshot, version: Option<u64>) -> Partition {
        Partition {
            version,
            tasks: snapshot.tasks.into_iter().map(|b| (b.task, b)).collect(),
            refreshed: Instant::now(),
        }
    }

    fn materialize(&self) -> Snapshot {
        Snapshot::from_tasks(self.tasks.values().cloned().collect())
    }
}

/// In-process store: the Redis stand-in.
///
/// Optionally lease-based ([`MemStore::with_lease`]): every publish —
/// full, legacy, or delta (empty heartbeat intervals included) — refreshes
/// the publishing site's lease, and [`Store::fetch_all`] drops partitions
/// whose lease has lapsed. A site that crashes (or is partitioned away)
/// without removing its partition therefore stops contributing to the
/// merged view after one TTL, instead of its last blocked statuses
/// lingering forever and confirming deadlocks that no longer exist.
///
/// Partitions are keyed `(tenant, site)`. The plain [`Store`] impl
/// operates on [`TenantId::DEFAULT`]; the `*_in` methods take an explicit
/// tenant — that is what `armus-stored` dispatches per-request tenants
/// through.
pub struct MemStore {
    partitions: Mutex<BTreeMap<(TenantId, SiteId), Partition>>,
    /// Latest published observability counters per `(tenant, site)`.
    stats: Mutex<BTreeMap<(TenantId, SiteId), SiteStats>>,
    /// Partitions dropped by lease expiry, per tenant.
    expiries: Mutex<BTreeMap<TenantId, u64>>,
    lease: Option<Duration>,
}

impl Default for MemStore {
    fn default() -> MemStore {
        MemStore::new()
    }
}

impl MemStore {
    /// An empty store without lease expiry (partitions live until removed).
    pub fn new() -> MemStore {
        MemStore::with_optional_lease(None)
    }

    /// An empty store whose partitions expire `ttl` after their last
    /// publish. The TTL must comfortably exceed the sites' publish period
    /// (every publisher round — even an empty heartbeat — refreshes).
    pub fn with_lease(ttl: Duration) -> MemStore {
        MemStore::with_optional_lease(Some(ttl))
    }

    fn with_optional_lease(lease: Option<Duration>) -> MemStore {
        MemStore {
            partitions: Mutex::new(BTreeMap::new()),
            stats: Mutex::new(BTreeMap::new()),
            expiries: Mutex::new(BTreeMap::new()),
            lease,
        }
    }

    /// The configured lease TTL, if any.
    pub fn lease(&self) -> Option<Duration> {
        self.lease
    }

    /// Purges partitions whose lease has lapsed (no-op without a lease),
    /// counting the drops per tenant, and drops the stale stats records of
    /// the expired sites.
    fn expire(&self, partitions: &mut BTreeMap<(TenantId, SiteId), Partition>) {
        let Some(ttl) = self.lease else { return };
        let mut expired: Vec<(TenantId, SiteId)> = Vec::new();
        partitions.retain(|&key, p| {
            let live = p.refreshed.elapsed() <= ttl;
            if !live {
                expired.push(key);
            }
            live
        });
        if expired.is_empty() {
            return;
        }
        let mut expiries = self.expiries.lock();
        let mut stats = self.stats.lock();
        for key in expired {
            *expiries.entry(key.0).or_insert(0) += 1;
            stats.remove(&key);
        }
    }

    /// Tenant-scoped [`Store::publish`].
    pub fn publish_in(
        &self,
        tenant: TenantId,
        site: SiteId,
        partition: Snapshot,
    ) -> Result<(), StoreError> {
        self.partitions.lock().insert((tenant, site), Partition::from_snapshot(partition, None));
        Ok(())
    }

    /// Tenant-scoped [`Store::publish_full`].
    pub fn publish_full_in(
        &self,
        tenant: TenantId,
        site: SiteId,
        partition: Snapshot,
        version: u64,
    ) -> Result<(), StoreError> {
        self.partitions
            .lock()
            .insert((tenant, site), Partition::from_snapshot(partition, Some(version)));
        Ok(())
    }

    /// Tenant-scoped [`Store::publish_deltas`].
    pub fn publish_deltas_in(
        &self,
        tenant: TenantId,
        site: SiteId,
        base: u64,
        deltas: &[Delta],
        next: u64,
    ) -> Result<DeltaAck, StoreError> {
        let mut partitions = self.partitions.lock();
        let Some(partition) = partitions.get_mut(&(tenant, site)) else {
            return Ok(DeltaAck::NeedSnapshot);
        };
        if partition.version != Some(base) {
            return Ok(DeltaAck::NeedSnapshot);
        }
        for delta in deltas {
            match delta {
                Delta::Block(info) => {
                    partition.tasks.insert(info.task, info.clone());
                }
                Delta::Unblock(task) => {
                    partition.tasks.remove(task);
                }
            }
        }
        partition.version = Some(next);
        partition.refreshed = Instant::now();
        Ok(DeltaAck::Applied)
    }

    /// Tenant-scoped [`Store::publish_stats`].
    pub fn publish_stats_in(
        &self,
        tenant: TenantId,
        site: SiteId,
        stats: SiteStats,
    ) -> Result<(), StoreError> {
        self.stats.lock().insert((tenant, site), stats);
        Ok(())
    }

    /// Tenant-scoped [`Store::fetch_all`]: only `tenant`'s live partitions.
    pub fn fetch_all_in(&self, tenant: TenantId) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
        let mut partitions = self.partitions.lock();
        self.expire(&mut partitions);
        Ok(partitions
            .range((tenant, SiteId(0))..=(tenant, SiteId(u32::MAX)))
            .map(|(&(_, s), p)| (s, p.materialize()))
            .collect())
    }

    /// Tenant-scoped [`Store::remove`].
    pub fn remove_in(&self, tenant: TenantId, site: SiteId) -> Result<(), StoreError> {
        self.partitions.lock().remove(&(tenant, site));
        self.stats.lock().remove(&(tenant, site));
        Ok(())
    }

    /// Live partition counts per tenant (after an expiry sweep) — the
    /// per-tenant gauge of the metrics endpoint.
    pub fn tenant_partitions(&self) -> Vec<(TenantId, u64)> {
        let mut partitions = self.partitions.lock();
        self.expire(&mut partitions);
        let mut counts: BTreeMap<TenantId, u64> = BTreeMap::new();
        for &(tenant, _) in partitions.keys() {
            *counts.entry(tenant).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Lease expiries so far, per tenant.
    pub fn tenant_expiries(&self) -> Vec<(TenantId, u64)> {
        self.expiries.lock().iter().map(|(&t, &n)| (t, n)).collect()
    }

    /// Total lease expiries so far (across all tenants).
    pub fn lease_expiries(&self) -> u64 {
        self.expiries.lock().values().sum()
    }

    /// The latest observability counters each site published, per tenant.
    pub fn site_stats(&self) -> Vec<(TenantId, SiteId, SiteStats)> {
        self.stats.lock().iter().map(|(&(t, s), &stats)| (t, s, stats)).collect()
    }
}

impl Store for MemStore {
    fn publish(&self, site: SiteId, partition: Snapshot) -> Result<(), StoreError> {
        self.publish_in(TenantId::DEFAULT, site, partition)
    }

    fn publish_full(
        &self,
        site: SiteId,
        partition: Snapshot,
        version: u64,
    ) -> Result<(), StoreError> {
        self.publish_full_in(TenantId::DEFAULT, site, partition, version)
    }

    fn publish_deltas(
        &self,
        site: SiteId,
        base: u64,
        deltas: &[Delta],
        next: u64,
    ) -> Result<DeltaAck, StoreError> {
        self.publish_deltas_in(TenantId::DEFAULT, site, base, deltas, next)
    }

    fn publish_stats(&self, site: SiteId, stats: SiteStats) -> Result<(), StoreError> {
        self.publish_stats_in(TenantId::DEFAULT, site, stats)
    }

    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
        self.fetch_all_in(TenantId::DEFAULT)
    }

    fn remove(&self, site: SiteId) -> Result<(), StoreError> {
        self.remove_in(TenantId::DEFAULT, site)
    }
}

/// A store wrapper that injects unavailability windows and counts traffic,
/// for the fault-tolerance tests and the distributed benchmarks.
pub struct FaultyStore<S> {
    inner: S,
    available: AtomicBool,
    publishes: AtomicU64,
    delta_publishes: AtomicU64,
    fetches: AtomicU64,
    rejected: AtomicU64,
}

impl<S: Store> FaultyStore<S> {
    /// Wraps `inner`, initially available.
    pub fn new(inner: S) -> FaultyStore<S> {
        FaultyStore {
            inner,
            available: AtomicBool::new(true),
            publishes: AtomicU64::new(0),
            delta_publishes: AtomicU64::new(0),
            fetches: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Starts or ends an outage window.
    pub fn set_available(&self, available: bool) {
        self.available.store(available, Ordering::SeqCst);
    }

    /// The wrapped store, bypassing the outage gate — lets tests seed
    /// state "written before the outage started".
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Is the store currently serving?
    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::SeqCst)
    }

    /// Successful full (snapshot) publishes so far.
    pub fn publish_count(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Successful delta publishes so far.
    pub fn delta_publish_count(&self) -> u64 {
        self.delta_publishes.load(Ordering::Relaxed)
    }

    /// Successful fetches so far.
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Operations rejected during outages.
    pub fn rejected_count(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    fn gate(&self) -> Result<(), StoreError> {
        if self.is_available() {
            Ok(())
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            Err(StoreError::Unavailable)
        }
    }
}

impl<S: Store> Store for FaultyStore<S> {
    fn publish(&self, site: SiteId, partition: Snapshot) -> Result<(), StoreError> {
        self.gate()?;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.inner.publish(site, partition)
    }

    fn publish_full(
        &self,
        site: SiteId,
        partition: Snapshot,
        version: u64,
    ) -> Result<(), StoreError> {
        self.gate()?;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.inner.publish_full(site, partition, version)
    }

    fn publish_deltas(
        &self,
        site: SiteId,
        base: u64,
        deltas: &[Delta],
        next: u64,
    ) -> Result<DeltaAck, StoreError> {
        self.gate()?;
        self.delta_publishes.fetch_add(1, Ordering::Relaxed);
        self.inner.publish_deltas(site, base, deltas, next)
    }

    fn publish_stats(&self, site: SiteId, stats: SiteStats) -> Result<(), StoreError> {
        // Observability bypasses the outage gate: stats are a best-effort
        // side channel, and counting their rejections would skew the
        // data-path outage counters the fault-tolerance tests assert on.
        self.inner.publish_stats(site, stats)
    }

    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
        self.gate()?;
        self.fetches.fetch_add(1, Ordering::Relaxed);
        self.inner.fetch_all()
    }

    fn remove(&self, site: SiteId) -> Result<(), StoreError> {
        self.gate()?;
        self.inner.remove(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armus_core::{BlockedInfo, PhaserId, Registration, Resource, TaskId};

    fn snap(task: u64) -> Snapshot {
        Snapshot::from_tasks(vec![BlockedInfo::new(
            TaskId(task),
            vec![Resource::new(PhaserId(1), 1)],
            vec![Registration::new(PhaserId(1), 1)],
        )])
    }

    #[test]
    fn publish_replaces_partition() {
        let store = MemStore::new();
        store.publish(SiteId(0), snap(1)).unwrap();
        store.publish(SiteId(1), snap(2)).unwrap();
        store.publish(SiteId(0), snap(3)).unwrap();
        let all = store.fetch_all().unwrap();
        assert_eq!(all.len(), 2);
        let s0 = &all.iter().find(|(s, _)| *s == SiteId(0)).unwrap().1;
        assert_eq!(s0.tasks[0].task, TaskId(3), "second publish replaced the first");
    }

    #[test]
    fn remove_drops_partition() {
        let store = MemStore::new();
        store.publish(SiteId(0), snap(1)).unwrap();
        store.remove(SiteId(0)).unwrap();
        assert!(store.fetch_all().unwrap().is_empty());
    }

    #[test]
    fn tenants_are_disjoint_namespaces() {
        let store = MemStore::new();
        let (a, b) = (TenantId(1), TenantId(2));
        // The same SiteId in two tenants: no aliasing in either direction.
        store.publish_full_in(a, SiteId(0), snap(1), 1).unwrap();
        store.publish_full_in(b, SiteId(0), snap(2), 1).unwrap();
        let view_a = store.fetch_all_in(a).unwrap();
        let view_b = store.fetch_all_in(b).unwrap();
        assert_eq!(view_a.len(), 1);
        assert_eq!(view_b.len(), 1);
        assert_eq!(view_a[0].1.tasks[0].task, TaskId(1));
        assert_eq!(view_b[0].1.tasks[0].task, TaskId(2));
        // The delta stream is tenant-scoped too.
        assert_eq!(
            store.publish_deltas_in(a, SiteId(0), 1, &[Delta::Unblock(TaskId(1))], 2).unwrap(),
            DeltaAck::Applied
        );
        assert_eq!(store.fetch_all_in(b).unwrap()[0].1.len(), 1, "tenant b untouched");
        // Removing in one tenant leaves the other's partition alone.
        store.remove_in(a, SiteId(0)).unwrap();
        assert!(store.fetch_all_in(a).unwrap().is_empty());
        assert_eq!(store.fetch_all_in(b).unwrap().len(), 1);
        // The default-tenant Store impl never saw any of it.
        assert!(store.fetch_all().unwrap().is_empty());
    }

    #[test]
    fn tenant_partition_counts_and_expiries() {
        let store = MemStore::with_lease(Duration::from_millis(40));
        store.publish_full_in(TenantId(1), SiteId(0), snap(1), 1).unwrap();
        store.publish_full_in(TenantId(1), SiteId(1), snap(2), 1).unwrap();
        store.publish_full_in(TenantId(2), SiteId(0), snap(3), 1).unwrap();
        assert_eq!(store.tenant_partitions(), vec![(TenantId(1), 2), (TenantId(2), 1)]);
        std::thread::sleep(Duration::from_millis(80));
        // Keep tenant 2 alive across the TTL; tenant 1 lapses.
        store.publish_full_in(TenantId(2), SiteId(0), snap(3), 2).unwrap();
        assert_eq!(store.tenant_partitions(), vec![(TenantId(2), 1)]);
        assert_eq!(store.tenant_expiries(), vec![(TenantId(1), 2)]);
        assert_eq!(store.lease_expiries(), 2);
    }

    #[test]
    fn site_stats_are_recorded_and_dropped_with_the_site() {
        let store = MemStore::new();
        let stats = SiteStats { blocks: 7, fastpath_skips: 3, ..SiteStats::default() };
        store.publish_stats_in(TenantId(1), SiteId(4), stats).unwrap();
        assert_eq!(store.site_stats(), vec![(TenantId(1), SiteId(4), stats)]);
        store.remove_in(TenantId(1), SiteId(4)).unwrap();
        assert!(store.site_stats().is_empty(), "removed sites take their stats along");
    }

    #[test]
    fn faulty_store_rejects_during_outage() {
        let store = FaultyStore::new(MemStore::new());
        store.publish(SiteId(0), snap(1)).unwrap();
        store.set_available(false);
        assert_eq!(store.publish(SiteId(0), snap(2)), Err(StoreError::Unavailable));
        assert_eq!(store.fetch_all().unwrap_err(), StoreError::Unavailable);
        assert_eq!(store.rejected_count(), 2);
        store.set_available(true);
        // Data from before the outage survives (the paper's assumption:
        // the store itself is fault-tolerant).
        let all = store.fetch_all().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1.tasks[0].task, TaskId(1));
    }

    #[test]
    fn stats_publishes_bypass_the_outage_gate() {
        let store = FaultyStore::new(MemStore::new());
        store.set_available(false);
        store.publish_stats(SiteId(0), SiteStats::default()).unwrap();
        assert_eq!(store.rejected_count(), 0, "observability must not skew outage counters");
    }

    #[test]
    fn delta_publish_requires_a_versioned_base() {
        let store = MemStore::new();
        let block = |task: u64| {
            Delta::Block(BlockedInfo::new(
                TaskId(task),
                vec![Resource::new(PhaserId(1), 1)],
                vec![Registration::new(PhaserId(1), 1)],
            ))
        };
        // No partition yet: a delta publish must demand a snapshot.
        assert_eq!(
            store.publish_deltas(SiteId(0), 0, &[block(1)], 1).unwrap(),
            DeltaAck::NeedSnapshot
        );
        // Join: full publish at version 3, then deltas resume from it.
        store.publish_full(SiteId(0), snap(1), 3).unwrap();
        assert_eq!(
            store.publish_deltas(SiteId(0), 3, &[block(2), Delta::Unblock(TaskId(1))], 5).unwrap(),
            DeltaAck::Applied
        );
        let all = store.fetch_all().unwrap();
        assert_eq!(all[0].1.tasks.iter().map(|b| b.task).collect::<Vec<_>>(), vec![TaskId(2)]);
        // A gap (base mismatch) forces a resync instead of corrupting state.
        assert_eq!(
            store.publish_deltas(SiteId(0), 9, &[block(3)], 10).unwrap(),
            DeltaAck::NeedSnapshot
        );
        assert_eq!(store.fetch_all().unwrap()[0].1.len(), 1, "rejected deltas must not apply");
    }

    #[test]
    fn legacy_publish_invalidates_the_delta_stream() {
        let store = MemStore::new();
        store.publish_full(SiteId(0), snap(1), 1).unwrap();
        store.publish(SiteId(0), snap(2)).unwrap(); // unversioned replace
        assert_eq!(
            store.publish_deltas(SiteId(0), 1, &[Delta::Unblock(TaskId(2))], 2).unwrap(),
            DeltaAck::NeedSnapshot
        );
    }

    #[test]
    fn default_trait_impl_declines_deltas() {
        // A minimal store that only implements the required methods.
        struct SnapshotOnly(MemStore);
        impl Store for SnapshotOnly {
            fn publish(&self, s: SiteId, p: Snapshot) -> Result<(), StoreError> {
                self.0.publish(s, p)
            }
            fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
                self.0.fetch_all()
            }
            fn remove(&self, s: SiteId) -> Result<(), StoreError> {
                self.0.remove(s)
            }
        }
        let store = SnapshotOnly(MemStore::new());
        store.publish_full(SiteId(0), snap(1), 7).unwrap();
        assert_eq!(store.publish_deltas(SiteId(0), 7, &[], 7).unwrap(), DeltaAck::NeedSnapshot);
        // The default stats sink is a discard, not an error.
        store.publish_stats(SiteId(0), SiteStats::default()).unwrap();
    }

    #[test]
    fn leased_partitions_expire_without_refresh() {
        let store = MemStore::with_lease(Duration::from_millis(40));
        store.publish_full(SiteId(0), snap(1), 1).unwrap();
        assert_eq!(store.fetch_all().unwrap().len(), 1);
        std::thread::sleep(Duration::from_millis(80));
        assert!(store.fetch_all().unwrap().is_empty(), "lapsed lease must drop the partition");
        assert_eq!(store.lease_expiries(), 1, "the expiry must be counted");
        // After expiry the delta stream is gone too: publishers must
        // rejoin with a full snapshot.
        assert_eq!(
            store.publish_deltas(SiteId(0), 1, &[], 1).unwrap(),
            DeltaAck::NeedSnapshot,
            "expired partition cannot accept deltas"
        );
    }

    #[test]
    fn heartbeats_refresh_the_lease() {
        let store = MemStore::with_lease(Duration::from_millis(60));
        store.publish_full(SiteId(0), snap(1), 1).unwrap();
        // Empty delta intervals (heartbeats) keep the partition alive
        // across several TTLs.
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(store.publish_deltas(SiteId(0), 1, &[], 1).unwrap(), DeltaAck::Applied);
        }
        assert_eq!(store.fetch_all().unwrap().len(), 1, "heartbeats must refresh the lease");
        assert_eq!(store.lease_expiries(), 0);
    }

    #[test]
    fn unleased_store_never_expires() {
        let store = MemStore::new();
        assert_eq!(store.lease(), None);
        store.publish_full(SiteId(0), snap(1), 1).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(store.fetch_all().unwrap().len(), 1);
    }

    #[test]
    fn traffic_counters_count() {
        let store = FaultyStore::new(MemStore::new());
        store.publish(SiteId(0), snap(1)).unwrap();
        store.publish(SiteId(1), snap(2)).unwrap();
        store.fetch_all().unwrap();
        assert_eq!(store.publish_count(), 2);
        assert_eq!(store.fetch_count(), 1);
        assert_eq!(store.rejected_count(), 0);
    }
}
