//! The global resource-dependency store (paper §5.2).
//!
//! The paper keeps the global blocked status in a dedicated Redis server;
//! each Armus instance periodically updates a disjoint portion of the
//! global resource-dependency with the contents of its local
//! resource-dependencies (§5.2). [`MemStore`] reproduces that interaction
//! surface in-process: per-site partitions, whole-view fetch. The
//! [`FaultyStore`] wrapper injects the outage behaviour the algorithm must
//! tolerate ("the algorithm resists (ii) because Redis itself is
//! fault-tolerant" — here we instead *test* tolerance by making the store
//! unavailable for windows of time).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use armus_core::Snapshot;
use parking_lot::Mutex;

/// A site (place) identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// Store failures surfaced to publishers/checkers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The store is (temporarily) unreachable.
    Unavailable,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global store unavailable")
    }
}

impl std::error::Error for StoreError {}

/// The store interface used by sites: publish-partition and fetch-all.
pub trait Store: Send + Sync {
    /// Replaces `site`'s partition of the global resource-dependency.
    fn publish(&self, site: SiteId, partition: Snapshot) -> Result<(), StoreError>;

    /// Fetches every partition (the checker's global view).
    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError>;

    /// Drops `site`'s partition (site shutdown or failure cleanup).
    fn remove(&self, site: SiteId) -> Result<(), StoreError>;
}

/// In-process store: the Redis stand-in.
#[derive(Default)]
pub struct MemStore {
    partitions: Mutex<BTreeMap<SiteId, Snapshot>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl Store for MemStore {
    fn publish(&self, site: SiteId, partition: Snapshot) -> Result<(), StoreError> {
        self.partitions.lock().insert(site, partition);
        Ok(())
    }

    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
        Ok(self.partitions.lock().iter().map(|(&s, p)| (s, p.clone())).collect())
    }

    fn remove(&self, site: SiteId) -> Result<(), StoreError> {
        self.partitions.lock().remove(&site);
        Ok(())
    }
}

/// A store wrapper that injects unavailability windows and counts traffic,
/// for the fault-tolerance tests and the distributed benchmarks.
pub struct FaultyStore<S> {
    inner: S,
    available: AtomicBool,
    publishes: AtomicU64,
    fetches: AtomicU64,
    rejected: AtomicU64,
}

impl<S: Store> FaultyStore<S> {
    /// Wraps `inner`, initially available.
    pub fn new(inner: S) -> FaultyStore<S> {
        FaultyStore {
            inner,
            available: AtomicBool::new(true),
            publishes: AtomicU64::new(0),
            fetches: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Starts or ends an outage window.
    pub fn set_available(&self, available: bool) {
        self.available.store(available, Ordering::SeqCst);
    }

    /// Is the store currently serving?
    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::SeqCst)
    }

    /// Successful publishes so far.
    pub fn publish_count(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Successful fetches so far.
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Operations rejected during outages.
    pub fn rejected_count(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    fn gate(&self) -> Result<(), StoreError> {
        if self.is_available() {
            Ok(())
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            Err(StoreError::Unavailable)
        }
    }
}

impl<S: Store> Store for FaultyStore<S> {
    fn publish(&self, site: SiteId, partition: Snapshot) -> Result<(), StoreError> {
        self.gate()?;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.inner.publish(site, partition)
    }

    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
        self.gate()?;
        self.fetches.fetch_add(1, Ordering::Relaxed);
        self.inner.fetch_all()
    }

    fn remove(&self, site: SiteId) -> Result<(), StoreError> {
        self.gate()?;
        self.inner.remove(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armus_core::{BlockedInfo, PhaserId, Registration, Resource, TaskId};

    fn snap(task: u64) -> Snapshot {
        Snapshot::from_tasks(vec![BlockedInfo::new(
            TaskId(task),
            vec![Resource::new(PhaserId(1), 1)],
            vec![Registration::new(PhaserId(1), 1)],
        )])
    }

    #[test]
    fn publish_replaces_partition() {
        let store = MemStore::new();
        store.publish(SiteId(0), snap(1)).unwrap();
        store.publish(SiteId(1), snap(2)).unwrap();
        store.publish(SiteId(0), snap(3)).unwrap();
        let all = store.fetch_all().unwrap();
        assert_eq!(all.len(), 2);
        let s0 = &all.iter().find(|(s, _)| *s == SiteId(0)).unwrap().1;
        assert_eq!(s0.tasks[0].task, TaskId(3), "second publish replaced the first");
    }

    #[test]
    fn remove_drops_partition() {
        let store = MemStore::new();
        store.publish(SiteId(0), snap(1)).unwrap();
        store.remove(SiteId(0)).unwrap();
        assert!(store.fetch_all().unwrap().is_empty());
    }

    #[test]
    fn faulty_store_rejects_during_outage() {
        let store = FaultyStore::new(MemStore::new());
        store.publish(SiteId(0), snap(1)).unwrap();
        store.set_available(false);
        assert_eq!(store.publish(SiteId(0), snap(2)), Err(StoreError::Unavailable));
        assert_eq!(store.fetch_all().unwrap_err(), StoreError::Unavailable);
        assert_eq!(store.rejected_count(), 2);
        store.set_available(true);
        // Data from before the outage survives (the paper's assumption:
        // the store itself is fault-tolerant).
        let all = store.fetch_all().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1.tasks[0].task, TaskId(1));
    }

    #[test]
    fn traffic_counters_count() {
        let store = FaultyStore::new(MemStore::new());
        store.publish(SiteId(0), snap(1)).unwrap();
        store.publish(SiteId(1), snap(2)).unwrap();
        store.fetch_all().unwrap();
        assert_eq!(store.publish_count(), 2);
        assert_eq!(store.fetch_count(), 1);
        assert_eq!(store.rejected_count(), 0);
    }
}
