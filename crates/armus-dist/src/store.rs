//! The global resource-dependency store (paper §5.2).
//!
//! The paper keeps the global blocked status in a dedicated Redis server;
//! each Armus instance periodically updates a disjoint portion of the
//! global resource-dependency with the contents of its local
//! resource-dependencies (§5.2). [`MemStore`] reproduces that interaction
//! surface in-process: per-site partitions, whole-view fetch. The
//! [`FaultyStore`] wrapper injects the outage behaviour the algorithm must
//! tolerate ("the algorithm resists (ii) because Redis itself is
//! fault-tolerant" — here we instead *test* tolerance by making the store
//! unavailable for windows of time).
//!
//! Partitions are updated **incrementally**: a site normally publishes only
//! the journal [`Delta`]s since its previous publish
//! ([`Store::publish_deltas`]), tagged with the journal interval they
//! cover; the store applies them only when its recorded version matches
//! the interval's base, and answers [`DeltaAck::NeedSnapshot`] otherwise.
//! The full-snapshot path ([`Store::publish_full`]) remains for joins and
//! recovery — a fresh site, a store that lost the partition, or a
//! publisher whose journal truncated past its cursor.
//!
//! Implementations are `Send + Sync` and are routinely **shared** across
//! sites and threads behind one `Arc` — the networked
//! [`crate::tcp::TcpStore`] multiplexes every sharer over a single
//! pipelined connection, so concurrent calls from many sites batch into
//! shared flushes rather than serialising on a socket each.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use armus_core::{BlockedInfo, Delta, Snapshot, TaskId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A site (place) identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// Store failures surfaced to publishers/checkers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The store is (temporarily) unreachable.
    Unavailable,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global store unavailable")
    }
}

impl std::error::Error for StoreError {}

/// The store's answer to a delta publish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaAck {
    /// The deltas were applied; the partition is now at the new version.
    Applied,
    /// The store cannot apply the interval (unknown partition, version
    /// mismatch, or no delta support): the site must resync with a full
    /// snapshot via [`Store::publish_full`].
    NeedSnapshot,
}

/// The store interface used by sites: publish-partition (full or
/// delta-based) and fetch-all.
pub trait Store: Send + Sync {
    /// Replaces `site`'s partition of the global resource-dependency
    /// (unversioned legacy path; a partition published this way always
    /// NACKs subsequent delta publishes).
    fn publish(&self, site: SiteId, partition: Snapshot) -> Result<(), StoreError>;

    /// Replaces `site`'s partition and records `version` (the publisher's
    /// journal cursor) so that subsequent [`Store::publish_deltas`] calls
    /// can resume from it. The default forwards to [`Store::publish`],
    /// discarding the version — correct for stores without delta support.
    fn publish_full(
        &self,
        site: SiteId,
        partition: Snapshot,
        version: u64,
    ) -> Result<(), StoreError> {
        let _ = version;
        self.publish(site, partition)
    }

    /// Applies the journal deltas covering versions `[base, next)` to
    /// `site`'s partition, provided the stored version equals `base`. The
    /// default declines ([`DeltaAck::NeedSnapshot`]), which makes every
    /// site fall back to full publishes against delta-unaware stores.
    fn publish_deltas(
        &self,
        site: SiteId,
        base: u64,
        deltas: &[Delta],
        next: u64,
    ) -> Result<DeltaAck, StoreError> {
        let _ = (site, base, deltas, next);
        Ok(DeltaAck::NeedSnapshot)
    }

    /// Fetches every partition (the checker's global view).
    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError>;

    /// Drops `site`'s partition (site shutdown or failure cleanup).
    fn remove(&self, site: SiteId) -> Result<(), StoreError>;
}

/// One site's stored partition: the blocked map, the journal version it is
/// at (`None` for unversioned legacy publishes), and the instant of the
/// last publish that touched it (the lease refresh time).
struct Partition {
    version: Option<u64>,
    tasks: HashMap<TaskId, BlockedInfo>,
    refreshed: Instant,
}

impl Partition {
    fn from_snapshot(snapshot: Snapshot, version: Option<u64>) -> Partition {
        Partition {
            version,
            tasks: snapshot.tasks.into_iter().map(|b| (b.task, b)).collect(),
            refreshed: Instant::now(),
        }
    }

    fn materialize(&self) -> Snapshot {
        Snapshot::from_tasks(self.tasks.values().cloned().collect())
    }
}

/// In-process store: the Redis stand-in.
///
/// Optionally lease-based ([`MemStore::with_lease`]): every publish —
/// full, legacy, or delta (empty heartbeat intervals included) — refreshes
/// the publishing site's lease, and [`Store::fetch_all`] drops partitions
/// whose lease has lapsed. A site that crashes (or is partitioned away)
/// without removing its partition therefore stops contributing to the
/// merged view after one TTL, instead of its last blocked statuses
/// lingering forever and confirming deadlocks that no longer exist.
pub struct MemStore {
    partitions: Mutex<BTreeMap<SiteId, Partition>>,
    lease: Option<Duration>,
}

impl Default for MemStore {
    fn default() -> MemStore {
        MemStore::new()
    }
}

impl MemStore {
    /// An empty store without lease expiry (partitions live until removed).
    pub fn new() -> MemStore {
        MemStore { partitions: Mutex::new(BTreeMap::new()), lease: None }
    }

    /// An empty store whose partitions expire `ttl` after their last
    /// publish. The TTL must comfortably exceed the sites' publish period
    /// (every publisher round — even an empty heartbeat — refreshes).
    pub fn with_lease(ttl: Duration) -> MemStore {
        MemStore { partitions: Mutex::new(BTreeMap::new()), lease: Some(ttl) }
    }

    /// The configured lease TTL, if any.
    pub fn lease(&self) -> Option<Duration> {
        self.lease
    }

    /// Purges partitions whose lease has lapsed (no-op without a lease).
    fn expire(&self, partitions: &mut BTreeMap<SiteId, Partition>) {
        if let Some(ttl) = self.lease {
            partitions.retain(|_, p| p.refreshed.elapsed() <= ttl);
        }
    }
}

impl Store for MemStore {
    fn publish(&self, site: SiteId, partition: Snapshot) -> Result<(), StoreError> {
        self.partitions.lock().insert(site, Partition::from_snapshot(partition, None));
        Ok(())
    }

    fn publish_full(
        &self,
        site: SiteId,
        partition: Snapshot,
        version: u64,
    ) -> Result<(), StoreError> {
        self.partitions.lock().insert(site, Partition::from_snapshot(partition, Some(version)));
        Ok(())
    }

    fn publish_deltas(
        &self,
        site: SiteId,
        base: u64,
        deltas: &[Delta],
        next: u64,
    ) -> Result<DeltaAck, StoreError> {
        let mut partitions = self.partitions.lock();
        let Some(partition) = partitions.get_mut(&site) else {
            return Ok(DeltaAck::NeedSnapshot);
        };
        if partition.version != Some(base) {
            return Ok(DeltaAck::NeedSnapshot);
        }
        for delta in deltas {
            match delta {
                Delta::Block(info) => {
                    partition.tasks.insert(info.task, info.clone());
                }
                Delta::Unblock(task) => {
                    partition.tasks.remove(task);
                }
            }
        }
        partition.version = Some(next);
        partition.refreshed = Instant::now();
        Ok(DeltaAck::Applied)
    }

    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
        let mut partitions = self.partitions.lock();
        self.expire(&mut partitions);
        Ok(partitions.iter().map(|(&s, p)| (s, p.materialize())).collect())
    }

    fn remove(&self, site: SiteId) -> Result<(), StoreError> {
        self.partitions.lock().remove(&site);
        Ok(())
    }
}

/// A store wrapper that injects unavailability windows and counts traffic,
/// for the fault-tolerance tests and the distributed benchmarks.
pub struct FaultyStore<S> {
    inner: S,
    available: AtomicBool,
    publishes: AtomicU64,
    delta_publishes: AtomicU64,
    fetches: AtomicU64,
    rejected: AtomicU64,
}

impl<S: Store> FaultyStore<S> {
    /// Wraps `inner`, initially available.
    pub fn new(inner: S) -> FaultyStore<S> {
        FaultyStore {
            inner,
            available: AtomicBool::new(true),
            publishes: AtomicU64::new(0),
            delta_publishes: AtomicU64::new(0),
            fetches: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Starts or ends an outage window.
    pub fn set_available(&self, available: bool) {
        self.available.store(available, Ordering::SeqCst);
    }

    /// The wrapped store, bypassing the outage gate — lets tests seed
    /// state "written before the outage started".
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Is the store currently serving?
    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::SeqCst)
    }

    /// Successful full (snapshot) publishes so far.
    pub fn publish_count(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Successful delta publishes so far.
    pub fn delta_publish_count(&self) -> u64 {
        self.delta_publishes.load(Ordering::Relaxed)
    }

    /// Successful fetches so far.
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Operations rejected during outages.
    pub fn rejected_count(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    fn gate(&self) -> Result<(), StoreError> {
        if self.is_available() {
            Ok(())
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            Err(StoreError::Unavailable)
        }
    }
}

impl<S: Store> Store for FaultyStore<S> {
    fn publish(&self, site: SiteId, partition: Snapshot) -> Result<(), StoreError> {
        self.gate()?;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.inner.publish(site, partition)
    }

    fn publish_full(
        &self,
        site: SiteId,
        partition: Snapshot,
        version: u64,
    ) -> Result<(), StoreError> {
        self.gate()?;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.inner.publish_full(site, partition, version)
    }

    fn publish_deltas(
        &self,
        site: SiteId,
        base: u64,
        deltas: &[Delta],
        next: u64,
    ) -> Result<DeltaAck, StoreError> {
        self.gate()?;
        self.delta_publishes.fetch_add(1, Ordering::Relaxed);
        self.inner.publish_deltas(site, base, deltas, next)
    }

    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
        self.gate()?;
        self.fetches.fetch_add(1, Ordering::Relaxed);
        self.inner.fetch_all()
    }

    fn remove(&self, site: SiteId) -> Result<(), StoreError> {
        self.gate()?;
        self.inner.remove(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armus_core::{BlockedInfo, PhaserId, Registration, Resource, TaskId};

    fn snap(task: u64) -> Snapshot {
        Snapshot::from_tasks(vec![BlockedInfo::new(
            TaskId(task),
            vec![Resource::new(PhaserId(1), 1)],
            vec![Registration::new(PhaserId(1), 1)],
        )])
    }

    #[test]
    fn publish_replaces_partition() {
        let store = MemStore::new();
        store.publish(SiteId(0), snap(1)).unwrap();
        store.publish(SiteId(1), snap(2)).unwrap();
        store.publish(SiteId(0), snap(3)).unwrap();
        let all = store.fetch_all().unwrap();
        assert_eq!(all.len(), 2);
        let s0 = &all.iter().find(|(s, _)| *s == SiteId(0)).unwrap().1;
        assert_eq!(s0.tasks[0].task, TaskId(3), "second publish replaced the first");
    }

    #[test]
    fn remove_drops_partition() {
        let store = MemStore::new();
        store.publish(SiteId(0), snap(1)).unwrap();
        store.remove(SiteId(0)).unwrap();
        assert!(store.fetch_all().unwrap().is_empty());
    }

    #[test]
    fn faulty_store_rejects_during_outage() {
        let store = FaultyStore::new(MemStore::new());
        store.publish(SiteId(0), snap(1)).unwrap();
        store.set_available(false);
        assert_eq!(store.publish(SiteId(0), snap(2)), Err(StoreError::Unavailable));
        assert_eq!(store.fetch_all().unwrap_err(), StoreError::Unavailable);
        assert_eq!(store.rejected_count(), 2);
        store.set_available(true);
        // Data from before the outage survives (the paper's assumption:
        // the store itself is fault-tolerant).
        let all = store.fetch_all().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1.tasks[0].task, TaskId(1));
    }

    #[test]
    fn delta_publish_requires_a_versioned_base() {
        let store = MemStore::new();
        let block = |task: u64| {
            Delta::Block(BlockedInfo::new(
                TaskId(task),
                vec![Resource::new(PhaserId(1), 1)],
                vec![Registration::new(PhaserId(1), 1)],
            ))
        };
        // No partition yet: a delta publish must demand a snapshot.
        assert_eq!(
            store.publish_deltas(SiteId(0), 0, &[block(1)], 1).unwrap(),
            DeltaAck::NeedSnapshot
        );
        // Join: full publish at version 3, then deltas resume from it.
        store.publish_full(SiteId(0), snap(1), 3).unwrap();
        assert_eq!(
            store.publish_deltas(SiteId(0), 3, &[block(2), Delta::Unblock(TaskId(1))], 5).unwrap(),
            DeltaAck::Applied
        );
        let all = store.fetch_all().unwrap();
        assert_eq!(all[0].1.tasks.iter().map(|b| b.task).collect::<Vec<_>>(), vec![TaskId(2)]);
        // A gap (base mismatch) forces a resync instead of corrupting state.
        assert_eq!(
            store.publish_deltas(SiteId(0), 9, &[block(3)], 10).unwrap(),
            DeltaAck::NeedSnapshot
        );
        assert_eq!(store.fetch_all().unwrap()[0].1.len(), 1, "rejected deltas must not apply");
    }

    #[test]
    fn legacy_publish_invalidates_the_delta_stream() {
        let store = MemStore::new();
        store.publish_full(SiteId(0), snap(1), 1).unwrap();
        store.publish(SiteId(0), snap(2)).unwrap(); // unversioned replace
        assert_eq!(
            store.publish_deltas(SiteId(0), 1, &[Delta::Unblock(TaskId(2))], 2).unwrap(),
            DeltaAck::NeedSnapshot
        );
    }

    #[test]
    fn default_trait_impl_declines_deltas() {
        // A minimal store that only implements the required methods.
        struct SnapshotOnly(MemStore);
        impl Store for SnapshotOnly {
            fn publish(&self, s: SiteId, p: Snapshot) -> Result<(), StoreError> {
                self.0.publish(s, p)
            }
            fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
                self.0.fetch_all()
            }
            fn remove(&self, s: SiteId) -> Result<(), StoreError> {
                self.0.remove(s)
            }
        }
        let store = SnapshotOnly(MemStore::new());
        store.publish_full(SiteId(0), snap(1), 7).unwrap();
        assert_eq!(store.publish_deltas(SiteId(0), 7, &[], 7).unwrap(), DeltaAck::NeedSnapshot);
    }

    #[test]
    fn leased_partitions_expire_without_refresh() {
        let store = MemStore::with_lease(Duration::from_millis(40));
        store.publish_full(SiteId(0), snap(1), 1).unwrap();
        assert_eq!(store.fetch_all().unwrap().len(), 1);
        std::thread::sleep(Duration::from_millis(80));
        assert!(store.fetch_all().unwrap().is_empty(), "lapsed lease must drop the partition");
        // After expiry the delta stream is gone too: publishers must
        // rejoin with a full snapshot.
        assert_eq!(
            store.publish_deltas(SiteId(0), 1, &[], 1).unwrap(),
            DeltaAck::NeedSnapshot,
            "expired partition cannot accept deltas"
        );
    }

    #[test]
    fn heartbeats_refresh_the_lease() {
        let store = MemStore::with_lease(Duration::from_millis(60));
        store.publish_full(SiteId(0), snap(1), 1).unwrap();
        // Empty delta intervals (heartbeats) keep the partition alive
        // across several TTLs.
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(store.publish_deltas(SiteId(0), 1, &[], 1).unwrap(), DeltaAck::Applied);
        }
        assert_eq!(store.fetch_all().unwrap().len(), 1, "heartbeats must refresh the lease");
    }

    #[test]
    fn unleased_store_never_expires() {
        let store = MemStore::new();
        assert_eq!(store.lease(), None);
        store.publish_full(SiteId(0), snap(1), 1).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(store.fetch_all().unwrap().len(), 1);
    }

    #[test]
    fn traffic_counters_count() {
        let store = FaultyStore::new(MemStore::new());
        store.publish(SiteId(0), snap(1)).unwrap();
        store.publish(SiteId(1), snap(2)).unwrap();
        store.fetch_all().unwrap();
        assert_eq!(store.publish_count(), 2);
        assert_eq!(store.fetch_count(), 1);
        assert_eq!(store.rejected_count(), 0);
    }
}
