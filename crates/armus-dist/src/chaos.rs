//! Seeded fault injection for the site↔store transport: drop, duplicate,
//! and reorder (delay) delta publishes — the message-level failure modes
//! the versioned delta protocol must tolerate, on top of the whole-store
//! outages [`crate::store::FaultyStore`] injects.
//!
//! The chaos is **deterministic**: every decision comes from a seeded
//! generator, so a failing interaction replays from its seed. The
//! protocol's safety argument under chaos is simple and is what the tests
//! pin down:
//!
//! * a **dropped** publish surfaces to the site as a transport error
//!   ([`StoreError::Unavailable`]), so the site retries — nothing was
//!   applied;
//! * a **duplicated** delta interval can never double-apply: a non-empty
//!   interval advanced the partition version, so the second application's
//!   base no longer matches and the store NACKs it
//!   ([`DeltaAck::NeedSnapshot`]); an *empty* interval (a heartbeat,
//!   `base == next`) re-applies as a no-op — either way the partition is
//!   unchanged;
//! * a **delayed** (reordered) interval is delivered *after* later
//!   traffic; its stale base version is NACKed on arrival, and the error
//!   returned at send time already pushed the site towards a
//!   full-snapshot resync.
//!
//! Net effect: chaos can only cost resyncs, never partition corruption —
//! the store's partitions always converge to some publisher-consistent
//! state, which is exactly what the simulation testkit's differential
//! oracle needs from the distributed layer.

use std::sync::atomic::{AtomicU64, Ordering};

use armus_core::{Delta, Snapshot};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::store::{DeltaAck, SiteId, Store, StoreError};

/// Fault probabilities of a [`ChaosStore`].
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Probability a delta publish is dropped (site sees `Unavailable`).
    pub drop_prob: f64,
    /// Probability a delta publish is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a delta publish is delayed and delivered out of order
    /// (site sees `Unavailable`; the stale interval arrives later).
    pub delay_prob: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { drop_prob: 0.15, duplicate_prob: 0.15, delay_prob: 0.15 }
    }
}

/// A delayed delta publish, waiting to be (re)delivered out of order.
struct Delayed {
    site: SiteId,
    base: u64,
    deltas: Vec<Delta>,
    next: u64,
}

/// A store wrapper injecting seeded drop/duplicate/reorder faults on the
/// delta-publish path. Full publishes and fetches pass through: they are
/// the recovery mechanism under test, not the fault surface.
pub struct ChaosStore<S> {
    inner: S,
    cfg: ChaosConfig,
    rng: Mutex<SmallRng>,
    delayed: Mutex<Vec<Delayed>>,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed_count: AtomicU64,
    stale_nacks: AtomicU64,
}

impl<S: Store> ChaosStore<S> {
    /// Wraps `inner` with the given fault profile; all chaos decisions
    /// derive from `seed`.
    pub fn new(inner: S, cfg: ChaosConfig, seed: u64) -> ChaosStore<S> {
        ChaosStore {
            inner,
            cfg,
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            delayed: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delayed_count: AtomicU64::new(0),
            stale_nacks: AtomicU64::new(0),
        }
    }

    /// The wrapped store, e.g. to read transport counters when chaos is
    /// layered over [`crate::tcp::TcpStore`].
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Publishes dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Publishes duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Publishes delayed (reordered) so far.
    pub fn delayed(&self) -> u64 {
        self.delayed_count.load(Ordering::Relaxed)
    }

    /// Late or duplicated intervals the inner store refused to apply —
    /// the protocol working as designed.
    pub fn stale_nacks(&self) -> u64 {
        self.stale_nacks.load(Ordering::Relaxed)
    }

    /// Delivers every delayed interval now (out of order by
    /// construction). Stale bases are NACKed by the inner store; that is
    /// the point. If the inner store errors mid-flush (e.g. a layered
    /// outage window), the undelivered intervals — the failed one
    /// included — are re-queued so a delay never silently becomes a drop.
    pub fn flush_delayed(&self) -> Result<(), StoreError> {
        let mut pending: Vec<Delayed> = std::mem::take(&mut *self.delayed.lock());
        while !pending.is_empty() {
            let d = pending.remove(0);
            match self.inner.publish_deltas(d.site, d.base, &d.deltas, d.next) {
                Ok(DeltaAck::NeedSnapshot) => {
                    self.stale_nacks.fetch_add(1, Ordering::Relaxed);
                }
                Ok(DeltaAck::Applied) => {}
                Err(e) => {
                    let mut queue = self.delayed.lock();
                    let mut rest = vec![d];
                    rest.extend(pending);
                    rest.extend(queue.drain(..));
                    *queue = rest;
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}

impl<S: Store> Store for ChaosStore<S> {
    fn publish(&self, site: SiteId, partition: Snapshot) -> Result<(), StoreError> {
        self.inner.publish(site, partition)
    }

    fn publish_full(
        &self,
        site: SiteId,
        partition: Snapshot,
        version: u64,
    ) -> Result<(), StoreError> {
        self.inner.publish_full(site, partition, version)
    }

    fn publish_deltas(
        &self,
        site: SiteId,
        base: u64,
        deltas: &[Delta],
        next: u64,
    ) -> Result<DeltaAck, StoreError> {
        // Deliver earlier-delayed traffic first: by now it interleaves
        // behind newer publishes, i.e. arrives reordered.
        self.flush_delayed()?;
        let roll: f64 = {
            let mut rng = self.rng.lock();
            rng.gen_range(0..1_000_000u64) as f64 / 1_000_000.0
        };
        if roll < self.cfg.drop_prob {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Unavailable);
        }
        if roll < self.cfg.drop_prob + self.cfg.delay_prob {
            self.delayed_count.fetch_add(1, Ordering::Relaxed);
            self.delayed.lock().push(Delayed { site, base, deltas: deltas.to_vec(), next });
            return Err(StoreError::Unavailable);
        }
        let ack = self.inner.publish_deltas(site, base, deltas, next)?;
        if roll < self.cfg.drop_prob + self.cfg.delay_prob + self.cfg.duplicate_prob {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            if self.inner.publish_deltas(site, base, deltas, next)? == DeltaAck::NeedSnapshot {
                self.stale_nacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(ack)
    }

    fn publish_stats(
        &self,
        site: SiteId,
        stats: crate::store::SiteStats,
    ) -> Result<(), StoreError> {
        // Observability traffic is not part of the chaos model: forward.
        self.inner.publish_stats(site, stats)
    }

    fn fetch_all(&self) -> Result<Vec<(SiteId, Snapshot)>, StoreError> {
        self.inner.fetch_all()
    }

    fn remove(&self, site: SiteId) -> Result<(), StoreError> {
        self.inner.remove(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use armus_core::{
        BlockedInfo, JournalRead, PhaserId, Registration, Resource, TaskId, Verifier,
        VerifierConfig,
    };

    fn info(task: u64) -> BlockedInfo {
        BlockedInfo::new(
            TaskId(task),
            vec![Resource::new(PhaserId(1), 1)],
            vec![Registration::new(PhaserId(1), 1)],
        )
    }

    /// One site publisher round against an arbitrary store, mirroring
    /// `site::publish_round`'s protocol: deltas while synced, full
    /// snapshot to (re)join.
    fn round(
        store: &dyn Store,
        v: &Verifier,
        cursor: &mut u64,
        synced: &mut bool,
        resyncs: &mut u64,
    ) {
        if *synced {
            match v.deltas_since(*cursor) {
                JournalRead::Deltas(deltas, next) => {
                    match store.publish_deltas(SiteId(0), *cursor, &deltas, next) {
                        Ok(DeltaAck::Applied) => *cursor = next,
                        Ok(DeltaAck::NeedSnapshot) => *synced = false,
                        Err(_) => return,
                    }
                }
                JournalRead::Behind => *synced = false,
            }
        }
        if !*synced {
            let (snapshot, head) = v.snapshot_with_cursor();
            if store.publish_full(SiteId(0), snapshot, head).is_ok() {
                *cursor = head;
                *synced = true;
                *resyncs += 1;
            }
        }
    }

    #[test]
    fn chaos_costs_resyncs_never_corruption() {
        for seed in 0..20u64 {
            let store = ChaosStore::new(MemStore::new(), ChaosConfig::default(), seed);
            let v = Verifier::new(VerifierConfig::publish_only().with_journal_capacity(8));
            let (mut cursor, mut synced, mut resyncs) = (0u64, false, 0u64);
            // Deterministic churn interleaved with publisher rounds.
            for i in 0..200u64 {
                let b = info(i % 16);
                v.block(b.task, b.waits, b.registered).unwrap();
                if i % 5 == 0 {
                    v.unblock(TaskId(i % 16));
                }
                if i % 3 == 0 {
                    round(&store, &v, &mut cursor, &mut synced, &mut resyncs);
                }
            }
            // Quiesce: flush delayed traffic, then run rounds until one
            // fully succeeds (drop/delay faults can reject a round; the
            // protocol retries — bounded here for determinism).
            store.flush_delayed().unwrap();
            for _ in 0..100 {
                round(&store, &v, &mut cursor, &mut synced, &mut resyncs);
                let caught_up = synced
                    && matches!(v.deltas_since(cursor), JournalRead::Deltas(ref d, _) if d.is_empty());
                if caught_up {
                    break;
                }
            }
            store.flush_delayed().unwrap();
            // The partition equals the publisher's truth, entry for entry.
            let all = store.fetch_all().unwrap();
            let partition = &all.iter().find(|(s, _)| *s == SiteId(0)).unwrap().1;
            assert_eq!(
                partition,
                &v.local_snapshot(),
                "seed {seed}: chaos must never corrupt the partition \
                 (dropped {} duplicated {} delayed {} stale-NACKs {}, {resyncs} resyncs)",
                store.dropped(),
                store.duplicated(),
                store.delayed(),
                store.stale_nacks(),
            );
        }
    }

    #[test]
    fn duplicates_and_late_intervals_are_nacked_not_applied() {
        let store = ChaosStore::new(
            MemStore::new(),
            // Duplicate every delta publish, never drop or delay.
            ChaosConfig { drop_prob: 0.0, duplicate_prob: 1.0, delay_prob: 0.0 },
            7,
        );
        let block = |task: u64| Delta::Block(info(task));
        store.publish_full(SiteId(0), Snapshot::empty(), 0).unwrap();
        assert_eq!(store.publish_deltas(SiteId(0), 0, &[block(1)], 1).unwrap(), DeltaAck::Applied);
        assert_eq!(store.duplicated(), 1);
        assert_eq!(store.stale_nacks(), 1, "the duplicate was NACKed, not double-applied");
        let all = store.fetch_all().unwrap();
        assert_eq!(all[0].1.len(), 1, "exactly one task despite the duplicate");
    }
}
