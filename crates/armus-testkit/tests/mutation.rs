//! Proof that the differential oracle catches real verifier bugs: built
//! with `--features verifier-mutation`, armus-core carries two deliberate
//! defects. The avoidance fast path is off by one (cardinality bound 3
//! instead of 2), which silently admits every two-resource deadlock
//! cycle. And the Pearce–Kelly order maintenance skips the
//! affected-region forward search on adjacent-label violations (label gap
//! exactly 1), committing edges that close a cycle — which makes the
//! incremental `check_full` answer "no cycle" on exactly the crossed-wait
//! shape. The oracle must flag both, and the shrinker must reduce each
//! failure to a hand-readable scenario with a short replayable schedule.
//!
//! Run with: `cargo test -p armus-testkit --features verifier-mutation`
//! (the regular tiers are compiled out under the feature — they would
//! fail by design).
#![cfg(feature = "verifier-mutation")]

use armus_pl::gen::{gen_program, ProgGenConfig};
use armus_testkit::{
    canonical_scenarios, lower_program, oracle_configs, run_config, run_seeded, shrink,
    write_repro, Repro, SeededChooser, Sim,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The canonical two-resource cycle the mutation hides.
fn crossed_wait() -> armus_testkit::Scenario {
    canonical_scenarios().into_iter().find(|(n, _)| *n == "crossed-wait").unwrap().1
}

#[test]
fn oracle_catches_the_planted_bug_on_the_crossed_wait() {
    let scenario = crossed_wait();
    let failure = run_seeded(&scenario, 0)
        .expect_err("the mutated fast path admits the two-resource cycle; the oracle must notice");
    assert_eq!(failure.config, "avoidance", "the bug lives in the fast path: {failure}");
    assert!(failure.message.contains("admitted a deadlock"), "unexpected failure shape: {failure}");
    // The no-fastpath config is immune: the mutation is *in* the fast
    // path, so the full-check configuration must still pass.
    let oc = oracle_configs().into_iter().find(|c| c.name == "avoidance-nofastpath").unwrap();
    run_config(&scenario, &oc, &mut SeededChooser::new(0))
        .expect("the mutation must not affect the slow path");
}

/// Runs only the "detection" config: per-step lockstep of the follower
/// engine (where the planted order-maintenance bug lives) without the
/// avoidance configs, whose own planted fast-path bug would fire first.
fn run_detection(
    scenario: &armus_testkit::Scenario,
    seed: u64,
) -> Result<(), armus_testkit::Failure> {
    let oc = oracle_configs().into_iter().find(|c| c.name == "detection").unwrap();
    run_config(scenario, &oc, &mut SeededChooser::new(seed))
}

#[test]
fn lockstep_catches_the_planted_order_maintenance_bug() {
    // The crossed wait inserts the two WFG edges with label gap exactly 1
    // — the edge class whose forward search the mutation skips — so the
    // order answers "no cycle" while the full scan and the canonical
    // checker both see the 2-cycle. The per-step lockstep must notice.
    let failure = run_detection(&crossed_wait(), 0)
        .expect_err("the mutated order maintenance hides the crossed-wait cycle");
    assert_eq!(failure.config, "detection", "{failure}");
    assert!(
        failure.message.contains("check_full diverged"),
        "the lockstep must pin the diverging incremental check: {failure}"
    );
}

#[test]
fn seed_scan_finds_the_order_bug_and_shrinks_below_six_steps() {
    // Scan generated scenarios under the detection config only: every
    // failure there is the order-maintenance bug (the cardinality
    // mutation lives in the avoidance fast path, which publish-only
    // blocks never run).
    let cfg = ProgGenConfig {
        missing_adv_prob: 0.8,
        missing_dereg_prob: 0.8,
        ..ProgGenConfig::default()
    };
    let mut found = None;
    for seed in 0..500u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let program = gen_program(&mut rng, &cfg);
        let scenario = lower_program(&program).expect("generated programs lower");
        if let Err(failure) = run_detection(&scenario, seed) {
            found = Some((scenario, seed, failure));
            break;
        }
    }
    let (scenario, seed, failure) =
        found.expect("500 buggy-generator seeds must trip the planted order bug");
    assert!(failure.message.contains("check_full diverged"), "{failure}");

    let (shrunk, failure) =
        shrink(&scenario, failure, |candidate| run_detection(candidate, seed).err());
    assert!(failure.message.contains("check_full diverged"), "{failure}");

    // Replay the shrunk scenario and count the schedule: the acceptance
    // bar for this planted bug is a ≤ 6-step repro (the minimal crossed
    // wait: two tasks arriving and parking).
    let oc = oracle_configs().into_iter().find(|c| c.name == failure.config).unwrap();
    let mut sim = Sim::new(&shrunk, oc.verifier);
    let (_, steps) = sim.run_to_end(&mut SeededChooser::new(seed));
    assert!(steps <= 6, "shrunk schedule takes {steps} steps (> 6)");
    assert!(shrunk.total_ops() <= 6, "shrunk to {} ops", shrunk.total_ops());

    let repro = Repro { scenario: shrunk, failure, seed, schedule_len: steps };
    let text = write_repro(&repro);
    assert!(text.contains("ARMUS_TESTKIT_SEED="));
    println!("shrunk order-bug repro:\n{text}");
}

#[test]
fn seed_scan_finds_the_bug_and_shrinks_it_below_ten_steps() {
    // Scan generated scenarios the way the seeded tier does; the planted
    // bug must surface quickly, and the shrunk repro must be tiny.
    let cfg = ProgGenConfig {
        missing_adv_prob: 0.8,
        missing_dereg_prob: 0.8,
        ..ProgGenConfig::default()
    };
    let mut found = None;
    for seed in 0..500u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let program = gen_program(&mut rng, &cfg);
        let scenario = lower_program(&program).expect("generated programs lower");
        if let Err(failure) = run_seeded(&scenario, seed) {
            found = Some((scenario, seed, failure));
            break;
        }
    }
    let (scenario, seed, failure) =
        found.expect("500 buggy-generator seeds must trip the planted mutation");

    let (shrunk, failure) =
        shrink(&scenario, failure, |candidate| run_seeded(candidate, seed).err());

    // The minimal shape of a two-resource cycle: two tasks, two phasers,
    // two ops each.
    assert!(shrunk.tasks.len() <= 3, "shrunk to {} tasks", shrunk.tasks.len());
    assert!(shrunk.total_ops() <= 6, "shrunk to {} ops", shrunk.total_ops());

    // Replay the shrunk scenario under the failing config and count the
    // schedule: the acceptance bar is a ≤ 10-step repro.
    let oc = oracle_configs().into_iter().find(|c| c.name == failure.config).unwrap();
    let mut sim = Sim::new(&shrunk, oc.verifier);
    let (_, steps) = sim.run_to_end(&mut SeededChooser::new(seed));
    assert!(steps <= 10, "shrunk schedule takes {steps} steps (> 10)");

    let repro = Repro { scenario: shrunk, failure, seed, schedule_len: steps };
    // Exercise the repro path end to end (this is what CI uploads when a
    // *real* bug slips through).
    let text = write_repro(&repro);
    assert!(text.contains("ARMUS_TESTKIT_SEED="));
    println!("shrunk repro:\n{text}");
}
