//! The async front-end's differential tiers:
//!
//! * **oracle-under-futures** — the full differential oracle (alignment,
//!   soundness, completeness, model agreement, incremental lockstep) runs
//!   verbatim with every `Await` op driven through an
//!   [`armus_async::AwaitPhase`] future instead of the sync poll seam.
//! * **front-end byte-identity** — the same scenario is stepped through
//!   both front-ends in lockstep under the same schedule, and every
//!   schedulable-option set, every emitted event, every deadlock report,
//!   and the final registry snapshot must be *identical byte for byte*
//!   (after renaming runtime ids into the shared task/phaser index space —
//!   the two runs necessarily draw different fresh ids).
//!
//! Compiled out under `verifier-mutation` like the sync tiers: a planted
//! verifier bug fails them by design.
#![cfg(not(feature = "verifier-mutation"))]

use std::collections::HashMap;

use armus_core::{
    CycleWitness, DeadlockReport, PhaserId, Resource, Snapshot, TaskId, VerifierConfig,
};
use armus_pl::gen::{gen_program, ProgGenConfig};
use armus_testkit::{
    canonical_scenarios, lower_program, run_seeded_with_api, Chooser, Scenario, SeededChooser, Sim,
    SimEvent, WaitApi,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Same bug-heavy generator tuning as the sync seeded tier, so the async
/// tiers see the same mix of deadlocking and clean programs.
fn scenario_for(seed: u64) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let config = ProgGenConfig {
        missing_adv_prob: 0.8,
        missing_dereg_prob: 0.8,
        ..ProgGenConfig::default()
    };
    let program = gen_program(&mut rng, &config);
    lower_program(&program).expect("generated programs always lower")
}

/// Seeds for the async tiers: capped well below the sync tier's CI count —
/// each seed here runs the scenario under every oracle config *twice over*
/// (once per front-end in the identity test).
fn async_seeds() -> Vec<u64> {
    let count: u64 = std::env::var("ARMUS_TESTKIT_ASYNC_SEEDS")
        .ok()
        .map(|v| v.parse().expect("ARMUS_TESTKIT_ASYNC_SEEDS must be a u64"))
        .unwrap_or(100);
    (0..count).collect()
}

#[test]
fn async_driver_passes_the_full_oracle() {
    for (name, scenario) in canonical_scenarios() {
        for seed in 0..16 {
            if let Err(f) = run_seeded_with_api(&scenario, seed, WaitApi::Future) {
                panic!("{name} seed {seed} under the async front-end: {f}");
            }
        }
    }
    for seed in async_seeds() {
        let scenario = scenario_for(seed);
        if let Err(f) = run_seeded_with_api(&scenario, seed, WaitApi::Future) {
            panic!(
                "generated seed {seed} under the async front-end: {f}\n\
                 replay: ARMUS_TESTKIT_SEED={seed} cargo test -p armus-testkit async_driver"
            );
        }
    }
}

/// Rename maps from one run's fresh runtime ids into the scenario's
/// task/phaser index space, the shared vocabulary both runs compare in.
struct Rename {
    tasks: HashMap<TaskId, u64>,
    phasers: HashMap<PhaserId, u64>,
}

impl Rename {
    fn of(sim: &Sim, scenario: &Scenario) -> Rename {
        Rename {
            tasks: (0..scenario.tasks.len()).map(|i| (sim.task_id(i), i as u64)).collect(),
            phasers: (0..scenario.phasers).map(|p| (sim.phaser_id(p), p as u64)).collect(),
        }
    }

    fn task(&self, t: &TaskId) -> TaskId {
        TaskId(self.tasks[t])
    }

    fn resource(&self, r: &Resource) -> Resource {
        Resource::new(PhaserId(self.phasers[&r.phaser]), r.phase)
    }

    fn report(&self, r: &DeadlockReport) -> DeadlockReport {
        DeadlockReport {
            tasks: r.tasks.iter().map(|t| self.task(t)).collect(),
            resources: r.resources.iter().map(|x| self.resource(x)).collect(),
            model: r.model,
            witness: match &r.witness {
                CycleWitness::Tasks(c) => {
                    CycleWitness::Tasks(c.iter().map(|t| self.task(t)).collect())
                }
                CycleWitness::Resources(c) => {
                    CycleWitness::Resources(c.iter().map(|x| self.resource(x)).collect())
                }
            },
            task_epochs: r.task_epochs.iter().map(|(t, e)| (self.task(t), *e)).collect(),
        }
    }

    fn snapshot(&self, snap: &Snapshot) -> String {
        let mut tasks: Vec<String> = snap
            .tasks
            .iter()
            .map(|info| {
                let waits: Vec<Resource> = info.waits.iter().map(|r| self.resource(r)).collect();
                let mut registered: Vec<(u64, u64)> = info
                    .registered
                    .iter()
                    .map(|reg| (self.phasers[&reg.phaser], reg.local_phase))
                    .collect();
                registered.sort_unstable();
                format!(
                    "{:?} waits {:?} registered {:?} epoch {}",
                    self.task(&info.task),
                    waits,
                    registered,
                    info.epoch
                )
            })
            .collect();
        tasks.sort();
        tasks.join("; ")
    }

    /// The comparable form of an event: indices pass through; reports are
    /// renamed and serialised (byte-identity of the JSON is the claim).
    fn event(&self, e: &SimEvent) -> String {
        match e {
            SimEvent::Completed(..) | SimEvent::BlockedAt(..) => format!("{e:?}"),
            SimEvent::Refused { task, phaser, report, initiated } => format!(
                "Refused {{ task: {task}, phaser: {phaser}, initiated: {initiated}, report: {} }}",
                serde_json::to_string(&self.report(report)).expect("reports serialise")
            ),
        }
    }
}

/// Steps the scenario through both front-ends under the same schedule and
/// requires identical options, events, reports, verdicts, and registry.
fn assert_front_ends_identical(
    name: &str,
    scenario: &Scenario,
    verifier: VerifierConfig,
    seed: u64,
) {
    let mut sync_sim = Sim::new_with_api(scenario, verifier, WaitApi::Seam);
    let mut async_sim = Sim::new_with_api(scenario, verifier, WaitApi::Future);
    let sync_ids = Rename::of(&sync_sim, scenario);
    let async_ids = Rename::of(&async_sim, scenario);
    let mut sync_chooser = SeededChooser::new(seed);
    let mut async_chooser = SeededChooser::new(seed);
    let at = |clock: u64| format!("{name} seed {seed} step {clock}");

    loop {
        let sync_options = sync_sim.options();
        let async_options = async_sim.options();
        assert_eq!(sync_options, async_options, "{}: schedulable options", at(sync_sim.clock));
        if sync_options.is_empty() {
            break;
        }
        let pick = sync_chooser.choose(sync_options.len());
        assert_eq!(pick, async_chooser.choose(async_options.len()), "choosers are pure");
        let sync_event = sync_sim.step(sync_options[pick]);
        let async_event = async_sim.step(async_options[pick]);
        assert_eq!(
            sync_ids.event(&sync_event),
            async_ids.event(&async_event),
            "{}: event",
            at(sync_sim.clock)
        );
        // The registry the checker sees must agree at *every* step, not
        // just at quiescence — an avoidance decision depends on it.
        assert_eq!(
            sync_ids.snapshot(&sync_sim.verifier().local_snapshot()),
            async_ids.snapshot(&async_sim.verifier().local_snapshot()),
            "{}: registry snapshot",
            at(sync_sim.clock)
        );
    }

    assert_eq!(sync_sim.outcome(), async_sim.outcome(), "{name} seed {seed}: outcome");
    // Detection-style sample on the final state, then the verdict and the
    // accumulated reports must match byte for byte.
    let sync_fresh = sync_sim.verifier().check_now().map(|r| sync_ids.report(&r));
    let async_fresh = async_sim.verifier().check_now().map(|r| async_ids.report(&r));
    assert_eq!(
        serde_json::to_string(&sync_fresh).unwrap(),
        serde_json::to_string(&async_fresh).unwrap(),
        "{name} seed {seed}: final check_now report"
    );
    assert_eq!(
        sync_sim.verifier().found_deadlock(),
        async_sim.verifier().found_deadlock(),
        "{name} seed {seed}: found_deadlock"
    );
    let sync_reports: Vec<DeadlockReport> =
        sync_sim.verifier().take_reports().iter().map(|r| sync_ids.report(r)).collect();
    let async_reports: Vec<DeadlockReport> =
        async_sim.verifier().take_reports().iter().map(|r| async_ids.report(r)).collect();
    assert_eq!(
        serde_json::to_string(&sync_reports).unwrap(),
        serde_json::to_string(&async_reports).unwrap(),
        "{name} seed {seed}: accumulated reports"
    );
}

#[test]
fn front_ends_are_byte_identical_on_canonical_scenarios() {
    for (name, scenario) in canonical_scenarios() {
        for seed in 0..16 {
            for verifier in [VerifierConfig::avoidance(), VerifierConfig::publish_only()] {
                assert_front_ends_identical(name, &scenario, verifier, seed);
            }
        }
    }
}

#[test]
fn front_ends_are_byte_identical_on_generated_programs() {
    for seed in async_seeds() {
        let scenario = scenario_for(seed);
        for verifier in [VerifierConfig::avoidance(), VerifierConfig::publish_only()] {
            assert_front_ends_identical("generated", &scenario, verifier, seed);
        }
    }
}
