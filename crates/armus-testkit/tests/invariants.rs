//! Runtime-level invariants driven deterministically through the
//! simulation seam:
//!
//! * every blocking primitive (`Phaser`, `CyclicBarrier`,
//!   `CountDownLatch`, `Clock`, `ClockedVar`, `Finish`) works through the
//!   cooperative begin/poll wait machine — one OS thread, many task
//!   identities, zero sleeps;
//! * the three invariants of armus-core's `concurrent_stress.rs`,
//!   reproduced as deterministic scenarios: journal-followed state equals
//!   the snapshot at quiescence (through the tiny-journal resync path),
//!   detection under churn reports a planted deadlock exactly once, and
//!   avoidance accounts every block as a check or a fast-path skip.
#![cfg(not(feature = "verifier-mutation"))]

use std::sync::Arc;

use armus_core::VerifierConfig;
use armus_sync::ctx::{self, TaskCtx};
use armus_sync::{
    Clock, ClockedVar, CountDownLatch, CyclicBarrier, Finish, Runtime, RuntimeConfig, SyncError,
    WaitStep,
};
use armus_testkit::{run_config, Op, Scenario, SeededChooser, Sim};

fn sim_runtime(verifier: VerifierConfig) -> Arc<Runtime> {
    Runtime::new(RuntimeConfig::unchecked().with_verifier(verifier))
}

#[test]
fn cyclic_barrier_through_the_poll_seam() {
    let rt = sim_runtime(VerifierConfig::avoidance());
    let barrier = CyclicBarrier::new(&rt, 2);
    let (a, b) = (TaskCtx::fresh(), TaskCtx::fresh());
    ctx::scoped(&a, || barrier.register()).unwrap();
    ctx::scoped(&b, || barrier.register()).unwrap();
    // a arrives and parks; b's arrival releases it — all polled, no threads.
    assert_eq!(ctx::scoped(&a, || barrier.begin_wait()).unwrap(), WaitStep::Pending);
    assert!(!ctx::scoped(&a, || barrier.wait_would_resolve()));
    assert_eq!(ctx::scoped(&b, || barrier.begin_wait()).unwrap(), WaitStep::Ready);
    assert!(ctx::scoped(&a, || barrier.wait_would_resolve()));
    assert_eq!(ctx::scoped(&a, || barrier.poll_wait()).unwrap(), WaitStep::Ready);
    let stats = rt.stats();
    assert_eq!(stats.blocks, 1, "only the parked wait published");
    assert_eq!(stats.unblocks, 1);
}

#[test]
fn count_down_latch_through_the_poll_seam() {
    let rt = sim_runtime(VerifierConfig::avoidance());
    let latch = CountDownLatch::new(&rt, 2);
    let (waiter, counter) = (TaskCtx::fresh(), TaskCtx::fresh());
    assert_eq!(ctx::scoped(&waiter, || latch.begin_wait()).unwrap(), WaitStep::Pending);
    ctx::scoped(&counter, || latch.count_down()).unwrap();
    assert!(!ctx::scoped(&waiter, || latch.wait_would_resolve()), "one count left");
    ctx::scoped(&counter, || latch.count_down()).unwrap();
    assert_eq!(ctx::scoped(&waiter, || latch.poll_wait()).unwrap(), WaitStep::Ready);
    assert_eq!(latch.count(), 0);
}

#[test]
fn finish_join_through_the_poll_seam() {
    let rt = sim_runtime(VerifierConfig::avoidance());
    let parent = TaskCtx::fresh();
    let finish = ctx::scoped(&parent, || Finish::new(&rt));
    let child = TaskCtx::fresh();
    // "Spawn": register the child on the join phaser without a thread.
    ctx::scoped(&parent, || finish.phaser().register_child(&child)).unwrap();
    assert_eq!(finish.pending(), 2);
    assert_eq!(ctx::scoped(&parent, || finish.begin_wait()).unwrap(), WaitStep::Pending);
    // Child terminates: its exit-deregistration is the join arrival.
    ctx::scoped(&child, || finish.phaser().deregister()).unwrap();
    assert_eq!(ctx::scoped(&parent, || finish.poll_wait()).unwrap(), WaitStep::Ready);
    ctx::scoped(&parent, || finish.conclude()).unwrap();
}

#[test]
fn clock_and_clocked_var_through_the_poll_seam() {
    let rt = sim_runtime(VerifierConfig::avoidance());
    let owner = TaskCtx::fresh();
    let clock = ctx::scoped(&owner, || Clock::make(&rt));
    let member = TaskCtx::fresh();
    ctx::scoped(&member, || clock.register()).unwrap();
    assert_eq!(ctx::scoped(&owner, || clock.begin_advance()).unwrap(), WaitStep::Pending);
    assert_eq!(ctx::scoped(&member, || clock.begin_advance()).unwrap(), WaitStep::Ready);
    assert_eq!(ctx::scoped(&owner, || clock.poll_advance()).unwrap(), WaitStep::Ready);

    let var = ctx::scoped(&owner, || ClockedVar::new(&rt, 1));
    ctx::scoped(&member, || var.register()).unwrap();
    ctx::scoped(&owner, || var.set(2)).unwrap();
    assert_eq!(ctx::scoped(&member, || var.get()).unwrap(), 1, "write not visible this phase");
    assert_eq!(ctx::scoped(&owner, || var.begin_advance()).unwrap(), WaitStep::Pending);
    assert_eq!(ctx::scoped(&member, || var.begin_advance()).unwrap(), WaitStep::Ready);
    assert_eq!(ctx::scoped(&owner, || var.poll_advance()).unwrap(), WaitStep::Ready);
    assert_eq!(ctx::scoped(&member, || var.get()).unwrap(), 2, "visible after the advance");
}

#[test]
fn crossed_clocks_raise_would_deadlock_through_the_seam() {
    // Both tasks advance their own clock while lagging on the other's:
    // the second begin must be refused, and the first victim interrupted.
    let rt = sim_runtime(VerifierConfig::avoidance());
    let (a, b) = (TaskCtx::fresh(), TaskCtx::fresh());
    let ca = ctx::scoped(&a, || Clock::make(&rt));
    let cb = ctx::scoped(&b, || Clock::make(&rt));
    ctx::scoped(&a, || cb.register()).unwrap();
    ctx::scoped(&b, || ca.register()).unwrap();
    assert_eq!(ctx::scoped(&a, || ca.begin_advance()).unwrap(), WaitStep::Pending);
    let err = ctx::scoped(&b, || cb.begin_advance()).expect_err("closing advance");
    assert!(matches!(err, SyncError::WouldDeadlock(_)));
    // The parked victim is woken with the same verdict.
    assert!(ctx::scoped(&a, || ca.phaser().await_would_resolve()));
    let err = ctx::scoped(&a, || ca.poll_advance()).expect_err("interrupted victim");
    assert!(matches!(err, SyncError::WouldDeadlock(_)));
    assert!(rt.verifier().found_deadlock());
}

/// Stress-port (a): the journal-followed engine state equals a
/// from-scratch snapshot at quiescence — driven through the journal's
/// `Behind`/full-resync branch by a deterministic tiny-journal verifier.
#[test]
fn journal_resync_keeps_the_followed_view_exact() {
    // Churn: four independent barrier pairs block and unblock while the
    // verifier never samples, overflowing the 2-entry journal window; the
    // quiescent check must resync and still answer correctly.
    let mut scenario = Scenario::new(3);
    for _ in 0..4 {
        scenario = scenario.task(&[0], vec![Op::Arrive(0), Op::Await(0)]);
    }
    // Plus the figure-1 deadlock on the other two phasers.
    let scenario = scenario
        .task(&[1, 2], vec![Op::Arrive(1), Op::Await(1)])
        .task(&[1, 2], vec![Op::Arrive(2), Op::Await(2)]);
    let oc = armus_testkit::oracle_configs()
        .into_iter()
        .find(|c| c.name == "detection-tiny-journal")
        .unwrap();
    // run_config asserts at quiescence that the registry equals ϕ of the
    // replayed PL state — the "followed view equals snapshot" invariant.
    run_config(&scenario, &oc, &mut SeededChooser::new(11)).unwrap();
    // And explicitly: the run must actually have taken the resync path.
    let mut sim = Sim::new(&scenario, oc.verifier);
    sim.run_to_end(&mut SeededChooser::new(11));
    let _ = sim.verifier().check_now();
    let stats = sim.verifier().stats();
    assert!(stats.resyncs >= 1, "tiny journal must force a snapshot resync: {stats:?}");
    assert!(sim.verifier().found_deadlock(), "the planted cycle survives the resync");
}

/// Stress-port (b): detection under churn reports the planted deadlock
/// exactly once — no loss, no duplication — here with the sampler racing
/// the churn deterministically (a sample after every step).
#[test]
fn detection_under_churn_reports_exactly_once() {
    let scenario = Scenario::new(3)
        // The planted figure-1 cycle…
        .task(&[0, 1], vec![Op::Arrive(0), Op::Await(0)])
        .task(&[0, 1], vec![Op::Arrive(1), Op::Await(1)])
        // …and two full barrier rounds of churn beside it.
        .task(&[2], vec![Op::Arrive(2), Op::Await(2), Op::Arrive(2), Op::Await(2)])
        .task(&[2], vec![Op::Arrive(2), Op::Await(2), Op::Arrive(2), Op::Await(2)]);
    for seed in 0..64 {
        let mut sim = Sim::new(&scenario, VerifierConfig::publish_only());
        let mut chooser = SeededChooser::new(seed);
        loop {
            let options = sim.options();
            if options.is_empty() {
                break;
            }
            use armus_testkit::Chooser;
            let pick = chooser.choose(options.len());
            sim.step(options[pick]);
            let _ = sim.verifier().check_now();
        }
        let _ = sim.verifier().check_now();
        let reports = sim.verifier().take_reports();
        assert_eq!(reports.len(), 1, "seed {seed}: exactly one report, got {reports:?}");
        assert_eq!(
            reports[0].tasks,
            vec![sim.task_id(0), sim.task_id(1)],
            "seed {seed}: the report names the planted cycle"
        );
    }
}

/// Stress-port (c): every avoidance block is answered exactly once — by
/// an engine check or by the cardinality fast path — across interleaved
/// independent blockers.
#[test]
fn avoidance_accounts_every_block() {
    let scenario = Scenario::new(3)
        .task(&[0], vec![Op::Arrive(0), Op::Await(0), Op::Arrive(0), Op::Await(0)])
        .task(&[0], vec![Op::Arrive(0), Op::Await(0), Op::Arrive(0), Op::Await(0)])
        .task(&[1], vec![Op::Arrive(1), Op::Await(1)])
        .task(&[1], vec![Op::Arrive(1), Op::Await(1)])
        .task(&[2], vec![Op::Arrive(2), Op::Await(2)])
        .task(&[2], vec![Op::Arrive(2), Op::Await(2)]);
    for seed in 0..64 {
        let mut sim = Sim::new(&scenario, VerifierConfig::avoidance());
        let (outcome, _) = sim.run_to_end(&mut SeededChooser::new(seed));
        assert_eq!(outcome, armus_testkit::SimOutcome::Quiesced, "seed {seed}");
        let stats = sim.verifier().stats();
        assert_eq!(
            stats.checks + stats.fastpath_skips,
            stats.blocks,
            "seed {seed}: every block is accounted: {stats:?}"
        );
        assert_eq!(stats.blocks, stats.unblocks, "seed {seed}: all waits completed");
        assert!(!sim.verifier().found_deadlock(), "seed {seed}: independent barriers");
    }
}

/// The oracle's config cross-product stays in sync with what this file
/// assumes by name.
#[test]
fn oracle_config_names_are_stable() {
    let names: Vec<&str> = armus_testkit::oracle_configs().iter().map(|c| c.name).collect();
    assert_eq!(
        names,
        vec!["avoidance", "avoidance-nofastpath", "detection", "detection-tiny-journal"]
    );
}
