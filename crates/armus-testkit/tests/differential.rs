//! The two main differential tiers:
//!
//! * **seeded-random** — `ARMUS_TESTKIT_SEEDS` seeds (default 400, CI
//!   10 000); each seed generates a buggy-by-construction PL program,
//!   lowers it to a scenario, and runs every oracle configuration under
//!   the seed's schedule stream. Failures shrink and print an
//!   `ARMUS_TESTKIT_SEED=…` repro line.
//! * **bounded-exhaustive** — every canonical scenario (≤ 4 tasks, ≤ 3
//!   resources) is explored through *every* interleaving, under every
//!   oracle configuration.
//!
//! Both tiers are compiled out under the `verifier-mutation` feature: a
//! planted verifier bug makes them fail by design (that run belongs to
//! `tests/mutation.rs`).
#![cfg(not(feature = "verifier-mutation"))]

use armus_pl::gen::{gen_program, ProgGenConfig};
use armus_testkit::{
    canonical_scenarios, explore_all, lower_program, oracle_configs, run_config, run_seeded,
    seeds_from_env, shrink, write_repro, Repro, Scenario, SeededChooser,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The generator configuration of the seeded tier: bug-heavy, so a large
/// fraction of scenarios actually deadlock and the verifier's positive
/// paths get real coverage.
fn gen_config() -> ProgGenConfig {
    ProgGenConfig { missing_adv_prob: 0.8, missing_dereg_prob: 0.8, ..ProgGenConfig::default() }
}

/// The scenario seed `seed` denotes (generation and lowering are pure
/// functions of it).
fn scenario_for(seed: u64) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let program = gen_program(&mut rng, &gen_config());
    lower_program(&program).expect("generated programs always lower")
}

#[test]
fn seeded_random_tier() {
    let seeds = seeds_from_env();
    let mut deadlocked = 0usize;
    for &seed in &seeds {
        let scenario = scenario_for(seed);
        if let Err(failure) = run_seeded(&scenario, seed) {
            let (shrunk, failure) =
                shrink(&scenario, failure, |candidate| run_seeded(candidate, seed).err());
            // Measure the schedule under the configuration that actually
            // failed, so the repro describes the failing run.
            let oc = oracle_configs()
                .into_iter()
                .find(|c| c.name == failure.config)
                .expect("failure names a known oracle config");
            let mut sim = armus_testkit::Sim::new(&shrunk, oc.verifier);
            let (_, steps) = sim.run_to_end(&mut SeededChooser::new(seed));
            let repro = Repro { scenario: shrunk, failure, seed, schedule_len: steps };
            panic!("seeded tier failed\n{}", write_repro(&repro));
        }
        // Cheap coverage telemetry: how many seeds actually deadlock
        // (the tier is only meaningful if a healthy fraction do).
        let mut sim =
            armus_testkit::Sim::new(&scenario, armus_core::VerifierConfig::publish_only());
        sim.run_to_end(&mut SeededChooser::new(seed));
        let _ = sim.verifier().check_now();
        if sim.verifier().found_deadlock() {
            deadlocked += 1;
        }
    }
    // With the bug-heavy generator a substantial share of runs deadlock;
    // guard against a silent generator regression that would turn the
    // tier into a no-op.
    if seeds.len() >= 100 {
        assert!(
            deadlocked * 20 >= seeds.len(),
            "only {deadlocked}/{} seeded runs deadlocked — generator regressed?",
            seeds.len()
        );
    }
}

#[test]
fn bounded_exhaustive_tier() {
    // Budget per (scenario, config): high enough that every canonical
    // scenario's full interleaving tree fits (the largest is ~20k
    // schedules); `complete` is asserted, so growth in the canonical set
    // that overflows the budget fails loudly instead of silently
    // truncating coverage.
    const BUDGET: usize = 200_000;
    for (name, scenario) in canonical_scenarios() {
        for oc in oracle_configs() {
            let explored = explore_all(|chooser| run_config(&scenario, &oc, chooser), BUDGET)
                .unwrap_or_else(|f| panic!("exhaustive tier: {name}: {f}"));
            assert!(
                explored.complete,
                "{name}/{}: exploration incomplete after {} schedules",
                oc.name, explored.schedules
            );
        }
    }
}

#[test]
fn exhaustive_tier_covers_every_interleaving_of_the_crossed_wait() {
    // Sanity-check the enumerator against a hand-countable tree: the
    // crossed wait has 2 tasks × 2 ops and deadlocks on *every* complete
    // schedule; the detection oracle must agree on each one.
    let scenario = canonical_scenarios().into_iter().find(|(n, _)| *n == "crossed-wait").unwrap().1;
    let oc = &oracle_configs()[2];
    let explored = explore_all(|chooser| run_config(&scenario, oc, chooser), 10_000).unwrap();
    assert!(explored.complete);
    // 4 ops over 2 tasks: at most C(4,2)=6 maximal interleavings (fewer
    // rounds offer choices once tasks park); the tree must be small and
    // fully covered.
    assert!(
        (2..=24).contains(&explored.schedules),
        "unexpected schedule count {}",
        explored.schedules
    );
}
