//! The static-analysis soundness tier: every verdict
//! `armus_pl::analysis` hands out is checked against the dynamic side.
//!
//! * **ProvedSafe** must mean it: bounded-exhaustive exploration of the
//!   PL semantics finds no deadlocked stuck state, a publish-only runtime
//!   run under the seed's schedule never reports, and an avoidance
//!   verifier consuming the hint completes the run with **zero** cycle
//!   checks (`checks == 0`, `static_skips == blocks`) and no refused
//!   task — the proof really does buy the runtime something.
//! * **DefiniteDeadlock** must mean it: the witness schedule replays
//!   through a real [`Sim`] to a runtime deadlock report the Φ/trace
//!   oracle confirms ([`armus_testkit::replay_witness`]).
//! * **Unknown** claims nothing and is only counted.
//!
//! The corpus is the same bug-heavy seeded generator as the differential
//! tier (`ARMUS_TESTKIT_SEEDS` seeds, CI 10 000); failures shrink against
//! the static checker and print the `ARMUS_TESTKIT_SEED=…` repro line.
//!
//! Compiled out under `verifier-mutation`: the planted runtime bug makes
//! replay legs fail by design.
#![cfg(not(feature = "verifier-mutation"))]

use armus_core::{StaticHint, VerifierConfig};
use armus_pl::analysis::{analyse_state, StaticVerdict};
use armus_pl::gen::{gen_program, ProgGenConfig};
use armus_pl::is_deadlocked;
use armus_pl::semantics::explore_stuck_states;
use armus_testkit::{
    canonical_scenarios, lower_program, replay_witness, seeds_from_env, shrink, write_repro,
    Failure, Repro, Scenario, SeededChooser, Sim,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Same bug-heavy knobs as the seeded differential tier, so a healthy
/// share of the corpus actually deadlocks and the `DefiniteDeadlock` /
/// `Unknown` branches get real coverage.
fn gen_config() -> ProgGenConfig {
    ProgGenConfig { missing_adv_prob: 0.8, missing_dereg_prob: 0.8, ..ProgGenConfig::default() }
}

fn scenario_for(seed: u64) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let program = gen_program(&mut rng, &gen_config());
    lower_program(&program).expect("generated programs always lower")
}

/// PL-side exploration budget for the ProvedSafe exhaustive leg. The
/// generated programs are small; when one exceeds the budget the leg is a
/// bounded spot-check and the seeded runtime legs still apply.
const EXPLORE_BUDGET: usize = 50_000;

/// Checks one scenario's verdict against the dynamic side, returning the
/// first soundness violation. Pure in `(scenario, seed)`, so `shrink`
/// can re-run it on candidates.
fn static_soundness_failure(scenario: &Scenario, seed: u64) -> Option<Failure> {
    let fail = |step: u64, message: String| {
        Some(Failure { config: "static-analysis".into(), step, message })
    };
    match analyse_state(&scenario.initial_pl_state()) {
        StaticVerdict::ProvedSafe => {
            // Leg 1: no reachable PL deadlock within the budget.
            let stuck = explore_stuck_states(scenario.initial_pl_state(), EXPLORE_BUDGET);
            if stuck.iter().any(is_deadlocked) {
                return fail(1, "ProvedSafe but the PL semantics reach a deadlock".into());
            }
            // Leg 2: a publish-only runtime run under the seed's schedule
            // never reports.
            let mut sim = Sim::new(scenario, VerifierConfig::publish_only());
            sim.run_to_end(&mut SeededChooser::new(seed));
            let _ = sim.verifier().check_now();
            if sim.verifier().found_deadlock() {
                return fail(2, "ProvedSafe but the runtime checker reported a deadlock".into());
            }
            // Leg 3: an avoidance verifier consuming the proof completes
            // the run without a single cycle check and refuses nobody.
            let cfg = VerifierConfig::avoidance().with_static_hint(StaticHint::ProvedSafe);
            let mut sim = Sim::new(scenario, cfg);
            sim.run_to_end(&mut SeededChooser::new(seed));
            if let Some(i) = (0..scenario.tasks.len()).find(|&i| sim.is_failed(i)) {
                return fail(3, format!("ProvedSafe but avoidance refused task t{i}"));
            }
            if sim.verifier().found_deadlock() {
                return fail(3, "ProvedSafe but the hinted avoidance run deadlocked".into());
            }
            let stats = sim.verifier().stats();
            if stats.checks != 0 || stats.fastpath_skips != 0 {
                return fail(
                    3,
                    format!(
                        "hint not consumed: {} checks, {} fastpath skips over {} blocks",
                        stats.checks, stats.fastpath_skips, stats.blocks
                    ),
                );
            }
            if stats.static_skips != stats.blocks {
                return fail(
                    3,
                    format!(
                        "skip accounting broken: {} static skips over {} blocks",
                        stats.static_skips, stats.blocks
                    ),
                );
            }
            None
        }
        StaticVerdict::DefiniteDeadlock { witness } => replay_witness(scenario, &witness)
            .err()
            .and_then(|e| fail(4, format!("DefiniteDeadlock witness failed to replay: {e}"))),
        StaticVerdict::Unknown { .. } => None,
    }
}

#[test]
fn canonical_scenarios_classify_as_pinned() {
    for (name, scenario) in canonical_scenarios() {
        let verdict = analyse_state(&scenario.initial_pl_state());
        match name {
            // Deadlocking shapes: a definite verdict whose witness replays.
            "crossed-wait" | "figure1-mini" | "ring-3" => {
                let StaticVerdict::DefiniteDeadlock { witness } = verdict else {
                    panic!("{name}: expected DefiniteDeadlock, got {verdict:?}");
                };
                replay_witness(&scenario, &witness)
                    .unwrap_or_else(|e| panic!("{name}: witness does not replay: {e}"));
            }
            // Safe shapes — including the missing-participant hang, which
            // is stuck but cycle-free, so deadlock-freedom still holds.
            "figure1-fixed" | "spmd-3" | "missing-participant" => {
                assert!(verdict.is_proved_safe(), "{name}: expected ProvedSafe, got {verdict:?}");
            }
            other => panic!("unclassified canonical scenario {other}"),
        }
    }
}

#[test]
fn corpus_soundness_tier() {
    let seeds = seeds_from_env();
    let (mut safe, mut definite, mut unknown) = (0usize, 0usize, 0usize);
    for &seed in &seeds {
        let scenario = scenario_for(seed);
        if let Some(failure) = static_soundness_failure(&scenario, seed) {
            let (shrunk, failure) =
                shrink(&scenario, failure, |candidate| static_soundness_failure(candidate, seed));
            let schedule_len = shrunk.total_ops() as u64;
            let repro = Repro { scenario: shrunk, failure, seed, schedule_len };
            panic!("static soundness tier failed\n{}", write_repro(&repro));
        }
        match analyse_state(&scenario.initial_pl_state()) {
            StaticVerdict::ProvedSafe => safe += 1,
            StaticVerdict::DefiniteDeadlock { .. } => definite += 1,
            StaticVerdict::Unknown { .. } => unknown += 1,
        }
    }
    eprintln!(
        "static corpus over {} seeds: {safe} proved safe, {definite} definite deadlocks, \
         {unknown} unknown",
        seeds.len()
    );
    // Precision guard: the tier is only meaningful while the analysis
    // keeps deciding a healthy share of the corpus in *both* directions.
    if seeds.len() >= 100 {
        assert!(
            safe * 10 >= seeds.len(),
            "only {safe}/{} proved safe — analysis precision regressed?",
            seeds.len()
        );
        assert!(
            definite * 10 >= seeds.len(),
            "only {definite}/{} definite deadlocks — witness search regressed?",
            seeds.len()
        );
    }
}
