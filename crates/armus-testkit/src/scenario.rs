//! The scenario DSL: a declarative description of a small barrier program
//! — phasers, tasks, initial memberships, and per-task op scripts — that
//! both sides of the differential oracle execute.
//!
//! The op set maps 1:1 onto the PL instructions of the paper's Figure 4
//! (`skip`/`adv`/`await`/`dereg`), so a scenario denotes simultaneously:
//!
//! * a **runtime program** the simulation harness drives through real
//!   `armus-sync` phasers (via the poll-based wait seam), and
//! * a **PL state** ([`Scenario::initial_pl_state`]) the `armus-pl`
//!   semantics steps through in lockstep.
//!
//! Scenario names are canonical (`t0, t1, …` / `p0, p1, …`), so index
//! arithmetic translates between the two worlds.

use armus_pl::{Instr, PhaserState, Seq, State};

/// Index of a phaser declared by a scenario.
pub type PhaserIx = usize;

/// One instruction of a task script, mapping 1:1 onto PL.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// PL `skip`: a local computation step.
    Skip,
    /// PL `adv(p)`: arrive at the next phase without waiting.
    Arrive(PhaserIx),
    /// PL `await(p)`: wait — at the task's current local phase — until
    /// every signalling member has arrived at it.
    Await(PhaserIx),
    /// PL `dereg(p)`: revoke membership.
    Dereg(PhaserIx),
}

/// One task of a scenario: its initial memberships (all at phase 0, as
/// after PL's registration prefix) and its straight-line script.
#[derive(Clone, Debug)]
pub struct TaskDef {
    /// Display name (canonical `t{i}` unless lowered from a PL program,
    /// which records the original PL name for readable failures).
    pub name: String,
    /// Phasers the task is initially a member of, at phase 0.
    pub members: Vec<PhaserIx>,
    /// The task's instruction script.
    pub script: Vec<Op>,
}

/// A scenario: `phasers` phasers and a fixed set of tasks.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Number of phasers (indexed `0..phasers`).
    pub phasers: usize,
    /// The tasks, indexed by position.
    pub tasks: Vec<TaskDef>,
}

impl Scenario {
    /// An empty scenario over `phasers` phasers.
    pub fn new(phasers: usize) -> Scenario {
        Scenario { phasers, tasks: Vec::new() }
    }

    /// Adds a task with the given initial memberships and script,
    /// returning the scenario for chaining. Panics on an out-of-range
    /// phaser index or a script op referencing a phaser the task never
    /// joins (the static premise the simulation relies on).
    pub fn task(mut self, members: &[PhaserIx], script: Vec<Op>) -> Scenario {
        let name = format!("t{}", self.tasks.len());
        self.push_task(name, members.to_vec(), script);
        self
    }

    /// Named-task form of [`Scenario::task`], used by the PL lowering.
    pub fn push_task(&mut self, name: String, members: Vec<PhaserIx>, script: Vec<Op>) {
        for &p in &members {
            assert!(p < self.phasers, "membership references phaser {p} of {}", self.phasers);
        }
        // Static validity: every Arrive/Await/Dereg targets a phaser the
        // task is a member of at that point of its straight-line script
        // (membership only changes through the task's own Dereg).
        let mut member: Vec<bool> = (0..self.phasers).map(|p| members.contains(&p)).collect();
        for op in &script {
            match *op {
                Op::Skip => {}
                Op::Arrive(p) | Op::Await(p) => {
                    assert!(member[p], "{name}: op {op:?} on phaser p{p} without membership");
                }
                Op::Dereg(p) => {
                    assert!(member[p], "{name}: dereg of p{p} without membership");
                    member[p] = false;
                }
            }
        }
        self.tasks.push(TaskDef { name, members, script });
    }

    /// Total ops across every script (the maximum number of PL-visible
    /// steps a run can take).
    pub fn total_ops(&self) -> usize {
        self.tasks.iter().map(|t| t.script.len()).sum()
    }

    /// Canonical name of task `i`.
    pub fn task_name(i: usize) -> String {
        format!("t{i}")
    }

    /// Canonical name of phaser `p`.
    pub fn phaser_name(p: usize) -> String {
        format!("p{p}")
    }

    /// The PL state this scenario denotes: tasks `t{i}` holding their
    /// scripts as instruction sequences, phasers `p{j}` with the declared
    /// members at phase 0 — the state reached after a PL program's
    /// registration prefix.
    pub fn initial_pl_state(&self) -> State {
        let mut st = State::initial(vec![]);
        st.tasks.clear();
        for p in 0..self.phasers {
            let mut ph = PhaserState::default();
            for (i, task) in self.tasks.iter().enumerate() {
                if task.members.contains(&p) {
                    ph.0.insert(Self::task_name(i), 0);
                }
            }
            st.phasers.insert(Self::phaser_name(p), ph);
        }
        for (i, task) in self.tasks.iter().enumerate() {
            let seq: Seq = task.script.iter().map(|op| op_to_instr(*op)).collect();
            st.tasks.insert(Self::task_name(i), seq);
        }
        st
    }
}

/// The PL instruction an op denotes.
pub fn op_to_instr(op: Op) -> Instr {
    match op {
        Op::Skip => Instr::Skip,
        Op::Arrive(p) => Instr::Adv(Scenario::phaser_name(p)),
        Op::Await(p) => Instr::Await(Scenario::phaser_name(p)),
        Op::Dereg(p) => Instr::Dereg(Scenario::phaser_name(p)),
    }
}

/// Canonical small scenarios for the bounded-exhaustive tier: each stays
/// within 4 tasks and 3 resources, with scripts short enough that *every*
/// interleaving fits the exploration budget.
pub fn canonical_scenarios() -> Vec<(&'static str, Scenario)> {
    use Op::*;
    vec![
        (
            // Two tasks, crossed waits over two phasers — the minimal
            // 2-resource deadlock (and the shape the planted fast-path
            // mutation hides).
            "crossed-wait",
            Scenario::new(2)
                .task(&[0, 1], vec![Arrive(0), Await(0)])
                .task(&[0, 1], vec![Arrive(1), Await(1)]),
        ),
        (
            // Figure 1 in miniature: one worker steps pc while the driver
            // joins on pb without ever advancing pc.
            "figure1-mini",
            Scenario::new(2)
                .task(&[0, 1], vec![Arrive(0), Await(0), Dereg(0), Dereg(1)])
                .task(&[0, 1], vec![Arrive(1), Await(1)]),
        ),
        (
            // The fixed variant: the driver drops pc first — deadlock-free
            // under every interleaving.
            "figure1-fixed",
            Scenario::new(2)
                .task(&[0, 1], vec![Arrive(0), Await(0), Dereg(0), Dereg(1)])
                .task(&[0, 1], vec![Dereg(0), Arrive(1), Await(1)]),
        ),
        (
            // Three tasks on one barrier: the SPMD shape the avoidance
            // fast path answers without ever taking the engine lock.
            "spmd-3",
            Scenario::new(1)
                .task(&[0], vec![Arrive(0), Await(0)])
                .task(&[0], vec![Arrive(0), Await(0)])
                .task(&[0], vec![Arrive(0), Await(0)]),
        ),
        (
            // A missing participant: t1 terminates registered and without
            // arriving — t0 hangs, but on a *non-cycle*: stuck yet not
            // deadlocked, so no side may report.
            "missing-participant",
            Scenario::new(1).task(&[0], vec![Arrive(0), Await(0)]).task(&[0], vec![Skip]),
        ),
        (
            // A 3-cycle across 3 phasers: each task arrives on its own
            // phaser and waits on it while lagging on its neighbour's.
            "ring-3",
            Scenario::new(3)
                .task(&[0, 1], vec![Arrive(0), Await(0)])
                .task(&[1, 2], vec![Arrive(1), Await(1)])
                .task(&[2, 0], vec![Arrive(2), Await(2)]),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use armus_pl::deadlock::is_deadlocked;
    use armus_pl::semantics::explore_stuck_states;

    #[test]
    fn canonical_scenarios_denote_the_expected_pl_behaviour() {
        for (name, scenario) in canonical_scenarios() {
            let stuck = explore_stuck_states(scenario.initial_pl_state(), 500_000);
            let any_deadlock = stuck.iter().any(is_deadlocked);
            match name {
                "crossed-wait" | "figure1-mini" | "ring-3" => {
                    assert!(any_deadlock, "{name}: must reach a deadlock on some schedule")
                }
                "figure1-fixed" | "spmd-3" => {
                    assert!(stuck.is_empty(), "{name}: must be stuck-free: {stuck:?}")
                }
                "missing-participant" => {
                    assert!(!stuck.is_empty(), "{name}: must hang");
                    assert!(!any_deadlock, "{name}: the hang is not a cycle")
                }
                other => panic!("unclassified canonical scenario {other}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "without membership")]
    fn scripts_must_respect_membership() {
        let _ = Scenario::new(1).task(&[], vec![Op::Arrive(0)]);
    }
}
