//! Schedule choosers: how the virtual-time scheduler picks among enabled
//! steps. Seeded-random for the statistical tier, scripted replay for
//! repros and shrinking, and a depth-first enumerator for the
//! bounded-exhaustive tier (classic stateless model checking: each
//! schedule re-executes the scenario from scratch along a recorded choice
//! prefix).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Picks one of `options` enabled steps (indices `0..options`); called
/// once per scheduling round with `options ≥ 1`.
pub trait Chooser {
    /// The chosen index.
    fn choose(&mut self, options: usize) -> usize;
}

/// Uniform seeded-random chooser: the statistical tier's scheduler. Same
/// seed ⇒ same schedule, which is the whole repro story.
pub struct SeededChooser {
    rng: SmallRng,
}

impl SeededChooser {
    /// A chooser from a 64-bit seed.
    pub fn new(seed: u64) -> SeededChooser {
        SeededChooser { rng: SmallRng::seed_from_u64(seed) }
    }
}

impl Chooser for SeededChooser {
    fn choose(&mut self, options: usize) -> usize {
        self.rng.gen_range(0..options)
    }
}

/// Follows a scripted choice prefix, then defaults to the first option;
/// records what it actually took and how many options each round offered.
/// This is both the replay chooser (script = a recorded schedule) and the
/// exhaustive enumerator's probe.
pub struct ScriptedChooser {
    script: Vec<usize>,
    at: usize,
    /// The choice actually taken each round (script clamped to range).
    pub taken: Vec<usize>,
    /// The number of options offered each round.
    pub offered: Vec<usize>,
}

impl ScriptedChooser {
    /// A chooser that follows `script` and then picks index 0.
    pub fn new(script: Vec<usize>) -> ScriptedChooser {
        ScriptedChooser { script, at: 0, taken: Vec::new(), offered: Vec::new() }
    }
}

impl Chooser for ScriptedChooser {
    fn choose(&mut self, options: usize) -> usize {
        let raw = self.script.get(self.at).copied().unwrap_or(0);
        self.at += 1;
        let pick = raw.min(options - 1);
        self.taken.push(pick);
        self.offered.push(options);
        pick
    }
}

/// Records the schedule an inner chooser produces (for printing a failing
/// run's schedule in repros).
pub struct RecordingChooser<C> {
    inner: C,
    /// The recorded schedule.
    pub taken: Vec<usize>,
}

impl<C> RecordingChooser<C> {
    /// Wraps `inner`.
    pub fn new(inner: C) -> RecordingChooser<C> {
        RecordingChooser { inner, taken: Vec::new() }
    }
}

impl<C: Chooser> Chooser for RecordingChooser<C> {
    fn choose(&mut self, options: usize) -> usize {
        let pick = self.inner.choose(options);
        self.taken.push(pick);
        pick
    }
}

/// Outcome of a bounded-exhaustive exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exploration {
    /// Schedules executed.
    pub schedules: usize,
    /// Whether the whole tree was covered (false: the budget ran out).
    pub complete: bool,
}

/// Depth-first enumeration of *every* schedule of a deterministic
/// `run`: each call re-executes the scenario under a [`ScriptedChooser`]
/// whose prefix encodes the path; backtracking increments the deepest
/// choice with unexplored siblings. `run` may return early (e.g. on a
/// detected failure) — exploration stops at the first `Err`.
pub fn explore_all<E>(
    mut run: impl FnMut(&mut ScriptedChooser) -> Result<(), E>,
    budget: usize,
) -> Result<Exploration, E> {
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let mut chooser = ScriptedChooser::new(prefix.clone());
        run(&mut chooser)?;
        schedules += 1;
        // Backtrack: the deepest round with an unexplored sibling.
        let (taken, offered) = (chooser.taken, chooser.offered);
        let Some(depth) = (0..taken.len()).rev().find(|&i| taken[i] + 1 < offered[i]) else {
            return Ok(Exploration { schedules, complete: true });
        };
        if schedules >= budget {
            return Ok(Exploration { schedules, complete: false });
        }
        prefix = taken[..depth].to_vec();
        prefix.push(taken[depth] + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_chooser_is_deterministic() {
        let picks = |seed| {
            let mut ch = SeededChooser::new(seed);
            (0..32).map(|i| ch.choose(2 + i % 5)).collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    fn explore_all_enumerates_the_full_tree() {
        // A synthetic 3-round tree with branching 2×3×2 = 12 schedules.
        let mut seen = std::collections::HashSet::new();
        let out = explore_all::<()>(
            |ch| {
                let a = ch.choose(2);
                let b = ch.choose(3);
                let c = ch.choose(2);
                assert!(seen.insert((a, b, c)), "schedule repeated");
                Ok(())
            },
            1000,
        )
        .unwrap();
        assert_eq!(out, Exploration { schedules: 12, complete: true });
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn explore_all_respects_the_budget() {
        let out = explore_all::<()>(
            |ch| {
                for _ in 0..4 {
                    ch.choose(3);
                }
                Ok(())
            },
            10,
        )
        .unwrap();
        assert_eq!(out.schedules, 10);
        assert!(!out.complete);
    }

    #[test]
    fn explore_all_stops_on_error() {
        let mut runs = 0;
        let out = explore_all(
            |ch| {
                runs += 1;
                if ch.choose(2) == 1 {
                    return Err("boom");
                }
                ch.choose(2);
                Ok(())
            },
            1000,
        );
        assert_eq!(out, Err("boom"));
        assert!(runs >= 2);
    }
}
