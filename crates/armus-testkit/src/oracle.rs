//! The differential oracle: runs a scenario under the run-time
//! [`Verifier`] (avoidance and detection, fast path on and off) and in
//! lockstep through the `armus-pl` semantics, and cross-checks the two on
//! every step:
//!
//! * **alignment** — every completed runtime op must be an enabled PL
//!   transition (and a park must correspond to a disabled `await`);
//! * **soundness** — every report the verifier produces must name a real
//!   cycle in the replayed PL state (witness validated against the WFG/SG
//!   of the state, via [`armus_pl::analyse`] and a direct snapshot
//!   reconstruction);
//! * **completeness** — once every member of a PL-deadlocked task set has
//!   published its blocked status, detection must have reported it, and
//!   avoidance must never have admitted the closing block at all;
//! * **model agreement** — the coinductive Definition-3.2 oracle and the
//!   canonical graph checker must agree with each other (Thms 4.10/4.15)
//!   and with the verifier's verdict at quiescence;
//! * **incremental-detection lockstep** — a follower
//!   [`IncrementalEngine`] is synced against the verifier's registry on
//!   *every* step of every config, and its Pearce–Kelly order answer
//!   (`check_full`), the naive full-scan baseline (`check_full_scan`),
//!   and the canonical from-scratch checker must produce byte-identical
//!   reports in every graph model, with the maintained orders validating
//!   against the distinct-edge lists.
//!
//! Any violation surfaces as a [`Failure`] naming the config, the virtual
//! time, and the broken invariant — the shrinker then minimises the
//! scenario and prints a replayable one-liner.

use std::collections::HashMap;

use armus_core::{
    checker, sg, wfg, BlockedInfo, CycleWitness, DeadlockReport, IncrementalEngine, ModelChoice,
    Registration, Resource, Snapshot, TaskId, VerifierConfig, DEFAULT_SG_THRESHOLD,
};
use armus_pl::{analyse, apply, enabled, Instr, Rule, State, StateVerdict, Transition};

use crate::scenario::{Op, Scenario};
use crate::sched::Chooser;
use crate::sim::{Sim, SimEvent, SimOutcome, WaitApi};

/// How the oracle drives a verifier configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleMode {
    /// Inline pre-block checks; would-deadlock verdicts are refusals.
    Avoidance,
    /// Publish-only blocks; the oracle samples [`armus_core::Verifier::
    /// check_now`] itself — the detection monitor's body, driven on the
    /// virtual clock instead of a wall-clock period. `check_every_step`
    /// false samples only at quiescence, building journal backlog (with a
    /// tiny journal window that deterministically exercises the
    /// `Behind`/full-resync branch).
    Sampling {
        /// Sample after every step (true) or only at quiescence (false).
        check_every_step: bool,
    },
}

/// One verifier configuration under differential test.
pub struct OracleConfig {
    /// Display name (stable; used in repro lines).
    pub name: &'static str,
    /// The verifier configuration.
    pub verifier: VerifierConfig,
    /// How the oracle drives it.
    pub mode: OracleMode,
}

/// The configurations every scenario is checked under: avoidance with the
/// resource-cardinality fast path on and off, and detection-style
/// sampling with default and adversarial (tiny-journal, single-shard,
/// low parallel-threshold) tuning.
pub fn oracle_configs() -> Vec<OracleConfig> {
    vec![
        OracleConfig {
            name: "avoidance",
            verifier: VerifierConfig::avoidance(),
            mode: OracleMode::Avoidance,
        },
        OracleConfig {
            name: "avoidance-nofastpath",
            verifier: VerifierConfig::avoidance().with_fastpath(false),
            mode: OracleMode::Avoidance,
        },
        OracleConfig {
            name: "detection",
            verifier: VerifierConfig::publish_only(),
            mode: OracleMode::Sampling { check_every_step: true },
        },
        OracleConfig {
            name: "detection-tiny-journal",
            verifier: VerifierConfig::publish_only()
                .with_journal_capacity(2)
                .with_shards(1)
                .with_par_threshold(2),
            mode: OracleMode::Sampling { check_every_step: false },
        },
    ]
}

/// A broken invariant: which config, when (virtual time), and what.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The [`OracleConfig::name`] under which the invariant broke.
    pub config: String,
    /// Virtual time (steps executed) at the violation.
    pub step: u64,
    /// The broken invariant.
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} @ step {}] {}", self.config, self.step, self.message)
    }
}

/// Runs `scenario` under every oracle configuration, driving each with a
/// chooser from `make_chooser` (same seed ⇒ same schedule per config).
pub fn run_all(
    scenario: &Scenario,
    mut make_chooser: impl FnMut(&OracleConfig) -> Box<dyn Chooser>,
) -> Result<(), Failure> {
    for oc in oracle_configs() {
        run_config(scenario, &oc, make_chooser(&oc).as_mut())?;
    }
    Ok(())
}

/// Seeded form of [`run_all`]: every config replays the schedule stream
/// of `seed`.
pub fn run_seeded(scenario: &Scenario, seed: u64) -> Result<(), Failure> {
    run_all(scenario, |_| Box::new(crate::sched::SeededChooser::new(seed)))
}

/// [`run_seeded`] with blocking driven through the chosen front-end: the
/// full differential oracle holds verbatim over the async `Await` futures.
pub fn run_seeded_with_api(scenario: &Scenario, seed: u64, api: WaitApi) -> Result<(), Failure> {
    for oc in oracle_configs() {
        run_config_with_api(scenario, &oc, &mut crate::sched::SeededChooser::new(seed), api)?;
    }
    Ok(())
}

/// Runs one configuration to quiescence under `chooser`, checking every
/// differential invariant along the way.
pub fn run_config(
    scenario: &Scenario,
    oc: &OracleConfig,
    chooser: &mut dyn Chooser,
) -> Result<(), Failure> {
    run_config_with_api(scenario, oc, chooser, WaitApi::Seam)
}

/// [`run_config`] with blocking driven through the chosen front-end.
pub fn run_config_with_api(
    scenario: &Scenario,
    oc: &OracleConfig,
    chooser: &mut dyn Chooser,
    api: WaitApi,
) -> Result<(), Failure> {
    let mut pl = scenario.initial_pl_state();
    let mut sim = Sim::new_with_api(scenario, oc.verifier, api);
    let task_index: HashMap<TaskId, usize> =
        (0..scenario.tasks.len()).map(|i| (sim.task_id(i), i)).collect();
    // The incremental-detection follower: synced against the verifier's
    // registry on every step (under the tiny-journal config it falls
    // Behind and resyncs, exercising the order-rebuild path in lockstep),
    // without touching the verifier's own engine, lock, or stats.
    let mut follower = IncrementalEngine::new();

    loop {
        let options = sim.options();
        if options.is_empty() {
            break;
        }
        let pick = chooser.choose(options.len());
        let event = sim.step(options[pick]);
        let clock = sim.clock;
        let fail =
            move |message: String| Failure { config: oc.name.to_string(), step: clock, message };

        match &event {
            SimEvent::Completed(i, op) => {
                let transition = Transition { task: Scenario::task_name(*i), rule: rule_of(*op) };
                if !enabled(&pl).contains(&transition) {
                    return Err(fail(format!(
                        "alignment: sim completed {op:?} for t{i} but PL rule {:?} is not enabled",
                        transition.rule
                    )));
                }
                pl = apply(&pl, &transition);
            }
            SimEvent::BlockedAt(i, _) => {
                let sync = Transition { task: Scenario::task_name(*i), rule: Rule::Sync };
                if enabled(&pl).contains(&sync) {
                    return Err(fail(format!(
                        "alignment: t{i} parked but its PL await condition holds"
                    )));
                }
            }
            SimEvent::Refused { task: i, phaser: p, report, initiated } => {
                if oc.mode != OracleMode::Avoidance {
                    return Err(fail(format!("a non-avoidance verifier refused t{i}'s block")));
                }
                if !report.tasks.contains(&sim.task_id(*i)) {
                    return Err(fail(format!(
                        "refusal report for t{i} does not name the task: {report}"
                    )));
                }
                if *initiated {
                    // This very block closed the cycle: the replayed state
                    // must be deadlocked, through this task, and the
                    // witness must be a real cycle in it.
                    let verdict = check_model(&pl, &fail)?;
                    let in_cycle = verdict
                        .deadlocked_tasks
                        .as_ref()
                        .map(|set| set.contains(&Scenario::task_name(*i)))
                        .unwrap_or(false);
                    if !in_cycle {
                        return Err(fail(format!(
                            "t{i}'s block was refused but the model does not place it in \
                             any deadlock: {report}"
                        )));
                    }
                    validate_report(report, &snapshot_of(&pl, &sim, scenario)).map_err(|e| {
                        fail(format!("refusal report is not a real cycle: {e}: {report}"))
                    })?;
                } else {
                    // Interrupt delivered to a parked victim: the report
                    // is historical — the initiating refusal already broke
                    // the cycle (and was validated then). Require the
                    // initiator to exist.
                    let another_failed =
                        (0..scenario.tasks.len()).any(|j| j != *i && sim.is_failed(j));
                    if !another_failed {
                        return Err(fail(format!(
                            "t{i} was interrupted without any preceding refusal: {report}"
                        )));
                    }
                }
                mirror_refusal(&mut pl, *i, *p);
            }
        }

        // Per-step verdict invariants. Mode-specific ordering: avoidance
        // checks its completeness invariant before the lockstep (a planted
        // fast-path bug must surface as "admitted a deadlock"); sampling
        // locksteps first so an incremental-detection bug is pinned to the
        // diverging check rather than to a missed sample downstream.
        match oc.mode {
            OracleMode::Avoidance => {
                let verdict = check_model(&pl, &fail)?;
                if let Some(set) = &verdict.deadlocked_tasks {
                    let all_published = set
                        .iter()
                        .all(|name| parse_task(name).map(|ix| sim.is_blocked(ix)).unwrap_or(false));
                    if all_published {
                        return Err(fail(format!(
                            "avoidance admitted a deadlock: every member of {set:?} is \
                             parked with a published status and no verdict was raised"
                        )));
                    }
                }
                lockstep(&mut follower, &sim, &fail)?;
            }
            OracleMode::Sampling { check_every_step } => {
                lockstep(&mut follower, &sim, &fail)?;
                if check_every_step {
                    sample(&pl, &sim, scenario, &task_index, &fail)?;
                }
            }
        }
    }

    {
        let clock = sim.clock;
        let fail =
            move |message: String| Failure { config: oc.name.to_string(), step: clock, message };
        lockstep(&mut follower, &sim, &fail)?;
    }
    quiesce_checks(scenario, &pl, &sim, &task_index, oc)
}

/// Per-step cross-check of the incremental detection path: syncs the
/// follower engine with the verifier's registry, then requires the
/// Pearce–Kelly order answer (`check_full`), the naive full-scan baseline
/// (`check_full_scan`), and the canonical from-scratch checker to deliver
/// byte-identical reports in every graph model. The maintained orders
/// must also validate against the engine's distinct-edge lists.
fn lockstep(
    follower: &mut IncrementalEngine,
    sim: &Sim,
    fail: &impl Fn(String) -> Failure,
) -> Result<(), Failure> {
    sim.verifier().sync_follower(follower);
    let snap = sim.verifier().local_snapshot();
    let as_json = |r: &Option<DeadlockReport>| serde_json::to_string(r).expect("reports serialise");
    for choice in [ModelChoice::Auto, ModelChoice::FixedWfg, ModelChoice::FixedSg] {
        let order = follower.check_full(choice, DEFAULT_SG_THRESHOLD).report;
        let scan = follower.check_full_scan(choice, DEFAULT_SG_THRESHOLD).report;
        let oracle = checker::check(&snap, choice, DEFAULT_SG_THRESHOLD).report;
        if as_json(&order) != as_json(&scan) || as_json(&order) != as_json(&oracle) {
            return Err(fail(format!(
                "incremental check_full diverged under {choice:?}: \
                 order-maintenance={order:?} vs full-scan={scan:?} vs oracle={oracle:?}"
            )));
        }
    }
    follower
        .order_invariants()
        .map_err(|e| fail(format!("maintained topological order broke its invariant: {e}")))
}

/// The PL rule a completed op corresponds to.
fn rule_of(op: Op) -> Rule {
    match op {
        Op::Skip => Rule::Skip,
        Op::Arrive(_) => Rule::Adv,
        Op::Await(_) => Rule::Sync,
        Op::Dereg(_) => Rule::Dereg,
    }
}

/// Analyses the PL state, failing if the coinductive oracle and the
/// canonical checker disagree with *each other* (Thms 4.10/4.15).
fn check_model(pl: &State, fail: &impl Fn(String) -> Failure) -> Result<StateVerdict, Failure> {
    let verdict = analyse(pl);
    if !verdict.internally_consistent() {
        return Err(fail(format!(
            "model inconsistency: coinductive oracle says deadlocked={} but the canonical \
             checker says report={:?}",
            verdict.deadlocked(),
            verdict.report.as_ref().map(|r| r.to_string()),
        )));
    }
    Ok(verdict)
}

/// One detection sample: runs `check_now`, then checks report soundness
/// and (publication-conditional) completeness against the PL model.
fn sample(
    pl: &State,
    sim: &Sim,
    scenario: &Scenario,
    task_index: &HashMap<TaskId, usize>,
    fail: &impl Fn(String) -> Failure,
) -> Result<(), Failure> {
    let fresh = sim.verifier().check_now();
    let verdict = check_model(pl, fail)?;
    if let Some(report) = &fresh {
        let Some(set) = &verdict.deadlocked_tasks else {
            return Err(fail(format!("spurious detection report: {report}")));
        };
        for tid in &report.tasks {
            let Some(&ix) = task_index.get(tid) else {
                return Err(fail(format!("report names unknown task {tid}: {report}")));
            };
            if !set.contains(&Scenario::task_name(ix)) {
                return Err(fail(format!(
                    "report names t{ix}, which the model says is not deadlocked: {report}"
                )));
            }
        }
        validate_report(report, &snapshot_of(pl, sim, scenario))
            .map_err(|e| fail(format!("detection report is not a real cycle: {e}: {report}")))?;
    }
    if let Some(set) = &verdict.deadlocked_tasks {
        let all_published = set.iter().all(|name| {
            parse_task(name)
                .map(|ix| sim.verifier().blocked_info(sim.task_id(ix)).is_some())
                .unwrap_or(false)
        });
        if all_published && !sim.verifier().found_deadlock() {
            return Err(fail(format!(
                "detection missed a deadlock: every member of {set:?} published its \
                 blocked status but check_now found nothing"
            )));
        }
    }
    Ok(())
}

/// End-of-run invariants: final alignment, outcome agreement, snapshot
/// equivalence, and the mode's verdict-level guarantee.
fn quiesce_checks(
    scenario: &Scenario,
    pl: &State,
    sim: &Sim,
    task_index: &HashMap<TaskId, usize>,
    oc: &OracleConfig,
) -> Result<(), Failure> {
    let clock = sim.clock;
    let fail = move |message: String| Failure { config: oc.name.to_string(), step: clock, message };
    if !enabled(pl).is_empty() {
        return Err(fail(format!(
            "alignment: sim quiesced but PL still has enabled transitions: {:?}",
            enabled(pl)
        )));
    }
    let stuck = sim.outcome() == SimOutcome::Stuck;
    if stuck == pl.all_finished() {
        return Err(fail(format!(
            "outcome mismatch: sim {:?} vs PL all_finished={}",
            sim.outcome(),
            pl.all_finished()
        )));
    }
    match oc.mode {
        OracleMode::Avoidance => {
            let verdict = check_model(pl, &fail)?;
            if verdict.deadlocked() {
                return Err(fail(format!(
                    "avoidance ended in a deadlocked state: {:?}",
                    verdict.deadlocked_tasks
                )));
            }
            // Nothing cyclic may be left sitting in the registry either.
            let snap = sim.verifier().local_snapshot();
            if let Some(report) =
                checker::check(&snap, ModelChoice::Auto, DEFAULT_SG_THRESHOLD).report
            {
                return Err(fail(format!(
                    "avoidance left an unreported cycle in the registry: {report}"
                )));
            }
            // Every avoidance block is answered exactly once: by an engine
            // check, by the cardinality fast path, or by a static-hint skip.
            let stats = sim.verifier().stats();
            if stats.checks + stats.fastpath_skips + stats.static_skips != stats.blocks {
                return Err(fail(format!(
                    "avoidance accounting broke: checks {} + fastpath skips {} + static skips \
                     {} != blocks {}",
                    stats.checks, stats.fastpath_skips, stats.static_skips, stats.blocks
                )));
            }
        }
        OracleMode::Sampling { .. } => {
            sample(pl, sim, scenario, task_index, &fail)?;
            let verdict = check_model(pl, &fail)?;
            if sim.verifier().found_deadlock() != verdict.deadlocked() {
                return Err(fail(format!(
                    "final verdict mismatch: verifier found_deadlock={} vs model \
                     deadlocked={}",
                    sim.verifier().found_deadlock(),
                    verdict.deadlocked()
                )));
            }
            // At quiescence every parked task has published, so the
            // registry must be *exactly* the ϕ-image of the PL state.
            let derived = normalize(&snapshot_of(pl, sim, scenario));
            let actual = normalize(&sim.verifier().local_snapshot());
            if derived != actual {
                return Err(fail(format!(
                    "registry diverged from ϕ(PL state): derived {derived:?} vs actual \
                     {actual:?}"
                )));
            }
        }
    }
    Ok(())
}

/// Mirrors an avoidance refusal into the PL state: the runtime
/// deregistered the task from the awaited phaser and the task abandoned
/// its script — in PL terms, drop the membership and run the task to
/// `end`.
fn mirror_refusal(pl: &mut State, i: usize, p: usize) {
    let task = Scenario::task_name(i);
    pl.phasers
        .get_mut(&Scenario::phaser_name(p))
        .expect("refused wait targets a scenario phaser")
        .dereg(&task)
        .expect("refused task was a member of its awaited phaser");
    pl.tasks.insert(task, Vec::new());
}

/// Reconstructs the resource-dependency snapshot of the PL state using
/// the *runtime's* task and phaser ids (the `ϕ` of Definition 4.1, keyed
/// for direct comparison with `Verifier::local_snapshot`).
pub fn snapshot_of(pl: &State, sim: &Sim, scenario: &Scenario) -> Snapshot {
    let mut tasks = Vec::new();
    for i in 0..scenario.tasks.len() {
        let name = Scenario::task_name(i);
        let Some(seq) = pl.tasks.get(&name) else { continue };
        let Some(Instr::Await(p)) = seq.first() else { continue };
        let Some(ph) = pl.phasers.get(p) else { continue };
        let Some(n) = ph.phase_of(&name) else { continue };
        let p_ix = parse_phaser(p).expect("scenario PL states use canonical phaser names");
        let waits = vec![Resource::new(sim.phaser_id(p_ix), n)];
        let mut registered = Vec::new();
        for (q, qph) in &pl.phasers {
            if let Some(m) = qph.phase_of(&name) {
                let q_ix = parse_phaser(q).expect("canonical phaser names");
                registered.push(Registration::new(sim.phaser_id(q_ix), m));
            }
        }
        tasks.push(BlockedInfo::new(sim.task_id(i), waits, registered));
    }
    Snapshot::from_tasks(tasks)
}

/// Is the report's witness a real cycle in the given snapshot's graph?
fn validate_report(report: &DeadlockReport, snap: &Snapshot) -> Result<(), String> {
    match &report.witness {
        CycleWitness::Tasks(cycle) => {
            if !wfg::wfg(snap).is_cycle(cycle) {
                return Err(format!("task witness {cycle:?} is not a WFG cycle"));
            }
        }
        CycleWitness::Resources(cycle) => {
            if !sg::sg(snap).is_cycle(cycle) {
                return Err(format!("resource witness {cycle:?} is not an SG cycle"));
            }
        }
    }
    Ok(())
}

/// Canonical comparable form of a snapshot: epochs zeroed (the registry
/// stamps them; the PL reconstruction cannot) and registration order
/// normalised.
fn normalize(snap: &Snapshot) -> Vec<BlockedInfo> {
    let mut tasks = snap.tasks.clone();
    for info in &mut tasks {
        info.epoch = 0;
        info.waits.sort();
        info.registered.sort_by_key(|r| (r.phaser, r.local_phase));
    }
    tasks
}

/// Task index of a canonical `t{i}` name.
fn parse_task(name: &str) -> Option<usize> {
    name.strip_prefix('t').and_then(|s| s.parse().ok())
}

/// Phaser index of a canonical `p{i}` name.
fn parse_phaser(name: &str) -> Option<usize> {
    name.strip_prefix('p').and_then(|s| s.parse().ok())
}

// Asserts the correct verifier's behaviour — fails by design under the
// planted `verifier-mutation` bug (see tests/mutation.rs).
#[cfg(all(test, not(feature = "verifier-mutation")))]
mod tests {
    use super::*;
    use crate::scenario::canonical_scenarios;

    #[test]
    fn every_canonical_scenario_passes_every_config_on_a_few_seeds() {
        for (name, scenario) in canonical_scenarios() {
            for seed in 0..16 {
                if let Err(f) = run_seeded(&scenario, seed) {
                    panic!("{name} seed {seed}: {f}");
                }
            }
        }
    }

    #[test]
    fn detection_reports_exactly_the_deadlocking_scenarios() {
        // run_config asserts verifier ⟺ model agreement; this test pins
        // the *expected* verdict per canonical scenario on top.
        for (name, scenario) in canonical_scenarios() {
            let oc = &oracle_configs()[2]; // "detection"
            assert_eq!(oc.name, "detection");
            run_config(&scenario, oc, &mut crate::sched::SeededChooser::new(9))
                .unwrap_or_else(|f| panic!("{name}: {f}"));
            let deadlocks = matches!(name, "crossed-wait" | "figure1-mini" | "ring-3");
            let mut sim = Sim::new(&scenario, oc.verifier);
            sim.run_to_end(&mut crate::sched::SeededChooser::new(9));
            let _ = sim.verifier().check_now();
            assert_eq!(
                sim.verifier().found_deadlock(),
                deadlocks,
                "{name}: expected deadlocks={deadlocks}"
            );
        }
    }
}
