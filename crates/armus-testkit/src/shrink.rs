//! Failure minimisation: given a scenario whose differential run fails,
//! greedily remove tasks and ops while the failure persists, then record
//! the shrunk run's schedule and print a replayable one-liner.
//!
//! Removals never invalidate a scenario: membership is only ever revoked
//! by a task's *own* `Dereg`, so deleting ops or whole tasks leaves every
//! remaining op's premise intact.

use crate::scenario::{Scenario, TaskDef};

/// A minimised failing run, ready to be printed as a repro.
pub struct Repro {
    /// The shrunk scenario.
    pub scenario: Scenario,
    /// The failure it still produces.
    pub failure: crate::oracle::Failure,
    /// The seed that drives the failing schedule.
    pub seed: u64,
    /// Steps the failing run takes under the seed (its schedule length).
    pub schedule_len: u64,
}

impl std::fmt::Display for Repro {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "differential failure: {}", self.failure)?;
        writeln!(f, "schedule length: {} steps", self.schedule_len)?;
        writeln!(f, "shrunk scenario ({} phasers):", self.scenario.phasers)?;
        for (i, t) in self.scenario.tasks.iter().enumerate() {
            writeln!(f, "  t{i} ({}) members {:?}: {:?}", t.name, t.members, t.script)?;
        }
        write!(
            f,
            "replay: ARMUS_TESTKIT_SEED={} cargo test -p armus-testkit seeded -- --nocapture",
            self.seed
        )
    }
}

/// Greedily shrinks `scenario` while `check` keeps failing. `check`
/// returns the failure a candidate still produces, or `None` when the
/// candidate passes (candidate rejected). Returns the minimal scenario
/// and its failure.
pub fn shrink(
    scenario: &Scenario,
    failure: crate::oracle::Failure,
    mut check: impl FnMut(&Scenario) -> Option<crate::oracle::Failure>,
) -> (Scenario, crate::oracle::Failure) {
    let mut best = scenario.clone();
    let mut best_failure = failure;
    loop {
        let mut improved = false;
        // Try dropping a whole task.
        for i in 0..best.tasks.len() {
            let mut candidate = best.clone();
            candidate.tasks.remove(i);
            if let Some(f) = check(&candidate) {
                best = candidate;
                best_failure = f;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        // Try dropping a single op.
        'ops: for i in 0..best.tasks.len() {
            for j in 0..best.tasks[i].script.len() {
                let mut candidate = best.clone();
                candidate.tasks[i].script.remove(j);
                if let Some(f) = check(&candidate) {
                    best = candidate;
                    best_failure = f;
                    improved = true;
                    break 'ops;
                }
            }
        }
        // Try dropping an unused membership (shrinks the printed repro).
        if !improved {
            'members: for i in 0..best.tasks.len() {
                let TaskDef { members, script, .. } = &best.tasks[i];
                for (k, &p) in members.iter().enumerate() {
                    let referenced = script.iter().any(|op| match *op {
                        crate::scenario::Op::Skip => false,
                        crate::scenario::Op::Arrive(q)
                        | crate::scenario::Op::Await(q)
                        | crate::scenario::Op::Dereg(q) => q == p,
                    });
                    if referenced {
                        continue;
                    }
                    let mut candidate = best.clone();
                    candidate.tasks[i].members.remove(k);
                    if let Some(f) = check(&candidate) {
                        best = candidate;
                        best_failure = f;
                        improved = true;
                        break 'members;
                    }
                }
            }
        }
        if !improved {
            return (best, best_failure);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Failure;
    use crate::scenario::Op::*;

    #[test]
    fn shrink_reaches_a_local_minimum() {
        // Synthetic property: "fails" while at least two tasks still
        // await on phaser 0 — the minimum is exactly two two-op tasks.
        let scenario = Scenario::new(2)
            .task(&[0, 1], vec![Skip, Arrive(0), Await(0), Dereg(1)])
            .task(&[0], vec![Arrive(0), Skip, Await(0)])
            .task(&[0, 1], vec![Arrive(1), Await(1)])
            .task(&[0], vec![Arrive(0), Await(0), Skip]);
        let fails = |s: &Scenario| {
            let awaiting = s
                .tasks
                .iter()
                .filter(|t| t.script.contains(&Await(0)) && t.script.contains(&Arrive(0)))
                .count();
            (awaiting >= 2).then(|| Failure {
                config: "synthetic".into(),
                step: 0,
                message: format!("{awaiting} tasks still await p0"),
            })
        };
        let seed_failure = fails(&scenario).expect("initial scenario fails");
        let (best, _) = shrink(&scenario, seed_failure, fails);
        assert_eq!(best.tasks.len(), 2, "only the two awaiting tasks survive");
        assert!(best.tasks.iter().all(|t| t.script.len() == 2));
        assert!(best.tasks.iter().all(|t| t.members == vec![0]));
    }
}
