//! The virtual-time cooperative simulator: drives a [`Scenario`] through
//! real `armus-sync` phasers — registrations, arrivals, waits, avoidance
//! verdicts, interrupts and all — on **one OS thread**, with no sleeps.
//!
//! Task identities are multiplexed over the driving thread through
//! [`armus_sync::ctx::scoped`]; blocking waits go through the poll seam
//! ([`Phaser::begin_await`] / [`Phaser::poll_await`]) instead of parking
//! on condvars, so the *scheduler* — any [`Chooser`] — decides the exact
//! interleaving, and the same seed replays the same run, bit for bit.
//!
//! Virtual time is the step counter: one tick per executed step. The
//! detection monitor's sampling is modelled by the harness calling
//! [`armus_core::Verifier::check_now`] at ticks of its choosing (the
//! monitor thread's body, minus the wall-clock sleep).

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use armus_async::{AsyncPhaser, AwaitPhase};
use armus_core::{DeadlockReport, PhaserId, TaskId, Verifier, VerifierConfig};
use armus_sync::ctx::{self, TaskCtx};
use armus_sync::{Phaser, Runtime, RuntimeConfig, SyncError, WaitStep};

use crate::scenario::{Op, PhaserIx, Scenario};
use crate::sched::Chooser;

/// Which front-end the simulator drives blocking waits through. Both sit
/// on the same `begin_await`/`poll_await` wait machine; the differential
/// tests prove their verifier decisions and reports identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitApi {
    /// The sync crate's poll seam, called directly ([`Phaser::
    /// begin_await`] / [`Phaser::poll_await`]) — how the thread-per-task
    /// front-end blocks, minus the condvar park.
    Seam,
    /// The async front-end: an [`armus_async::AwaitPhase`] future per
    /// `Await` op, manually polled (with a no-op waker) under the task's
    /// scoped identity — how executor-driven tasks block, minus the
    /// executor.
    Future,
}

/// The waker manual future polls use: resolution is observed by the
/// chooser re-polling (a `Resolve` step), never by wake-driven scheduling,
/// so wakes are deliberately dropped.
struct NoopWake;

impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

fn noop_waker() -> Waker {
    Waker::from(Arc::new(NoopWake))
}

/// What a scheduled step does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// Execute the task's next op (an `Await` op that cannot complete
    /// publishes the blocked status and parks the task).
    Exec,
    /// Resolve the task's pending wait (offered only when it would
    /// resolve — by release, poison, or avoidance interrupt).
    Resolve,
}

/// One schedulable step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimStep {
    /// Task index.
    pub task: usize,
    /// What the step does.
    pub kind: StepKind,
}

/// What a step did — the simulator's event stream, consumed by the
/// differential oracle to mirror PL transitions.
#[derive(Clone, Debug)]
pub enum SimEvent {
    /// The task completed a PL-visible instruction (`Skip`/`Adv`/`Sync`/
    /// `Dereg` of the given op).
    Completed(usize, Op),
    /// The task began blocking on its `Await` op: the blocked status is
    /// published; no PL transition fires (the PL `await` stays at head).
    BlockedAt(usize, PhaserIx),
    /// The task's wait was refused (avoidance verdict at begin, when its
    /// own block closed the cycle) or interrupted (the same verdict
    /// delivered later to a blocked victim of the cycle): the task failed
    /// with the given report and was deregistered from the awaited
    /// phaser.
    Refused {
        /// Task index.
        task: usize,
        /// The awaited phaser the task was deregistered from.
        phaser: PhaserIx,
        /// The verdict.
        report: Box<DeadlockReport>,
        /// True when this task's own block closed the cycle (the report
        /// describes the state *now*); false for an interrupt delivered
        /// to a parked victim (the report is historical — the initiator
        /// broke the cycle when it was refused).
        initiated: bool,
    },
}

/// Where a task stands.
#[derive(Clone, Debug, PartialEq, Eq)]
enum TaskState {
    /// Next op is executable.
    Running,
    /// Parked on its `Await` op's pending wait on the given phaser.
    Blocked(PhaserIx),
    /// Script exhausted (memberships, if any remain, persist — matching
    /// PL, where a terminated task stays in the phaser map; this is what
    /// makes missing-participant hangs reproducible).
    Done,
    /// Failed with an avoidance verdict; script abandoned.
    Failed,
}

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimOutcome {
    /// Every task ran to completion (or failed with a verdict) and no
    /// task is parked.
    Quiesced,
    /// Some task is parked with no step able to release it: the run is
    /// stuck (a hang — possibly, but not necessarily, a deadlock).
    Stuck,
}

struct SimTask {
    ctx: Arc<TaskCtx>,
    script: Vec<Op>,
    pc: usize,
    state: TaskState,
    /// The in-flight `Await` future under [`WaitApi::Future`] (always
    /// `None` under [`WaitApi::Seam`]).
    pending: Option<AwaitPhase>,
}

/// A scenario instantiated over a real runtime, stepped by a scheduler.
pub struct Sim {
    rt: Arc<Runtime>,
    phasers: Vec<Phaser>,
    tasks: Vec<SimTask>,
    api: WaitApi,
    /// Virtual clock: executed steps.
    pub clock: u64,
}

impl Sim {
    /// Instantiates `scenario` over a fresh runtime with the given
    /// verifier configuration, blocking through the sync poll seam.
    pub fn new(scenario: &Scenario, verifier: VerifierConfig) -> Sim {
        Sim::new_with_api(scenario, verifier, WaitApi::Seam)
    }

    /// [`Sim::new`], blocking through the chosen front-end: creates the
    /// phasers and task contexts and performs the initial (phase-0)
    /// registrations.
    pub fn new_with_api(scenario: &Scenario, verifier: VerifierConfig, api: WaitApi) -> Sim {
        let rt = Runtime::new(RuntimeConfig::unchecked().with_verifier(verifier));
        let phasers: Vec<Phaser> =
            (0..scenario.phasers).map(|_| Phaser::new_unregistered(&rt)).collect();
        let tasks: Vec<SimTask> = scenario
            .tasks
            .iter()
            .map(|def| {
                let task_ctx = TaskCtx::fresh();
                for &p in &def.members {
                    ctx::scoped(&task_ctx, || phasers[p].register())
                        .expect("fresh membership cannot collide");
                }
                SimTask {
                    ctx: task_ctx,
                    script: def.script.clone(),
                    pc: 0,
                    state: TaskState::Running,
                    pending: None,
                }
            })
            .collect();
        Sim { rt, phasers, tasks, api, clock: 0 }
    }

    /// The verifier under test.
    pub fn verifier(&self) -> &Arc<Verifier> {
        self.rt.verifier()
    }

    /// The runtime id of task `i`.
    pub fn task_id(&self, i: usize) -> TaskId {
        self.tasks[i].ctx.id()
    }

    /// The runtime id of phaser `p`.
    pub fn phaser_id(&self, p: PhaserIx) -> PhaserId {
        self.phasers[p].id()
    }

    /// Is task `i` parked on a published wait?
    pub fn is_blocked(&self, i: usize) -> bool {
        matches!(self.tasks[i].state, TaskState::Blocked(_))
    }

    /// Did task `i` fail with an avoidance verdict?
    pub fn is_failed(&self, i: usize) -> bool {
        self.tasks[i].state == TaskState::Failed
    }

    /// The currently schedulable steps, in deterministic (task-index)
    /// order. Empty means the run is over: [`Sim::outcome`] says how.
    pub fn options(&self) -> Vec<SimStep> {
        let mut out = Vec::new();
        for (i, t) in self.tasks.iter().enumerate() {
            match t.state {
                TaskState::Running if t.pc < t.script.len() => {
                    out.push(SimStep { task: i, kind: StepKind::Exec });
                }
                TaskState::Blocked(p) if self.phasers[p].await_would_resolve_of(t.ctx.id()) => {
                    out.push(SimStep { task: i, kind: StepKind::Resolve });
                }
                _ => {}
            }
        }
        out
    }

    /// How the run ended (meaningful once [`Sim::options`] is empty).
    pub fn outcome(&self) -> SimOutcome {
        if self.tasks.iter().any(|t| matches!(t.state, TaskState::Blocked(_))) {
            SimOutcome::Stuck
        } else {
            SimOutcome::Quiesced
        }
    }

    /// Executes one step, advancing the virtual clock.
    ///
    /// # Panics
    /// Panics on scenario misuse (an op whose PL premise fails — ruled out
    /// by the [`Scenario`] constructors) or on a `Resolve` step that was
    /// not actually resolvable (a scheduler bug).
    pub fn step(&mut self, step: SimStep) -> SimEvent {
        self.clock += 1;
        let i = step.task;
        match step.kind {
            StepKind::Exec => self.exec(i),
            StepKind::Resolve => self.resolve(i),
        }
    }

    fn exec(&mut self, i: usize) -> SimEvent {
        let op = self.tasks[i].script[self.tasks[i].pc];
        let task_ctx = Arc::clone(&self.tasks[i].ctx);
        match op {
            Op::Skip => {
                self.tasks[i].pc += 1;
                self.settle_running(i);
                SimEvent::Completed(i, op)
            }
            Op::Arrive(p) => {
                ctx::scoped(&task_ctx, || self.phasers[p].arrive())
                    .expect("scenario scripts only arrive as members");
                self.tasks[i].pc += 1;
                self.settle_running(i);
                SimEvent::Completed(i, op)
            }
            Op::Dereg(p) => {
                ctx::scoped(&task_ctx, || self.phasers[p].deregister())
                    .expect("scenario scripts only dereg memberships");
                self.tasks[i].pc += 1;
                self.settle_running(i);
                SimEvent::Completed(i, op)
            }
            Op::Await(p) => {
                let phase = ctx::scoped(&task_ctx, || self.phasers[p].local_phase())
                    .expect("scenario scripts only await as members");
                let step = match self.api {
                    WaitApi::Seam => ctx::scoped(&task_ctx, || self.phasers[p].begin_await(phase)),
                    WaitApi::Future => {
                        // The future's first poll runs the avoidance check
                        // inline at `begin_await` (as the sync path does)
                        // and then polls the seam once; in this
                        // single-threaded simulator nothing can resolve
                        // the wait between those two calls, so a pending
                        // begin is a pending first poll — the event
                        // streams of the two front-ends coincide.
                        let mut fut = self.phasers[p].await_phase_async(phase);
                        match Self::poll_future(&mut fut, &task_ctx) {
                            Poll::Ready(done) => done.map(|()| WaitStep::Ready),
                            Poll::Pending => {
                                self.tasks[i].pending = Some(fut);
                                Ok(WaitStep::Pending)
                            }
                        }
                    }
                };
                match step {
                    Ok(WaitStep::Ready) => {
                        self.tasks[i].pc += 1;
                        self.settle_running(i);
                        SimEvent::Completed(i, op)
                    }
                    Ok(WaitStep::Pending) => {
                        self.tasks[i].state = TaskState::Blocked(p);
                        SimEvent::BlockedAt(i, p)
                    }
                    Err(SyncError::WouldDeadlock(report)) => {
                        self.tasks[i].state = TaskState::Failed;
                        SimEvent::Refused { task: i, phaser: p, report, initiated: true }
                    }
                    Err(e) => panic!("unexpected wait error in simulation: {e}"),
                }
            }
        }
    }

    fn resolve(&mut self, i: usize) -> SimEvent {
        let TaskState::Blocked(p) = self.tasks[i].state else {
            panic!("resolve step on a non-blocked task (scheduler bug)");
        };
        let op = self.tasks[i].script[self.tasks[i].pc];
        let task_ctx = Arc::clone(&self.tasks[i].ctx);
        let step = match self.api {
            WaitApi::Seam => ctx::scoped(&task_ctx, || self.phasers[p].poll_await()),
            WaitApi::Future => {
                let mut fut = self.tasks[i]
                    .pending
                    .take()
                    .expect("a future-api blocked task holds its await future");
                match Self::poll_future(&mut fut, &task_ctx) {
                    Poll::Ready(done) => done.map(|()| WaitStep::Ready),
                    Poll::Pending => {
                        self.tasks[i].pending = Some(fut);
                        Ok(WaitStep::Pending)
                    }
                }
            }
        };
        match step {
            Ok(WaitStep::Ready) => {
                self.tasks[i].pc += 1;
                self.tasks[i].state = TaskState::Running;
                self.settle_running(i);
                SimEvent::Completed(i, op)
            }
            Ok(WaitStep::Pending) => {
                panic!("resolve step did not resolve (scheduler bug: options() lied)")
            }
            Err(SyncError::WouldDeadlock(report)) => {
                self.tasks[i].state = TaskState::Failed;
                SimEvent::Refused { task: i, phaser: p, report, initiated: false }
            }
            Err(e) => panic!("unexpected poll error in simulation: {e}"),
        }
    }

    /// Polls an await future once under `task`'s scoped identity (the
    /// future captures that identity on its first poll, exactly as a
    /// future running on the executor captures its `Scoped` task's).
    fn poll_future(fut: &mut AwaitPhase, task: &Arc<TaskCtx>) -> Poll<Result<(), SyncError>> {
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        ctx::scoped(task, || Pin::new(fut).poll(&mut cx))
    }

    fn settle_running(&mut self, i: usize) {
        if self.tasks[i].pc >= self.tasks[i].script.len() {
            self.tasks[i].state = TaskState::Done;
        }
    }

    /// Runs the scenario to quiescence under `chooser`, ignoring events
    /// (the differential oracle drives the loop itself when it needs
    /// them). Returns the outcome and the number of steps taken.
    pub fn run_to_end(&mut self, chooser: &mut dyn Chooser) -> (SimOutcome, u64) {
        loop {
            let options = self.options();
            if options.is_empty() {
                return (self.outcome(), self.clock);
            }
            let pick = chooser.choose(options.len());
            let _ = self.step(options[pick]);
        }
    }
}

// The unit tests assert the *correct* verifier's behaviour, so they fail
// by design under the planted `verifier-mutation` bug (whose run is
// reserved for tests/mutation.rs).
#[cfg(all(test, not(feature = "verifier-mutation")))]
mod tests {
    use super::*;
    use crate::scenario::canonical_scenarios;
    use crate::sched::SeededChooser;

    fn scenario(name: &str) -> Scenario {
        canonical_scenarios().into_iter().find(|(n, _)| *n == name).unwrap().1
    }

    #[test]
    fn spmd_runs_to_quiescence_with_verification_off() {
        let mut sim = Sim::new(&scenario("spmd-3"), VerifierConfig::disabled());
        let (outcome, steps) = sim.run_to_end(&mut SeededChooser::new(1));
        assert_eq!(outcome, SimOutcome::Quiesced);
        assert!(steps >= 6, "three arrive+await pairs take at least six steps");
    }

    #[test]
    fn crossed_wait_sticks_under_publish_only() {
        let mut sim = Sim::new(&scenario("crossed-wait"), VerifierConfig::publish_only());
        let (outcome, _) = sim.run_to_end(&mut SeededChooser::new(3));
        assert_eq!(outcome, SimOutcome::Stuck);
        // Both tasks published their blocked status; the canonical checker
        // over the registry sees the cycle.
        assert_eq!(sim.verifier().local_snapshot().len(), 2);
        assert!(sim.verifier().probe().is_some());
    }

    #[test]
    fn crossed_wait_is_refused_under_avoidance() {
        for seed in 0..32 {
            let mut sim = Sim::new(&scenario("crossed-wait"), VerifierConfig::avoidance());
            let (outcome, _) = sim.run_to_end(&mut SeededChooser::new(seed));
            assert_eq!(outcome, SimOutcome::Quiesced, "seed {seed}: avoidance must unstick");
            assert!(
                sim.is_failed(0) || sim.is_failed(1),
                "seed {seed}: some task must carry the verdict"
            );
            assert!(sim.verifier().found_deadlock());
        }
    }

    #[test]
    fn replay_is_bit_for_bit_deterministic() {
        let run = |seed| {
            let mut sim = Sim::new(&scenario("figure1-mini"), VerifierConfig::publish_only());
            let mut trace = Vec::new();
            loop {
                let options = sim.options();
                if options.is_empty() {
                    break;
                }
                let mut ch = SeededChooser::new(seed ^ sim.clock);
                let pick = ch.choose(options.len());
                trace.push(format!("{:?}", sim.step(options[pick])));
            }
            trace
        };
        assert_eq!(run(42), run(42));
    }
}
