//! # armus-testkit
//!
//! A deterministic simulation testkit for the Armus verifier: replay
//! millions of seeded interleavings of barrier programs — with **no real
//! concurrency and no sleeps** — and differentially check the run-time
//! [`armus_core::Verifier`] against the `armus-pl` formal model on every
//! step.
//!
//! ## Architecture
//!
//! * [`scenario`] — the scenario DSL: phasers, tasks, initial
//!   memberships and straight-line op scripts, mapping 1:1 onto PL's
//!   `skip`/`adv`/`await`/`dereg` core. A scenario denotes both a runtime
//!   program and a PL state.
//! * [`lower`] — lowers `armus-pl` programs (notably the seeded
//!   generator `armus_pl::gen::gen_program`) into scenarios.
//! * [`sim`] — the virtual-time cooperative scheduler: multiplexes task
//!   identities over one OS thread via `armus_sync::ctx::scoped` and
//!   drives blocking through the `Phaser::begin_await`/`poll_await` seam,
//!   so the chooser decides the exact interleaving and every run replays
//!   bit-for-bit from its seed.
//! * [`sched`] — choosers: seeded-random, scripted replay, and the
//!   depth-first bounded-exhaustive enumerator.
//! * [`oracle`] — the differential oracle: avoidance (fast path on and
//!   off) and detection-style sampling (default and tiny-journal/
//!   single-shard/low-par-threshold tunings) versus the PL semantics in
//!   lockstep; soundness, completeness, alignment, and model-agreement
//!   invariants per step.
//! * [`replay`] — replays `armus_pl::analysis` deadlock witnesses through
//!   a publish-only [`sim::Sim`] and demands the runtime checker report
//!   the predicted deadlock (the `DefiniteDeadlock` soundness leg).
//! * [`shrink`] — greedy failure minimisation plus the
//!   `ARMUS_TESTKIT_SEED=… cargo test -p armus-testkit seeded` repro line.
//!
//! ## Seed-replay workflow
//!
//! The seeded tier runs `ARMUS_TESTKIT_SEEDS` (default 400) seeds; CI
//! runs 10 000. On failure the harness shrinks the scenario, writes the
//! repro to `target/testkit-repro.txt`, and panics with a one-liner of
//! the form:
//!
//! ```text
//! ARMUS_TESTKIT_SEED=1234 cargo test -p armus-testkit seeded -- --nocapture
//! ```
//!
//! Re-running with that environment variable replays exactly the failing
//! seed (generation, lowering, and every scheduling choice are pure
//! functions of it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lower;
pub mod oracle;
pub mod replay;
pub mod scenario;
pub mod sched;
pub mod shrink;
pub mod sim;

pub use lower::{lower_program, LowerError};
pub use oracle::{
    oracle_configs, run_all, run_config, run_config_with_api, run_seeded, run_seeded_with_api,
    Failure, OracleConfig,
};
pub use replay::replay_witness;
pub use scenario::{canonical_scenarios, Op, PhaserIx, Scenario, TaskDef};
pub use sched::{explore_all, Chooser, Exploration, ScriptedChooser, SeededChooser};
pub use shrink::{shrink, Repro};
pub use sim::{Sim, SimEvent, SimOutcome, SimStep, StepKind, WaitApi};

use std::path::PathBuf;

/// Seeds the seeded-random tier should run: a single seed when
/// `ARMUS_TESTKIT_SEED` is set (replay), else `0..ARMUS_TESTKIT_SEEDS`
/// (default `0..400`; CI sets 10 000).
pub fn seeds_from_env() -> Vec<u64> {
    if let Ok(seed) = std::env::var("ARMUS_TESTKIT_SEED") {
        let seed = seed.parse().expect("ARMUS_TESTKIT_SEED must be a u64");
        return vec![seed];
    }
    let count: u64 = std::env::var("ARMUS_TESTKIT_SEEDS")
        .ok()
        .map(|v| v.parse().expect("ARMUS_TESTKIT_SEEDS must be a u64"))
        .unwrap_or(400);
    (0..count).collect()
}

/// Where repro files land: `target/testkit-repro.txt` at the workspace
/// root (CI uploads it as an artifact on failure).
pub fn repro_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/testkit-repro.txt")
}

/// Writes a shrunk repro to [`repro_path`] (best-effort) and returns the
/// rendered text for the panic message.
pub fn write_repro(repro: &shrink::Repro) -> String {
    let text = repro.to_string();
    let path = repro_path();
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::write(&path, &text);
    text
}
