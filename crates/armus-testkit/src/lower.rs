//! Lowering `armus-pl` programs into executable scenarios: the bridge
//! that turns the formal model's *program generator* (`armus_pl::gen`)
//! into fuel for the simulation harness.
//!
//! The registration prefix of the main task — `newPhaser` / `newTid` /
//! `reg` / `fork` — is evaluated symbolically through the PL semantics
//! (it is deterministic: only the main task reduces and each rule
//! instance is unique); what remains is a set of straight-line task
//! bodies over `skip`/`adv`/`await`/`dereg`, which map 1:1 onto scenario
//! ops. The lowered scenario's [`Scenario::initial_pl_state`] is
//! semantically identical to the post-prefix PL state modulo the
//! canonical renaming, so the differential oracle's lockstep starts from
//! the very state the program denotes.

use armus_pl::{apply, enabled, Instr, Rule, Seq, State, Transition};

use crate::scenario::{Op, Scenario};

/// Why a program cannot be lowered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// The main task's registration prefix got stuck (a `reg`/`fork`
    /// premise failed before any barrier work started).
    StuckPrefix(String),
    /// A residual task body contains an instruction outside the
    /// `skip`/`adv`/`await`/`dereg` core (e.g. a loop or a nested fork).
    Unsupported(String),
    /// A residual body uses a phaser the task is not a member of at that
    /// point (the op's PL premise would fail at run time).
    BadPremise(String),
    /// A membership is not at phase 0 after the prefix (the lowering's
    /// initial-state shape assumes registration precedes all arrivals).
    NonZeroPhase(String),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::StuckPrefix(m) => write!(f, "stuck registration prefix: {m}"),
            LowerError::Unsupported(m) => write!(f, "unsupported instruction: {m}"),
            LowerError::BadPremise(m) => write!(f, "failing premise: {m}"),
            LowerError::NonZeroPhase(m) => write!(f, "non-zero phase after prefix: {m}"),
        }
    }
}

/// Lowers a PL program into a [`Scenario`]. Supports the (large) fragment
/// where the main task performs all registration up front — exactly the
/// shape [`armus_pl::gen::gen_program`] emits.
pub fn lower_program(program: &Seq) -> Result<Scenario, LowerError> {
    let mut state = State::initial(program.clone());

    // Evaluate the main task's registration prefix.
    while let Some(instr) = state.tasks.get("#main").and_then(|seq| seq.first()).cloned() {
        let rule = match &instr {
            Instr::NewPhaser(_) => Rule::NewPhaser,
            Instr::NewTid(_) => Rule::NewTid,
            Instr::Reg(_, _) => Rule::Reg,
            Instr::Fork(_, _) => Rule::Fork,
            _ => break,
        };
        let transition = Transition { task: "#main".to_string(), rule };
        if !enabled(&state).contains(&transition) {
            return Err(LowerError::StuckPrefix(format!("{instr}")));
        }
        state = apply(&state, &transition);
    }

    // Canonical indices: BTreeMap order of the post-prefix state.
    let phaser_names: Vec<String> = state.phasers.keys().cloned().collect();
    let task_names: Vec<String> = state.tasks.keys().cloned().collect();
    let phaser_ix = |name: &str| phaser_names.iter().position(|p| p == name).expect("known phaser");

    let mut scenario = Scenario::new(phaser_names.len());
    let mut defs = Vec::new();
    for t in &task_names {
        let mut members = Vec::new();
        for (ix, p) in phaser_names.iter().enumerate() {
            if let Some(phase) = state.phasers[p].phase_of(t) {
                if phase != 0 {
                    return Err(LowerError::NonZeroPhase(format!("{t} on {p} at {phase}")));
                }
                members.push(ix);
            }
        }
        let mut script = Vec::new();
        let mut membership: Vec<bool> =
            (0..phaser_names.len()).map(|ix| members.contains(&ix)).collect();
        for instr in &state.tasks[t] {
            let op = match instr {
                Instr::Skip => Op::Skip,
                Instr::Adv(p) => Op::Arrive(phaser_ix(p)),
                Instr::Await(p) => Op::Await(phaser_ix(p)),
                Instr::Dereg(p) => Op::Dereg(phaser_ix(p)),
                other => return Err(LowerError::Unsupported(format!("{t}: {other}"))),
            };
            // Premise check (membership only changes via the task's own
            // dereg, so a straight-line walk is exact).
            match op {
                Op::Skip => {}
                Op::Arrive(p) | Op::Await(p) => {
                    if !membership[p] {
                        return Err(LowerError::BadPremise(format!("{t}: {instr}")));
                    }
                }
                Op::Dereg(p) => {
                    if !membership[p] {
                        return Err(LowerError::BadPremise(format!("{t}: {instr}")));
                    }
                    membership[p] = false;
                }
            }
            script.push(op);
        }
        defs.push((t.clone(), members, script));
    }
    for (name, members, script) in defs {
        scenario.push_task(name, members, script);
    }
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use armus_pl::gen::{gen_program, ProgGenConfig};
    use armus_pl::parse;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn figure1_lowers_to_a_two_task_scenario() {
        let program = parse(
            "pc = newPhaser();
             pb = newPhaser();
             t = newTid();
             reg(pc, t); reg(pb, t);
             fork(t) { adv(pc); await(pc); dereg(pc); dereg(pb); }
             adv(pb); await(pb);",
        )
        .unwrap();
        let scenario = lower_program(&program).unwrap();
        assert_eq!(scenario.phasers, 2);
        assert_eq!(scenario.tasks.len(), 2);
        assert_eq!(scenario.total_ops(), 6);
        // The denoted PL state reaches the Figure 1 deadlock.
        let stuck = armus_pl::semantics::explore_stuck_states(scenario.initial_pl_state(), 100_000);
        assert!(stuck.iter().any(armus_pl::is_deadlocked));
    }

    #[test]
    fn loops_are_rejected() {
        let program = parse("p = newPhaser(); loop { adv(p); } dereg(p);").unwrap();
        assert!(matches!(lower_program(&program), Err(LowerError::Unsupported(_))));
    }

    #[test]
    fn every_generated_program_lowers() {
        let mut rng = SmallRng::seed_from_u64(5);
        for i in 0..200 {
            let program = gen_program(&mut rng, &ProgGenConfig::default());
            lower_program(&program).unwrap_or_else(|e| {
                panic!("generated program {i} failed to lower: {e}\n{program:?}")
            });
        }
    }
}
