//! Replays a static-analysis [`DeadlockWitness`] through the *real*
//! runtime: the witness schedule — produced by `armus_pl::analysis` purely
//! from the formal model — is driven through a [`Sim`] over real phasers,
//! and the run must end with the runtime verifier reporting the very
//! deadlock the analysis predicted.
//!
//! This is the `DefiniteDeadlock` half of the static soundness contract:
//! a witness is not just a claim about the PL semantics, it is a schedule
//! the runtime reproduces, with a `ϕ`-checker report the trace oracle
//! confirms.

use armus_core::{DeadlockReport, VerifierConfig};
use armus_pl::analysis::DeadlockWitness;
use armus_pl::semantics::{apply, enabled, Rule};
use armus_pl::Instr;

use crate::scenario::Scenario;
use crate::sim::{Sim, SimEvent, SimStep, StepKind};

/// Replays `witness` (whose schedule must start from
/// [`Scenario::initial_pl_state`] — i.e. it came from
/// `armus_pl::analysis::analyse_state` on that state) through a
/// publish-only [`Sim`], in lockstep with the PL semantics.
///
/// On success returns the runtime's deadlock report for the final state.
/// Any divergence — a schedule step not enabled, a sim event that does not
/// mirror the PL transition, a missing report, a report naming tasks
/// outside the witness's deadlocked set, or the trace oracle disagreeing —
/// is an `Err` describing the mismatch.
pub fn replay_witness(
    scenario: &Scenario,
    witness: &DeadlockWitness,
) -> Result<DeadlockReport, String> {
    let mut sim = Sim::new(scenario, VerifierConfig::publish_only());
    let mut pl = scenario.initial_pl_state();

    // The witness was computed on `initial_pl_state()`, whose tasks carry
    // the canonical `t{i}` names (not the display names of the task defs).
    let task_index = |name: &str| -> Result<usize, String> {
        (0..scenario.tasks.len())
            .find(|&i| Scenario::task_name(i) == name)
            .ok_or_else(|| format!("witness names unknown task {name}"))
    };

    for (step_no, transition) in witness.schedule.iter().enumerate() {
        if !enabled(&pl).contains(transition) {
            return Err(format!("schedule step {step_no} ({transition:?}) not enabled in PL"));
        }
        let i = task_index(&transition.task)?;
        let kind = match transition.rule {
            // A Sync on a task the sim already parked resolves the wait;
            // otherwise the await is ready and executes directly.
            Rule::Sync if sim.is_blocked(i) => StepKind::Resolve,
            Rule::Sync | Rule::Skip | Rule::Adv | Rule::Dereg => StepKind::Exec,
            ref other => {
                return Err(format!(
                    "schedule step {step_no}: rule {other:?} has no runtime counterpart \
                     (lowered scenarios are straight-line)"
                ))
            }
        };
        match sim.step(SimStep { task: i, kind }) {
            SimEvent::Completed(..) => {}
            other => {
                return Err(format!(
                    "schedule step {step_no} ({transition:?}): sim diverged with {other:?}"
                ))
            }
        }
        pl = apply(&pl, transition);
    }

    // Park every witnessed-deadlocked task on its await so its blocked
    // status is published — in the PL final state each has `await` at
    // head and the await does not hold.
    for name in &witness.deadlocked {
        let i = task_index(name)?;
        match pl.tasks.get(name).and_then(|s| s.first()) {
            Some(Instr::Await(_)) => {}
            other => {
                return Err(format!(
                    "deadlocked task {name} is not at an await in the PL final state ({other:?})"
                ))
            }
        }
        match sim.step(SimStep { task: i, kind: StepKind::Exec }) {
            SimEvent::BlockedAt(..) => {}
            other => return Err(format!("deadlocked task {name} did not park: {other:?}")),
        }
    }

    // The runtime verifier must see the deadlock in the published
    // registry…
    let report = sim
        .verifier()
        .check_now()
        .ok_or_else(|| "runtime checker found no deadlock in the witnessed state".to_string())?;
    // …naming only tasks the witness declared deadlocked.
    for &tid in &report.tasks {
        let Some(i) = (0..scenario.tasks.len()).find(|&i| sim.task_id(i) == tid) else {
            return Err(format!("report names a task id {tid:?} outside the scenario"));
        };
        let name = Scenario::task_name(i);
        if !witness.deadlocked.contains(&name) {
            return Err(format!(
                "report names {name}, which the witness does not list as deadlocked"
            ));
        }
    }
    if report.tasks.is_empty() {
        return Err("runtime report names no tasks".to_string());
    }
    // And the Φ/trace oracle must agree on the lockstep PL state.
    let verdict = armus_pl::trace::analyse(&pl);
    if !verdict.deadlocked() {
        return Err("trace oracle says the final PL state is not deadlocked".to_string());
    }
    if !verdict.internally_consistent() {
        return Err("trace oracle internally inconsistent on the final state".to_string());
    }
    Ok(report)
}

#[cfg(all(test, not(feature = "verifier-mutation")))]
mod tests {
    use super::*;
    use crate::scenario::canonical_scenarios;
    use armus_pl::analysis::{analyse_state, StaticVerdict};

    #[test]
    fn crossed_wait_witness_replays_to_a_runtime_report() {
        let scenario =
            canonical_scenarios().into_iter().find(|(n, _)| *n == "crossed-wait").unwrap().1;
        let StaticVerdict::DefiniteDeadlock { witness } =
            analyse_state(&scenario.initial_pl_state())
        else {
            panic!("crossed-wait must be a definite deadlock");
        };
        let report = replay_witness(&scenario, &witness).expect("witness replays");
        assert_eq!(report.tasks.len(), witness.deadlocked.len());
    }

    #[test]
    fn a_corrupted_witness_is_rejected() {
        let scenario =
            canonical_scenarios().into_iter().find(|(n, _)| *n == "crossed-wait").unwrap().1;
        let StaticVerdict::DefiniteDeadlock { mut witness } =
            analyse_state(&scenario.initial_pl_state())
        else {
            panic!("crossed-wait must be a definite deadlock");
        };
        // Dropping the schedule leaves the deadlocked tasks unreachable
        // (their awaits are still satisfiable or not yet at head).
        witness.schedule.clear();
        assert!(replay_witness(&scenario, &witness).is_err());
    }
}
