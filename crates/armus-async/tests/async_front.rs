//! End-to-end tests of the async front-end: executor-driven barrier
//! rounds, identity propagation through spawn points, latch waits,
//! avoidance verdicts delivered to parked futures, and panic cleanup.

use std::future::Future;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use armus_async::prelude::*;
use armus_sync::ctx::{self, TaskCtx};
use armus_sync::{CountDownLatch, Phaser, Runtime, SyncError, TaskId};

struct NoopWake;

impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

fn noop_waker() -> Waker {
    Waker::from(Arc::new(NoopWake))
}

#[test]
fn executor_runs_lock_step_barrier_rounds() {
    let rt = Runtime::avoidance();
    let exec = Executor::new(2);
    let ph = Phaser::new(&rt);
    let n = 16u64;
    let k = 10u64;
    let arrivals: Arc<Vec<AtomicU64>> = Arc::new((0..k).map(|_| AtomicU64::new(0)).collect());
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let ph2 = ph.clone();
            let arrivals = Arc::clone(&arrivals);
            exec.spawn_clocked(&[&ph], async move {
                for step in 0..k {
                    arrivals[step as usize].fetch_add(1, Ordering::SeqCst);
                    ph2.advance_async().await.unwrap();
                    // After the barrier resolves, every member arrived.
                    assert_eq!(arrivals[step as usize].load(Ordering::SeqCst), n);
                }
                ph2.deregister().unwrap();
            })
        })
        .collect();
    ph.deregister().unwrap();
    for handle in handles {
        handle.join().unwrap();
    }
    let stats = rt.verifier().stats();
    assert!(stats.async_waits > 0, "some round must actually have parked a waker");
    assert!(stats.waker_wakes > 0);
    assert!(!rt.verifier().found_deadlock());
    rt.verifier().shutdown();
}

#[test]
fn identity_survives_suspension_and_matches_the_handle() {
    let rt = Runtime::avoidance();
    let exec = Executor::new(2);
    let ph = Phaser::new(&rt);
    let partner = {
        let ph2 = ph.clone();
        exec.spawn_clocked(&[&ph], async move {
            ph2.advance_async().await.unwrap();
            ph2.deregister().unwrap();
        })
    };
    let probe = {
        let ph2 = ph.clone();
        exec.spawn_clocked(&[&ph], async move {
            let before: TaskId = ctx::current().id();
            ph2.advance_async().await.unwrap();
            let after: TaskId = ctx::current().id();
            ph2.deregister().unwrap();
            (before, after)
        })
    };
    ph.deregister().unwrap();
    let probe_id = probe.id();
    let (before, after) = probe.join().unwrap();
    partner.join().unwrap();
    assert_eq!(before, after, "identity must survive .await suspension");
    assert_eq!(before, probe_id, "the spawned future runs as its handle's task");
    rt.verifier().shutdown();
}

#[test]
fn join_handles_can_be_awaited_from_other_tasks() {
    let rt = Runtime::avoidance();
    let exec = Arc::new(Executor::new(2));
    let latch = CountDownLatch::new(&rt, 1);
    let waiter = {
        let latch2 = latch.clone();
        exec.spawn(async move {
            latch2.wait_async().await.unwrap();
            7u32
        })
    };
    let chained = exec.spawn(async move { waiter.await.unwrap() + 1 });
    latch.count_down().unwrap();
    assert_eq!(chained.join().unwrap(), 8);
    rt.verifier().shutdown();
}

#[test]
fn latch_wait_async_resolves_on_last_count_down() {
    let rt = Runtime::avoidance();
    let exec = Executor::new(2);
    let count = 4;
    let latch = CountDownLatch::new(&rt, count);
    let waiters: Vec<_> = (0..3)
        .map(|_| {
            let latch2 = latch.clone();
            exec.spawn(async move { latch2.wait_async().await })
        })
        .collect();
    let downers: Vec<_> = (0..count)
        .map(|_| {
            let latch2 = latch.clone();
            exec.spawn(async move { latch2.count_down().unwrap() })
        })
        .collect();
    for handle in downers {
        handle.join().unwrap();
    }
    for handle in waiters {
        handle.join().unwrap().unwrap();
    }
    rt.verifier().shutdown();
}

/// The avoidance path end-to-end: a crossed two-phaser cycle. Whichever
/// task blocks second is refused at `begin_await`; the other is parked —
/// and must be *woken* by the targeted interrupt, resolving its future
/// with the same `WouldDeadlock` verdict the sync path delivers.
#[test]
fn avoidance_verdict_reaches_the_parked_future() {
    let rt = Runtime::avoidance();
    let exec = Executor::new(2);
    let pa = Phaser::new(&rt);
    let pb = Phaser::new(&rt);
    let task_a = {
        let (pa2, pb2) = (pa.clone(), pb.clone());
        exec.spawn_clocked(&[&pa, &pb], async move {
            let verdict = pa2.advance_async().await;
            // Leave pb so the runtime is quiescent either way.
            let _ = pb2.deregister();
            verdict
        })
    };
    let task_b = {
        let (pa2, pb2) = (pa.clone(), pb.clone());
        exec.spawn_clocked(&[&pa, &pb], async move {
            let verdict = pb2.advance_async().await;
            let _ = pa2.deregister();
            verdict
        })
    };
    pa.deregister().unwrap();
    pb.deregister().unwrap();
    let got_a = task_a.join().unwrap();
    let got_b = task_b.join().unwrap();
    for verdict in [got_a, got_b] {
        match verdict {
            Err(SyncError::WouldDeadlock(report)) => {
                assert_eq!(report.tasks.len(), 2, "both tasks are in the cycle");
            }
            other => panic!("expected WouldDeadlock on both fronts, got {other:?}"),
        }
    }
    assert!(rt.verifier().found_deadlock());
    rt.verifier().shutdown();
}

#[test]
fn panicking_task_deregisters_and_reports_through_join() {
    let rt = Runtime::avoidance();
    let exec = Executor::new(2);
    let ph = Phaser::new(&rt);
    let doomed = exec.spawn_clocked(&[&ph], async move {
        panic!("task dies before ever arriving");
    });
    assert!(doomed.join().is_err(), "the panic payload surfaces at join");
    // The panicked task's exit guard deregistered it: only the spawner
    // remains, whose own arrivals now release instantly.
    assert_eq!(ph.member_count(), 1);
    ph.arrive_and_await().unwrap();
    ph.deregister().unwrap();
    rt.verifier().shutdown();
}

#[test]
fn scoped_attributes_manual_polls_to_its_task() {
    let rt = Runtime::avoidance();
    let ph = Phaser::new_unregistered(&rt);
    let ph2 = ph.clone();
    let mut fut = armus_async::scoped_fresh(async move {
        ph2.register().unwrap();
        ctx::current().id()
    });
    let scoped_id = fut.id();
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    match std::pin::Pin::new(&mut fut).poll(&mut cx) {
        Poll::Ready(inner_id) => assert_eq!(inner_id, scoped_id),
        Poll::Pending => panic!("future has no awaits; one poll completes it"),
    }
    // The registration really was attributed to the scoped task.
    assert_eq!(ph.member_count(), 1);
    let task: Arc<TaskCtx> = Arc::clone(fut.task());
    ctx::scoped(&task, || ph.deregister()).unwrap();
    rt.verifier().shutdown();
}
