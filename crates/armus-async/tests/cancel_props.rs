//! Cancellation safety, property-tested over drop points: dropping a
//! pending await future must unpark its waker and leave registry/journal
//! state exactly as a never-started await — no stranded blocked status,
//! no leaked interrupt, no membership change, and the scenario still
//! completes deadlock-free afterwards.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use armus_async::ops::{AsyncLatch, AsyncPhaser};
use armus_async::AwaitPhase;
use armus_sync::ctx::{self, TaskCtx};
use armus_sync::{CountDownLatch, Phaser, Runtime, WaitStep};
use proptest::prelude::*;

struct NoopWake;

impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

fn noop_waker() -> Waker {
    Waker::from(Arc::new(NoopWake))
}

/// Where in its lifecycle the pending future is dropped.
#[derive(Clone, Copy, Debug)]
enum DropPoint {
    /// Created but never polled: the wait never began.
    BeforeFirstPoll,
    /// Polled once to `Pending`: blocked status published, waker parked.
    WhileParked,
    /// Parked, then resolved by the releasing event (waker woken), but
    /// never re-polled: the pending wait still holds its published status.
    AfterWakeBeforeRepoll,
}

fn drop_point() -> impl Strategy<Value = DropPoint> {
    prop_oneof![
        Just(DropPoint::BeforeFirstPoll),
        Just(DropPoint::WhileParked),
        Just(DropPoint::AfterWakeBeforeRepoll),
    ]
}

/// Polls `fut` once as `task`.
fn poll_as(fut: &mut AwaitPhase, task: &Arc<TaskCtx>) -> Poll<()> {
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    ctx::scoped(task, || match Pin::new(fut).poll(&mut cx) {
        Poll::Ready(done) => {
            done.unwrap();
            Poll::Ready(())
        }
        Poll::Pending => Poll::Pending,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Phaser awaits: t0 arrives and awaits phase 1 among `members`
    /// laggards, and the future is dropped at a random point.
    #[test]
    fn dropped_phaser_await_leaves_no_trace(
        members in 2usize..5,
        point in drop_point(),
    ) {
        let rt = Runtime::avoidance();
        let ph = Phaser::new_unregistered(&rt);
        let tasks: Vec<Arc<TaskCtx>> = (0..members).map(|_| TaskCtx::fresh()).collect();
        for task in &tasks {
            ctx::scoped(task, || ph.register()).unwrap();
        }
        ctx::scoped(&tasks[0], || ph.arrive()).unwrap();
        let baseline = rt.verifier().stats();

        let mut fut = ph.await_phase_async(1);
        let mut late_arrivals = 0;
        match point {
            DropPoint::BeforeFirstPoll => {}
            DropPoint::WhileParked => {
                prop_assert!(poll_as(&mut fut, &tasks[0]).is_pending());
            }
            DropPoint::AfterWakeBeforeRepoll => {
                prop_assert!(poll_as(&mut fut, &tasks[0]).is_pending());
                for task in &tasks[1..] {
                    ctx::scoped(task, || ph.arrive()).unwrap();
                }
                late_arrivals = members - 1;
            }
        }
        drop(fut);

        // Registry and journal read as if the await never started: every
        // published block has its unblock, nobody is left blocked, and
        // the task is not stranded in the wait machine.
        let after = rt.verifier().stats();
        prop_assert_eq!(after.blocks - baseline.blocks, after.unblocks - baseline.unblocks);
        prop_assert_eq!(rt.verifier().local_snapshot().len(), 0);
        prop_assert!(ph.await_would_resolve_of(tasks[0].id()));
        prop_assert_eq!(ph.member_count(), members);
        prop_assert!(!rt.verifier().found_deadlock());

        // And the same wait still works when started fresh: make any
        // arrivals the drop point left outstanding, then re-await.
        if late_arrivals == 0 {
            for task in &tasks[1..] {
                ctx::scoped(task, || ph.arrive()).unwrap();
            }
        }
        let step = ctx::scoped(&tasks[0], || ph.begin_await(1)).unwrap();
        prop_assert_eq!(step, WaitStep::Ready);
        for task in &tasks {
            ctx::scoped(task, || ph.deregister()).unwrap();
        }
        prop_assert!(!rt.verifier().found_deadlock());
        rt.verifier().shutdown();
    }

    /// Latch waits: a non-member waiter's future is dropped at a random
    /// point while counters drain the latch.
    #[test]
    fn dropped_latch_wait_leaves_no_trace(
        count in 1usize..4,
        point in drop_point(),
    ) {
        let rt = Runtime::avoidance();
        let latch = CountDownLatch::new(&rt, count);
        let waiter = TaskCtx::fresh();
        let baseline = rt.verifier().stats();

        let mut fut = latch.wait_async();
        match point {
            DropPoint::BeforeFirstPoll => {}
            DropPoint::WhileParked => {
                prop_assert!(poll_as(&mut fut, &waiter).is_pending());
            }
            DropPoint::AfterWakeBeforeRepoll => {
                prop_assert!(poll_as(&mut fut, &waiter).is_pending());
                for _ in 0..count {
                    latch.count_down().unwrap();
                }
            }
        }
        drop(fut);

        let after = rt.verifier().stats();
        prop_assert_eq!(after.blocks - baseline.blocks, after.unblocks - baseline.unblocks);
        prop_assert_eq!(rt.verifier().local_snapshot().len(), 0);
        prop_assert!(latch.phaser().await_would_resolve_of(waiter.id()));
        prop_assert!(!rt.verifier().found_deadlock());
        rt.verifier().shutdown();
    }
}
