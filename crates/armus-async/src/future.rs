//! The wait futures: `Future`-returning counterparts of the sync blocking
//! ops, driven through the `begin_await` / `poll_await` seam.
//!
//! Both futures follow the same protocol:
//!
//! 1. **First poll** captures the current task context (installed by the
//!    executor's [`crate::Scoped`] wrapper) and pins it into the future —
//!    later polls may run on any worker thread, and drop-cancellation must
//!    act as the same task. It then runs `begin_await`, which is where the
//!    avoidance check fires, exactly as on the sync path.
//! 2. A pending wait parks the poll's waker with the wait machine
//!    (register-before-check, so a racing settle cannot strand the
//!    future); the waker is woken exactly once, when the fate resolves.
//! 3. **Drop while pending** cancels the wait: the waker is unparked and
//!    the published blocked status withdrawn, leaving verifier state as if
//!    the await had never begun.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

use armus_sync::ctx::{self, TaskCtx};
use armus_sync::{Phase, Phaser, SyncError, WaitStep};

/// Polls the seam as `task`, parking the waker if still pending.
fn poll_seam(
    phaser: &Phaser,
    task: &Arc<TaskCtx>,
    cx: &mut Context<'_>,
) -> Poll<Result<(), SyncError>> {
    match ctx::scoped(task, || phaser.poll_await_with_waker(cx.waker())) {
        Ok(WaitStep::Ready) => Poll::Ready(Ok(())),
        Ok(WaitStep::Pending) => Poll::Pending,
        Err(err) => Poll::Ready(Err(err)),
    }
}

enum WaitState {
    Unstarted,
    Pending(Arc<TaskCtx>),
    Done,
}

/// Future form of [`Phaser::await_phase`]: resolves when `phase` is
/// observed (or with the poison / would-deadlock error). Created by
/// [`crate::ops::AsyncPhaser::await_phase_async`] and
/// [`crate::ops::AsyncLatch::wait_async`].
pub struct AwaitPhase {
    phaser: Phaser,
    phase: Phase,
    state: WaitState,
}

impl AwaitPhase {
    pub(crate) fn new(phaser: Phaser, phase: Phase) -> AwaitPhase {
        AwaitPhase { phaser, phase, state: WaitState::Unstarted }
    }

    /// The awaited phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }
}

impl Future for AwaitPhase {
    type Output = Result<(), SyncError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match &this.state {
            WaitState::Done => panic!("AwaitPhase polled after completion"),
            WaitState::Unstarted => {
                let task = ctx::current();
                match ctx::scoped(&task, || this.phaser.begin_await(this.phase)) {
                    Ok(WaitStep::Ready) => {
                        this.state = WaitState::Done;
                        Poll::Ready(Ok(()))
                    }
                    Ok(WaitStep::Pending) => {
                        let polled = poll_seam(&this.phaser, &task, cx);
                        this.state = if polled.is_pending() {
                            WaitState::Pending(task)
                        } else {
                            WaitState::Done
                        };
                        polled
                    }
                    Err(err) => {
                        this.state = WaitState::Done;
                        Poll::Ready(Err(err))
                    }
                }
            }
            WaitState::Pending(task) => {
                let task = Arc::clone(task);
                let polled = poll_seam(&this.phaser, &task, cx);
                if !polled.is_pending() {
                    this.state = WaitState::Done;
                }
                polled
            }
        }
    }
}

impl Drop for AwaitPhase {
    fn drop(&mut self) {
        if let WaitState::Pending(task) = &self.state {
            ctx::scoped(task, || self.phaser.cancel_await());
        }
    }
}

enum AdvanceState {
    Unstarted,
    Pending { task: Arc<TaskCtx>, phase: Phase },
    Done,
}

/// Future form of [`Phaser::arrive_and_await`]: arrives on first poll,
/// then resolves with the arrived phase once it is observed. Dropping the
/// future while pending cancels the *await* only — the arrival, like on
/// the sync path, has already been signalled to the other members and is
/// not rolled back.
pub struct Advance {
    phaser: Phaser,
    state: AdvanceState,
}

impl Advance {
    pub(crate) fn new(phaser: Phaser) -> Advance {
        Advance { phaser, state: AdvanceState::Unstarted }
    }
}

impl Future for Advance {
    type Output = Result<Phase, SyncError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match &this.state {
            AdvanceState::Done => panic!("Advance polled after completion"),
            AdvanceState::Unstarted => {
                let task = ctx::current();
                // Arrive + begin the wait for the arrived phase — the body
                // of `begin_arrive_and_await`, kept inline because the
                // resolved future must yield the phase.
                let begun = ctx::scoped(&task, || {
                    let phase = this.phaser.arrive()?;
                    Ok::<_, SyncError>((phase, this.phaser.begin_await(phase)?))
                });
                match begun {
                    Ok((phase, WaitStep::Ready)) => {
                        this.state = AdvanceState::Done;
                        Poll::Ready(Ok(phase))
                    }
                    Ok((phase, WaitStep::Pending)) => match poll_seam(&this.phaser, &task, cx) {
                        Poll::Pending => {
                            this.state = AdvanceState::Pending { task, phase };
                            Poll::Pending
                        }
                        Poll::Ready(done) => {
                            this.state = AdvanceState::Done;
                            Poll::Ready(done.map(|()| phase))
                        }
                    },
                    Err(err) => {
                        this.state = AdvanceState::Done;
                        Poll::Ready(Err(err))
                    }
                }
            }
            AdvanceState::Pending { task, phase } => {
                let (task, phase) = (Arc::clone(task), *phase);
                match poll_seam(&this.phaser, &task, cx) {
                    Poll::Pending => Poll::Pending,
                    Poll::Ready(done) => {
                        this.state = AdvanceState::Done;
                        Poll::Ready(done.map(|()| phase))
                    }
                }
            }
        }
    }
}

impl Drop for Advance {
    fn drop(&mut self) {
        if let AdvanceState::Pending { task, .. } = &self.state {
            ctx::scoped(task, || self.phaser.cancel_await());
        }
    }
}
