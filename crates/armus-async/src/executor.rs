//! A minimal multi-worker executor (no external async runtime — the
//! workspace is offline) that threads Armus task identity through spawn
//! points.
//!
//! Each spawned future gets a fresh [`TaskCtx`] and runs inside
//! [`crate::Scoped`], so every phaser op it performs — registration,
//! blocked-status publication, avoidance check — is attributed to that
//! task, exactly as the sync runtime attributes ops to its OS threads.
//! [`Executor::spawn_clocked`] mirrors `Runtime::spawn_clocked`: the child
//! is registered with the given phasers at the spawning task's phase
//! before the future first runs. On completion (normal, panicking, or
//! cancelled at executor drop) the task deregisters from every phaser it
//! is still registered with, like a `Runtime` thread's exit guard.
//!
//! Scheduling is a single shared run queue: a task is queued when spawned
//! and re-queued when its parked waker fires; a blocked task occupies no
//! worker thread, which is the entire point — 1M blocked tasks cost 1M
//! heap entries, not 1M stacks.

use std::any::Any;
use std::collections::VecDeque;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::thread;

use armus_sync::ctx::{self, TaskCtx};
use armus_sync::{Phaser, SyncError, TaskId};
use parking_lot::{Condvar, Mutex};

use crate::scope::Scoped;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send>>;
type PanicPayload = Box<dyn Any + Send>;

/// What a task left behind: its value, or the panic payload / cancellation
/// notice that ended it (mirroring [`std::thread::Result`]).
pub type TaskResult<T> = Result<T, PanicPayload>;

// Task lifecycle, mirrored in `TaskEntry::state`. A wake during RUNNING
// moves to NOTIFIED so the polling worker re-queues instead of idling the
// task — the standard lost-wakeup guard.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

struct TaskEntry {
    state: AtomicU8,
    future: Mutex<Option<BoxFuture>>,
    shared: Weak<ExecShared>,
}

impl TaskEntry {
    /// Queues the task unless it is already queued, done, or being polled
    /// (in which case the poller is told to re-queue it).
    fn schedule(self: &Arc<TaskEntry>) {
        let Some(shared) = self.shared.upgrade() else {
            return;
        };
        let mut current = self.state.load(Ordering::Acquire);
        loop {
            let target = match current {
                IDLE => QUEUED,
                RUNNING => NOTIFIED,
                QUEUED | NOTIFIED | DONE => return,
                _ => unreachable!("invalid task state"),
            };
            match self.state.compare_exchange_weak(
                current,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if target == QUEUED {
                        shared.push(Arc::clone(self));
                    }
                    return;
                }
                Err(seen) => current = seen,
            }
        }
    }
}

impl Wake for TaskEntry {
    fn wake(self: Arc<TaskEntry>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<TaskEntry>) {
        self.schedule();
    }
}

struct ExecShared {
    queue: Mutex<VecDeque<Arc<TaskEntry>>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Tasks spawned and not yet completed (resident: queued, running, or
    /// parked behind a waker).
    live: AtomicUsize,
    peak_live: AtomicUsize,
}

impl ExecShared {
    fn push(&self, entry: Arc<TaskEntry>) {
        self.queue.lock().push_back(entry);
        self.available.notify_one();
    }

    fn task_completed(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One poll cycle of a queued task.
fn run_entry(shared: &ExecShared, entry: Arc<TaskEntry>) {
    entry.state.store(RUNNING, Ordering::Release);
    let waker = Waker::from(Arc::clone(&entry));
    let mut cx = Context::from_waker(&waker);
    let mut slot = entry.future.lock();
    let Some(fut) = slot.as_mut() else {
        entry.state.store(DONE, Ordering::Release);
        return;
    };
    // The task wrapper resolves panics into its join state, so a panic
    // escaping here would be an executor bug; the catch keeps one broken
    // task from killing a worker regardless.
    let polled = catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
    match polled {
        Ok(Poll::Pending) => {
            drop(slot);
            if entry
                .state
                .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // A wake landed mid-poll (NOTIFIED): run it again.
                entry.state.store(QUEUED, Ordering::Release);
                shared.push(entry);
            }
        }
        Ok(Poll::Ready(())) | Err(_) => {
            *slot = None;
            drop(slot);
            entry.state.store(DONE, Ordering::Release);
            shared.task_completed();
        }
    }
}

struct JoinSlot<T> {
    result: Option<TaskResult<T>>,
    wakers: Vec<Waker>,
}

struct JoinState<T> {
    slot: Mutex<JoinSlot<T>>,
    done: Condvar,
}

impl<T> JoinState<T> {
    fn new() -> Arc<JoinState<T>> {
        Arc::new(JoinState {
            slot: Mutex::new(JoinSlot { result: None, wakers: Vec::new() }),
            done: Condvar::new(),
        })
    }

    /// First completion wins; later calls (e.g. a drop racing a normal
    /// finish) are ignored.
    fn complete(&self, result: TaskResult<T>) {
        let wakers = {
            let mut slot = self.slot.lock();
            if slot.result.is_some() {
                return;
            }
            slot.result = Some(result);
            std::mem::take(&mut slot.wakers)
        };
        self.done.notify_all();
        for waker in wakers {
            waker.wake();
        }
    }
}

/// Handle to a spawned task: blockingly [`join`](JoinHandle::join) it from
/// sync code, or `.await` it from another task.
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
    id: TaskId,
}

impl<T> JoinHandle<T> {
    /// The spawned task's verifier-visible id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Has the task finished (successfully or not)?
    pub fn is_finished(&self) -> bool {
        self.state.slot.lock().result.is_some()
    }

    /// Blocks the calling OS thread until the task completes. Call this
    /// from outside the executor (e.g. a bench main); an async task
    /// should `.await` the handle instead.
    pub fn join(self) -> TaskResult<T> {
        let mut slot = self.state.slot.lock();
        loop {
            if let Some(result) = slot.result.take() {
                return result;
            }
            self.state.done.wait(&mut slot);
        }
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = TaskResult<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut slot = self.state.slot.lock();
        if let Some(result) = slot.result.take() {
            return Poll::Ready(result);
        }
        slot.wakers.retain(|w| !w.will_wake(cx.waker()));
        slot.wakers.push(cx.waker().clone());
        Poll::Pending
    }
}

/// The spawned-future wrapper: runs the user future, publishes its result
/// (or panic payload) to the join state, and on any exit — completion,
/// panic, or cancellation — deregisters the task from every phaser it is
/// still registered with, like the sync runtime's thread-exit guard.
struct TaskFuture<F: Future> {
    inner: Option<Pin<Box<F>>>,
    task: Arc<TaskCtx>,
    join: Arc<JoinState<F::Output>>,
}

impl<F: Future> TaskFuture<F> {
    fn finish(&mut self, result: TaskResult<F::Output>) {
        // Order matters: drop the user future first (its drop impls cancel
        // pending waits as this task), then leave every phaser, then
        // publish the result to joiners.
        if let Some(inner) = self.inner.take() {
            ctx::scoped(&self.task, || drop(inner));
        }
        self.task.deregister_all();
        self.join.complete(result);
    }
}

impl<F: Future> Future for TaskFuture<F> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let Some(inner) = this.inner.as_mut() else {
            return Poll::Ready(());
        };
        match catch_unwind(AssertUnwindSafe(|| inner.as_mut().poll(cx))) {
            Ok(Poll::Pending) => Poll::Pending,
            Ok(Poll::Ready(value)) => {
                this.finish(Ok(value));
                Poll::Ready(())
            }
            Err(payload) => {
                this.finish(Err(payload));
                Poll::Ready(())
            }
        }
    }
}

impl<F: Future> Drop for TaskFuture<F> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            self.finish(Err(Box::new("task cancelled before completion")));
        }
    }
}

/// A bounded worker pool driving [`Scoped`] Armus tasks. See the
/// [module docs](self).
pub struct Executor {
    shared: Arc<ExecShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Executor {
    /// Starts `workers` worker threads (at least one).
    pub fn new(workers: usize) -> Executor {
        let shared = Arc::new(ExecShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            peak_live: AtomicUsize::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("armus-async-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn executor worker")
            })
            .collect();
        Executor { shared, workers }
    }

    /// Spawns `fut` as a fresh, unregistered task.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        self.spawn_as(TaskCtx::fresh(), fut)
    }

    /// Spawns `fut` registered with the given phasers at the calling
    /// task's phase — `Runtime::spawn_clocked` for futures. Identity flows
    /// the same way: the caller's context (thread-local, or the
    /// surrounding task when called from inside another spawned future)
    /// is the registering parent.
    ///
    /// # Panics
    /// Panics if the calling task is not registered with one of the
    /// phasers; see [`Executor::try_spawn_clocked`].
    pub fn spawn_clocked<F>(&self, phasers: &[&Phaser], fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        self.try_spawn_clocked(phasers, fut)
            .expect("spawn_clocked: calling task must be registered with every phaser")
    }

    /// Fallible [`Executor::spawn_clocked`].
    pub fn try_spawn_clocked<F>(
        &self,
        phasers: &[&Phaser],
        fut: F,
    ) -> Result<JoinHandle<F::Output>, SyncError>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let child = TaskCtx::fresh();
        for phaser in phasers {
            if let Err(err) = phaser.register_child(&child) {
                child.deregister_all();
                return Err(err);
            }
        }
        Ok(self.spawn_as(child, fut))
    }

    fn spawn_as<F>(&self, task: Arc<TaskCtx>, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let join = JoinState::new();
        let id = task.id();
        let wrapped = Scoped::new(
            Arc::clone(&task),
            TaskFuture { inner: Some(Box::pin(fut)), task, join: Arc::clone(&join) },
        );
        let entry = Arc::new(TaskEntry {
            state: AtomicU8::new(QUEUED),
            future: Mutex::new(Some(Box::pin(wrapped) as BoxFuture)),
            shared: Arc::downgrade(&self.shared),
        });
        let live = self.shared.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.shared.peak_live.fetch_max(live, Ordering::Relaxed);
        self.shared.push(entry);
        JoinHandle { state: join, id }
    }

    /// Tasks spawned and not yet completed (queued, running, or parked).
    pub fn live_tasks(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Executor::live_tasks`].
    pub fn peak_live_tasks(&self) -> usize {
        self.shared.peak_live.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Cancel tasks that never got to run: dropping their futures runs
        // the cancellation path (pending waits withdrawn, phasers left,
        // joiners notified). Tasks parked behind a phaser waker stay alive
        // until that phaser drops — join what you spawn before dropping
        // the executor.
        let drained: Vec<_> = self.shared.queue.lock().drain(..).collect();
        for entry in drained {
            *entry.future.lock() = None;
            entry.state.store(DONE, Ordering::Release);
            self.shared.task_completed();
        }
    }
}

fn worker_loop(shared: &Arc<ExecShared>) {
    loop {
        let entry = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(entry) = queue.pop_front() {
                    break Some(entry);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                shared.available.wait(&mut queue);
            }
        };
        match entry {
            Some(entry) => run_entry(shared, entry),
            None => return,
        }
    }
}
