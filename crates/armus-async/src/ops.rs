//! Extension traits putting `Future`-returning ops on the five sync
//! primitives. Import the trait for the primitive you use (or
//! `use armus_async::prelude::*`) and replace the blocking call with its
//! `_async` twin plus `.await`:
//!
//! | sync (parks a thread)            | async (parks a waker)            |
//! |----------------------------------|----------------------------------|
//! | `phaser.await_phase(n)`          | `phaser.await_phase_async(n)`    |
//! | `phaser.arrive_and_await()`      | `phaser.advance_async()`         |
//! | `barrier.wait()`                 | `barrier.wait_async()`           |
//! | `latch.wait()`                   | `latch.wait_async()`             |
//! | `clock.advance()`                | `clock.advance_async()`          |
//! | `clocked_var.advance()`          | `clocked_var.advance_async()`    |
//!
//! The futures run the same avoidance check at `begin_await` as the sync
//! path, so verifier decisions and deadlock reports are identical between
//! front-ends.

use armus_sync::{Clock, ClockedVar, CountDownLatch, CyclicBarrier, Phase, Phaser};

use crate::future::{Advance, AwaitPhase};

/// `Future`-returning phaser ops.
pub trait AsyncPhaser {
    /// Future form of [`Phaser::await_phase`].
    fn await_phase_async(&self, phase: Phase) -> AwaitPhase;
    /// Future form of [`Phaser::arrive_and_await`].
    fn advance_async(&self) -> Advance;
}

impl AsyncPhaser for Phaser {
    fn await_phase_async(&self, phase: Phase) -> AwaitPhase {
        AwaitPhase::new(self.clone(), phase)
    }

    fn advance_async(&self) -> Advance {
        Advance::new(self.clone())
    }
}

/// `Future`-returning cyclic-barrier wait.
pub trait AsyncBarrier {
    /// Future form of [`CyclicBarrier::wait`]: arrive and await the
    /// arrived phase, resolving with it.
    fn wait_async(&self) -> Advance;
}

impl AsyncBarrier for CyclicBarrier {
    fn wait_async(&self) -> Advance {
        Advance::new(self.phaser().clone())
    }
}

/// `Future`-returning latch wait.
pub trait AsyncLatch {
    /// Future form of [`CountDownLatch::wait`]: a non-member await of
    /// phase 1 (observed when the count reaches zero).
    fn wait_async(&self) -> AwaitPhase;
}

impl AsyncLatch for CountDownLatch {
    fn wait_async(&self) -> AwaitPhase {
        AwaitPhase::new(self.phaser().clone(), 1)
    }
}

/// `Future`-returning clock advance.
pub trait AsyncClock {
    /// Future form of [`Clock::advance`].
    fn advance_async(&self) -> Advance;
}

impl AsyncClock for Clock {
    fn advance_async(&self) -> Advance {
        Advance::new(self.phaser().clone())
    }
}

/// `Future`-returning clocked-variable advance.
pub trait AsyncClockedVar {
    /// Future form of [`ClockedVar::advance`]: after it resolves, values
    /// written in the previous phase are visible to `get`.
    fn advance_async(&self) -> Advance;
}

impl<T: Clone + Send + 'static> AsyncClockedVar for ClockedVar<T> {
    fn advance_async(&self) -> Advance {
        Advance::new(self.phaser().clone())
    }
}
