//! Task identity across `.await` suspension.
//!
//! The sync runtime attributes every phaser operation to the thread-local
//! task context installed by [`armus_sync::ctx`]. An async task migrates
//! between worker threads, so its identity must travel with the future,
//! not the thread: [`Scoped`] pins a [`TaskCtx`] to a future and installs
//! it (via [`armus_sync::ctx::scoped`]) around every poll — the task-local
//! generalised to survive suspension. Executors wrap each spawned future
//! in a `Scoped`; everything the future does between two yield points runs
//! as that task, exactly as a `Runtime`-spawned OS thread would.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

use armus_sync::ctx::{self, TaskCtx};
use armus_sync::TaskId;

/// A future that always polls with `task` installed as the current task
/// context. See the [module docs](self).
pub struct Scoped<F> {
    task: Arc<TaskCtx>,
    // Boxed so `Scoped` is `Unpin` and polling needs no pin projection.
    inner: Pin<Box<F>>,
}

impl<F: Future> Scoped<F> {
    /// Wraps `fut` so every poll runs as `task`.
    pub fn new(task: Arc<TaskCtx>, fut: F) -> Scoped<F> {
        Scoped { task, inner: Box::pin(fut) }
    }

    /// The task identity this future runs as.
    pub fn task(&self) -> &Arc<TaskCtx> {
        &self.task
    }

    /// The task's id.
    pub fn id(&self) -> TaskId {
        self.task.id()
    }
}

/// Runs `fut` as a fresh task identity (the async analogue of spawning an
/// unregistered task).
pub fn scoped_fresh<F: Future>(fut: F) -> Scoped<F> {
    Scoped::new(TaskCtx::fresh(), fut)
}

impl<F: Future> Future for Scoped<F> {
    type Output = F::Output;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<F::Output> {
        let this = self.get_mut();
        ctx::scoped(&this.task, || this.inner.as_mut().poll(cx))
    }
}
