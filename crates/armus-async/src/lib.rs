//! # armus-async
//!
//! The async front-end of the Armus reproduction: `Future`-returning
//! phaser / barrier / latch / clock ops over the sync crate's
//! `begin_await` / `poll_await` wait machine, plus a minimal executor
//! that threads task identity through spawn points. A blocked task parks
//! a **waker** with the phaser (woken exactly once when its wait's fate
//! resolves) instead of an OS thread — so a bounded worker pool verifies
//! millions of in-flight tasks where the thread-per-task front-end tops
//! out at the OS thread limit.
//!
//! The avoidance check runs inline at `begin_await` exactly as on the
//! sync path; verifier decisions and deadlock reports are identical
//! between front-ends (proven byte-for-byte by the testkit's differential
//! oracle).
//!
//! ## Example
//!
//! ```
//! use armus_async::prelude::*;
//! use armus_sync::{Phaser, Runtime};
//!
//! let rt = Runtime::avoidance();
//! let exec = Executor::new(2);
//! let ph = Phaser::new(&rt); // calling task registered at phase 0
//!
//! // Identity flows through the spawn like `Runtime::spawn_clocked`:
//! // each child is registered at the spawning task's phase.
//! let workers: Vec<_> = (0..8)
//!     .map(|_| {
//!         let ph2 = ph.clone();
//!         exec.spawn_clocked(&[&ph], async move {
//!             for _ in 0..10 {
//!                 ph2.advance_async().await.unwrap();
//!             }
//!             ph2.deregister().unwrap();
//!         })
//!     })
//!     .collect();
//!
//! ph.deregister().unwrap(); // the spawner leaves; workers sync alone
//! for handle in workers {
//!     handle.join().unwrap();
//! }
//! assert!(!rt.verifier().found_deadlock());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod future;
pub mod ops;
pub mod scope;

pub use executor::{Executor, JoinHandle, TaskResult};
pub use future::{Advance, AwaitPhase};
pub use ops::{AsyncBarrier, AsyncClock, AsyncClockedVar, AsyncLatch, AsyncPhaser};
pub use scope::{scoped_fresh, Scoped};

/// The traits and types async Armus programs need.
pub mod prelude {
    pub use crate::executor::{Executor, JoinHandle};
    pub use crate::ops::{AsyncBarrier, AsyncClock, AsyncClockedVar, AsyncLatch, AsyncPhaser};
    pub use crate::scope::Scoped;
}
