//! Graph-model selection: fixed WFG, fixed SG, or the paper's adaptive
//! scheme (§5.1).
//!
//! In `Auto` mode the verifier optimistically builds the SG incrementally;
//! if at any point there are more SG edges than `threshold ×` the number of
//! blocked tasks processed so far, the SG is abandoned and a WFG is built
//! instead. The paper fixes `threshold = 2`, "obtained based on experiments
//! on the available benchmarks" — the `adaptive_threshold` bench ablates it.

use crate::deps::Snapshot;
use crate::graph::DiGraph;
use crate::ids::TaskId;
use crate::index::SnapshotIndex;
use crate::resource::Resource;
use crate::sg::{add_task_edges, sg_indexed};
use crate::wfg::wfg_indexed;

use serde::{Deserialize, Serialize};

/// The two concrete graph models of §4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphModel {
    /// Wait-For Graph (task vertices).
    Wfg,
    /// State Graph (event vertices).
    Sg,
}

impl std::fmt::Display for GraphModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphModel::Wfg => write!(f, "WFG"),
            GraphModel::Sg => write!(f, "SG"),
        }
    }
}

/// How the verifier picks a graph model (paper: "fixed or automatic").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelChoice {
    /// Always the WFG — the state-of-the-art baseline.
    FixedWfg,
    /// Always the SG.
    FixedSg,
    /// SG first, abort to WFG past the size threshold.
    Auto,
}

impl std::fmt::Display for ModelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelChoice::FixedWfg => write!(f, "WFG"),
            ModelChoice::FixedSg => write!(f, "SG"),
            ModelChoice::Auto => write!(f, "Auto"),
        }
    }
}

/// The paper's experimentally chosen SG-abort multiplier.
pub const DEFAULT_SG_THRESHOLD: usize = 2;

/// The final-state form of the adaptive rule, shared with the incremental
/// engine (which maintains both models and therefore selects *after the
/// fact* instead of aborting mid-construction): keep the SG while its edge
/// count is at most `threshold ×` the number of blocked tasks.
///
/// The from-scratch builder's prefix-abort can differ on states where an
/// early prefix exceeded the threshold but the final counts do not; both
/// rules are calibrated by the same multiplier and, by Theorem 4.8, the
/// verdict is model-independent either way.
pub fn auto_pick(sg_edges: usize, blocked_tasks: usize, threshold: usize) -> GraphModel {
    if sg_edges <= threshold * blocked_tasks {
        GraphModel::Sg
    } else {
        GraphModel::Wfg
    }
}

/// Result of building the analysis graph for one check.
pub struct BuiltGraph {
    /// Which model the finished graph uses.
    pub model: GraphModel,
    /// The WFG, when `model == Wfg`.
    pub wfg: Option<DiGraph<TaskId>>,
    /// The SG, when `model == Sg`.
    pub sg: Option<DiGraph<Resource>>,
    /// In `Auto` mode, the number of SG edges built before aborting
    /// (`None` when the SG was kept or never attempted).
    pub sg_aborted_at: Option<usize>,
}

impl BuiltGraph {
    /// Edge count of the graph that was kept.
    pub fn edge_count(&self) -> usize {
        match self.model {
            GraphModel::Wfg => self.wfg.as_ref().map(|g| g.edge_count()).unwrap_or(0),
            GraphModel::Sg => self.sg.as_ref().map(|g| g.edge_count()).unwrap_or(0),
        }
    }

    /// Node count of the graph that was kept.
    pub fn node_count(&self) -> usize {
        match self.model {
            GraphModel::Wfg => self.wfg.as_ref().map(|g| g.node_count()).unwrap_or(0),
            GraphModel::Sg => self.sg.as_ref().map(|g| g.node_count()).unwrap_or(0),
        }
    }
}

/// Builds the analysis graph for `snapshot` under the given selection mode.
pub fn build(snapshot: &Snapshot, choice: ModelChoice, threshold: usize) -> BuiltGraph {
    let idx = SnapshotIndex::new(snapshot);
    build_indexed(snapshot, &idx, choice, threshold)
}

/// As [`build`], reusing a prebuilt index.
pub fn build_indexed(
    snapshot: &Snapshot,
    idx: &SnapshotIndex,
    choice: ModelChoice,
    threshold: usize,
) -> BuiltGraph {
    match choice {
        ModelChoice::FixedWfg => BuiltGraph {
            model: GraphModel::Wfg,
            wfg: Some(wfg_indexed(snapshot, idx)),
            sg: None,
            sg_aborted_at: None,
        },
        ModelChoice::FixedSg => BuiltGraph {
            model: GraphModel::Sg,
            wfg: None,
            sg: Some(sg_indexed(snapshot, idx)),
            sg_aborted_at: None,
        },
        ModelChoice::Auto => {
            // Incremental SG build with the abort threshold: "the size
            // threshold is reached if at any time there are more SG-edges
            // than twice the number of tasks processed thus far."
            let mut g = DiGraph::with_capacity(idx.wait_resources.len());
            for &r in &idx.wait_resources {
                g.add_node(r);
            }
            let mut processed = 0usize;
            for info in &snapshot.tasks {
                add_task_edges(&mut g, idx, info);
                processed += 1;
                if g.edge_count() > threshold * processed {
                    let aborted = g.edge_count();
                    return BuiltGraph {
                        model: GraphModel::Wfg,
                        wfg: Some(wfg_indexed(snapshot, idx)),
                        sg: None,
                        sg_aborted_at: Some(aborted),
                    };
                }
            }
            BuiltGraph { model: GraphModel::Sg, wfg: None, sg: Some(g), sg_aborted_at: None }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::BlockedInfo;
    use crate::ids::PhaserId;
    use crate::resource::Registration;

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }
    fn r(ph: u64, n: u64) -> Resource {
        Resource::new(p(ph), n)
    }

    /// Many tasks, one barrier: SG is tiny, Auto must keep the SG.
    fn spmd_snapshot(n: u64) -> Snapshot {
        let tasks = (0..n)
            .map(|i| {
                // Everyone arrived phase 1 except task 0 (phase 0),
                // so I(p1@1) = {t0} and SG edges exist but are few.
                let phase = if i == 0 { 0 } else { 1 };
                BlockedInfo::new(t(i), vec![r(1, 1)], vec![Registration::new(p(1), phase)])
            })
            .collect();
        Snapshot::from_tasks(tasks)
    }

    /// Few tasks, many barriers each: SG explodes, Auto must switch to WFG.
    fn many_barrier_snapshot(tasks: u64, barriers: u64) -> Snapshot {
        let infos = (0..tasks)
            .map(|i| {
                // Each task waits one event but is registered (lagging) on
                // every barrier, impeding `barriers` awaited events.
                let regs = (0..barriers).map(|b| Registration::new(p(b), 0)).collect();
                BlockedInfo::new(t(i), vec![r(i % barriers, 1)], regs)
            })
            .collect();
        Snapshot::from_tasks(infos)
    }

    #[test]
    fn auto_keeps_sg_for_spmd() {
        let snap = spmd_snapshot(64);
        let built = build(&snap, ModelChoice::Auto, DEFAULT_SG_THRESHOLD);
        assert_eq!(built.model, GraphModel::Sg);
        assert!(built.sg_aborted_at.is_none());
        // SG has exactly 1 vertex here.
        assert_eq!(built.node_count(), 1);
    }

    #[test]
    fn auto_switches_to_wfg_when_sg_explodes() {
        let snap = many_barrier_snapshot(4, 64);
        let built = build(&snap, ModelChoice::Auto, DEFAULT_SG_THRESHOLD);
        assert_eq!(built.model, GraphModel::Wfg);
        let aborted = built.sg_aborted_at.expect("must have attempted SG");
        assert!(aborted > 0);
        // The abort happened early: strictly fewer SG edges were built than
        // the full SG contains.
        let full_sg = crate::sg::sg(&snap);
        assert!(aborted <= full_sg.edge_count());
    }

    #[test]
    fn fixed_modes_build_the_requested_model() {
        let snap = spmd_snapshot(8);
        let w = build(&snap, ModelChoice::FixedWfg, DEFAULT_SG_THRESHOLD);
        assert_eq!(w.model, GraphModel::Wfg);
        assert!(w.wfg.is_some() && w.sg.is_none());
        let s = build(&snap, ModelChoice::FixedSg, DEFAULT_SG_THRESHOLD);
        assert_eq!(s.model, GraphModel::Sg);
        assert!(s.sg.is_some() && s.wfg.is_none());
    }

    #[test]
    fn auto_on_empty_snapshot_is_sg() {
        let built = build(&Snapshot::empty(), ModelChoice::Auto, DEFAULT_SG_THRESHOLD);
        assert_eq!(built.model, GraphModel::Sg);
        assert_eq!(built.edge_count(), 0);
    }

    #[test]
    fn threshold_one_is_stricter_than_threshold_eight() {
        // With a barely-super-linear SG, a strict threshold aborts while a
        // lax one keeps the SG.
        let snap = many_barrier_snapshot(8, 3);
        let strict = build(&snap, ModelChoice::Auto, 1);
        let lax = build(&snap, ModelChoice::Auto, 1000);
        assert_eq!(strict.model, GraphModel::Wfg);
        assert_eq!(lax.model, GraphModel::Sg);
    }

    #[test]
    fn kept_graph_matches_direct_construction() {
        for snap in [spmd_snapshot(16), many_barrier_snapshot(3, 32)] {
            let built = build(&snap, ModelChoice::Auto, DEFAULT_SG_THRESHOLD);
            match built.model {
                GraphModel::Sg => {
                    let direct = crate::sg::sg(&snap);
                    let kept = built.sg.unwrap();
                    assert_eq!(kept.edge_count(), direct.edge_count());
                    assert_eq!(kept.node_count(), direct.node_count());
                }
                GraphModel::Wfg => {
                    let direct = crate::wfg::wfg(&snap);
                    let kept = built.wfg.unwrap();
                    assert_eq!(kept.edge_count(), direct.edge_count());
                    assert_eq!(kept.node_count(), direct.node_count());
                }
            }
        }
    }
}
