//! Wait-For Graph construction (Definition 4.2).
//!
//! The WFG is *task-centric*: an edge `t1 → t2` states that task `t1` waits
//! for task `t2` to synchronise — i.e. there exists a resource `r` with
//! `r ∈ W(t1)` and `t2 ∈ I(r)` (Lemma 4.9: `t1` awaits `res(p, n)` and
//! `M(p)(t2) < n`).

use crate::deps::Snapshot;
use crate::graph::DiGraph;
use crate::ids::TaskId;
use crate::index::SnapshotIndex;

/// Builds the WFG of a snapshot: `wfg(I, W)`.
pub fn wfg(snapshot: &Snapshot) -> DiGraph<TaskId> {
    let idx = SnapshotIndex::new(snapshot);
    wfg_indexed(snapshot, &idx)
}

/// WFG construction reusing a prebuilt [`SnapshotIndex`].
pub fn wfg_indexed(snapshot: &Snapshot, idx: &SnapshotIndex) -> DiGraph<TaskId> {
    let mut g = DiGraph::with_capacity(snapshot.len());
    // Every blocked task is a vertex even if isolated: Definition 4.2 takes
    // the vertex set to be the tasks.
    for info in &snapshot.tasks {
        g.add_node(info.task);
    }
    for info in &snapshot.tasks {
        for &w in &info.waits {
            for t2 in idx.impeders(w) {
                g.add_edge(info.task, t2);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::BlockedInfo;
    use crate::ids::PhaserId;
    use crate::resource::{Registration, Resource};

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }
    fn r(ph: u64, n: u64) -> Resource {
        Resource::new(p(ph), n)
    }

    /// Paper Example 4.1 / Figure 5a.
    fn example_4_1() -> Snapshot {
        let worker = |task: u64| {
            BlockedInfo::new(
                t(task),
                vec![r(1, 1)],
                vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
            )
        };
        let driver = BlockedInfo::new(
            t(4),
            vec![r(2, 1)],
            vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
        );
        Snapshot::from_tasks(vec![worker(1), worker(2), worker(3), driver])
    }

    #[test]
    fn figure_5a_edges() {
        let g = wfg(&example_4_1());
        // {(t1,t4),(t2,t4),(t3,t4),(t4,t1),(t4,t2),(t4,t3)}
        assert_eq!(g.edge_count(), 6);
        for i in 1..=3 {
            assert!(g.has_edge(t(i), t(4)));
            assert!(g.has_edge(t(4), t(i)));
        }
        assert!(!g.has_edge(t(1), t(2)));
        assert!(g.find_cycle().is_some());
    }

    #[test]
    fn vertex_set_is_all_blocked_tasks() {
        let snap = Snapshot::from_tasks(vec![BlockedInfo::new(
            t(1),
            vec![r(1, 1)],
            vec![Registration::new(p(1), 1)],
        )]);
        let g = wfg(&snap);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn lemma_4_9_edge_characterisation() {
        // (t1, t2) ∈ E iff t1 awaits res(p, n) and M(p)(t2) < n.
        let snap = Snapshot::from_tasks(vec![
            BlockedInfo::new(t(1), vec![r(1, 3)], vec![Registration::new(p(1), 3)]),
            BlockedInfo::new(
                t(2),
                vec![r(2, 1)],
                vec![
                    Registration::new(p(1), 2), // behind t1's wait ⇒ edge t1→t2
                    Registration::new(p(2), 1),
                ],
            ),
            BlockedInfo::new(
                t(3),
                vec![r(2, 1)],
                vec![
                    Registration::new(p(1), 3), // NOT behind ⇒ no edge t1→t3
                    Registration::new(p(2), 0), // behind t2's wait ⇒ t2→t3 and t3→t3? no:
                ],
            ),
        ]);
        let g = wfg(&snap);
        assert!(g.has_edge(t(1), t(2)));
        assert!(!g.has_edge(t(1), t(3)));
        assert!(g.has_edge(t(2), t(3)));
        // t3 waits p2@1 and itself lags on p2 (phase 0 < 1): self-edge.
        assert!(g.has_edge(t(3), t(3)));
    }

    #[test]
    fn self_wait_on_own_unarrived_phase_is_self_deadlock() {
        // A task waiting for a phase it has itself not arrived at impedes
        // its own wait: the WFG has a self-loop and a cycle is reported.
        let snap = Snapshot::from_tasks(vec![BlockedInfo::new(
            t(1),
            vec![r(1, 5)],
            vec![Registration::new(p(1), 2)],
        )]);
        let g = wfg(&snap);
        assert!(g.has_edge(t(1), t(1)));
        assert_eq!(g.find_cycle(), Some(vec![t(1), t(1)]));
    }

    #[test]
    fn empty_snapshot_yields_empty_graph() {
        let g = wfg(&Snapshot::empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn non_lagging_members_produce_no_edges() {
        // Two tasks both arrived at phase 1 waiting for each other's phaser:
        // no one lags, no edges (they are actually releasable).
        let snap = Snapshot::from_tasks(vec![
            BlockedInfo::new(t(1), vec![r(1, 1)], vec![Registration::new(p(1), 1)]),
            BlockedInfo::new(t(2), vec![r(1, 1)], vec![Registration::new(p(1), 1)]),
        ]);
        let g = wfg(&snap);
        assert_eq!(g.edge_count(), 0);
    }
}
