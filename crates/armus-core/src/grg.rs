//! General Resource Graph construction (Definition 4.4, after Holt).
//!
//! The GRG is *bipartite*: task vertices and resource vertices, with an
//! edge `(t, r)` for every `r ∈ W(t)` (waits) and `(r, t)` for every
//! `t ∈ I(r)` (impedes). It bridges the WFG and the SG: contracting
//! resource vertices yields the WFG, contracting task vertices yields the
//! SG (Lemmas 4.5/4.6), which is how the equivalence theorem (4.8) is
//! proved — and how it is property-tested here.

use std::fmt;

use crate::deps::Snapshot;
use crate::graph::DiGraph;
use crate::ids::TaskId;
use crate::index::SnapshotIndex;
use crate::resource::Resource;

/// A GRG vertex: either a task or a resource.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GrgNode {
    /// A task vertex.
    Task(TaskId),
    /// A resource (synchronisation event) vertex.
    Res(Resource),
}

impl fmt::Debug for GrgNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrgNode::Task(t) => write!(f, "{t}"),
            GrgNode::Res(r) => write!(f, "{r}"),
        }
    }
}

/// Builds the GRG of a snapshot: `grg(I, W)`.
pub fn grg(snapshot: &Snapshot) -> DiGraph<GrgNode> {
    let idx = SnapshotIndex::new(snapshot);
    grg_indexed(snapshot, &idx)
}

/// GRG construction reusing a prebuilt [`SnapshotIndex`].
pub fn grg_indexed(snapshot: &Snapshot, idx: &SnapshotIndex) -> DiGraph<GrgNode> {
    let mut g = DiGraph::with_capacity(snapshot.len() + idx.wait_resources.len());
    for info in &snapshot.tasks {
        g.add_node(GrgNode::Task(info.task));
    }
    for &r in &idx.wait_resources {
        g.add_node(GrgNode::Res(r));
    }
    for info in &snapshot.tasks {
        // Wait edges (t, r).
        for &w in &info.waits {
            g.add_edge(GrgNode::Task(info.task), GrgNode::Res(w));
        }
        // Impede edges (r, t): r ranges over awaited events this task lags.
        for reg in &info.registered {
            for &r in idx.impeded_waits(reg.phaser, reg.local_phase) {
                g.add_edge(GrgNode::Res(r), GrgNode::Task(info.task));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::BlockedInfo;
    use crate::ids::PhaserId;
    use crate::resource::Registration;

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }
    fn r(ph: u64, n: u64) -> Resource {
        Resource::new(p(ph), n)
    }

    /// Paper Example 4.1 / Figure 5b.
    fn example_4_1() -> Snapshot {
        let worker = |task: u64| {
            BlockedInfo::new(
                t(task),
                vec![r(1, 1)],
                vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
            )
        };
        let driver = BlockedInfo::new(
            t(4),
            vec![r(2, 1)],
            vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
        );
        Snapshot::from_tasks(vec![worker(1), worker(2), worker(3), driver])
    }

    #[test]
    fn figure_5b_edges() {
        let g = grg(&example_4_1());
        // Wait edges: (t1,r1) (t2,r1) (t3,r1) (t4,r2)
        for i in 1..=3 {
            assert!(g.has_edge(GrgNode::Task(t(i)), GrgNode::Res(r(1, 1))));
        }
        assert!(g.has_edge(GrgNode::Task(t(4)), GrgNode::Res(r(2, 1))));
        // Impede edges: (r1,t4) and (r2,t1) (r2,t2) (r2,t3)
        assert!(g.has_edge(GrgNode::Res(r(1, 1)), GrgNode::Task(t(4))));
        for i in 1..=3 {
            assert!(g.has_edge(GrgNode::Res(r(2, 1)), GrgNode::Task(t(i))));
        }
        assert_eq!(g.edge_count(), 8);
        assert!(g.find_cycle().is_some());
    }

    #[test]
    fn lemma_4_5_wfg_walk_iff_grg_walk() {
        // t1t2 is a WFG walk iff t1 r t2 is a GRG walk for some r.
        let snap = example_4_1();
        let wfg_g = crate::wfg::wfg(&snap);
        let grg_g = grg(&snap);
        for &t1 in wfg_g.nodes() {
            for &t2 in wfg_g.nodes() {
                let wfg_edge = wfg_g.has_edge(t1, t2);
                let via_resource = grg_g.nodes().iter().any(|&n| match n {
                    GrgNode::Res(r) => {
                        grg_g.has_edge(GrgNode::Task(t1), GrgNode::Res(r))
                            && grg_g.has_edge(GrgNode::Res(r), GrgNode::Task(t2))
                    }
                    _ => false,
                });
                assert_eq!(wfg_edge, via_resource, "mismatch for {t1}→{t2}");
            }
        }
    }

    #[test]
    fn lemma_4_6_sg_walk_iff_grg_walk() {
        // r1r2 is an SG walk iff r1 t r2 is a GRG walk for some t.
        let snap = example_4_1();
        let sg_g = crate::sg::sg(&snap);
        let grg_g = grg(&snap);
        for &r1 in sg_g.nodes() {
            for &r2 in sg_g.nodes() {
                let sg_edge = sg_g.has_edge(r1, r2);
                let via_task = grg_g.nodes().iter().any(|&n| match n {
                    GrgNode::Task(tk) => {
                        grg_g.has_edge(GrgNode::Res(r1), GrgNode::Task(tk))
                            && grg_g.has_edge(GrgNode::Task(tk), GrgNode::Res(r2))
                    }
                    _ => false,
                });
                assert_eq!(sg_edge, via_task, "mismatch for {r1}→{r2}");
            }
        }
    }

    #[test]
    fn grg_is_bipartite() {
        let g = grg(&example_4_1());
        for &n1 in g.nodes() {
            for &n2 in g.nodes() {
                if g.has_edge(n1, n2) {
                    match (n1, n2) {
                        (GrgNode::Task(_), GrgNode::Res(_))
                        | (GrgNode::Res(_), GrgNode::Task(_)) => {}
                        _ => panic!("non-bipartite edge {n1:?} → {n2:?}"),
                    }
                }
            }
        }
    }
}
