//! Synchronisation events (the paper's *resources*).
//!
//! A resource `res(p, n)` is the event "phase `n` of phaser `p` is
//! observed" — a timestamp `n` of the logical clock associated with phaser
//! `p` (paper §2.2, §4.1). `res` is a bijection between resources and
//! `(phaser, phase)` pairs, which is exactly what this struct encodes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{Phase, PhaserId};

/// A synchronisation event `res(p, n)`: phase `n` of phaser `p`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Resource {
    /// The phaser (logical clock) the event belongs to.
    pub phaser: PhaserId,
    /// The phase (timestamp) of the event.
    pub phase: Phase,
}

impl Resource {
    /// Constructs the resource `res(p, n)`.
    pub fn new(phaser: PhaserId, phase: Phase) -> Resource {
        Resource { phaser, phase }
    }

    /// The event one phase later on the same phaser.
    pub fn next(self) -> Resource {
        Resource { phaser: self.phaser, phase: self.phase + 1 }
    }
}

impl fmt::Debug for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.phaser, self.phase)
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.phaser, self.phase)
    }
}

/// A registration record published by a blocked task: "my local phase on
/// phaser `q` is `m`". Under the event-based representation this single pair
/// finitely describes the *infinite* set of events the task impedes: every
/// `res(q, n)` with `n > m` (Definition 4.1's map `I`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Registration {
    /// Phaser the task is registered with.
    pub phaser: PhaserId,
    /// The task's local phase on that phaser.
    pub local_phase: Phase,
}

impl Registration {
    /// Constructs a registration record.
    pub fn new(phaser: PhaserId, local_phase: Phase) -> Registration {
        Registration { phaser, local_phase }
    }

    /// Does this registration impede the given event? True iff the event is
    /// on the same phaser at a strictly later phase than our local phase
    /// (the task has not yet arrived at that event).
    pub fn impedes(&self, r: Resource) -> bool {
        self.phaser == r.phaser && self.local_phase < r.phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }

    #[test]
    fn resource_identity_is_pair_identity() {
        assert_eq!(Resource::new(p(1), 3), Resource::new(p(1), 3));
        assert_ne!(Resource::new(p(1), 3), Resource::new(p(1), 4));
        assert_ne!(Resource::new(p(1), 3), Resource::new(p(2), 3));
    }

    #[test]
    fn next_advances_phase_only() {
        let r = Resource::new(p(5), 7).next();
        assert_eq!(r, Resource::new(p(5), 8));
    }

    #[test]
    fn registration_impedes_strictly_later_phases() {
        let reg = Registration::new(p(1), 4);
        assert!(!reg.impedes(Resource::new(p(1), 3)));
        assert!(!reg.impedes(Resource::new(p(1), 4)));
        assert!(reg.impedes(Resource::new(p(1), 5)));
        assert!(reg.impedes(Resource::new(p(1), 1000)));
    }

    #[test]
    fn registration_never_impedes_other_phasers() {
        let reg = Registration::new(p(1), 0);
        assert!(!reg.impedes(Resource::new(p(2), 100)));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Resource::new(p(3), 2).to_string(), "p3@2");
    }

    #[test]
    fn resources_order_by_phaser_then_phase() {
        let mut v = vec![Resource::new(p(2), 0), Resource::new(p(1), 9), Resource::new(p(1), 2)];
        v.sort();
        assert_eq!(
            v,
            vec![Resource::new(p(1), 2), Resource::new(p(1), 9), Resource::new(p(2), 0),]
        );
    }
}
