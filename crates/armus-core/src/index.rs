//! A phaser-keyed index over a [`Snapshot`], shared by the WFG/SG/GRG
//! constructions so each graph build is a single pass over blocked tasks.
//! (The incremental engine maintains the same two mappings *persistently*,
//! updated per delta; this index is the one-shot equivalent used by the
//! from-scratch oracle builds and the canonical report path.)

use std::collections::{HashMap, HashSet};

use crate::deps::Snapshot;
use crate::ids::{Phase, PhaserId, TaskId};
use crate::resource::Resource;

/// Index over a snapshot:
/// * `regs_by_phaser`: for each phaser, the (blocked task, local phase)
///   registrations — the finite representation of `I`;
/// * `waits_by_phaser`: for each phaser, the awaited events on it, sorted
///   by phase — the range of `W` (and the vertex set of the SG).
pub struct SnapshotIndex {
    /// Per phaser, the (blocked task, local phase) registrations.
    pub regs_by_phaser: HashMap<PhaserId, Vec<(TaskId, Phase)>>,
    /// Per phaser, the awaited events on it, sorted by phase.
    pub waits_by_phaser: HashMap<PhaserId, Vec<Resource>>,
    /// All distinct awaited events (SG vertex set), in first-seen order.
    pub wait_resources: Vec<Resource>,
}

impl SnapshotIndex {
    /// Builds the index in `O(Σ |waits| + Σ |registered|)` plus sorting.
    pub fn new(snapshot: &Snapshot) -> SnapshotIndex {
        let mut regs_by_phaser: HashMap<PhaserId, Vec<(TaskId, Phase)>> = HashMap::new();
        let mut waits_by_phaser: HashMap<PhaserId, Vec<Resource>> = HashMap::new();
        let mut wait_resources = Vec::new();
        let mut seen: HashSet<Resource> = HashSet::new();

        for info in &snapshot.tasks {
            for reg in &info.registered {
                regs_by_phaser.entry(reg.phaser).or_default().push((info.task, reg.local_phase));
            }
            for &w in &info.waits {
                if seen.insert(w) {
                    wait_resources.push(w);
                    waits_by_phaser.entry(w.phaser).or_default().push(w);
                }
            }
        }
        for list in waits_by_phaser.values_mut() {
            list.sort_by_key(|r| r.phase);
        }
        SnapshotIndex { regs_by_phaser, waits_by_phaser, wait_resources }
    }

    /// The awaited events on `phaser` with phase strictly greater than
    /// `local_phase`: exactly the (relevant) events a task registered at
    /// `local_phase` impedes.
    pub fn impeded_waits(&self, phaser: PhaserId, local_phase: Phase) -> &[Resource] {
        match self.waits_by_phaser.get(&phaser) {
            None => &[],
            Some(list) => {
                let start = list.partition_point(|r| r.phase <= local_phase);
                &list[start..]
            }
        }
    }

    /// The blocked tasks registered on `resource.phaser` with local phase
    /// below `resource.phase`: the blocked part of `I(resource)`.
    pub fn impeders<'a>(&'a self, resource: Resource) -> impl Iterator<Item = TaskId> + 'a {
        self.regs_by_phaser
            .get(&resource.phaser)
            .into_iter()
            .flatten()
            .filter(move |&&(_, m)| m < resource.phase)
            .map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::BlockedInfo;
    use crate::resource::Registration;

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }
    fn r(ph: u64, n: u64) -> Resource {
        Resource::new(p(ph), n)
    }

    fn example_snapshot() -> Snapshot {
        // The paper's Example 4.1: t1..t3 wait pc@1 (registered pc@... ),
        // t4 waits pb@1. pc = p(1), pb = p(2).
        let mk = |task: u64, wait: Resource, regs: Vec<Registration>| {
            BlockedInfo::new(t(task), vec![wait], regs)
        };
        Snapshot::from_tasks(vec![
            mk(1, r(1, 1), vec![Registration::new(p(1), 1), Registration::new(p(2), 0)]),
            mk(2, r(1, 1), vec![Registration::new(p(1), 1), Registration::new(p(2), 0)]),
            mk(3, r(1, 1), vec![Registration::new(p(1), 1), Registration::new(p(2), 0)]),
            mk(4, r(2, 1), vec![Registration::new(p(1), 0), Registration::new(p(2), 1)]),
        ])
    }

    #[test]
    fn wait_resources_are_distinct() {
        let idx = SnapshotIndex::new(&example_snapshot());
        assert_eq!(idx.wait_resources.len(), 2);
        assert!(idx.wait_resources.contains(&r(1, 1)));
        assert!(idx.wait_resources.contains(&r(2, 1)));
    }

    #[test]
    fn impeders_of_pc_phase1_is_t4() {
        let idx = SnapshotIndex::new(&example_snapshot());
        let imp: Vec<_> = idx.impeders(r(1, 1)).collect();
        assert_eq!(imp, vec![t(4)]);
    }

    #[test]
    fn impeders_of_pb_phase1_are_workers() {
        let idx = SnapshotIndex::new(&example_snapshot());
        let mut imp: Vec<_> = idx.impeders(r(2, 1)).collect();
        imp.sort();
        assert_eq!(imp, vec![t(1), t(2), t(3)]);
    }

    #[test]
    fn impeded_waits_respects_strict_inequality() {
        let idx = SnapshotIndex::new(&example_snapshot());
        // t4 is registered on p1 at phase 0, so it impedes p1@1.
        assert_eq!(idx.impeded_waits(p(1), 0), &[r(1, 1)]);
        // Workers are registered on p1 at phase 1: they impede nothing on p1.
        assert_eq!(idx.impeded_waits(p(1), 1), &[] as &[Resource]);
        // Unknown phaser: nothing.
        assert_eq!(idx.impeded_waits(p(9), 0), &[] as &[Resource]);
    }
}
