//! The Armus verification engine (paper §5.1): a blocked-task registry, a
//! deadlock checker, and the two verification modes.
//!
//! * **Avoidance**: each blocking operation first publishes its blocked
//!   status and runs a check; if the block would complete a cycle the
//!   operation is interrupted with a [`DeadlockError`] instead of blocking.
//! * **Detection**: blocking operations only publish their status; a
//!   dedicated monitor thread samples the registry periodically, runs the
//!   check, and *confirms* any cycle against per-task blocking epochs
//!   before reporting (sampling is racy; a task may have unblocked since
//!   the snapshot was taken).
//!
//! Both modes check against the [`IncrementalEngine`]'s persistently
//! maintained graph: a check consumes only the registry's journal deltas
//! since the previous check instead of cloning the registry and rebuilding
//! from scratch, so its cost tracks the *churn* since the last check, not
//! the number of blocked tasks.
//!
//! The avoidance hot path scales across cores through two mechanisms:
//!
//! * **Resource-cardinality fast path.** A deadlock cycle among tasks
//!   that do not impede their own waits spans at least two distinct
//!   awaited resources (every member of a one-resource WFG cycle both
//!   waits on and impedes that resource). The registry maintains an
//!   atomic count of distinct awaited resources; a blocker that counts
//!   fewer than two — and does not impede its own waits — returns "no
//!   cycle possible" without ever touching the engine lock. The common
//!   SPMD case (every task blocked on the *same* barrier event) never
//!   serialises.
//! * **Flat combining on the engine lock.** A blocker that finds the
//!   engine lock held does not convoy on it: it enqueues its check
//!   request and spins politely; the current lock holder drains the queue
//!   before releasing — one journal sync amortised over the whole batch —
//!   and publishes each outcome to its waiter.
//!
//! Reports are retained for inspection and forwarded to subscribers (the
//! runtime layer uses a subscriber to implement deadlock *recovery*).
//! Subscriber callbacks run on a snapshot of the subscriber list, outside
//! the list lock, so a callback may itself subscribe, probe, or otherwise
//! re-enter the verifier without self-deadlocking.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::adaptive::{ModelChoice, DEFAULT_SG_THRESHOLD};
use crate::checker::{self, CheckOutcome, DeadlockReport, ReportDedup};
use crate::deps::{BlockedInfo, JournalRead, Registry, Snapshot};
use crate::engine::{IncrementalEngine, SyncOutcome};
use crate::error::DeadlockError;
use crate::ids::TaskId;
use crate::resource::{Registration, Resource};
use crate::stats::{StatsCollector, StatsSnapshot};

/// Verification mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyMode {
    /// No verification: blocking operations pay nothing.
    Disabled,
    /// Check before every block; raise [`DeadlockError`] instead of
    /// deadlocking.
    Avoidance,
    /// Publish blocked status; a monitor thread checks every `period`.
    Detection {
        /// Sampling period of the monitor thread (paper: 100 ms locally,
        /// 200 ms distributed).
        period: Duration,
    },
    /// Maintain the blocked-status registry but run no checks: the
    /// distributed layer periodically pulls [`Verifier::local_snapshot`]
    /// as this site's partition of the global resource-dependency
    /// (paper §5.2) and checks the merged view itself.
    PublishOnly,
}

/// A static-analysis verdict handed to the verifier ahead of execution.
///
/// Produced by a whole-program analysis (e.g. `armus_pl::analysis`) that
/// ran *before* any task blocked. The verifier trusts the hint: a
/// `ProvedSafe` program's avoidance blocks publish their status (peers and
/// distributed checkers still see them) but skip the deadlock check
/// entirely, counted in [`StatsSnapshot::static_skips`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StaticHint {
    /// No static information: every check runs as usual.
    #[default]
    None,
    /// The program was statically proved deadlock-free: avoidance checks
    /// are pure overhead and are skipped.
    ProvedSafe,
}

/// Verifier configuration.
#[derive(Clone, Copy, Debug)]
pub struct VerifierConfig {
    /// Verification mode.
    pub mode: VerifyMode,
    /// Graph-model selection.
    pub model: ModelChoice,
    /// SG-abort multiplier for `Auto` (paper default: 2).
    pub sg_threshold: usize,
    /// Journal window of the underlying registry. Small values force the
    /// engine's `Behind`/resync branch deterministically (testkit hook).
    pub journal_capacity: usize,
    /// Shard count of the underlying registry (testkit hook; the default
    /// is [`crate::deps::DEFAULT_SHARDS`]).
    pub shards: usize,
    /// Whether avoidance uses the resource-cardinality fast path. Off, a
    /// single-resource block runs a full engine check like any other —
    /// used by the differential testkit to exercise both code paths.
    pub fastpath: bool,
    /// Node count above which full checks parallelise their existence
    /// pass (defaults to [`crate::engine::PAR_NODE_THRESHOLD`]; a small
    /// value makes the parallel branch reachable on tiny graphs).
    pub par_threshold: usize,
    /// Static-analysis verdict for the program this verifier will run
    /// (see [`StaticHint`]). `ProvedSafe` turns every avoidance check into
    /// a publish + counted skip.
    pub static_hint: StaticHint,
}

impl VerifierConfig {
    fn with_mode(mode: VerifyMode) -> Self {
        VerifierConfig {
            mode,
            model: ModelChoice::Auto,
            sg_threshold: DEFAULT_SG_THRESHOLD,
            journal_capacity: crate::deps::DEFAULT_JOURNAL_CAPACITY,
            shards: crate::deps::DEFAULT_SHARDS,
            fastpath: true,
            par_threshold: crate::engine::PAR_NODE_THRESHOLD,
            static_hint: StaticHint::None,
        }
    }

    /// Disabled verification.
    pub fn disabled() -> Self {
        Self::with_mode(VerifyMode::Disabled)
    }

    /// Avoidance with the adaptive model.
    pub fn avoidance() -> Self {
        Self::with_mode(VerifyMode::Avoidance)
    }

    /// Detection with the paper's local default period (100 ms).
    pub fn detection() -> Self {
        Self::detection_every(Duration::from_millis(100))
    }

    /// Detection with an explicit period.
    pub fn detection_every(period: Duration) -> Self {
        Self::with_mode(VerifyMode::Detection { period })
    }

    /// Publish-only: maintain the registry for an external (distributed)
    /// checker.
    pub fn publish_only() -> Self {
        Self::with_mode(VerifyMode::PublishOnly)
    }

    /// Overrides the graph model.
    pub fn with_model(mut self, model: ModelChoice) -> Self {
        self.model = model;
        self
    }

    /// Overrides the SG-abort threshold.
    pub fn with_sg_threshold(mut self, threshold: usize) -> Self {
        self.sg_threshold = threshold;
        self
    }

    /// Overrides the registry's journal window (deterministic-resync hook).
    pub fn with_journal_capacity(mut self, capacity: usize) -> Self {
        self.journal_capacity = capacity;
        self
    }

    /// Overrides the registry's shard count (deterministic-sharding hook).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables or disables the avoidance resource-cardinality fast path.
    pub fn with_fastpath(mut self, fastpath: bool) -> Self {
        self.fastpath = fastpath;
        self
    }

    /// Overrides the parallel-existence node threshold of full checks.
    pub fn with_par_threshold(mut self, threshold: usize) -> Self {
        self.par_threshold = threshold;
        self
    }

    /// Attaches a static-analysis verdict for the program about to run.
    pub fn with_static_hint(mut self, hint: StaticHint) -> Self {
        self.static_hint = hint;
        self
    }
}

type Subscriber = Arc<dyn Fn(&DeadlockReport) + Send + Sync>;

/// One enqueued avoidance check, waiting for the engine-lock holder (or
/// its own thread, whichever gets the lock first) to apply it.
struct CheckRequest {
    task: TaskId,
    /// Set (release) after `outcome` is written; the waiter acquires it.
    done: AtomicBool,
    outcome: Mutex<Option<CheckOutcome>>,
    /// Signalled by [`CheckRequest::publish`]; lets a waiter park instead
    /// of burning a core while the combiner works through its batch.
    served: Condvar,
}

impl CheckRequest {
    fn new(task: TaskId) -> Arc<CheckRequest> {
        Arc::new(CheckRequest {
            task,
            done: AtomicBool::new(false),
            outcome: Mutex::new(None),
            served: Condvar::new(),
        })
    }

    fn publish(&self, outcome: CheckOutcome) {
        *self.outcome.lock() = Some(outcome);
        self.done.store(true, Ordering::Release);
        self.served.notify_all();
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Parks until published or `timeout` elapses. The timed wake-up is
    /// load-bearing for liveness, not just latency: a combiner bounds its
    /// drain rounds, so an unserved waiter must come back to `try_lock`
    /// and serve itself.
    fn park(&self, timeout: Duration) {
        let mut slot = self.outcome.lock();
        if slot.is_none() {
            let _ = self.served.wait_for(&mut slot, timeout);
        }
    }

    fn take(&self) -> CheckOutcome {
        self.outcome.lock().take().expect("combiner published an outcome before setting done")
    }
}

/// Stop flag + wake-up for the monitor thread: shared separately from the
/// `Verifier` so (a) `shutdown` can interrupt a sleeping monitor no matter
/// how long its period is, and (b) the monitor holds no strong reference
/// to the verifier while sleeping (dropping the last user `Arc` stops it).
struct MonitorSignal {
    stop: Mutex<bool>,
    wake: Condvar,
}

impl MonitorSignal {
    fn stop_and_wake(&self) {
        *self.stop.lock() = true;
        self.wake.notify_all();
    }
}

/// The verification engine. Cheap to share (`Arc`); one per runtime or per
/// distributed site.
pub struct Verifier {
    cfg: VerifierConfig,
    registry: Registry,
    engine: Mutex<IncrementalEngine>,
    /// Check requests from blockers that found the engine lock held,
    /// served by the current holder before it releases (flat combining).
    pending: Mutex<Vec<Arc<CheckRequest>>>,
    stats: StatsCollector,
    reports: Mutex<Vec<DeadlockReport>>,
    reported: Mutex<ReportDedup>,
    subscribers: Mutex<Vec<Subscriber>>,
    signal: Arc<MonitorSignal>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Verifier {
    /// Creates a verifier; in detection mode this spawns the monitor
    /// thread, which stops when the last user `Arc` is dropped or
    /// [`Verifier::shutdown`] is called.
    pub fn new(cfg: VerifierConfig) -> Arc<Verifier> {
        // Only the avoidance fast path reads the distinct-awaited count;
        // other modes skip that bookkeeping on every block/unblock.
        let track_waited = cfg.mode == VerifyMode::Avoidance && cfg.fastpath;
        let v = Arc::new(Verifier {
            cfg,
            registry: Registry::with_config(crate::deps::RegistryConfig {
                journal_capacity: cfg.journal_capacity,
                shards: cfg.shards,
                track_waited,
            }),
            engine: Mutex::new(IncrementalEngine::with_par_threshold(cfg.par_threshold)),
            pending: Mutex::new(Vec::new()),
            stats: StatsCollector::new(),
            reports: Mutex::new(Vec::new()),
            reported: Mutex::new(ReportDedup::new()),
            subscribers: Mutex::new(Vec::new()),
            signal: Arc::new(MonitorSignal { stop: Mutex::new(false), wake: Condvar::new() }),
            monitor: Mutex::new(None),
        });
        if let VerifyMode::Detection { period } = cfg.mode {
            let weak: Weak<Verifier> = Arc::downgrade(&v);
            let signal = Arc::clone(&v.signal);
            let handle = std::thread::Builder::new()
                .name("armus-monitor".into())
                .spawn(move || monitor_loop(weak, signal, period))
                .expect("spawn armus monitor");
            *v.monitor.lock() = Some(handle);
        }
        v
    }

    /// The configuration this verifier runs with.
    pub fn config(&self) -> &VerifierConfig {
        &self.cfg
    }

    /// Is verification enabled at all?
    pub fn is_enabled(&self) -> bool {
        self.cfg.mode != VerifyMode::Disabled
    }

    /// Publishes the blocked status of a task that is about to block on
    /// `waits`, being registered at the given local phases.
    ///
    /// In avoidance mode this runs the pre-block check: on a deadlock the
    /// status is withdrawn and `Err` returned — the caller must *not*
    /// block and should deregister the task from the phaser it targeted.
    pub fn block(
        &self,
        task: TaskId,
        waits: Vec<Resource>,
        registered: Vec<Registration>,
    ) -> Result<(), DeadlockError> {
        match self.cfg.mode {
            VerifyMode::Disabled => Ok(()),
            VerifyMode::Detection { .. } | VerifyMode::PublishOnly => {
                self.stats.record_block();
                self.registry.block(BlockedInfo::new(task, waits, registered));
                Ok(())
            }
            VerifyMode::Avoidance => {
                self.stats.record_block();
                let info = BlockedInfo::new(task, waits, registered);
                // A task that impedes one of its own waits can close a
                // cycle on a single resource; everyone else needs ≥ 2
                // distinct awaited resources to be in any cycle.
                let self_impeding = info.waits.iter().any(|&w| info.impedes(w));
                self.registry.block(info);
                // A whole-program proof of deadlock-freedom makes every
                // avoidance check pure overhead: publish (peers and
                // distributed checkers still see the block) and return.
                if self.cfg.static_hint == StaticHint::ProvedSafe {
                    self.stats.record_static_skip();
                    return Ok(());
                }
                // Resource-cardinality fast path: the distinct-awaited
                // read happens *after* this task's own block (which
                // counted its waits), so the member that completes a
                // cycle always reads ≥ 2 and takes the slow path.
                //
                // `verifier-mutation` is a deliberately planted soundness
                // bug (the bound reads 3 instead of 2) used to prove the
                // testkit's differential oracle catches real verifier
                // defects; it must never be enabled in production builds.
                #[cfg(not(feature = "verifier-mutation"))]
                const CARDINALITY_BOUND: usize = 2;
                #[cfg(feature = "verifier-mutation")]
                const CARDINALITY_BOUND: usize = 3;
                if self.cfg.fastpath
                    && !self_impeding
                    && self.registry.distinct_waited() < CARDINALITY_BOUND
                {
                    self.stats.record_fastpath_skip();
                    return Ok(());
                }
                // Slow path: check through the maintained graph, combining
                // with other blockers when the engine lock is contended —
                // no registry clone, no from-scratch rebuild either way.
                let outcome = self.combined_check(task);
                self.stats.record_check(&outcome.stats);
                if outcome.report.is_some() {
                    self.stats.record_full_rebuild();
                }
                match outcome.report {
                    None => Ok(()),
                    Some(report) => {
                        self.registry.unblock(task);
                        self.deliver(report.clone());
                        Err(DeadlockError { report })
                    }
                }
            }
        }
    }

    /// Runs the avoidance check for `task`, flat-combining under
    /// contention: the thread that holds the engine lock serves every
    /// queued request (one journal sync amortised over the batch) instead
    /// of each blocker convoying on the lock in turn.
    fn combined_check(&self, task: TaskId) -> CheckOutcome {
        // Uncontended: do the work ourselves — this is the single-thread
        // hot path, one `try_lock` away from the old behaviour.
        if let Some(mut engine) = self.engine.try_lock() {
            let outcome = self.run_check(&mut engine, task);
            self.drain_pending(&mut engine);
            return outcome;
        }
        self.stats.record_engine_lock_wait();
        let req = CheckRequest::new(task);
        self.pending.lock().push(Arc::clone(&req));
        // Spin briefly (the combiner's batch may be a few microseconds
        // away from serving us), then park on the request's condvar
        // instead of burning a core. The park is *timed*: a combiner
        // bounds its drain rounds, so an unserved waiter must keep
        // coming back to `try_lock` to guarantee its own progress.
        let mut spins = 0u32;
        loop {
            if req.is_done() {
                return req.take();
            }
            if let Some(mut engine) = self.engine.try_lock() {
                if req.is_done() {
                    // The previous holder served us while we raced for
                    // the lock; just help drain and go.
                    self.drain_pending(&mut engine);
                    return req.take();
                }
                // We hold the lock and are unserved: our request is still
                // queued (any combiner that took it would have published
                // before releasing the lock we now hold, or left it in
                // `pending` after its bounded rounds) — withdraw it and
                // check ourselves, then serve everyone else.
                self.pending.lock().retain(|r| !Arc::ptr_eq(r, &req));
                let outcome = self.run_check(&mut engine, task);
                self.drain_pending(&mut engine);
                return outcome;
            }
            spins += 1;
            if spins < 32 {
                std::thread::yield_now();
            } else {
                req.park(Duration::from_micros(200));
            }
        }
    }

    /// Syncs the engine with the registry (recording delta/resync stats)
    /// and checks for a cycle through `task`.
    fn run_check(&self, engine: &mut IncrementalEngine, task: TaskId) -> CheckOutcome {
        let sync = engine.sync(&self.registry);
        self.note_sync(sync);
        engine.check_task(task, self.cfg.model, self.cfg.sg_threshold)
    }

    /// Feeds one engine sync into the stats: deltas/resyncs as before, and
    /// a resync also rebuilds the maintained topological orders from the
    /// snapshot, which the `order_rebuilds` counter tracks.
    fn note_sync(&self, sync: SyncOutcome) {
        self.stats.record_sync(sync.deltas_applied, sync.resynced);
        if sync.resynced {
            self.stats.record_order_rebuild();
        }
    }

    /// Rounds a combiner serves before releasing the lock even if the
    /// queue keeps refilling. Unbounded draining would hold the lock
    /// holder captive under sustained contention (every served requester
    /// can re-enqueue while the batch runs); anything left after the last
    /// round is picked up by its own thread's timed-wake `try_lock` loop,
    /// whose winner becomes the next combiner.
    const MAX_DRAIN_ROUNDS: usize = 4;

    /// Serves queued check requests in batches — one journal sync
    /// amortised over each batch — for at most
    /// [`Verifier::MAX_DRAIN_ROUNDS`] rounds.
    fn drain_pending(&self, engine: &mut IncrementalEngine) {
        for _ in 0..Self::MAX_DRAIN_ROUNDS {
            let batch: Vec<Arc<CheckRequest>> = std::mem::take(&mut *self.pending.lock());
            if batch.is_empty() {
                return;
            }
            let sync = engine.sync(&self.registry);
            self.note_sync(sync);
            for req in batch {
                let outcome = engine.check_task(req.task, self.cfg.model, self.cfg.sg_threshold);
                self.stats.record_combined_check();
                req.publish(outcome);
            }
        }
    }

    /// Withdraws the blocked status of `task` (it resumed or aborted).
    pub fn unblock(&self, task: TaskId) {
        if self.cfg.mode != VerifyMode::Disabled {
            self.stats.record_unblock();
            self.registry.unblock(task);
        }
    }

    /// Syncs the engine with the registry (recording the delta/resync
    /// stats) and runs `check` against the maintained graph. A returned
    /// report means the slow path rebuilt a canonical graph — counted as a
    /// full rebuild against the deltas applied on the fast path.
    fn synced_check(
        &self,
        check: impl FnOnce(&mut IncrementalEngine) -> CheckOutcome,
    ) -> CheckOutcome {
        let outcome = {
            let mut engine = self.engine.lock();
            let sync = engine.sync(&self.registry);
            self.note_sync(sync);
            let outcome = check(&mut engine);
            // Serve any avoidance blockers that queued behind this check.
            self.drain_pending(&mut engine);
            outcome
        };
        if outcome.report.is_some() {
            self.stats.record_full_rebuild();
        }
        outcome
    }

    /// Runs a detection check right now (also used by the monitor thread).
    /// Returns the confirmed report, if any. The check consumes only the
    /// journal deltas since the previous sample.
    pub fn check_now(&self) -> Option<DeadlockReport> {
        if self.registry.is_empty() {
            // Keep the engine's cursor moving even when quiescent so a
            // burst after a long idle stretch does not force a resync.
            let mut engine = self.engine.lock();
            let sync = engine.sync(&self.registry);
            self.note_sync(sync);
            return None;
        }
        let outcome = self.synced_check(|engine| {
            let det = engine.check_full_detailed(self.cfg.model, self.cfg.sg_threshold);
            if det.incremental {
                self.stats.record_incremental_detection();
            }
            det.outcome
        });
        self.stats.record_check(&outcome.stats);
        let report = outcome.report?;
        // Confirmation pass: every task in the cycle must still be in the
        // blocking operation (same epoch) we observed. Tasks in a real
        // deadlock can never unblock, so re-reading is conclusive.
        let confirmed =
            report.task_epochs.iter().all(|&(task, epoch)| self.registry.confirm(task, epoch));
        if !confirmed {
            return None;
        }
        if self.mark_reported(&report.tasks) {
            self.deliver(report.clone());
            Some(report)
        } else {
            None
        }
    }

    /// Runs a full (non-avoidance) check over the current state regardless
    /// of mode; does not record or deliver reports. Useful for tests and
    /// for final "post-mortem" checks.
    pub fn probe(&self) -> Option<DeadlockReport> {
        let snapshot = self.registry.snapshot();
        checker::check(&snapshot, self.cfg.model, self.cfg.sg_threshold).report
    }

    /// A copy of the current blocked-task snapshot (used by distributed
    /// sites to publish their partition).
    pub fn local_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Syncs an *external* engine against this verifier's registry — the
    /// differential testkit keeps a follower engine in per-step lockstep
    /// this way, without touching the verifier's own engine, lock, or
    /// stats (so the verifier's journal/resync behaviour under test is
    /// not perturbed by being observed).
    pub fn sync_follower(&self, engine: &mut IncrementalEngine) -> SyncOutcome {
        engine.sync(&self.registry)
    }

    /// The registry's journal deltas since `cursor` (used by distributed
    /// sites to publish their partition incrementally).
    pub fn deltas_since(&self, cursor: u64) -> JournalRead {
        self.registry.deltas_since(cursor)
    }

    /// A full snapshot paired with a journal cursor, for delta consumers
    /// joining or recovering (see [`Registry::snapshot_with_cursor`]).
    pub fn snapshot_with_cursor(&self) -> (Snapshot, u64) {
        self.registry.snapshot_with_cursor()
    }

    /// The current blocked status of one task (`O(1)`; no registry copy).
    pub fn blocked_info(&self, task: TaskId) -> Option<BlockedInfo> {
        self.registry.get(task)
    }

    /// Registers a subscriber invoked on every delivered report.
    pub fn subscribe(&self, f: impl Fn(&DeadlockReport) + Send + Sync + 'static) {
        self.subscribers.lock().push(Arc::new(f));
    }

    /// Drains the retained reports.
    pub fn take_reports(&self) -> Vec<DeadlockReport> {
        std::mem::take(&mut *self.reports.lock())
    }

    /// Has any deadlock been reported so far?
    pub fn found_deadlock(&self) -> bool {
        !self.reports.lock().is_empty()
    }

    /// Verification statistics so far.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Records an async-front-end wait parking a waker with the wait
    /// machine (the async counterpart of an OS-thread park). Counted by
    /// the runtime front-end, not by `block`, so disabled verifiers still
    /// observe async traffic.
    pub fn note_async_wait(&self) {
        self.stats.record_async_wait();
    }

    /// Records `n` parked wakers woken by a fate-resolving event.
    pub fn note_waker_wakes(&self, n: u64) {
        self.stats.record_waker_wakes(n);
    }

    /// Stops the monitor thread (idempotent). Dropping every user `Arc`
    /// has the same effect.
    pub fn shutdown(&self) {
        self.signal.stop_and_wake();
        if let Some(handle) = self.monitor.lock().take() {
            if std::thread::current().id() != handle.thread().id() {
                let _ = handle.join();
            }
        }
    }

    fn deliver(&self, report: DeadlockReport) {
        self.stats.record_deadlock();
        // Retain before notifying: subscribers wake interrupted victims,
        // which may immediately call `take_reports` and must see this one.
        self.reports.lock().push(report.clone());
        // Snapshot the subscriber list before invoking: a callback that
        // re-enters the verifier (subscribes, probes, reads reports) must
        // not find the subscriber lock already held by its own thread.
        let subscribers: Vec<Subscriber> = self.subscribers.lock().clone();
        for sub in subscribers {
            sub(&report);
        }
    }

    /// Deduplicates detection reports by participating task set (bounded
    /// LRU — see [`ReportDedup`]). Returns true when this task set has
    /// not been reported recently.
    fn mark_reported(&self, tasks: &[TaskId]) -> bool {
        self.reported.lock().is_new_set(tasks)
    }
}

impl Drop for Verifier {
    fn drop(&mut self) {
        self.signal.stop_and_wake();
    }
}

fn monitor_loop(weak: Weak<Verifier>, signal: Arc<MonitorSignal>, period: Duration) {
    loop {
        // Interruptible sleep: shutdown/drop wakes us early.
        {
            let mut stop = signal.stop.lock();
            if !*stop {
                signal.wake.wait_for(&mut stop, period);
            }
            if *stop {
                break;
            }
        }
        let Some(v) = weak.upgrade() else { break };
        let _ = v.check_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PhaserId;

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }
    fn r(ph: u64, n: u64) -> Resource {
        Resource::new(p(ph), n)
    }

    /// The paper's running-example dependency shape, published by hand:
    /// three workers stuck on pc@1 (impeded by the driver), driver stuck on
    /// pb@1 (impeded by the workers).
    fn publish_example_deadlock(v: &Verifier) {
        for i in 1..=3 {
            v.block(
                t(i),
                vec![r(1, 1)],
                vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
            )
            .unwrap();
        }
        // Driver: this one closes the cycle.
        let _ = v.block(
            t(4),
            vec![r(2, 1)],
            vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
        );
    }

    #[test]
    fn disabled_mode_costs_and_stores_nothing() {
        let v = Verifier::new(VerifierConfig::disabled());
        publish_example_deadlock(&v);
        assert_eq!(v.local_snapshot().len(), 0);
        assert!(v.check_now().is_none());
        assert_eq!(v.stats().blocks, 0);
    }

    #[test]
    fn avoidance_raises_on_the_closing_block() {
        let v = Verifier::new(VerifierConfig::avoidance());
        for i in 1..=3 {
            v.block(
                t(i),
                vec![r(1, 1)],
                vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
            )
            .expect("workers alone do not deadlock");
        }
        let err = v
            .block(
                t(4),
                vec![r(2, 1)],
                vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
            )
            .expect_err("the driver's block completes the cycle");
        assert!(err.report.tasks.contains(&t(4)));
        // The failed block was withdrawn from the registry.
        assert_eq!(v.local_snapshot().len(), 3);
        assert!(v.found_deadlock());
    }

    #[test]
    fn detection_finds_and_confirms() {
        let v = Verifier::new(VerifierConfig::detection_every(Duration::from_millis(5)));
        publish_example_deadlock(&v);
        // Wait for the monitor to fire.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !v.found_deadlock() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let reports = v.take_reports();
        assert_eq!(reports.len(), 1, "deduplicated to one report");
        assert_eq!(reports[0].tasks, vec![t(1), t(2), t(3), t(4)]);
        v.shutdown();
    }

    #[test]
    fn detection_deduplicates_reports() {
        let v = Verifier::new(VerifierConfig::detection_every(Duration::from_secs(3600)));
        publish_example_deadlock(&v);
        assert!(v.check_now().is_some());
        assert!(v.check_now().is_none(), "same task set must not re-report");
        assert_eq!(v.take_reports().len(), 1);
        v.shutdown();
    }

    #[test]
    fn confirmation_rejects_stale_cycles() {
        let v = Verifier::new(VerifierConfig::detection_every(Duration::from_secs(3600)));
        publish_example_deadlock(&v);
        // Simulate the race: a participant unblocks between snapshot and
        // confirmation by unblocking *after* the snapshot inside check_now
        // cannot be interleaved from a test, so emulate with a manual
        // sequence: snapshot happens inside check_now; we instead unblock
        // first and re-block with a new epoch — any cycle found against old
        // epochs must be discarded. Here we unblock t4 entirely: no cycle.
        v.unblock(t(4));
        assert!(v.check_now().is_none());
        // Re-publish the driver: cycle is real again and epochs fresh.
        let _ = v.block(
            t(4),
            vec![r(2, 1)],
            vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
        );
        assert!(v.check_now().is_some());
        v.shutdown();
    }

    #[test]
    fn subscribers_receive_reports() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let v = Verifier::new(VerifierConfig::detection_every(Duration::from_secs(3600)));
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        v.subscribe(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        publish_example_deadlock(&v);
        v.check_now();
        assert_eq!(count.load(Ordering::SeqCst), 1);
        v.shutdown();
    }

    #[test]
    fn avoidance_accounts_every_block_as_check_or_fastpath_skip() {
        // All five tasks blocked on the same barrier event: one distinct
        // awaited resource, so every check after the first is answered by
        // the cardinality fast path — and so is the first.
        let v = Verifier::new(VerifierConfig::avoidance());
        for i in 0..5 {
            v.block(t(i), vec![r(1, 1)], vec![Registration::new(p(1), 1)]).unwrap();
        }
        let s = v.stats();
        assert_eq!(s.blocks, 5);
        assert_eq!(s.fastpath_skips, 5, "single-resource blocks never take the engine lock");
        assert_eq!(s.checks, 0);
        // Spread over distinct phasers instead: only the very first block
        // (cardinality still 1) skips; the rest run engine checks.
        let v = Verifier::new(VerifierConfig::avoidance());
        for i in 0..5 {
            v.block(t(i), vec![r(i + 1, 1)], vec![Registration::new(p(i + 1), 1)]).unwrap();
        }
        let s = v.stats();
        assert_eq!(s.blocks, 5);
        assert_eq!(s.fastpath_skips, 1);
        assert_eq!(s.checks, 4);
        assert_eq!(
            s.checks + s.fastpath_skips + s.static_skips,
            s.blocks,
            "every block is accounted"
        );
        v.shutdown();
    }

    #[test]
    fn proved_safe_hint_skips_every_avoidance_check() {
        // The same distinct-phaser spread that forces engine checks above —
        // but the program was statically proved safe, so every block is a
        // publish + counted skip, even with the fast path disabled.
        let v = Verifier::new(
            VerifierConfig::avoidance()
                .with_fastpath(false)
                .with_static_hint(StaticHint::ProvedSafe),
        );
        for i in 0..5 {
            v.block(t(i), vec![r(i + 1, 1)], vec![Registration::new(p(i + 1), 1)]).unwrap();
        }
        let s = v.stats();
        assert_eq!(s.blocks, 5);
        assert_eq!(s.static_skips, 5);
        assert_eq!(s.checks, 0);
        assert_eq!(s.fastpath_skips, 0);
        // The blocks are still published: peers see the full registry.
        assert_eq!(v.local_snapshot().len(), 5);
        v.shutdown();
    }

    #[test]
    fn detection_mode_blocks_do_not_check_inline() {
        let v = Verifier::new(VerifierConfig::detection_every(Duration::from_secs(3600)));
        for i in 0..5 {
            v.block(t(i), vec![r(1, 1)], vec![Registration::new(p(1), 1)]).unwrap();
        }
        let s = v.stats();
        assert_eq!(s.blocks, 5);
        assert_eq!(s.checks, 0, "checks only happen on the monitor");
        v.shutdown();
    }

    #[test]
    fn unblock_clears_status() {
        let v = Verifier::new(VerifierConfig::avoidance());
        v.block(t(1), vec![r(1, 1)], vec![Registration::new(p(1), 1)]).unwrap();
        assert_eq!(v.local_snapshot().len(), 1);
        v.unblock(t(1));
        assert_eq!(v.local_snapshot().len(), 0);
    }

    #[test]
    fn monitor_stops_when_verifier_dropped() {
        let v = Verifier::new(VerifierConfig::detection_every(Duration::from_millis(1)));
        let handle = v.monitor.lock().take().expect("monitor running");
        drop(v);
        // The loop must observe the dead Weak and exit promptly.
        let start = std::time::Instant::now();
        handle.join().unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn avoidance_checks_consume_deltas_not_snapshots() {
        let v = Verifier::new(VerifierConfig::avoidance());
        for i in 0..5 {
            v.block(t(i), vec![r(i + 1, 1)], vec![Registration::new(p(i + 1), 1)]).unwrap();
        }
        let s = v.stats();
        // The first block fast-paths (cardinality 1, no sync); the second
        // check applies that backlog delta plus its own; the rest apply
        // exactly the one delta their block journaled: 0+2+1+1+1.
        assert_eq!(s.deltas_applied, 5);
        assert_eq!(s.resyncs, 0);
        assert_eq!(s.full_rebuilds, 0, "no deadlock, so no canonical rebuild");
        assert_eq!(s.engine_lock_waits, 0, "single-threaded: try_lock always wins");
    }

    #[test]
    fn fastpath_never_skips_a_self_impeding_wait() {
        // A task waiting on an event it impedes is a self-deadlock on ONE
        // resource — the cardinality fast path must not claim it safe.
        let v = Verifier::new(VerifierConfig::avoidance());
        let err = v
            .block(t(1), vec![r(1, 5)], vec![Registration::new(p(1), 2)])
            .expect_err("self-wait must raise despite cardinality 1");
        assert_eq!(err.report.tasks, vec![t(1)]);
        let s = v.stats();
        assert_eq!(s.fastpath_skips, 0);
        assert_eq!(s.checks, 1);
    }

    #[test]
    fn fastpath_engine_backlog_is_applied_by_the_next_slow_check() {
        let v = Verifier::new(VerifierConfig::avoidance());
        // Three fast-path blocks on one event build journal backlog...
        for i in 1..=3 {
            v.block(
                t(i),
                vec![r(1, 1)],
                vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
            )
            .unwrap();
        }
        assert_eq!(v.stats().fastpath_skips, 3);
        assert_eq!(v.stats().deltas_applied, 0, "fast path never syncs");
        // ...and the driver's slow-path check (cardinality 2) consumes
        // the whole backlog and still catches the cycle it closes.
        let err = v
            .block(
                t(4),
                vec![r(2, 1)],
                vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
            )
            .expect_err("the closing block reads cardinality 2 and checks");
        assert!(err.report.tasks.contains(&t(4)));
        assert_eq!(v.stats().deltas_applied, 4, "backlog of 3 + the driver's own block");
    }

    #[test]
    fn subscribers_may_reenter_the_verifier() {
        // A subscriber that probes, reads stats, and subscribes again —
        // all verifier re-entries — must not self-deadlock on the
        // subscriber list lock.
        let v = Verifier::new(VerifierConfig::detection_every(Duration::from_secs(3600)));
        let v2 = Arc::clone(&v);
        let fired = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let f2 = Arc::clone(&fired);
        v.subscribe(move |_| {
            let _ = v2.probe();
            let _ = v2.stats();
            v2.subscribe(|_| {});
            f2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        publish_example_deadlock(&v);
        assert!(v.check_now().is_some());
        assert_eq!(fired.load(std::sync::atomic::Ordering::SeqCst), 1);
        v.shutdown();
    }

    #[test]
    fn concurrent_crossed_blocks_raise_for_at_least_one_loser() {
        // Two threads repeatedly publish the two halves of a crossed wait
        // (a 2-cycle). Whatever the interleaving, they must never BOTH be
        // told "no deadlock": the member whose cardinality read is latest
        // is guaranteed to run a slow-path check that sees both blocks.
        for round in 0..64 {
            let v = Verifier::new(VerifierConfig::avoidance());
            let barrier = Arc::new(std::sync::Barrier::new(2));
            let results = std::thread::scope(|s| {
                let spawn_half = |flip: bool| {
                    let v = Arc::clone(&v);
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        let (mine, other) = if flip { (1, 2) } else { (2, 1) };
                        barrier.wait();
                        v.block(
                            t(mine),
                            vec![r(mine, 1)],
                            vec![Registration::new(p(mine), 1), Registration::new(p(other), 0)],
                        )
                    })
                };
                let a = spawn_half(true);
                let b = spawn_half(false);
                (a.join().unwrap(), b.join().unwrap())
            });
            assert!(
                results.0.is_err() || results.1.is_err(),
                "round {round}: both halves of a crossed wait were admitted"
            );
        }
    }

    #[test]
    fn avoidance_deadlock_counts_one_full_rebuild() {
        let v = Verifier::new(VerifierConfig::avoidance());
        publish_example_deadlock(&v);
        let s = v.stats();
        assert_eq!(s.full_rebuilds, 1, "only the hit rebuilt a canonical graph");
        assert!(s.deltas_applied >= 4);
    }

    #[test]
    fn detection_checks_track_journal_deltas() {
        let v = Verifier::new(VerifierConfig::detection_every(Duration::from_secs(3600)));
        publish_example_deadlock(&v);
        assert!(v.check_now().is_some());
        let s = v.stats();
        assert_eq!(s.deltas_applied, 4);
        assert_eq!(s.full_rebuilds, 1);
        // A quiescent follow-up consumes nothing further.
        assert!(v.check_now().is_none());
        assert_eq!(v.stats().deltas_applied, 4);
        v.shutdown();
    }

    #[test]
    fn detection_counts_incremental_checks_and_order_rebuilds() {
        // Journal window of 2: the four example blocks truncate past the
        // engine's cursor, so the first check_now resyncs — rebuilding the
        // maintained orders — and still answers the cycle canonically.
        let v = Verifier::new(
            VerifierConfig::detection_every(Duration::from_secs(3600)).with_journal_capacity(2),
        );
        for i in 0..3 {
            v.block(t(10 + i), vec![r(20 + i, 1)], vec![Registration::new(p(20 + i), 1)]).unwrap();
        }
        assert!(v.check_now().is_none(), "bystanders only: no cycle");
        let s = v.stats();
        assert_eq!(s.resyncs, 1, "journal window 2 forces a resync");
        assert_eq!(s.order_rebuilds, 1, "the resync rebuilt the orders");
        assert_eq!(s.incremental_detections, 1, "no cycle ⇒ answered from the order");

        publish_example_deadlock(&v);
        assert!(v.check_now().is_some());
        let s = v.stats();
        assert_eq!(s.incremental_detections, 1, "the hit fell back to the canonical rebuild");
        assert_eq!(s.full_rebuilds, 1);
        v.shutdown();
    }

    #[test]
    fn sync_follower_tracks_the_registry_without_touching_stats() {
        let v = Verifier::new(VerifierConfig::detection_every(Duration::from_secs(3600)));
        publish_example_deadlock(&v);
        let mut follower = IncrementalEngine::new();
        let sync = v.sync_follower(&mut follower);
        assert_eq!(sync.deltas_applied, 4);
        assert_eq!(follower.blocked(), 4);
        assert!(follower.check_full(v.cfg.model, v.cfg.sg_threshold).report.is_some());
        let s = v.stats();
        assert_eq!(s.deltas_applied, 0, "follower syncs must not count as verifier syncs");
        assert_eq!(s.checks, 0);
        v.shutdown();
    }

    #[test]
    fn blocked_info_reads_without_a_snapshot() {
        let v = Verifier::new(VerifierConfig::avoidance());
        v.block(t(1), vec![r(1, 1)], vec![Registration::new(p(1), 1)]).unwrap();
        let info = v.blocked_info(t(1)).expect("t1 is blocked");
        assert_eq!(info.waits, vec![r(1, 1)]);
        assert!(v.blocked_info(t(2)).is_none());
    }

    #[test]
    fn probe_reports_without_recording() {
        let v = Verifier::new(VerifierConfig::detection_every(Duration::from_secs(3600)));
        publish_example_deadlock(&v);
        assert!(v.probe().is_some());
        assert!(!v.found_deadlock(), "probe must not record");
        v.shutdown();
    }
}
