//! State Graph construction (Definition 4.3).
//!
//! The SG is *resource-centric*: an edge `r1 → r2` states that event `r1`
//! impedes any task from synchronising via event `r2` — i.e. there exists a
//! task `t` with `t ∈ I(r1)` and `r2 ∈ W(t)`.
//!
//! The vertex set is the set of awaited events. The SG is the model of
//! choice when there are few barriers and many tasks (SPMD programs): in
//! benchmark PS the paper reports 781 WFG edges versus 6 SG edges.

use crate::deps::Snapshot;
use crate::graph::DiGraph;
use crate::index::SnapshotIndex;
use crate::resource::Resource;

/// Builds the SG of a snapshot: `sg(I, W)`.
pub fn sg(snapshot: &Snapshot) -> DiGraph<Resource> {
    let idx = SnapshotIndex::new(snapshot);
    sg_indexed(snapshot, &idx)
}

/// SG construction reusing a prebuilt [`SnapshotIndex`].
pub fn sg_indexed(snapshot: &Snapshot, idx: &SnapshotIndex) -> DiGraph<Resource> {
    let mut g = DiGraph::with_capacity(idx.wait_resources.len());
    for &r in &idx.wait_resources {
        g.add_node(r);
    }
    for info in &snapshot.tasks {
        add_task_edges(&mut g, idx, info);
    }
    g
}

/// Adds the SG edges contributed by a single blocked task: for each phaser
/// registration `(q, m)`, an edge from every awaited event `(q, n)` with
/// `n > m` to every event the task waits on. Exposed for the incremental
/// adaptive builder, which needs to abort mid-construction.
pub(crate) fn add_task_edges(
    g: &mut DiGraph<Resource>,
    idx: &SnapshotIndex,
    info: &crate::deps::BlockedInfo,
) {
    for reg in &info.registered {
        for &r1 in idx.impeded_waits(reg.phaser, reg.local_phase) {
            for &r2 in &info.waits {
                g.add_edge(r1, r2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::BlockedInfo;
    use crate::ids::{PhaserId, TaskId};
    use crate::resource::Registration;

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }
    fn r(ph: u64, n: u64) -> Resource {
        Resource::new(p(ph), n)
    }

    /// Paper Example 4.1 / Figure 5c.
    fn example_4_1() -> Snapshot {
        let worker = |task: u64| {
            BlockedInfo::new(
                t(task),
                vec![r(1, 1)],
                vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
            )
        };
        let driver = BlockedInfo::new(
            t(4),
            vec![r(2, 1)],
            vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
        );
        Snapshot::from_tasks(vec![worker(1), worker(2), worker(3), driver])
    }

    #[test]
    fn figure_5c_shape() {
        let g = sg(&example_4_1());
        // Nodes: r1 = pc@1, r2 = pb@1. Edges: pc@1→pb@1 (the driver lags
        // pc and waits pb@1) and pb@1→pc@1 (each worker lags pb and waits
        // pc@1 — three contributions, one distinct edge).
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(r(1, 1), r(2, 1)));
        assert!(g.has_edge(r(2, 1), r(1, 1)));
        assert!(g.find_cycle().is_some());
    }

    #[test]
    fn sg_much_smaller_than_wfg_for_many_tasks_one_barrier() {
        // N tasks all waiting on one global barrier, one laggard: the WFG
        // has N-1 edges into the laggard plus its own edges; the SG has a
        // single vertex. This is the PS/BFS scenario of Table 3.
        let n = 100u64;
        let mut tasks: Vec<BlockedInfo> = (0..n - 1)
            .map(|i| BlockedInfo::new(t(i), vec![r(1, 1)], vec![Registration::new(p(1), 1)]))
            .collect();
        // The laggard is blocked elsewhere (waits a private phaser).
        tasks.push(BlockedInfo::new(
            t(n - 1),
            vec![r(2, 1)],
            vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
        ));
        let snap = Snapshot::from_tasks(tasks);
        let sg_g = sg(&snap);
        let wfg_g = crate::wfg::wfg(&snap);
        assert!(sg_g.edge_count() < wfg_g.edge_count() / 10);
        // No cycle in either: the laggard's private wait impedes no one...
        // except itself (it lags p2? no: registered p2@1, waits p2@1).
        assert!(sg_g.find_cycle().is_none());
        assert!(wfg_g.find_cycle().is_none());
    }

    #[test]
    fn vertexes_are_awaited_events_only() {
        // A registration on a phaser nobody awaits contributes no vertex.
        let snap = Snapshot::from_tasks(vec![BlockedInfo::new(
            t(1),
            vec![r(1, 1)],
            vec![Registration::new(p(1), 1), Registration::new(p(9), 0)],
        )]);
        let g = sg(&snap);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.nodes(), &[r(1, 1)]);
    }

    #[test]
    fn future_phase_waits_connect_between_phases() {
        // t1 arrived phase 3 of p1 and waits p1@5 (split-phase / future
        // wait); t2 lags at phase 4. t2's registration impedes p1@5.
        // t2 itself waits p2@1, impeded by t1 (registered p2@0).
        let snap = Snapshot::from_tasks(vec![
            BlockedInfo::new(
                t(1),
                vec![r(1, 5)],
                vec![Registration::new(p(1), 5), Registration::new(p(2), 0)],
            ),
            BlockedInfo::new(
                t(2),
                vec![r(2, 1)],
                vec![Registration::new(p(1), 4), Registration::new(p(2), 1)],
            ),
        ]);
        let g = sg(&snap);
        assert!(g.has_edge(r(1, 5), r(2, 1)), "t2 ∈ I(p1@5) and waits p2@1");
        assert!(g.has_edge(r(2, 1), r(1, 5)), "t1 ∈ I(p2@1) and waits p1@5");
        assert!(g.find_cycle().is_some());
    }

    #[test]
    fn empty_snapshot_yields_empty_graph() {
        let g = sg(&Snapshot::empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
