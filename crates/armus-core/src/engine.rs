//! The incremental dependency engine: a persistently-maintained SG and WFG
//! fed by the registry's delta journal, replacing snapshot-clone-and-rebuild
//! on the check hot path.
//!
//! The paper observes that "maintaining the blocked status is more frequent
//! than checking for deadlocks" (§5.1); before this module existed every
//! check nevertheless cloned the full registry and rebuilt its graph from
//! nothing, making check cost proportional to the number of blocked tasks.
//! The [`IncrementalEngine`] instead applies block/unblock [`Delta`]s to
//! long-lived, reference-counted edge multisets, so per-check work is
//! proportional to the *delta* since the last check:
//!
//! * [`IncrementalEngine::sync`] pulls the journal suffix since the
//!   engine's cursor and applies each delta in `O(local degree)`; a cursor
//!   that fell behind the bounded journal triggers a snapshot resync.
//! * [`IncrementalEngine::check_task`] (avoidance) runs an existence-only
//!   cycle search directly over the maintained adjacency — no clone, no
//!   rebuild.
//! * [`IncrementalEngine::check_full`] (detection) answers from maintained
//!   Pearce–Kelly topological orders ([`crate::graph::TopoOrder`], one per
//!   model): every distinct-edge insertion updates the order in
//!   `O(affected region)`, so detection-time cycle existence is `O(1)` —
//!   a cycle exists iff some edge could not be ordered. The old full-graph
//!   existence pass survives as [`IncrementalEngine::check_full_scan`]
//!   (the differential baseline, and the parallel-peel path).
//! * Only on a **hit** (a cycle exists, i.e. the program is about to
//!   deadlock) does the engine materialise its state into a sorted
//!   [`Snapshot`] and delegate to the canonical [`checker`], so delivered
//!   reports are byte-identical to the from-scratch oracle's — the
//!   `prop_engine` equivalence suite asserts exactly that.
//!
//! Edge maintenance uses contribution counting. For the SG, the count of
//! edge `r1 → r2` is the number of `(task u, registration g, wait
//! occurrence w)` triples with `g ∈ u.registered`, `g.impedes(r1)`,
//! `w = r2 ∈ W(u)`, restricted to currently-awaited `r1`; the edge exists
//! while the count is positive. For the WFG, the count of `t1 → t2` is the
//! number of `(wait occurrence w ∈ W(t1), g ∈ t2.registered)` pairs with
//! `g.impedes(w)`. Applying a delta adjusts exactly the triples the
//! arriving or departing task participates in, so unblocking is the exact
//! mirror of blocking and the structures drain back to empty.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::Hash;

use crate::adaptive::{auto_pick, GraphModel, ModelChoice};
use crate::checker::{self, CheckOutcome, CheckStats};
use crate::deps::{BlockedInfo, Delta, JournalRead, Registry, Snapshot};
use crate::graph::TopoOrder;
use crate::ids::{Phase, PhaserId, TaskId};
use crate::resource::Resource;

/// What one [`IncrementalEngine::sync`] did, for the stats counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncOutcome {
    /// Journal deltas applied to the maintained graph.
    pub deltas_applied: usize,
    /// Whether the engine fell behind the journal and reloaded from a full
    /// snapshot instead.
    pub resynced: bool,
}

/// Outcome of a [`IncrementalEngine::check_full_detailed`] detection
/// check: the canonical [`CheckOutcome`] plus whether it was answered
/// purely from the maintained topological order.
#[derive(Clone, Debug)]
pub struct DetectionOutcome {
    /// The report (byte-identical to the canonical checker's) and stats.
    pub outcome: CheckOutcome,
    /// `true` when the check was answered from the order alone (no cycle,
    /// so no snapshot materialisation and no canonical rebuild ran).
    pub incremental: bool,
}

/// Refcounted adjacency: `adj[a][b]` is the number of live contributions
/// to edge `a → b`; the edge exists while the count is positive.
type RefCountedAdj<N> = HashMap<N, HashMap<N, usize>>;

fn bump_edge<N: Copy + Eq + Hash>(
    adj: &mut RefCountedAdj<N>,
    order: &mut TopoOrder<N>,
    edges: &mut usize,
    from: N,
    to: N,
) {
    let count = adj.entry(from).or_default().entry(to).or_insert(0);
    *count += 1;
    if *count == 1 {
        *edges += 1;
        order.insert_edge(from, to);
    }
}

fn drop_edge<N: Copy + Eq + Hash>(
    adj: &mut RefCountedAdj<N>,
    order: &mut TopoOrder<N>,
    edges: &mut usize,
    from: N,
    to: N,
) {
    let succs = adj.get_mut(&from).expect("dropping an edge that was never added");
    let count = succs.get_mut(&to).expect("dropping an edge that was never added");
    *count -= 1;
    if *count == 0 {
        succs.remove(&to);
        if succs.is_empty() {
            adj.remove(&from);
        }
        *edges -= 1;
        order.remove_edge(from, to);
    }
}

/// The long-lived maintained graph. One per [`crate::Verifier`]; updates
/// are applied by whichever thread holds the verifier's engine lock.
pub struct IncrementalEngine {
    /// Node count above which [`IncrementalEngine::check_full_scan`]
    /// parallelises its existence pass (defaults to
    /// [`PAR_NODE_THRESHOLD`]; injectable so tests and the simulation
    /// testkit can force the parallel branch on small graphs).
    par_threshold: usize,
    /// Journal position: the next delta sequence number to consume.
    cursor: u64,
    /// The engine's materialised view of the registry.
    tasks: HashMap<TaskId, BlockedInfo>,
    /// Per phaser, the awaited phases and their waiter counts (the SG
    /// vertex multiset, indexed for `impedes` range queries).
    awaited: HashMap<PhaserId, BTreeMap<Phase, usize>>,
    /// Distinct awaited events (SG vertex count).
    sg_nodes: usize,
    /// SG adjacency with contribution counts.
    sg_adj: RefCountedAdj<Resource>,
    /// Distinct SG edges.
    sg_edges: usize,
    /// Per phaser, one `(task, local phase)` entry per registration.
    regs_by_phaser: HashMap<PhaserId, Vec<(TaskId, Phase)>>,
    /// Per phaser, one `(task, awaited phase)` entry per wait occurrence.
    waiters_by_phaser: HashMap<PhaserId, Vec<(TaskId, Phase)>>,
    /// WFG adjacency with contribution counts.
    wfg_adj: RefCountedAdj<TaskId>,
    /// Distinct WFG edges.
    wfg_edges: usize,
    /// Pearce–Kelly topological order of the distinct SG edges, updated on
    /// every 0→1 / 1→0 refcount transition.
    sg_order: TopoOrder<Resource>,
    /// Pearce–Kelly topological order of the distinct WFG edges.
    wfg_order: TopoOrder<TaskId>,
}

impl Default for IncrementalEngine {
    fn default() -> Self {
        IncrementalEngine {
            par_threshold: PAR_NODE_THRESHOLD,
            cursor: 0,
            tasks: HashMap::new(),
            awaited: HashMap::new(),
            sg_nodes: 0,
            sg_adj: HashMap::new(),
            sg_edges: 0,
            regs_by_phaser: HashMap::new(),
            waiters_by_phaser: HashMap::new(),
            wfg_adj: HashMap::new(),
            wfg_edges: 0,
            sg_order: TopoOrder::new(),
            wfg_order: TopoOrder::new(),
        }
    }
}

impl IncrementalEngine {
    /// An empty engine at journal position 0.
    pub fn new() -> IncrementalEngine {
        IncrementalEngine::default()
    }

    /// An empty engine whose parallel-existence threshold is `threshold`
    /// instead of [`PAR_NODE_THRESHOLD`].
    pub fn with_par_threshold(threshold: usize) -> IncrementalEngine {
        IncrementalEngine { par_threshold: threshold.max(1), ..IncrementalEngine::default() }
    }

    /// Brings the maintained graph up to date with `registry`: applies the
    /// journal deltas since the engine's cursor, or reloads from a full
    /// snapshot when the bounded journal has truncated past it.
    pub fn sync(&mut self, registry: &Registry) -> SyncOutcome {
        match registry.deltas_since(self.cursor) {
            JournalRead::Deltas(deltas, cursor) => {
                let applied = deltas.len();
                for delta in deltas {
                    self.apply(delta);
                }
                self.cursor = cursor;
                SyncOutcome { deltas_applied: applied, resynced: false }
            }
            JournalRead::Behind => {
                let (snapshot, cursor) = registry.snapshot_with_cursor();
                self.reset_to(&snapshot);
                self.cursor = cursor;
                SyncOutcome { deltas_applied: 0, resynced: true }
            }
        }
    }

    /// Applies one delta. Application is idempotent per task: a replayed
    /// `Block` replaces the task's previous contribution, and an `Unblock`
    /// of an unknown task is a no-op — required because a snapshot resync
    /// may already reflect deltas at or past the resync cursor.
    pub fn apply(&mut self, delta: Delta) {
        match delta {
            Delta::Block(info) => self.apply_block(info),
            Delta::Unblock(task) => self.apply_unblock(task),
        }
    }

    /// Discards the maintained graph and rebuilds it from `snapshot`
    /// (consumer joins and journal-truncation recovery). The journal
    /// cursor is preserved — [`IncrementalEngine::sync`] manages it.
    pub fn reset_to(&mut self, snapshot: &Snapshot) {
        *self = IncrementalEngine {
            cursor: self.cursor,
            par_threshold: self.par_threshold,
            ..IncrementalEngine::default()
        };
        for info in &snapshot.tasks {
            self.apply_block(info.clone());
        }
    }

    fn apply_block(&mut self, info: BlockedInfo) {
        // Re-blocking replaces the previous record (registry semantics).
        self.apply_unblock(info.task);

        // The arriving task's contributions against the *existing* state:
        // SG edges from every already-awaited event one of its
        // registrations impedes, WFG edges towards every already-blocked
        // task lagging behind one of its waits.
        for reg in &info.registered {
            if let Some(phases) = self.awaited.get(&reg.phaser) {
                let sources: Vec<Resource> = phases
                    .range(reg.local_phase + 1..)
                    .map(|(&n, _)| Resource::new(reg.phaser, n))
                    .collect();
                for r1 in sources {
                    for &r2 in &info.waits {
                        bump_edge(&mut self.sg_adj, &mut self.sg_order, &mut self.sg_edges, r1, r2);
                    }
                }
            }
        }
        for &w in &info.waits {
            let laggards: Vec<TaskId> = self
                .regs_by_phaser
                .get(&w.phaser)
                .into_iter()
                .flatten()
                .filter(|&&(_, m)| m < w.phase)
                .map(|&(u, _)| u)
                .collect();
            for u in laggards {
                bump_edge(
                    &mut self.wfg_adj,
                    &mut self.wfg_order,
                    &mut self.wfg_edges,
                    info.task,
                    u,
                );
            }
        }

        // Index the task.
        for reg in &info.registered {
            self.regs_by_phaser.entry(reg.phaser).or_default().push((info.task, reg.local_phase));
        }
        for w in &info.waits {
            self.waiters_by_phaser.entry(w.phaser).or_default().push((info.task, w.phase));
        }
        self.tasks.insert(info.task, info.clone());

        // WFG edges *into* the arriving task from every waiter (itself
        // included — self-waits are self-deadlocks) one of its
        // registrations impedes.
        for reg in &info.registered {
            if let Some(waiters) = self.waiters_by_phaser.get(&reg.phaser) {
                let sources: Vec<TaskId> = waiters
                    .iter()
                    .filter(|&&(_, n)| n > reg.local_phase)
                    .map(|&(u, _)| u)
                    .collect();
                for u in sources {
                    bump_edge(
                        &mut self.wfg_adj,
                        &mut self.wfg_order,
                        &mut self.wfg_edges,
                        u,
                        info.task,
                    );
                }
            }
        }

        // Newly-awaited events become SG vertices, with out-edges from
        // every registration (of any blocked task, the arriving one
        // included) lagging behind them.
        for &w in &info.waits {
            let waiters = self.awaited.entry(w.phaser).or_default().entry(w.phase).or_insert(0);
            *waiters += 1;
            if *waiters == 1 {
                self.sg_nodes += 1;
                let laggards: Vec<TaskId> = self
                    .regs_by_phaser
                    .get(&w.phaser)
                    .into_iter()
                    .flatten()
                    .filter(|&&(_, m)| m < w.phase)
                    .map(|&(u, _)| u)
                    .collect();
                for u in laggards {
                    let targets = self.tasks[&u].waits.clone();
                    for r2 in targets {
                        bump_edge(&mut self.sg_adj, &mut self.sg_order, &mut self.sg_edges, w, r2);
                    }
                }
            }
        }
    }

    fn apply_unblock(&mut self, task: TaskId) {
        let Some(info) = self.tasks.get(&task).cloned() else { return };

        // Exact mirror of `apply_block`, in reverse order.

        // WFG edges into the departing task.
        for reg in &info.registered {
            if let Some(waiters) = self.waiters_by_phaser.get(&reg.phaser) {
                let sources: Vec<TaskId> = waiters
                    .iter()
                    .filter(|&&(_, n)| n > reg.local_phase)
                    .map(|&(u, _)| u)
                    .collect();
                for u in sources {
                    drop_edge(&mut self.wfg_adj, &mut self.wfg_order, &mut self.wfg_edges, u, task);
                }
            }
        }

        // SG vertices that lose their last waiter retire with all their
        // out-edges (every laggard's contributions, the departing task's
        // included).
        for &w in &info.waits {
            let phases = self.awaited.get_mut(&w.phaser).expect("awaited entry for live wait");
            let waiters = phases.get_mut(&w.phase).expect("waiter count for live wait");
            *waiters -= 1;
            if *waiters == 0 {
                phases.remove(&w.phase);
                if phases.is_empty() {
                    self.awaited.remove(&w.phaser);
                }
                self.sg_nodes -= 1;
                let laggards: Vec<TaskId> = self
                    .regs_by_phaser
                    .get(&w.phaser)
                    .into_iter()
                    .flatten()
                    .filter(|&&(_, m)| m < w.phase)
                    .map(|&(u, _)| u)
                    .collect();
                for u in laggards {
                    let targets = self.tasks[&u].waits.clone();
                    for r2 in targets {
                        drop_edge(&mut self.sg_adj, &mut self.sg_order, &mut self.sg_edges, w, r2);
                    }
                }
            }
        }

        // Unindex the task: one entry per registration / wait occurrence.
        for reg in &info.registered {
            let list = self.regs_by_phaser.get_mut(&reg.phaser).expect("indexed registration");
            let at = list
                .iter()
                .position(|&(u, m)| u == task && m == reg.local_phase)
                .expect("indexed registration entry");
            list.swap_remove(at);
            if list.is_empty() {
                self.regs_by_phaser.remove(&reg.phaser);
            }
        }
        for w in &info.waits {
            let list = self.waiters_by_phaser.get_mut(&w.phaser).expect("indexed wait");
            let at = list
                .iter()
                .position(|&(u, n)| u == task && n == w.phase)
                .expect("indexed wait entry");
            list.swap_remove(at);
            if list.is_empty() {
                self.waiters_by_phaser.remove(&w.phaser);
            }
        }
        self.tasks.remove(&task);

        // The departing task's contributions against the surviving state.
        for reg in &info.registered {
            if let Some(phases) = self.awaited.get(&reg.phaser) {
                let sources: Vec<Resource> = phases
                    .range(reg.local_phase + 1..)
                    .map(|(&n, _)| Resource::new(reg.phaser, n))
                    .collect();
                for r1 in sources {
                    for &r2 in &info.waits {
                        drop_edge(&mut self.sg_adj, &mut self.sg_order, &mut self.sg_edges, r1, r2);
                    }
                }
            }
        }
        for &w in &info.waits {
            let laggards: Vec<TaskId> = self
                .regs_by_phaser
                .get(&w.phaser)
                .into_iter()
                .flatten()
                .filter(|&&(_, m)| m < w.phase)
                .map(|&(u, _)| u)
                .collect();
            for u in laggards {
                drop_edge(&mut self.wfg_adj, &mut self.wfg_order, &mut self.wfg_edges, task, u);
            }
        }
    }

    // -- queries ------------------------------------------------------------

    /// Number of blocked tasks in the maintained view.
    pub fn blocked(&self) -> usize {
        self.tasks.len()
    }

    /// The engine's journal position.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The model a check at the current state uses. `Auto` applies the
    /// final-state form of the paper's threshold rule (see
    /// [`auto_pick`]) — order-free, unlike the from-scratch builder's
    /// mid-construction abort, but calibrated identically.
    pub fn model_for(&self, choice: ModelChoice, threshold: usize) -> GraphModel {
        match choice {
            ModelChoice::FixedWfg => GraphModel::Wfg,
            ModelChoice::FixedSg => GraphModel::Sg,
            ModelChoice::Auto => auto_pick(self.sg_edges, self.tasks.len(), threshold),
        }
    }

    fn stats_for(&self, choice: ModelChoice, model: GraphModel) -> CheckStats {
        CheckStats {
            model,
            nodes: match model {
                GraphModel::Wfg => self.tasks.len(),
                GraphModel::Sg => self.sg_nodes,
            },
            edges: match model {
                GraphModel::Wfg => self.wfg_edges,
                GraphModel::Sg => self.sg_edges,
            },
            blocked_tasks: self.tasks.len(),
            sg_aborted: choice == ModelChoice::Auto && model == GraphModel::Wfg,
        }
    }

    /// Avoidance check on the maintained graph: is there a cycle through
    /// `task`'s contribution? The negative (overwhelmingly common) case
    /// touches only the nodes reachable from `task`; a hit falls back to
    /// the canonical checker over the materialised snapshot so the report
    /// is byte-identical to the from-scratch oracle's.
    pub fn check_task(&self, task: TaskId, choice: ModelChoice, threshold: usize) -> CheckOutcome {
        let model = self.model_for(choice, threshold);
        let hit = match model {
            GraphModel::Wfg => self.wfg_cycle_through(task),
            GraphModel::Sg => self.sg_cycle_through(task),
        };
        let report = if hit {
            checker::check_task(&self.materialize(), task, choice, threshold).report
        } else {
            None
        };
        CheckOutcome { report, stats: self.stats_for(choice, model) }
    }

    /// Detection check answered from the maintained Pearce–Kelly order:
    /// is there any cycle? Cycle existence is read off the order state —
    /// `O(1)` when no insertion was deferred, `O(affected region)`
    /// amortised over the deltas that built it — instead of walking the
    /// whole refcounted adjacency. As with
    /// [`IncrementalEngine::check_task`], only a hit materialises a
    /// snapshot and delegates to the canonical [`checker`], so reports
    /// stay byte-identical to the from-scratch oracle's.
    pub fn check_full(&mut self, choice: ModelChoice, threshold: usize) -> CheckOutcome {
        self.check_full_detailed(choice, threshold).outcome
    }

    /// [`IncrementalEngine::check_full`] plus how the answer was obtained,
    /// so callers can feed the `incremental_detections` stats counter.
    pub fn check_full_detailed(
        &mut self,
        choice: ModelChoice,
        threshold: usize,
    ) -> DetectionOutcome {
        let model = self.model_for(choice, threshold);
        let hit = self.order_cycle_exists(model);
        let report =
            if hit { checker::check(&self.materialize(), choice, threshold).report } else { None };
        DetectionOutcome {
            outcome: CheckOutcome { report, stats: self.stats_for(choice, model) },
            incremental: !hit,
        }
    }

    /// Detection check by full scan of the maintained adjacency — the
    /// pre-order-maintenance path, kept as the differential baseline for
    /// [`IncrementalEngine::check_full`] and as the parallel option for
    /// one-shot checks over merged state.
    ///
    /// Above [`PAR_NODE_THRESHOLD`] nodes the existence pass fans out over
    /// [`crate::graph::DiGraph::has_cycle_par`] workers (when the host has
    /// more than one core): the maintained adjacency is flattened into a
    /// dense graph — `O(V + E)`, the same order as the scan itself — and
    /// peeled in parallel.
    pub fn check_full_scan(&self, choice: ModelChoice, threshold: usize) -> CheckOutcome {
        let model = self.model_for(choice, threshold);
        let hit = match model {
            GraphModel::Wfg => cycle_exists(&self.wfg_adj, self.tasks.len(), self.par_threshold),
            GraphModel::Sg => cycle_exists(&self.sg_adj, self.sg_nodes, self.par_threshold),
        };
        let report =
            if hit { checker::check(&self.materialize(), choice, threshold).report } else { None };
        CheckOutcome { report, stats: self.stats_for(choice, model) }
    }

    /// Cycle existence for `model`, answered from its maintained order
    /// (deferred-edge retries run here; `&mut` is the amortisation).
    pub fn order_cycle_exists(&mut self, model: GraphModel) -> bool {
        match model {
            GraphModel::Wfg => self.wfg_order.has_cycle(),
            GraphModel::Sg => self.sg_order.has_cycle(),
        }
    }

    /// Checks both maintained orders against the distinct-edge lists: every
    /// edge accounted for, committed edges strictly ascending in label.
    /// Test/testkit hook — `Err` means order maintenance has diverged from
    /// the refcounted adjacency.
    pub fn order_invariants(&self) -> Result<(), String> {
        self.wfg_order.validate(&self.wfg_edge_list()).map_err(|e| format!("wfg order: {e}"))?;
        self.sg_order.validate(&self.sg_edge_list()).map_err(|e| format!("sg order: {e}"))
    }

    /// The maintained view as a sorted [`Snapshot`] (identical, entry for
    /// entry, to `Registry::snapshot` of a caught-up registry).
    pub fn materialize(&self) -> Snapshot {
        Snapshot::from_tasks(self.tasks.values().cloned().collect())
    }

    fn wfg_cycle_through(&self, start: TaskId) -> bool {
        let Some(succs) = self.wfg_adj.get(&start) else { return false };
        let mut stack: Vec<TaskId> = succs.keys().copied().collect();
        let mut seen: HashSet<TaskId> = HashSet::new();
        while let Some(u) = stack.pop() {
            if u == start {
                return true;
            }
            if seen.insert(u) {
                if let Some(next) = self.wfg_adj.get(&u) {
                    stack.extend(next.keys().copied());
                }
            }
        }
        false
    }

    /// SG avoidance rule (as in [`checker::check_task`]): a cycle through
    /// the task's contribution is a path from one of its awaited events
    /// back to an event it impedes, closed by the task's own edge.
    fn sg_cycle_through(&self, task: TaskId) -> bool {
        let Some(info) = self.tasks.get(&task) else { return false };
        let mut stack: Vec<Resource> = info.waits.clone();
        let mut seen: HashSet<Resource> = HashSet::new();
        while let Some(r) = stack.pop() {
            if seen.insert(r) {
                if info.impedes(r) {
                    return true;
                }
                if let Some(next) = self.sg_adj.get(&r) {
                    stack.extend(next.keys().copied());
                }
            }
        }
        false
    }

    // -- structural accessors (equivalence tests, benches) ------------------

    /// Distinct SG edges, sorted.
    pub fn sg_edge_list(&self) -> Vec<(Resource, Resource)> {
        let mut edges: Vec<(Resource, Resource)> = self
            .sg_adj
            .iter()
            .flat_map(|(&r1, succs)| succs.keys().map(move |&r2| (r1, r2)))
            .collect();
        edges.sort();
        edges
    }

    /// Distinct WFG edges, sorted.
    pub fn wfg_edge_list(&self) -> Vec<(TaskId, TaskId)> {
        let mut edges: Vec<(TaskId, TaskId)> = self
            .wfg_adj
            .iter()
            .flat_map(|(&t1, succs)| succs.keys().map(move |&t2| (t1, t2)))
            .collect();
        edges.sort();
        edges
    }

    /// Distinct awaited events (SG vertices), sorted.
    pub fn sg_vertex_list(&self) -> Vec<Resource> {
        let mut nodes: Vec<Resource> = self
            .awaited
            .iter()
            .flat_map(|(&p, phases)| phases.keys().map(move |&n| Resource::new(p, n)))
            .collect();
        nodes.sort();
        nodes
    }

    /// Blocked tasks (WFG vertices), sorted.
    pub fn wfg_vertex_list(&self) -> Vec<TaskId> {
        let mut nodes: Vec<TaskId> = self.tasks.keys().copied().collect();
        nodes.sort();
        nodes
    }

    /// Distinct SG edge count of the maintained graph.
    pub fn sg_edge_count(&self) -> usize {
        self.sg_edges
    }

    /// Distinct WFG edge count of the maintained graph.
    pub fn wfg_edge_count(&self) -> usize {
        self.wfg_edges
    }
}

/// Node count above which [`IncrementalEngine::check_full_scan`]'s
/// existence pass parallelises (when more than one core is available).
/// Calibrated well above the paper's workloads: small graphs finish a
/// sequential DFS faster than they can fan out.
pub const PAR_NODE_THRESHOLD: usize = 4096;

/// Worker count for the parallel existence pass: the host's available
/// parallelism, capped — peeling is memory-bound, extra workers past a
/// small count only contend on the frontier.
pub fn par_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Cycle existence over refcounted adjacency: sequential DFS below the
/// engine's parallel threshold (or on single-core hosts), parallel peel
/// above.
fn cycle_exists<N: Copy + Eq + Hash>(adj: &RefCountedAdj<N>, nodes: usize, par: usize) -> bool {
    let workers = par_workers();
    if nodes >= par && workers > 1 {
        let mut dense = crate::graph::DiGraph::with_capacity(nodes);
        for (&a, succs) in adj.iter() {
            for &b in succs.keys() {
                dense.add_edge(a, b);
            }
        }
        return dense.has_cycle_par(workers);
    }
    has_cycle(adj)
}

/// Existence-only three-colour DFS over refcounted adjacency (no witness:
/// hits delegate to the canonical checker for that).
fn has_cycle<N: Copy + Eq + Hash>(adj: &RefCountedAdj<N>) -> bool {
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let mut colour: HashMap<N, u8> = HashMap::new();
    let succs_of =
        |n: N| -> Vec<N> { adj.get(&n).map(|m| m.keys().copied().collect()).unwrap_or_default() };
    for &root in adj.keys() {
        if colour.contains_key(&root) {
            continue;
        }
        let mut stack: Vec<(N, Vec<N>, usize)> = vec![(root, succs_of(root), 0)];
        colour.insert(root, GREY);
        while let Some((v, succs, next)) = stack.last_mut() {
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                match colour.get(&s) {
                    None => {
                        colour.insert(s, GREY);
                        let s_succs = succs_of(s);
                        stack.push((s, s_succs, 0));
                    }
                    Some(&GREY) => return true,
                    _ => {}
                }
            } else {
                colour.insert(*v, BLACK);
                stack.pop();
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::DEFAULT_SG_THRESHOLD;
    use crate::resource::Registration;
    use crate::{sg, wfg};

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }
    fn r(ph: u64, n: u64) -> Resource {
        Resource::new(p(ph), n)
    }

    fn worker(task: u64) -> BlockedInfo {
        BlockedInfo::new(
            t(task),
            vec![r(1, 1)],
            vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
        )
    }

    fn driver() -> BlockedInfo {
        BlockedInfo::new(
            t(4),
            vec![r(2, 1)],
            vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
        )
    }

    /// Engine structures equal the from-scratch oracle on the current
    /// materialised state.
    fn assert_matches_oracle(engine: &IncrementalEngine) {
        let snap = engine.materialize();
        let oracle_wfg = wfg::wfg(&snap);
        let oracle_sg = sg::sg(&snap);
        assert_eq!(engine.wfg_edge_list(), {
            let mut e = oracle_wfg.edges();
            e.sort();
            e
        });
        assert_eq!(engine.sg_edge_list(), {
            let mut e = oracle_sg.edges();
            e.sort();
            e
        });
        assert_eq!(engine.wfg_vertex_list(), {
            let mut n = oracle_wfg.nodes().to_vec();
            n.sort();
            n
        });
        assert_eq!(engine.sg_vertex_list(), {
            let mut n = oracle_sg.nodes().to_vec();
            n.sort();
            n
        });
    }

    #[test]
    fn example_4_1_builds_figure_5_shapes_incrementally() {
        let mut engine = IncrementalEngine::new();
        for i in 1..=3 {
            engine.apply(Delta::Block(worker(i)));
            assert_matches_oracle(&engine);
        }
        engine.apply(Delta::Block(driver()));
        assert_matches_oracle(&engine);
        assert_eq!(engine.wfg_edge_count(), 6); // Figure 5a
        assert_eq!(engine.sg_edge_count(), 2); // Figure 5c
        assert_eq!(engine.blocked(), 4);

        for choice in [ModelChoice::FixedWfg, ModelChoice::FixedSg, ModelChoice::Auto] {
            let out = engine.check_full(choice, DEFAULT_SG_THRESHOLD);
            assert!(out.report.is_some(), "{choice}");
            for task in 1..=4 {
                let out = engine.check_task(t(task), choice, DEFAULT_SG_THRESHOLD);
                assert!(out.report.is_some(), "{choice}: t{task} participates");
            }
        }
    }

    #[test]
    fn unblock_is_the_exact_mirror_of_block() {
        let mut engine = IncrementalEngine::new();
        for i in 1..=3 {
            engine.apply(Delta::Block(worker(i)));
        }
        engine.apply(Delta::Block(driver()));
        engine.apply(Delta::Unblock(t(4)));
        assert_matches_oracle(&engine);
        assert!(engine.check_full(ModelChoice::Auto, DEFAULT_SG_THRESHOLD).report.is_none());
        for i in 1..=3 {
            engine.apply(Delta::Unblock(t(i)));
        }
        assert_eq!(engine.blocked(), 0);
        assert_eq!(engine.sg_edge_count(), 0);
        assert_eq!(engine.wfg_edge_count(), 0);
        assert_eq!(engine.sg_vertex_list(), Vec::<Resource>::new());
        assert!(engine.sg_adj.is_empty() && engine.wfg_adj.is_empty());
        assert!(engine.awaited.is_empty());
        assert!(engine.regs_by_phaser.is_empty() && engine.waiters_by_phaser.is_empty());
    }

    #[test]
    fn reblocking_replaces_the_previous_contribution() {
        let mut engine = IncrementalEngine::new();
        engine.apply(Delta::Block(worker(1)));
        let mut moved = worker(1);
        moved.waits = vec![r(3, 1)];
        moved.registered = vec![Registration::new(p(3), 1)];
        engine.apply(Delta::Block(moved));
        assert_matches_oracle(&engine);
        assert_eq!(engine.blocked(), 1);
        assert_eq!(engine.sg_vertex_list(), vec![r(3, 1)]);
    }

    #[test]
    fn self_wait_is_a_self_loop_in_both_models() {
        let mut engine = IncrementalEngine::new();
        engine.apply(Delta::Block(BlockedInfo::new(
            t(1),
            vec![r(1, 5)],
            vec![Registration::new(p(1), 2)],
        )));
        assert_matches_oracle(&engine);
        assert!(engine.wfg_cycle_through(t(1)));
        assert!(engine.sg_cycle_through(t(1)));
        assert!(engine.check_task(t(1), ModelChoice::Auto, DEFAULT_SG_THRESHOLD).report.is_some());
    }

    #[test]
    fn bystanders_do_not_trip_task_checks() {
        let mut engine = IncrementalEngine::new();
        for i in 1..=3 {
            engine.apply(Delta::Block(worker(i)));
        }
        engine.apply(Delta::Block(driver()));
        engine.apply(Delta::Block(BlockedInfo::new(
            t(9),
            vec![r(9, 1)],
            vec![Registration::new(p(9), 1)],
        )));
        for choice in [ModelChoice::FixedWfg, ModelChoice::FixedSg, ModelChoice::Auto] {
            assert!(
                engine.check_task(t(9), choice, DEFAULT_SG_THRESHOLD).report.is_none(),
                "{choice}: t9 is a bystander"
            );
        }
    }

    #[test]
    fn sync_applies_deltas_and_resyncs_when_behind() {
        let registry = Registry::with_journal_capacity(3);
        let mut engine = IncrementalEngine::new();
        registry.block(worker(1));
        registry.block(worker(2));
        let out = engine.sync(&registry);
        assert_eq!(out, SyncOutcome { deltas_applied: 2, resynced: false });
        assert_matches_oracle(&engine);

        // Four more deltas truncate past the engine's cursor.
        registry.block(worker(3));
        registry.block(driver());
        registry.unblock(t(3));
        registry.block(worker(3));
        let out = engine.sync(&registry);
        assert!(out.resynced);
        assert_matches_oracle(&engine);
        assert_eq!(engine.blocked(), 4);

        // Caught up again: the next sync is an empty delta read.
        let out = engine.sync(&registry);
        assert_eq!(out, SyncOutcome { deltas_applied: 0, resynced: false });
    }

    #[test]
    fn engine_reports_are_byte_identical_to_the_oracle() {
        let registry = Registry::new();
        let mut engine = IncrementalEngine::new();
        for i in 1..=3 {
            registry.block(worker(i));
        }
        registry.block(driver());
        engine.sync(&registry);
        let snap = registry.snapshot();
        for choice in [ModelChoice::FixedWfg, ModelChoice::FixedSg] {
            let ours = engine.check_full(choice, DEFAULT_SG_THRESHOLD).report.unwrap();
            let oracle = checker::check(&snap, choice, DEFAULT_SG_THRESHOLD).report.unwrap();
            assert_eq!(
                serde_json::to_string(&ours).unwrap(),
                serde_json::to_string(&oracle).unwrap(),
                "{choice}"
            );
            let ours = engine.check_task(t(4), choice, DEFAULT_SG_THRESHOLD).report.unwrap();
            let oracle =
                checker::check_task(&snap, t(4), choice, DEFAULT_SG_THRESHOLD).report.unwrap();
            assert_eq!(
                serde_json::to_string(&ours).unwrap(),
                serde_json::to_string(&oracle).unwrap(),
                "{choice}"
            );
        }
    }

    #[test]
    fn auto_model_follows_the_threshold_rule() {
        let mut engine = IncrementalEngine::new();
        // SPMD shape: one barrier, many tasks — tiny SG, Auto keeps it.
        for i in 0..64u64 {
            let phase = if i == 0 { 0 } else { 1 };
            engine.apply(Delta::Block(BlockedInfo::new(
                t(i),
                vec![r(1, 1)],
                vec![Registration::new(p(1), phase)],
            )));
        }
        assert_eq!(engine.model_for(ModelChoice::Auto, DEFAULT_SG_THRESHOLD), GraphModel::Sg);
        let stats = engine.check_full(ModelChoice::Auto, DEFAULT_SG_THRESHOLD).stats;
        assert_eq!(stats.model, GraphModel::Sg);
        assert!(!stats.sg_aborted);

        // Few tasks, many barriers each: the SG explodes, Auto falls back.
        let mut engine = IncrementalEngine::new();
        for i in 0..4u64 {
            let regs = (0..64).map(|b| Registration::new(p(b), 0)).collect();
            engine.apply(Delta::Block(BlockedInfo::new(t(i), vec![r(i % 64, 1)], regs)));
        }
        assert_eq!(engine.model_for(ModelChoice::Auto, DEFAULT_SG_THRESHOLD), GraphModel::Wfg);
        let stats = engine.check_full(ModelChoice::Auto, DEFAULT_SG_THRESHOLD).stats;
        assert!(stats.sg_aborted);
    }

    #[test]
    fn check_full_is_correct_above_the_parallel_threshold() {
        // More blocked tasks than PAR_NODE_THRESHOLD, one barrier each in
        // a long chain: task i (arrived on barrier i, lagging on barrier
        // i-1) — acyclic. `check_full` must dispatch through the
        // threshold branch and still agree with the oracle.
        let mut engine = IncrementalEngine::new();
        let n = (PAR_NODE_THRESHOLD + 128) as u64;
        for i in 0..n {
            let mut regs = vec![Registration::new(p(i), 1)];
            if i > 0 {
                regs.push(Registration::new(p(i - 1), 0));
            }
            engine.apply(Delta::Block(BlockedInfo::new(t(i), vec![r(i, 1)], regs)));
        }
        assert!(engine.blocked() >= PAR_NODE_THRESHOLD);
        let scan = engine.check_full_scan(ModelChoice::FixedWfg, DEFAULT_SG_THRESHOLD);
        assert!(scan.report.is_none(), "chain shape is deadlock-free");
        let out = engine.check_full(ModelChoice::FixedWfg, DEFAULT_SG_THRESHOLD);
        assert!(out.report.is_none(), "order path must agree with the scan");
        // Close the chain: task 0 re-blocks with an extra lagging
        // registration on the *last* barrier, adding the back edge
        // t(n-1) → t(0) — a cycle spanning the whole chain.
        engine.apply(Delta::Block(BlockedInfo::new(
            t(0),
            vec![r(0, 1)],
            vec![Registration::new(p(0), 1), Registration::new(p(n - 1), 0)],
        )));
        let scan = engine.check_full_scan(ModelChoice::FixedWfg, DEFAULT_SG_THRESHOLD);
        assert!(scan.report.is_some(), "closed chain must be reported");
        let out = engine.check_full(ModelChoice::FixedWfg, DEFAULT_SG_THRESHOLD);
        assert_eq!(
            serde_json::to_string(&out.report).unwrap(),
            serde_json::to_string(&scan.report).unwrap(),
            "order path and scan must deliver the identical report"
        );
    }

    #[test]
    #[cfg(not(feature = "verifier-mutation"))]
    fn detection_is_incremental_until_a_hit_and_recovers_after() {
        let mut engine = IncrementalEngine::new();
        for i in 1..=3 {
            engine.apply(Delta::Block(worker(i)));
        }
        engine.order_invariants().expect("orders valid on the acyclic prefix");
        for choice in [ModelChoice::FixedWfg, ModelChoice::FixedSg, ModelChoice::Auto] {
            let det = engine.check_full_detailed(choice, DEFAULT_SG_THRESHOLD);
            assert!(det.incremental, "{choice}: no cycle ⇒ answered from the order");
            assert!(det.outcome.report.is_none());
        }

        // The driver closes the Figure 5 cycle: the hit must fall back to
        // the canonical rebuild (incremental = false) in both models.
        engine.apply(Delta::Block(driver()));
        engine.order_invariants().expect("orders valid with deferred edges");
        for choice in [ModelChoice::FixedWfg, ModelChoice::FixedSg] {
            let det = engine.check_full_detailed(choice, DEFAULT_SG_THRESHOLD);
            assert!(!det.incremental, "{choice}: a hit must rebuild");
            assert!(det.outcome.report.is_some());
        }

        // Breaking the cycle drains the deferred edges: detection is
        // incremental again and the orders stay valid.
        engine.apply(Delta::Unblock(t(4)));
        for choice in [ModelChoice::FixedWfg, ModelChoice::FixedSg] {
            let det = engine.check_full_detailed(choice, DEFAULT_SG_THRESHOLD);
            assert!(det.incremental, "{choice}: cycle removed ⇒ order answers again");
            assert!(det.outcome.report.is_none());
        }
        engine.order_invariants().expect("orders valid after the retry pass");
    }

    #[test]
    fn duplicate_waits_and_registrations_balance_out() {
        // Out-of-model but must not corrupt the refcounts: duplicate wait
        // occurrences and duplicate registrations add and remove the same
        // number of contributions.
        let mut engine = IncrementalEngine::new();
        let odd = BlockedInfo::new(
            t(1),
            vec![r(1, 2), r(1, 2), r(2, 1)],
            vec![Registration::new(p(2), 0), Registration::new(p(2), 0)],
        );
        engine.apply(Delta::Block(odd));
        engine.apply(Delta::Block(BlockedInfo::new(
            t(2),
            vec![r(2, 1)],
            vec![Registration::new(p(1), 1)],
        )));
        assert_matches_oracle(&engine);
        engine.apply(Delta::Unblock(t(1)));
        assert_matches_oracle(&engine);
        engine.apply(Delta::Unblock(t(2)));
        assert_eq!(engine.sg_edge_count(), 0);
        assert_eq!(engine.wfg_edge_count(), 0);
    }
}
