//! The deadlock error raised by avoidance mode.

use crate::checker::DeadlockReport;

/// Raised (instead of blocking) when an avoidance check finds that the
/// blocking operation would complete a deadlock cycle. The paper:
/// "Armus checks for deadlocks before the task blocks and interrupts the
/// blocking operation with an exception if the deadlock is found. The
/// programmer can treat the exceptional situation to develop applications
/// resilient to deadlocks."
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockError {
    /// The deadlock that would have formed.
    pub report: DeadlockReport,
}

impl std::fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blocking would deadlock: {}", self.report)
    }
}

impl std::error::Error for DeadlockError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::GraphModel;
    use crate::checker::CycleWitness;
    use crate::ids::TaskId;

    #[test]
    fn error_displays_report() {
        let report = DeadlockReport {
            tasks: vec![TaskId(1), TaskId(2)],
            resources: vec![],
            model: GraphModel::Wfg,
            witness: CycleWitness::Tasks(vec![TaskId(1), TaskId(2), TaskId(1)]),
            task_epochs: vec![],
        };
        let err = DeadlockError { report };
        let text = err.to_string();
        assert!(text.contains("would deadlock"));
        assert!(text.contains("t1"));
        let _: &dyn std::error::Error = &err;
    }
}
