//! One-shot deadlock checks over a snapshot: graph construction (per the
//! selected model) followed by cycle detection, producing a
//! [`DeadlockReport`] that names both the tasks and the synchronisation
//! events involved.

use serde::{Deserialize, Serialize};

use crate::adaptive::{self, BuiltGraph, GraphModel, ModelChoice};
use crate::deps::Snapshot;
use crate::ids::TaskId;
use crate::index::SnapshotIndex;
use crate::resource::Resource;

/// The witness cycle found by the analysis, in the vocabulary of the model
/// that found it (first element equals last).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CycleWitness {
    /// A WFG cycle `t₀ t₁ … t₀`.
    Tasks(Vec<TaskId>),
    /// An SG cycle `r₀ r₁ … r₀`.
    Resources(Vec<Resource>),
}

/// A verified deadlock: the strongly-cyclic tasks, the events they are
/// stuck on, and the raw witness.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlockReport {
    /// Blocked tasks participating in the cycle, sorted and de-duplicated.
    pub tasks: Vec<TaskId>,
    /// Events involved in the cycle, sorted and de-duplicated.
    pub resources: Vec<Resource>,
    /// The model that produced the witness.
    pub model: GraphModel,
    /// The witness cycle.
    pub witness: CycleWitness,
    /// `(task, epoch)` pairs for the participating tasks, used by detection
    /// to confirm the tasks are still in the observed blocking operations.
    pub task_epochs: Vec<(TaskId, u64)>,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadlock among ")?;
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, " on events ")?;
        for (i, r) in self.resources.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, " [{} cycle]", self.model)
    }
}

/// Task sets a [`ReportDedup`] retains before evicting the least recently
/// seen — bounds a long-running checker's memory.
pub const DEFAULT_DEDUP_CAPACITY: usize = 1024;

/// Tracks already-reported deadlocks (by participating task set) so a
/// long-running checker reports a given deadlock once. Bounded LRU:
/// re-seeing a set refreshes it; past the capacity the least recently seen
/// set is evicted (an evicted deadlock that somehow persists would be
/// re-reported — the benign failure mode). Used by the [`crate::Verifier`]
/// in detection mode and by the distributed cluster checker.
pub struct ReportDedup {
    seen: std::collections::VecDeque<Vec<TaskId>>,
    capacity: usize,
}

impl Default for ReportDedup {
    fn default() -> Self {
        ReportDedup::new()
    }
}

impl ReportDedup {
    /// Creates an empty dedup set with the default capacity.
    pub fn new() -> ReportDedup {
        ReportDedup::with_capacity(DEFAULT_DEDUP_CAPACITY)
    }

    /// Creates an empty dedup set retaining at most `capacity` task sets.
    pub fn with_capacity(capacity: usize) -> ReportDedup {
        assert!(capacity > 0, "dedup capacity must be positive");
        ReportDedup { seen: std::collections::VecDeque::new(), capacity }
    }

    /// Number of retained task sets.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Returns true when `report` is new (and records it, evicting the
    /// least recently seen set past the capacity).
    pub fn is_new(&mut self, report: &DeadlockReport) -> bool {
        self.is_new_set(&report.tasks)
    }

    /// Task-set form of [`ReportDedup::is_new`], for callers that only
    /// have the participating tasks at hand.
    pub fn is_new_set(&mut self, tasks: &[TaskId]) -> bool {
        if let Some(at) = self.seen.iter().position(|s| s == tasks) {
            // Refresh recency: move to the back.
            let set = self.seen.remove(at).expect("position is in range");
            self.seen.push_back(set);
            return false;
        }
        self.seen.push_back(tasks.to_vec());
        while self.seen.len() > self.capacity {
            self.seen.pop_front();
        }
        true
    }
}

/// Statistics of a single check, fed to [`crate::stats::StatsCollector`]
/// and ultimately to Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckStats {
    /// Model the check used after selection.
    pub model: GraphModel,
    /// Vertices of the analysed graph.
    pub nodes: usize,
    /// Edges of the analysed graph.
    pub edges: usize,
    /// Blocked tasks in the snapshot.
    pub blocked_tasks: usize,
    /// Whether an Auto build abandoned a partial SG.
    pub sg_aborted: bool,
}

/// Outcome of a deadlock check.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// The deadlock found, if any.
    pub report: Option<DeadlockReport>,
    /// Size statistics for this check.
    pub stats: CheckStats,
}

/// Runs a full deadlock check over `snapshot`.
pub fn check(snapshot: &Snapshot, choice: ModelChoice, threshold: usize) -> CheckOutcome {
    let idx = SnapshotIndex::new(snapshot);
    let built = adaptive::build_indexed(snapshot, &idx, choice, threshold);
    let stats = stats_of(&built, snapshot);
    let report = match built.model {
        GraphModel::Wfg => built
            .wfg
            .as_ref()
            .and_then(|g| g.find_cycle())
            .map(|cycle| report_from_task_cycle(snapshot, &idx, cycle)),
        GraphModel::Sg => built
            .sg
            .as_ref()
            .and_then(|g| g.find_cycle())
            .map(|cycle| report_from_resource_cycle(snapshot, &idx, cycle)),
    };
    CheckOutcome { report, stats }
}

/// Runs an avoidance check for `task`, which has just been inserted into the
/// snapshot: is there a cycle *through `task`'s contribution*? Tasks never
/// enter deadlocks they are not part of, so avoidance only needs cycles the
/// blocking task participates in.
pub fn check_task(
    snapshot: &Snapshot,
    task: TaskId,
    choice: ModelChoice,
    threshold: usize,
) -> CheckOutcome {
    let idx = SnapshotIndex::new(snapshot);
    let built = adaptive::build_indexed(snapshot, &idx, choice, threshold);
    let stats = stats_of(&built, snapshot);
    let report = match built.model {
        GraphModel::Wfg => built
            .wfg
            .as_ref()
            .and_then(|g| g.find_cycle_through(task))
            .map(|cycle| report_from_task_cycle(snapshot, &idx, cycle)),
        GraphModel::Sg => built.sg.as_ref().and_then(|g| {
            // A cycle through `task` uses one of its SG edges r_i → r_w
            // (task ∈ I(r_i), r_w ∈ W(task)): find a path from any of the
            // task's waits back to an event the task impedes, then close it
            // with the task's own edge.
            let info = snapshot.get(task)?;
            let path = g.path_from_sources(&info.waits, |r| info.impedes(r))?;
            let mut cycle = path;
            // Close the cycle: last impedes-edge back to the first wait.
            cycle.push(cycle[0]);
            Some(report_from_resource_cycle(snapshot, &idx, cycle))
        }),
    };
    CheckOutcome { report, stats }
}

fn stats_of(built: &BuiltGraph, snapshot: &Snapshot) -> CheckStats {
    CheckStats {
        model: built.model,
        nodes: built.node_count(),
        edges: built.edge_count(),
        blocked_tasks: snapshot.len(),
        sg_aborted: built.sg_aborted_at.is_some(),
    }
}

/// Builds a report from a WFG cycle: the involved events are, for each edge
/// `t1 → t2` of the cycle, the events `r ∈ W(t1)` that `t2` impedes.
fn report_from_task_cycle(
    snapshot: &Snapshot,
    _idx: &SnapshotIndex,
    cycle: Vec<TaskId>,
) -> DeadlockReport {
    let mut tasks: Vec<TaskId> = cycle.clone();
    tasks.pop(); // drop the closing duplicate
    tasks.sort();
    tasks.dedup();

    let mut resources = Vec::new();
    for pair in cycle.windows(2) {
        let (t1, t2) = (pair[0], pair[1]);
        let (Some(b1), Some(b2)) = (snapshot.get(t1), snapshot.get(t2)) else {
            continue;
        };
        for &w in &b1.waits {
            if b2.impedes(w) {
                resources.push(w);
            }
        }
    }
    resources.sort();
    resources.dedup();

    let task_epochs = tasks.iter().filter_map(|&t| snapshot.get(t).map(|b| (t, b.epoch))).collect();

    DeadlockReport {
        tasks,
        resources,
        model: GraphModel::Wfg,
        witness: CycleWitness::Tasks(cycle),
        task_epochs,
    }
}

/// Builds a report from an SG cycle: the involved tasks are, for each edge
/// `r1 → r2` of the cycle, the blocked tasks `t` with `t ∈ I(r1)` and
/// `r2 ∈ W(t)`.
fn report_from_resource_cycle(
    snapshot: &Snapshot,
    idx: &SnapshotIndex,
    cycle: Vec<Resource>,
) -> DeadlockReport {
    let mut tasks = Vec::new();
    for pair in cycle.windows(2) {
        let (r1, r2) = (pair[0], pair[1]);
        for t in idx.impeders(r1) {
            if snapshot.get(t).map(|b| b.waits.contains(&r2)).unwrap_or(false) {
                tasks.push(t);
            }
        }
    }
    tasks.sort();
    tasks.dedup();

    let mut resources = cycle.clone();
    resources.pop();
    resources.sort();
    resources.dedup();

    let task_epochs = tasks.iter().filter_map(|&t| snapshot.get(t).map(|b| (t, b.epoch))).collect();

    DeadlockReport {
        tasks,
        resources,
        model: GraphModel::Sg,
        witness: CycleWitness::Resources(cycle),
        task_epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::DEFAULT_SG_THRESHOLD;
    use crate::deps::BlockedInfo;
    use crate::ids::PhaserId;
    use crate::resource::Registration;

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }
    fn r(ph: u64, n: u64) -> Resource {
        Resource::new(p(ph), n)
    }

    /// Paper Example 4.1 (a real deadlock).
    fn deadlocked_snapshot() -> Snapshot {
        let worker = |task: u64| {
            BlockedInfo::new(
                t(task),
                vec![r(1, 1)],
                vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
            )
        };
        let driver = BlockedInfo::new(
            t(4),
            vec![r(2, 1)],
            vec![Registration::new(p(1), 0), Registration::new(p(2), 1)],
        );
        Snapshot::from_tasks(vec![worker(1), worker(2), worker(3), driver])
    }

    /// The fixed program: driver deregistered from pc before waiting pb.
    fn healthy_snapshot() -> Snapshot {
        let worker = |task: u64| {
            BlockedInfo::new(
                t(task),
                vec![r(1, 1)],
                vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
            )
        };
        Snapshot::from_tasks(vec![worker(1), worker(2), worker(3)])
        // (t4 is not blocked: it either runs or waits on pb whose members
        // will eventually deregister — not represented here.)
    }

    #[test]
    fn all_models_find_the_example_deadlock() {
        for choice in [ModelChoice::FixedWfg, ModelChoice::FixedSg, ModelChoice::Auto] {
            let out = check(&deadlocked_snapshot(), choice, DEFAULT_SG_THRESHOLD);
            let report = out.report.unwrap_or_else(|| panic!("{choice}: no deadlock found"));
            // The witness is *a* cycle, not necessarily the full deadlocked
            // set: a WFG 2-cycle t_i→t4→t_i is a valid report. The driver
            // participates in every cycle of this state.
            assert!(report.tasks.contains(&t(4)), "{choice}: driver missing from {report}");
            assert!(report.tasks.len() >= 2);
            assert!(report.tasks.iter().all(|tk| (1..=4).contains(&tk.0)));
            assert_eq!(report.resources, vec![r(1, 1), r(2, 1)]);
        }
        // The SG witness covers both events, whose impeder/waiter sets are
        // the full task set.
        let out = check(&deadlocked_snapshot(), ModelChoice::FixedSg, DEFAULT_SG_THRESHOLD);
        assert_eq!(out.report.unwrap().tasks, vec![t(1), t(2), t(3), t(4)]);
    }

    #[test]
    fn no_model_reports_the_healthy_state() {
        for choice in [ModelChoice::FixedWfg, ModelChoice::FixedSg, ModelChoice::Auto] {
            let out = check(&healthy_snapshot(), choice, DEFAULT_SG_THRESHOLD);
            assert!(out.report.is_none(), "{choice}: spurious deadlock");
        }
    }

    #[test]
    fn check_stats_report_model_and_sizes() {
        let out = check(&deadlocked_snapshot(), ModelChoice::FixedWfg, DEFAULT_SG_THRESHOLD);
        assert_eq!(out.stats.model, GraphModel::Wfg);
        assert_eq!(out.stats.blocked_tasks, 4);
        assert_eq!(out.stats.nodes, 4);
        assert_eq!(out.stats.edges, 6); // Figure 5a
        let out = check(&deadlocked_snapshot(), ModelChoice::FixedSg, DEFAULT_SG_THRESHOLD);
        assert_eq!(out.stats.model, GraphModel::Sg);
        assert_eq!(out.stats.nodes, 2); // Figure 5c
    }

    #[test]
    fn avoidance_check_fires_only_for_participants() {
        let snap = deadlocked_snapshot();
        for choice in [ModelChoice::FixedWfg, ModelChoice::FixedSg, ModelChoice::Auto] {
            for task in [1u64, 2, 3, 4] {
                let out = check_task(&snap, t(task), choice, DEFAULT_SG_THRESHOLD);
                assert!(out.report.is_some(), "{choice}: t{task} is in the deadlock");
            }
        }
        // A bystander blocked on an unrelated phaser is not flagged...
        let mut tasks = deadlocked_snapshot().tasks;
        tasks.push(BlockedInfo::new(t(9), vec![r(9, 1)], vec![Registration::new(p(9), 1)]));
        let snap = Snapshot::from_tasks(tasks);
        for choice in [ModelChoice::FixedWfg, ModelChoice::FixedSg, ModelChoice::Auto] {
            let out = check_task(&snap, t(9), choice, DEFAULT_SG_THRESHOLD);
            assert!(out.report.is_none(), "{choice}: t9 is a bystander");
        }
    }

    #[test]
    fn witness_cycles_are_valid_in_their_model() {
        let snap = deadlocked_snapshot();
        let out = check(&snap, ModelChoice::FixedWfg, DEFAULT_SG_THRESHOLD);
        match out.report.unwrap().witness {
            CycleWitness::Tasks(c) => {
                let g = crate::wfg::wfg(&snap);
                assert!(g.is_cycle(&c), "invalid WFG witness {c:?}");
            }
            w => panic!("expected task witness, got {w:?}"),
        }
        let out = check(&snap, ModelChoice::FixedSg, DEFAULT_SG_THRESHOLD);
        match out.report.unwrap().witness {
            CycleWitness::Resources(c) => {
                let g = crate::sg::sg(&snap);
                assert!(g.is_cycle(&c), "invalid SG witness {c:?}");
            }
            w => panic!("expected resource witness, got {w:?}"),
        }
    }

    #[test]
    fn avoidance_sg_witness_is_a_cycle() {
        let snap = deadlocked_snapshot();
        let out = check_task(&snap, t(4), ModelChoice::FixedSg, DEFAULT_SG_THRESHOLD);
        match out.report.unwrap().witness {
            CycleWitness::Resources(c) => {
                let g = crate::sg::sg(&snap);
                assert!(g.is_cycle(&c), "invalid avoidance SG witness {c:?}");
            }
            w => panic!("expected resource witness, got {w:?}"),
        }
    }

    #[test]
    fn display_is_informative() {
        let out = check(&deadlocked_snapshot(), ModelChoice::FixedWfg, DEFAULT_SG_THRESHOLD);
        let text = out.report.unwrap().to_string();
        assert!(text.contains("t4"));
        assert!(text.contains("p1@1"));
        assert!(text.contains("WFG"));
    }

    #[test]
    fn empty_snapshot_is_deadlock_free() {
        for choice in [ModelChoice::FixedWfg, ModelChoice::FixedSg, ModelChoice::Auto] {
            assert!(check(&Snapshot::empty(), choice, 2).report.is_none());
        }
    }

    #[test]
    fn report_dedup_is_a_bounded_lru() {
        let mut dedup = ReportDedup::with_capacity(2);
        assert!(dedup.is_new_set(&[t(1)]));
        assert!(dedup.is_new_set(&[t(2)]));
        assert!(!dedup.is_new_set(&[t(1)]), "re-seen set is suppressed");
        // t1 was refreshed; inserting a third evicts t2, the least recent.
        assert!(dedup.is_new_set(&[t(3)]));
        assert_eq!(dedup.len(), 2);
        assert!(dedup.is_new_set(&[t(2)]), "evicted set reports again");
        assert!(!dedup.is_new_set(&[t(3)]));
    }

    #[test]
    fn report_dedup_eviction_follows_recency_order_exactly() {
        // Insert 1..=3 into capacity 3, refresh in the order 2, 1, 3:
        // recency (least → most) is now 2, 1, 3. Each new set must evict
        // in exactly that order.
        let mut dedup = ReportDedup::with_capacity(3);
        for n in 1..=3 {
            assert!(dedup.is_new_set(&[t(n)]));
        }
        for n in [2, 1, 3] {
            assert!(!dedup.is_new_set(&[t(n)]), "refresh of a retained set");
        }
        assert!(dedup.is_new_set(&[t(4)])); // evicts 2
        assert!(dedup.is_new_set(&[t(2)]), "2 was evicted first");
        // That re-insert evicted 1 (now the least recent of {1, 3, 4}).
        assert!(dedup.is_new_set(&[t(1)]), "1 was evicted second");
        assert!(!dedup.is_new_set(&[t(2)]), "2 is retained again");
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn report_dedup_reports_again_after_eviction_round_trip() {
        // A set that cycles out of the window and back reports each time
        // it returns — the benign failure mode for a persisting deadlock.
        let mut dedup = ReportDedup::with_capacity(2);
        assert!(dedup.is_new_set(&[t(1), t(2)]));
        for round in 0..3 {
            // Two fresh sets flush the window completely.
            assert!(dedup.is_new_set(&[t(10 + round)]), "round {round}");
            assert!(dedup.is_new_set(&[t(20 + round)]), "round {round}");
            assert!(dedup.is_new_set(&[t(1), t(2)]), "round {round}: evicted set must re-report");
        }
        // Distinct task sets never alias: subsets and supersets are new.
        assert!(dedup.is_new_set(&[t(1)]));
        assert!(!dedup.is_new_set(&[t(1), t(2)]), "the exact set stays deduplicated");
    }

    #[test]
    fn report_dedup_set_and_report_forms_agree() {
        let out = check(&deadlocked_snapshot(), ModelChoice::FixedWfg, DEFAULT_SG_THRESHOLD);
        let report = out.report.unwrap();
        let mut dedup = ReportDedup::new();
        assert!(dedup.is_new(&report));
        assert!(!dedup.is_new_set(&report.tasks));
    }
}
