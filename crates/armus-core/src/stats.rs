//! Verification statistics: per-check graph sizes and model choices.
//!
//! Table 3 of the paper reports, per benchmark and per graph mode, the
//! *average number of edges used in verification*; this collector gathers
//! exactly that, lock-free, so the workloads can report it.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::adaptive::GraphModel;
use crate::checker::CheckStats;

/// Lock-free accumulator of check statistics.
#[derive(Debug, Default)]
pub struct StatsCollector {
    checks: AtomicU64,
    checks_wfg: AtomicU64,
    checks_sg: AtomicU64,
    edges_sum: AtomicU64,
    edges_max: AtomicU64,
    nodes_sum: AtomicU64,
    deadlocks: AtomicU64,
    sg_aborts: AtomicU64,
    blocks: AtomicU64,
    unblocks: AtomicU64,
    deltas_applied: AtomicU64,
    full_rebuilds: AtomicU64,
    resyncs: AtomicU64,
    fastpath_skips: AtomicU64,
    static_skips: AtomicU64,
    engine_lock_waits: AtomicU64,
    combined_checks: AtomicU64,
    incremental_detections: AtomicU64,
    order_rebuilds: AtomicU64,
    async_waits: AtomicU64,
    waker_wakes: AtomicU64,
}

impl StatsCollector {
    /// Creates a zeroed collector.
    pub fn new() -> StatsCollector {
        StatsCollector::default()
    }

    /// Records the sizes of one completed check.
    pub fn record_check(&self, stats: &CheckStats) {
        self.checks.fetch_add(1, Ordering::Relaxed);
        match stats.model {
            GraphModel::Wfg => self.checks_wfg.fetch_add(1, Ordering::Relaxed),
            GraphModel::Sg => self.checks_sg.fetch_add(1, Ordering::Relaxed),
        };
        self.edges_sum.fetch_add(stats.edges as u64, Ordering::Relaxed);
        self.nodes_sum.fetch_add(stats.nodes as u64, Ordering::Relaxed);
        self.edges_max.fetch_max(stats.edges as u64, Ordering::Relaxed);
        if stats.sg_aborted {
            self.sg_aborts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a deadlock report.
    pub fn record_deadlock(&self) {
        self.deadlocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a blocked-status publication.
    pub fn record_block(&self) {
        self.blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an unblock.
    pub fn record_unblock(&self) {
        self.unblocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one incremental-engine sync: how many journal deltas were
    /// applied, and whether the engine had to resync from a full snapshot.
    pub fn record_sync(&self, deltas_applied: usize, resynced: bool) {
        self.deltas_applied.fetch_add(deltas_applied as u64, Ordering::Relaxed);
        if resynced {
            self.resyncs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a from-scratch graph rebuild (the engine's slow path: a
    /// maintained-graph hit being confirmed into a canonical report).
    pub fn record_full_rebuild(&self) {
        self.full_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an avoidance check answered by the resource-cardinality
    /// fast path, without taking the engine lock.
    pub fn record_fastpath_skip(&self) {
        self.fastpath_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an avoidance check skipped because the program carries a
    /// `ProvedSafe` static-analysis hint (see `VerifierConfig::static_hint`):
    /// the block was published but no deadlock check ran at all.
    pub fn record_static_skip(&self) {
        self.static_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a blocker finding the engine lock held (it enqueued its
    /// check with the combiner instead of convoying on the lock).
    pub fn record_engine_lock_wait(&self) {
        self.engine_lock_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a check the engine-lock holder applied on behalf of a
    /// waiting blocker (flat combining).
    pub fn record_combined_check(&self) {
        self.combined_checks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a detection check answered entirely from the maintained
    /// topological order — no cycle, so no canonical rebuild ran and the
    /// check cost `O(churn)`, not `O(V + E)`.
    pub fn record_incremental_detection(&self) {
        self.incremental_detections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a from-scratch rebuild of the maintained topological order
    /// (a journal resync, or a distributed checker reset).
    pub fn record_order_rebuild(&self) {
        self.order_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an async-front-end wait going pending: a waker was parked
    /// with the wait machine instead of an OS thread.
    pub fn record_async_wait(&self) {
        self.async_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` parked wakers being woken by a fate-resolving event
    /// (arrival, poison, interrupt, deregistration).
    pub fn record_waker_wakes(&self, n: u64) {
        if n > 0 {
            self.waker_wakes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Takes a consistent-enough copy for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            checks: self.checks.load(Ordering::Relaxed),
            checks_wfg: self.checks_wfg.load(Ordering::Relaxed),
            checks_sg: self.checks_sg.load(Ordering::Relaxed),
            edges_sum: self.edges_sum.load(Ordering::Relaxed),
            edges_max: self.edges_max.load(Ordering::Relaxed),
            nodes_sum: self.nodes_sum.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            sg_aborts: self.sg_aborts.load(Ordering::Relaxed),
            blocks: self.blocks.load(Ordering::Relaxed),
            unblocks: self.unblocks.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            full_rebuilds: self.full_rebuilds.load(Ordering::Relaxed),
            resyncs: self.resyncs.load(Ordering::Relaxed),
            fastpath_skips: self.fastpath_skips.load(Ordering::Relaxed),
            static_skips: self.static_skips.load(Ordering::Relaxed),
            engine_lock_waits: self.engine_lock_waits.load(Ordering::Relaxed),
            combined_checks: self.combined_checks.load(Ordering::Relaxed),
            incremental_detections: self.incremental_detections.load(Ordering::Relaxed),
            order_rebuilds: self.order_rebuilds.load(Ordering::Relaxed),
            async_waits: self.async_waits.load(Ordering::Relaxed),
            waker_wakes: self.waker_wakes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Total deadlock checks run.
    pub checks: u64,
    /// Checks that analysed a WFG.
    pub checks_wfg: u64,
    /// Checks that analysed an SG.
    pub checks_sg: u64,
    /// Sum of analysed edge counts (for the Table 3 average).
    pub edges_sum: u64,
    /// Largest graph analysed. `u64` like every sibling counter — the
    /// snapshot crosses the wire in the store server's metrics endpoint,
    /// so its layout must not depend on the host's pointer width.
    pub edges_max: u64,
    /// Sum of analysed node counts.
    pub nodes_sum: u64,
    /// Deadlocks reported.
    pub deadlocks: u64,
    /// Auto-mode SG builds abandoned for a WFG.
    pub sg_aborts: u64,
    /// Blocked-status publications.
    pub blocks: u64,
    /// Unblocks.
    pub unblocks: u64,
    /// Journal deltas applied to the incremental engine's maintained graph.
    pub deltas_applied: u64,
    /// From-scratch graph rebuilds (maintained-graph hits confirmed into
    /// canonical reports) — the counterpart of `deltas_applied`.
    pub full_rebuilds: u64,
    /// Engine reloads from a full snapshot after falling behind the
    /// bounded delta journal.
    pub resyncs: u64,
    /// Avoidance checks answered by the resource-cardinality fast path
    /// (fewer than two distinct awaited resources ⇒ no cycle possible)
    /// without touching the engine lock.
    pub fastpath_skips: u64,
    /// Avoidance checks skipped because a static analysis proved the whole
    /// program deadlock-free up front (`VerifierConfig::static_hint`): the
    /// block is still published and visible to peers, but no graph walk —
    /// not even the cardinality fast path — runs for it.
    pub static_skips: u64,
    /// Blockers that found the engine lock contended and enqueued their
    /// check with the combiner instead of convoying.
    pub engine_lock_waits: u64,
    /// Checks the engine-lock holder applied on behalf of waiting
    /// blockers (flat combining).
    pub combined_checks: u64,
    /// Detection checks answered entirely from the maintained topological
    /// order (no cycle found, no canonical rebuild): `O(churn)` instead of
    /// a full-graph pass. The hit counterpart is `full_rebuilds`.
    pub incremental_detections: u64,
    /// From-scratch rebuilds of the maintained topological order — one
    /// per journal resync (and per distributed checker reset).
    pub order_rebuilds: u64,
    /// Async-front-end waits that went pending: each parked a waker with
    /// the wait machine instead of an OS thread (the async counterpart of
    /// a condvar park).
    pub async_waits: u64,
    /// Parked wakers woken by fate-resolving events. Each waker is woken
    /// exactly once per pending wait, so this stays close to
    /// `async_waits` — a large gap means spurious executor polls.
    pub waker_wakes: u64,
}

impl StatsSnapshot {
    /// Average edges per check (Table 3's "Edges" row), 0 when no checks ran.
    pub fn avg_edges(&self) -> f64 {
        if self.checks == 0 {
            0.0
        } else {
            self.edges_sum as f64 / self.checks as f64
        }
    }

    /// Average nodes per check.
    pub fn avg_nodes(&self) -> f64 {
        if self.checks == 0 {
            0.0
        } else {
            self.nodes_sum as f64 / self.checks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(model: GraphModel, edges: usize, aborted: bool) -> CheckStats {
        CheckStats { model, nodes: edges / 2 + 1, edges, blocked_tasks: 4, sg_aborted: aborted }
    }

    #[test]
    fn averages_over_checks() {
        let c = StatsCollector::new();
        c.record_check(&check(GraphModel::Wfg, 10, false));
        c.record_check(&check(GraphModel::Sg, 2, false));
        c.record_check(&check(GraphModel::Wfg, 30, true));
        let s = c.snapshot();
        assert_eq!(s.checks, 3);
        assert_eq!(s.checks_wfg, 2);
        assert_eq!(s.checks_sg, 1);
        assert!((s.avg_edges() - 14.0).abs() < 1e-9);
        // Fixed-width on every host: the snapshot is serialised across
        // the wire by the store server's metrics endpoint.
        let edges_max: u64 = s.edges_max;
        assert_eq!(edges_max, 30);
        assert_eq!(s.sg_aborts, 1);
    }

    #[test]
    fn empty_collector_has_zero_average() {
        let s = StatsCollector::new().snapshot();
        assert_eq!(s.avg_edges(), 0.0);
        assert_eq!(s.avg_nodes(), 0.0);
    }

    #[test]
    fn block_unblock_deadlock_counters() {
        let c = StatsCollector::new();
        c.record_block();
        c.record_block();
        c.record_unblock();
        c.record_deadlock();
        let s = c.snapshot();
        assert_eq!(s.blocks, 2);
        assert_eq!(s.unblocks, 1);
        assert_eq!(s.deadlocks, 1);
    }

    #[test]
    fn engine_counters_accumulate() {
        let c = StatsCollector::new();
        c.record_sync(3, false);
        c.record_sync(0, true);
        c.record_sync(2, false);
        c.record_full_rebuild();
        c.record_incremental_detection();
        c.record_incremental_detection();
        c.record_order_rebuild();
        let s = c.snapshot();
        assert_eq!(s.deltas_applied, 5);
        assert_eq!(s.resyncs, 1);
        assert_eq!(s.full_rebuilds, 1);
        assert_eq!(s.incremental_detections, 2);
        assert_eq!(s.order_rebuilds, 1);
    }

    #[test]
    fn async_counters_accumulate() {
        let c = StatsCollector::new();
        c.record_async_wait();
        c.record_async_wait();
        c.record_waker_wakes(0);
        c.record_waker_wakes(2);
        let s = c.snapshot();
        assert_eq!(s.async_waits, 2);
        assert_eq!(s.waker_wakes, 2);
    }

    #[test]
    fn contention_counters_accumulate() {
        let c = StatsCollector::new();
        c.record_fastpath_skip();
        c.record_fastpath_skip();
        c.record_static_skip();
        c.record_engine_lock_wait();
        c.record_combined_check();
        let s = c.snapshot();
        assert_eq!(s.fastpath_skips, 2);
        assert_eq!(s.static_skips, 1);
        assert_eq!(s.engine_lock_waits, 1);
        assert_eq!(s.combined_checks, 1);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        use std::sync::Arc;
        let c = Arc::new(StatsCollector::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_check(&check(GraphModel::Sg, 3, false));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.checks, 4000);
        assert_eq!(s.edges_sum, 12000);
    }
}
