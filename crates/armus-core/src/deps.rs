//! The resource-dependency state `(I, W)` of Definition 4.1, maintained at
//! run time as a registry of blocked tasks.
//!
//! Each blocked task publishes a [`BlockedInfo`]: the events it *waits* on
//! (`W(t)`) and, for every phaser it is registered with, its local phase —
//! a finite representation of the (infinite) set of events it *impedes*
//! (`{r | t ∈ I(r)}`). Crucially this is **local** information: no global
//! membership bookkeeping is needed (paper §2.1, §5.2).
//!
//! The paper notes that "maintaining the blocked status is more frequent
//! than checking for deadlocks, so the resource-dependencies are rearranged
//! per task to optimise updates" (§5.1). We follow that design: the registry
//! is sharded by task id so that concurrent block/unblock operations from
//! different tasks rarely contend, and checkers take a point-in-time copy.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::ids::TaskId;
use crate::resource::{Registration, Resource};

/// The blocked status of one task, produced by the application layer when
/// the task is about to block (paper §5.1: "whenever a task of the program
/// blocks the application layer invokes the verification library by
/// producing its blocked status").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockedInfo {
    /// The blocked task.
    pub task: TaskId,
    /// `W(t)`: the events the task is waiting for. In PL this is a singleton
    /// (a task awaits one phaser at a time); richer runtimes may block on
    /// several events at once (e.g. a multi-clock `advance-all`).
    pub waits: Vec<Resource>,
    /// For each phaser the task is registered with, its local phase. The
    /// task impedes every event `(q, n)` with `n >` its local phase on `q`.
    pub registered: Vec<Registration>,
    /// Blocking epoch, used by detection to confirm that a task observed in
    /// a cycle is still in the *same* blocking operation when the deadlock
    /// is reported. Assigned by the registry.
    pub epoch: u64,
}

impl BlockedInfo {
    /// Builds a blocked status (epoch is assigned when inserted into a
    /// [`Registry`]).
    pub fn new(task: TaskId, waits: Vec<Resource>, registered: Vec<Registration>) -> Self {
        BlockedInfo { task, waits, registered, epoch: 0 }
    }

    /// Does this task impede event `r`? (Is `self.task ∈ I(r)`?)
    pub fn impedes(&self, r: Resource) -> bool {
        self.registered.iter().any(|reg| reg.impedes(r))
    }
}

/// A point-in-time copy of the registry: the input to a deadlock check.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Blocked statuses, one per blocked task.
    pub tasks: Vec<BlockedInfo>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn empty() -> Snapshot {
        Snapshot { tasks: Vec::new() }
    }

    /// Builds a snapshot directly from blocked statuses (used by tests, the
    /// PL `ϕ` function and the distributed store).
    pub fn from_tasks(tasks: Vec<BlockedInfo>) -> Snapshot {
        Snapshot { tasks }
    }

    /// Number of blocked tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no task is blocked.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Sorts tasks by id for deterministic iteration (tests, goldens).
    pub fn sorted(mut self) -> Snapshot {
        self.tasks.sort_by_key(|b| b.task);
        self
    }

    /// The blocked status of `task`, if present.
    pub fn get(&self, task: TaskId) -> Option<&BlockedInfo> {
        self.tasks.iter().find(|b| b.task == task)
    }
}

/// Number of shards. A modest power of two: enough to keep unrelated tasks
/// off each other's locks without bloating the snapshot pass.
const SHARDS: usize = 32;

/// Sharded registry of blocked tasks: the run-time materialisation of the
/// resource-dependency state.
///
/// Updates (`block`/`unblock`) touch one shard; checks copy all shards.
pub struct Registry {
    shards: Vec<Mutex<HashMap<TaskId, BlockedInfo>>>,
    len: AtomicUsize,
    next_epoch: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            len: AtomicUsize::new(0),
            next_epoch: AtomicU64::new(1),
        }
    }

    fn shard(&self, task: TaskId) -> &Mutex<HashMap<TaskId, BlockedInfo>> {
        &self.shards[(task.0 as usize) % SHARDS]
    }

    /// Records `info.task` as blocked, assigning a fresh epoch which is
    /// returned (and stored in the registry copy).
    pub fn block(&self, mut info: BlockedInfo) -> u64 {
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        info.epoch = epoch;
        let prev = self.shard(info.task).lock().insert(info.task, info);
        if prev.is_none() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        epoch
    }

    /// Removes the blocked record of `task` (the task resumed, was
    /// deregistered, or its avoidance check failed).
    pub fn unblock(&self, task: TaskId) {
        if self.shard(task).lock().remove(&task).is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Number of currently blocked tasks (racy but monotonic per shard;
    /// exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no task is recorded blocked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes a point-in-time copy of every blocked status. Each status is
    /// internally consistent (tasks publish their own status atomically);
    /// cross-task consistency is not required by the event-based analysis
    /// (paper §2.2 point 2) — the confirmation pass handles sampling races.
    pub fn snapshot(&self) -> Snapshot {
        let mut tasks = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let guard = shard.lock();
            tasks.extend(guard.values().cloned());
        }
        Snapshot { tasks }
    }

    /// Is `task` still blocked in the same blocking operation (`epoch`) as
    /// when a snapshot observed it? Used to confirm detected cycles.
    pub fn confirm(&self, task: TaskId, epoch: u64) -> bool {
        self.shard(task).lock().get(&task).map(|b| b.epoch == epoch).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PhaserId;

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }

    fn info(task: u64) -> BlockedInfo {
        BlockedInfo::new(t(task), vec![Resource::new(p(1), 1)], vec![Registration::new(p(1), 0)])
    }

    #[test]
    fn block_unblock_roundtrip() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        reg.block(info(1));
        reg.block(info(2));
        assert_eq!(reg.len(), 2);
        reg.unblock(t(1));
        assert_eq!(reg.len(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.tasks[0].task, t(2));
    }

    #[test]
    fn reblocking_same_task_replaces_record() {
        let reg = Registry::new();
        reg.block(info(1));
        let mut second = info(1);
        second.waits = vec![Resource::new(p(2), 5)];
        reg.block(second);
        assert_eq!(reg.len(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.tasks[0].waits, vec![Resource::new(p(2), 5)]);
    }

    #[test]
    fn epochs_are_strictly_increasing() {
        let reg = Registry::new();
        let e1 = reg.block(info(1));
        reg.unblock(t(1));
        let e2 = reg.block(info(1));
        assert!(e2 > e1);
    }

    #[test]
    fn confirm_detects_stale_epochs() {
        let reg = Registry::new();
        let e1 = reg.block(info(1));
        assert!(reg.confirm(t(1), e1));
        reg.unblock(t(1));
        assert!(!reg.confirm(t(1), e1));
        let e2 = reg.block(info(1));
        assert!(!reg.confirm(t(1), e1));
        assert!(reg.confirm(t(1), e2));
    }

    #[test]
    fn unblock_of_unknown_task_is_noop() {
        let reg = Registry::new();
        reg.unblock(t(42));
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn snapshot_is_a_copy() {
        let reg = Registry::new();
        reg.block(info(1));
        let snap = reg.snapshot();
        reg.unblock(t(1));
        assert_eq!(snap.len(), 1, "snapshot must not alias the registry");
    }

    #[test]
    fn impedes_respects_registrations() {
        let b = BlockedInfo::new(
            t(1),
            vec![Resource::new(p(1), 2)],
            vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
        );
        assert!(b.impedes(Resource::new(p(1), 2)));
        assert!(!b.impedes(Resource::new(p(1), 1)));
        assert!(b.impedes(Resource::new(p(2), 1)));
        assert!(!b.impedes(Resource::new(p(3), 1)));
    }

    #[test]
    fn concurrent_block_unblock_is_consistent() {
        use std::sync::Arc;
        let reg = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for base in 0..4u64 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let id = base * 1000 + i;
                    reg.block(info(id));
                    if i % 2 == 0 {
                        reg.unblock(t(id));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 4 threads × 500 blocks, half unblocked.
        assert_eq!(reg.len(), 4 * 250);
        assert_eq!(reg.snapshot().len(), 4 * 250);
    }

    #[test]
    fn snapshot_sorted_orders_by_task() {
        let snap = Snapshot::from_tasks(vec![info(3), info(1), info(2)]).sorted();
        let ids: Vec<_> = snap.tasks.iter().map(|b| b.task).collect();
        assert_eq!(ids, vec![t(1), t(2), t(3)]);
    }
}
