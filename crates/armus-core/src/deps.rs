//! The resource-dependency state `(I, W)` of Definition 4.1, maintained at
//! run time as a registry of blocked tasks.
//!
//! Each blocked task publishes a [`BlockedInfo`]: the events it *waits* on
//! (`W(t)`) and, for every phaser it is registered with, its local phase —
//! a finite representation of the (infinite) set of events it *impedes*
//! (`{r | t ∈ I(r)}`). Crucially this is **local** information: no global
//! membership bookkeeping is needed (paper §2.1, §5.2).
//!
//! The paper notes that "maintaining the blocked status is more frequent
//! than checking for deadlocks, so the resource-dependencies are rearranged
//! per task to optimise updates" (§5.1). We follow that design: the
//! registry is sharded by task id, so map mutation from different tasks
//! touches distinct locks.
//!
//! On top of the sharded map the registry keeps a **delta journal**: a
//! bounded, monotonically versioned log of [`Delta`]s (block/unblock
//! entries). Incremental consumers — the [`crate::engine`] maintained
//! graph, a distributed site publisher — remember a cursor and pull only
//! the deltas since their last read ([`Registry::deltas_since`]); a
//! consumer that falls behind the bounded journal resyncs from a full
//! point-in-time copy ([`Registry::snapshot_with_cursor`]).
//!
//! The journal is **striped per shard**: every shard keeps its own stripe
//! of `(sequence, delta)` entries, and sequence numbers come from one
//! global atomic counter. A publish therefore touches exactly one lock —
//! its task's shard — plus one uncontended-by-design `fetch_add`;
//! producers on different shards never serialise against each other.
//! Consumers still see one totally ordered delta stream:
//! [`Registry::deltas_since`] merges the stripes by sequence number, and
//! the stripe append happens under the same shard lock as the sequence
//! allocation, so every sequence number below an observed head is already
//! visible in its stripe by the time the reader acquires that shard's
//! lock (no gaps). Retention is a *sequence window*: an entry is
//! guaranteed retained while it is within `capacity` of the head, and a
//! cursor that has fallen out of the window reads [`JournalRead::Behind`]
//! and resyncs from [`Registry::snapshot_with_cursor`].
//!
//! The registry additionally maintains (when enabled — see
//! [`Registry::with_options`]) a sharded per-resource waiter count and an
//! atomic count of **distinct currently-awaited resources**
//! ([`Registry::distinct_waited`]). This powers the verifier's
//! resource-cardinality fast path: a deadlock cycle over tasks that do
//! not impede their own waits spans at least two distinct awaited
//! resources, so an avoidance check that observes fewer than two can
//! return "no cycle" without touching the engine lock. Publishers of the
//! *same* resource do serialise briefly on its count entry — that exact
//! shared count is what the fast path's soundness argument needs — but
//! the critical section is a hash-map increment, orders of magnitude
//! shorter than the engine lock (journal sync + graph search) it spares. The ordering
//! argument lives on [`Registry::block`]: every blocker journals, then
//! counts its waits, then (in the verifier) reads the distinct count, so
//! the member whose read is latest — in particular the one that completes
//! a cycle — observes every other member's contribution and takes the
//! slow path, whose journal sync in turn observes their deltas.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::ids::TaskId;
use crate::resource::{Registration, Resource};

/// The blocked status of one task, produced by the application layer when
/// the task is about to block (paper §5.1: "whenever a task of the program
/// blocks the application layer invokes the verification library by
/// producing its blocked status").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockedInfo {
    /// The blocked task.
    pub task: TaskId,
    /// `W(t)`: the events the task is waiting for. In PL this is a singleton
    /// (a task awaits one phaser at a time); richer runtimes may block on
    /// several events at once (e.g. a multi-clock `advance-all`).
    pub waits: Vec<Resource>,
    /// For each phaser the task is registered with, its local phase. The
    /// task impedes every event `(q, n)` with `n >` its local phase on `q`.
    pub registered: Vec<Registration>,
    /// Blocking epoch, used by detection to confirm that a task observed in
    /// a cycle is still in the *same* blocking operation when the deadlock
    /// is reported. Assigned by the registry.
    pub epoch: u64,
}

impl BlockedInfo {
    /// Builds a blocked status (epoch is assigned when inserted into a
    /// [`Registry`]).
    pub fn new(task: TaskId, waits: Vec<Resource>, registered: Vec<Registration>) -> Self {
        BlockedInfo { task, waits, registered, epoch: 0 }
    }

    /// Does this task impede event `r`? (Is `self.task ∈ I(r)`?)
    pub fn impedes(&self, r: Resource) -> bool {
        self.registered.iter().any(|reg| reg.impedes(r))
    }
}

/// A point-in-time copy of the registry: the input to a deadlock check.
///
/// Every constructor keeps `tasks` **sorted by task id** so that
/// [`Snapshot::get`] — called per task during report confirmation — is a
/// binary search rather than a linear scan, and so that graph construction
/// over a snapshot is deterministic. Deserialisation routes through
/// [`Snapshot::from_tasks`] and therefore sorts too; only code that
/// mutates the public `tasks` vector by hand must call
/// [`Snapshot::sorted`] to restore the invariant.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Snapshot {
    /// Blocked statuses, one per blocked task, sorted by task id.
    pub tasks: Vec<BlockedInfo>,
}

impl Deserialize for Snapshot {
    /// Manual impl (rather than derived) so external JSON — which may list
    /// tasks in any order — lands sorted by construction.
    fn from_value(value: &serde::Value) -> Result<Snapshot, serde::DeError> {
        let tasks = value
            .get("tasks")
            .ok_or_else(|| serde::DeError::new("missing field `tasks` in Snapshot"))?;
        Ok(Snapshot::from_tasks(Deserialize::from_value(tasks)?))
    }
}

impl Snapshot {
    /// An empty snapshot.
    pub fn empty() -> Snapshot {
        Snapshot { tasks: Vec::new() }
    }

    /// Builds a snapshot directly from blocked statuses (used by tests, the
    /// PL `ϕ` function and the distributed store). Sorts by task id.
    pub fn from_tasks(mut tasks: Vec<BlockedInfo>) -> Snapshot {
        tasks.sort_by_key(|b| b.task);
        Snapshot { tasks }
    }

    /// Number of blocked tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no task is blocked.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Restores the sorted-by-task-id invariant after manual mutation of
    /// the `tasks` vector or deserialisation from untrusted JSON.
    pub fn sorted(mut self) -> Snapshot {
        self.tasks.sort_by_key(|b| b.task);
        self
    }

    /// The blocked status of `task`, if present. `O(log n)` thanks to the
    /// sorted invariant.
    pub fn get(&self, task: TaskId) -> Option<&BlockedInfo> {
        self.tasks.binary_search_by_key(&task, |b| b.task).ok().map(|i| &self.tasks[i])
    }

    /// Site-namespaces every task id in this snapshot (see
    /// [`TaskId::with_site`]): the injective renaming a networked merge
    /// applies to each site's partition so that colliding process-local
    /// ids stay distinct in the global view. Phaser ids are left alone —
    /// a phaser is a *distributed* clock, so the same phaser id on two
    /// sites genuinely names the same synchronisation object. Re-sorts,
    /// since the tag lands in the high bits.
    ///
    /// Returns `None` when any id cannot be injectively renamed (too
    /// wide, already namespaced, or a site beyond the tag range) — the
    /// snapshot may have travelled over the wire, so an out-of-protocol
    /// id must not panic the checker that merges it.
    pub fn with_site_namespace(self, site: u32) -> Option<Snapshot> {
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for mut b in self.tasks {
            b.task = b.task.checked_with_site(site)?;
            tasks.push(b);
        }
        Some(Snapshot::from_tasks(tasks))
    }
}

/// A single registry mutation, journaled for incremental consumers. A
/// `Block` carries the full (epoch-stamped) blocked status so that replay
/// is an idempotent per-task upsert.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Delta {
    /// A task published its blocked status.
    Block(BlockedInfo),
    /// A task withdrew its blocked status.
    Unblock(TaskId),
}

/// Result of reading the delta journal from a consumer's cursor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRead {
    /// The deltas from the cursor up to the journal head, and the cursor
    /// to resume from next time.
    Deltas(Vec<Delta>, u64),
    /// The cursor precedes the journal's retained window: the consumer
    /// must resync from [`Registry::snapshot_with_cursor`].
    Behind,
}

/// Default length of the journal's retained sequence window: entries this
/// close to the head are guaranteed readable; older cursors must resync.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 8192;

/// Default number of task shards. A modest power of two: enough to keep
/// unrelated tasks off each other's locks without bloating the snapshot
/// pass. Injectable per registry via [`RegistryConfig::shards`] — the
/// simulation testkit pins it to 1 so every interleaving is reachable
/// deterministically.
pub const DEFAULT_SHARDS: usize = 32;

/// Construction-time tuning of a [`Registry`]. Everything here exists so
/// tests and the deterministic simulation testkit can force otherwise
/// probabilistic branches (journal truncation, cross-shard merges) to
/// happen on demand; the defaults reproduce production behaviour.
#[derive(Clone, Copy, Debug)]
pub struct RegistryConfig {
    /// Length of the journal's retained sequence window.
    pub journal_capacity: usize,
    /// Number of task shards (and journal stripes). Must be positive.
    pub shards: usize,
    /// Whether per-resource waiter counts (the avoidance fast path's
    /// input) are maintained.
    pub track_waited: bool,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            journal_capacity: DEFAULT_JOURNAL_CAPACITY,
            shards: DEFAULT_SHARDS,
            track_waited: false,
        }
    }
}

/// Number of resource-count shards for the distinct-awaited tracking.
const WAIT_SHARDS: usize = 32;

/// One task shard: its slice of the blocked-task map plus its stripe of
/// the delta journal. Sequence numbers within a stripe are strictly
/// increasing (they are allocated under this shard's lock), so pruning
/// from the front always drops the stripe's oldest sequences first.
#[derive(Default)]
struct Shard {
    tasks: HashMap<TaskId, BlockedInfo>,
    stripe: VecDeque<(u64, Delta)>,
}

/// Hint value announcing an append in progress (see [`ShardSlot::hint`]).
const HINT_BUSY: u64 = u64::MAX;

/// A shard and its lock-free journal hint.
#[derive(Default)]
struct ShardSlot {
    state: Mutex<Shard>,
    /// One past the stripe's highest appended sequence number (0 when the
    /// stripe has never been appended to), or [`HINT_BUSY`] while an
    /// append is in flight. Lets [`Registry::deltas_since`] skip shards
    /// that cannot contain entries at or past its cursor without taking
    /// their locks.
    ///
    /// Soundness of the skip (`hint <= cursor` ⇒ no stripe entry with
    /// sequence ≥ cursor): a writer stores `HINT_BUSY` *before*
    /// allocating its sequence number and stores `seq + 1` after
    /// appending — all `SeqCst`, as are the allocation and the reader's
    /// head load. A stripe entry `seq' ∈ [cursor, head)` implies its
    /// allocation precedes the reader's head load in the `SeqCst` order,
    /// so the writer's `HINT_BUSY` store precedes the reader's hint load;
    /// every hint store from then on is either `HINT_BUSY` or ≥ seq' + 1
    /// (stripe maxima are monotone; pruning never lowers the hint), so
    /// the reader cannot read a value ≤ cursor and skip the entry.
    hint: AtomicU64,
}

/// Sharded registry of blocked tasks: the run-time materialisation of the
/// resource-dependency state.
///
/// Updates (`block`/`unblock`) touch exactly one shard lock (map mutation
/// and journal-stripe append together) plus per-resource count shards; the
/// incremental engine and other consumers pull merged journal deltas
/// instead of copying all shards.
pub struct Registry {
    shards: Vec<ShardSlot>,
    /// Per-resource waiter counts, sharded by resource hash.
    waited: Vec<Mutex<HashMap<Resource, usize>>>,
    /// Distinct resources with at least one current waiter. `SeqCst`: the
    /// verifier's fast path relies on the total order of count updates and
    /// reads (see [`Registry::block`]).
    distinct_waited: AtomicUsize,
    len: AtomicUsize,
    next_epoch: AtomicU64,
    /// Global journal sequence: the next sequence number to allocate, and
    /// therefore also the journal head.
    next_seq: AtomicU64,
    /// One past the highest sequence number any stripe has pruned — the
    /// minimum safe consumer cursor.
    dropped_head: AtomicU64,
    /// Length of the retained sequence window.
    capacity: u64,
    /// Number of task shards (`shards.len()`, cached as the modulus).
    shard_count: usize,
    /// Whether per-resource waiter counts are maintained. Only the
    /// avoidance fast path reads them; a detection/publish-only registry
    /// skips the bookkeeping entirely.
    track_waited: bool,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry with the default journal capacity and
    /// no distinct-awaited tracking (the avoidance verifier — the one
    /// consumer of [`Registry::distinct_waited`] — opts in explicitly
    /// via [`Registry::with_options`]; everyone else should not pay the
    /// per-wait bookkeeping).
    pub fn new() -> Registry {
        Registry::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Creates an empty registry whose journal window spans `capacity`
    /// sequence numbers (tests use small capacities to exercise the
    /// resync path). Distinct-awaited tracking is off, as in
    /// [`Registry::new`].
    pub fn with_journal_capacity(capacity: usize) -> Registry {
        Registry::with_options(capacity, false)
    }

    /// Creates an empty registry, additionally controlling whether the
    /// distinct-awaited resource counts are maintained. A consumer that
    /// never reads [`Registry::distinct_waited`] (detection and
    /// publish-only verifiers) passes `false` and skips the per-resource
    /// bookkeeping on every block/unblock.
    pub fn with_options(capacity: usize, track_waited: bool) -> Registry {
        Registry::with_config(RegistryConfig {
            journal_capacity: capacity,
            track_waited,
            ..RegistryConfig::default()
        })
    }

    /// Creates an empty registry from an explicit [`RegistryConfig`]
    /// (shard count included — the deterministic-simulation hook).
    pub fn with_config(cfg: RegistryConfig) -> Registry {
        assert!(cfg.shards > 0, "registry needs at least one shard");
        Registry {
            shards: (0..cfg.shards).map(|_| ShardSlot::default()).collect(),
            waited: (0..WAIT_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            distinct_waited: AtomicUsize::new(0),
            len: AtomicUsize::new(0),
            next_epoch: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            dropped_head: AtomicU64::new(0),
            capacity: cfg.journal_capacity as u64,
            shard_count: cfg.shards,
            track_waited: cfg.track_waited,
        }
    }

    fn shard(&self, task: TaskId) -> &ShardSlot {
        &self.shards[(task.0 as usize) % self.shard_count]
    }

    fn wait_shard(&self, r: Resource) -> &Mutex<HashMap<Resource, usize>> {
        // Cheap mix of phaser and phase; only distribution matters.
        let h = r.phaser.0.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(r.phase);
        &self.waited[(h as usize) % WAIT_SHARDS]
    }

    /// Appends `delta` to the slot's journal stripe under the shard lock,
    /// allocating its global sequence number, and prunes stripe entries
    /// that have left the retained window. The slot's hint is parked at
    /// [`HINT_BUSY`] *before* the sequence allocation (see the soundness
    /// note on [`ShardSlot::hint`]).
    fn journal_append(&self, slot: &ShardSlot, shard: &mut Shard, delta: Delta) {
        slot.hint.store(HINT_BUSY, Ordering::SeqCst);
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        shard.stripe.push_back((seq, delta));
        // Retained window: sequences >= head - capacity, head = seq + 1.
        let floor = (seq + 1).saturating_sub(self.capacity);
        self.prune_stripe(shard, floor);
        slot.hint.store(seq + 1, Ordering::SeqCst);
        // A stripe is otherwise only pruned by its own appends, so a
        // shard that goes quiet would retain its out-of-window entries
        // forever (bounding memory at SHARDS × window instead of one
        // window). Opportunistically sweep one round-robin victim per
        // append; `try_lock` keeps writers from ever blocking on (or
        // deadlocking with) each other's shards.
        let victim = &self.shards[(seq as usize) % self.shard_count];
        if !std::ptr::eq(victim, slot) {
            if let Some(mut guard) = victim.state.try_lock() {
                self.prune_stripe(&mut guard, floor);
            }
        }
    }

    /// Drops stripe entries that have left the retained window,
    /// advancing `dropped_head` past them. Never touches in-window
    /// entries, so the stripe's max sequence (the hint) is unaffected.
    fn prune_stripe(&self, shard: &mut Shard, floor: u64) {
        while shard.stripe.front().map(|&(s, _)| s < floor).unwrap_or(false) {
            let (dropped, _) = shard.stripe.pop_front().expect("front checked");
            self.dropped_head.fetch_max(dropped + 1, Ordering::SeqCst);
        }
    }

    /// Bumps the waiter count of every wait occurrence in `waits`
    /// (multiset semantics: duplicates count twice and are balanced by
    /// [`Registry::discount_waits`]). Same-resource publishers serialise
    /// briefly on the resource's count entry — that exact shared count is
    /// what the fast path's ordering argument needs, and the critical
    /// section is a hash-map increment, orders of magnitude shorter than
    /// the engine lock it spares.
    fn count_waits(&self, waits: &[Resource]) {
        if !self.track_waited {
            return;
        }
        for &w in waits {
            let mut counts = self.wait_shard(w).lock();
            let c = counts.entry(w).or_insert(0);
            *c += 1;
            if *c == 1 {
                self.distinct_waited.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Exact mirror of [`Registry::count_waits`].
    fn discount_waits(&self, waits: &[Resource]) {
        if !self.track_waited {
            return;
        }
        for &w in waits {
            let mut counts = self.wait_shard(w).lock();
            let c = counts.get_mut(&w).expect("discounting a wait that was never counted");
            *c -= 1;
            if *c == 0 {
                counts.remove(&w);
                self.distinct_waited.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Distinct resources currently awaited by at least one blocked task.
    ///
    /// The count is eventually consistent but *ordered*: a blocker's own
    /// waits are counted before `block` returns, so a reader that blocks
    /// first and reads afterwards sees its own contribution, and the
    /// member whose read is latest in the `SeqCst` order sees every
    /// already-blocked member's contribution. That is exactly the
    /// guarantee the verifier's resource-cardinality fast path needs.
    ///
    /// When tracking is disabled ([`Registry::with_options`]) this
    /// returns `usize::MAX`, so a caller that consults it anyway can
    /// never conclude "no cycle possible" from an unmaintained count.
    pub fn distinct_waited(&self) -> usize {
        if !self.track_waited {
            return usize::MAX;
        }
        self.distinct_waited.load(Ordering::SeqCst)
    }

    /// Records `info.task` as blocked, assigning a fresh epoch which is
    /// returned (and stored in the registry copy).
    ///
    /// Ordering (load-bearing for the lock-free consumers):
    /// 1. *Under the task's shard lock*: sequence allocation, map upsert,
    ///    journal-stripe append. Journal order therefore matches
    ///    shard-application order per task, and any sequence number below
    ///    an observed head is visible in its stripe by the time a reader
    ///    acquires the shard lock.
    /// 2. *After releasing the shard lock*: the new status's waits are
    ///    counted, then (for a re-block) the replaced status's waits are
    ///    discounted — in that order, so a resource shared by both stays
    ///    continuously counted.
    ///
    /// A fast-path reader reads [`Registry::distinct_waited`] only after
    /// its own `block` returned, i.e. after its own journal append *and*
    /// count. Members of any deadlock cycle never unblock, so the member
    /// whose read is latest observes every member's count (each precedes
    /// its owner's earlier-or-equal read) — at least two distinct
    /// resources for any cycle among non-self-impeding tasks — and takes
    /// the slow path, whose journal sync then also observes every
    /// member's append.
    pub fn block(&self, mut info: BlockedInfo) -> u64 {
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        info.epoch = epoch;
        let prev = {
            let slot = self.shard(info.task);
            let mut shard = slot.state.lock();
            let prev = shard.tasks.insert(info.task, info.clone());
            self.journal_append(slot, &mut shard, Delta::Block(info.clone()));
            prev
        };
        self.count_waits(&info.waits);
        match prev {
            None => {
                self.len.fetch_add(1, Ordering::Relaxed);
            }
            Some(prev) => self.discount_waits(&prev.waits),
        }
        epoch
    }

    /// Removes the blocked record of `task` (the task resumed, was
    /// deregistered, or its avoidance check failed). The withdrawn waits
    /// are discounted only *after* the record is gone from the shard, so
    /// the distinct-awaited count never under-approximates live waiters.
    pub fn unblock(&self, task: TaskId) {
        let removed = {
            let slot = self.shard(task);
            let mut shard = slot.state.lock();
            match shard.tasks.remove(&task) {
                None => None,
                Some(prev) => {
                    self.journal_append(slot, &mut shard, Delta::Unblock(task));
                    Some(prev)
                }
            }
        };
        if let Some(prev) = removed {
            self.len.fetch_sub(1, Ordering::Relaxed);
            self.discount_waits(&prev.waits);
        }
    }

    /// The blocked status of `task`, if currently recorded. `O(1)`: one
    /// shard lookup, no full-registry copy.
    pub fn get(&self, task: TaskId) -> Option<BlockedInfo> {
        self.shard(task).state.lock().tasks.get(&task).cloned()
    }

    /// The journal deltas appended since `cursor`, merged across the
    /// per-shard stripes into sequence order, or [`JournalRead::Behind`]
    /// when `cursor` has left the retained window.
    ///
    /// The head is read *first*: every sequence number below it was
    /// allocated — and appended to its stripe — under a shard lock this
    /// reader subsequently acquires, so the merged read has no gaps. A
    /// concurrent append can advance the window past `cursor` while the
    /// stripes are being read; the `dropped_head` re-check afterwards
    /// turns that race into an explicit `Behind`.
    pub fn deltas_since(&self, cursor: u64) -> JournalRead {
        let head = self.next_seq.load(Ordering::SeqCst);
        if cursor >= head {
            return JournalRead::Deltas(Vec::new(), head.max(cursor));
        }
        if head - cursor > self.capacity {
            return JournalRead::Behind;
        }
        let mut merged: Vec<(u64, Delta)> = Vec::new();
        for slot in &self.shards {
            // Stripes whose highest sequence precedes the cursor cannot
            // contribute; skip them without locking (hint protocol — see
            // `ShardSlot::hint`). On a caught-up consumer this makes the
            // merge touch only the shards that actually published.
            if slot.hint.load(Ordering::SeqCst) <= cursor {
                continue;
            }
            let guard = slot.state.lock();
            // Stripes are seq-sorted: binary-search to the cursor rather
            // than scanning the whole retained window.
            let start = guard.stripe.partition_point(|&(s, _)| s < cursor);
            for &(s, ref delta) in guard.stripe.range(start..) {
                if s >= head {
                    break;
                }
                merged.push((s, delta.clone()));
            }
        }
        if self.dropped_head.load(Ordering::SeqCst) > cursor {
            return JournalRead::Behind;
        }
        merged.sort_by_key(|&(s, _)| s);
        debug_assert!(
            merged.iter().map(|&(s, _)| s).eq(cursor..head),
            "merged journal read must be gap-free"
        );
        JournalRead::Deltas(merged.into_iter().map(|(_, d)| d).collect(), head)
    }

    /// The journal head: the cursor a consumer that is fully caught up
    /// would hold.
    pub fn journal_cursor(&self) -> u64 {
        self.next_seq.load(Ordering::SeqCst)
    }

    /// A full copy paired with a journal cursor, for consumer resync.
    ///
    /// The cursor is read *before* the shards are copied: every delta with
    /// a sequence number below the cursor was applied to its shard map
    /// under the same lock hold as its sequence allocation, so it is
    /// reflected in the returned snapshot. Deltas at or past the cursor
    /// may *also* already be reflected — consumers must apply deltas
    /// idempotently (per-task upsert/remove), which
    /// [`crate::engine::IncrementalEngine`] does.
    pub fn snapshot_with_cursor(&self) -> (Snapshot, u64) {
        let cursor = self.journal_cursor();
        (self.snapshot(), cursor)
    }

    /// Number of currently blocked tasks (racy but monotonic per shard;
    /// exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no task is recorded blocked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes a point-in-time copy of every blocked status. Each status is
    /// internally consistent (tasks publish their own status atomically);
    /// cross-task consistency is not required by the event-based analysis
    /// (paper §2.2 point 2) — the confirmation pass handles sampling races.
    pub fn snapshot(&self) -> Snapshot {
        let mut tasks = Vec::with_capacity(self.len());
        for slot in &self.shards {
            let guard = slot.state.lock();
            tasks.extend(guard.tasks.values().cloned());
        }
        Snapshot::from_tasks(tasks)
    }

    /// Is `task` still blocked in the same blocking operation (`epoch`) as
    /// when a snapshot observed it? Used to confirm detected cycles.
    pub fn confirm(&self, task: TaskId, epoch: u64) -> bool {
        self.shard(task).state.lock().tasks.get(&task).map(|b| b.epoch == epoch).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PhaserId;

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }

    fn info(task: u64) -> BlockedInfo {
        BlockedInfo::new(t(task), vec![Resource::new(p(1), 1)], vec![Registration::new(p(1), 0)])
    }

    #[test]
    fn block_unblock_roundtrip() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        reg.block(info(1));
        reg.block(info(2));
        assert_eq!(reg.len(), 2);
        reg.unblock(t(1));
        assert_eq!(reg.len(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.tasks[0].task, t(2));
    }

    #[test]
    fn reblocking_same_task_replaces_record() {
        let reg = Registry::new();
        reg.block(info(1));
        let mut second = info(1);
        second.waits = vec![Resource::new(p(2), 5)];
        reg.block(second);
        assert_eq!(reg.len(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.tasks[0].waits, vec![Resource::new(p(2), 5)]);
    }

    #[test]
    fn epochs_are_strictly_increasing() {
        let reg = Registry::new();
        let e1 = reg.block(info(1));
        reg.unblock(t(1));
        let e2 = reg.block(info(1));
        assert!(e2 > e1);
    }

    #[test]
    fn confirm_detects_stale_epochs() {
        let reg = Registry::new();
        let e1 = reg.block(info(1));
        assert!(reg.confirm(t(1), e1));
        reg.unblock(t(1));
        assert!(!reg.confirm(t(1), e1));
        let e2 = reg.block(info(1));
        assert!(!reg.confirm(t(1), e1));
        assert!(reg.confirm(t(1), e2));
    }

    #[test]
    fn unblock_of_unknown_task_is_noop() {
        let reg = Registry::new();
        reg.unblock(t(42));
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn snapshot_is_a_copy() {
        let reg = Registry::new();
        reg.block(info(1));
        let snap = reg.snapshot();
        reg.unblock(t(1));
        assert_eq!(snap.len(), 1, "snapshot must not alias the registry");
    }

    #[test]
    fn impedes_respects_registrations() {
        let b = BlockedInfo::new(
            t(1),
            vec![Resource::new(p(1), 2)],
            vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
        );
        assert!(b.impedes(Resource::new(p(1), 2)));
        assert!(!b.impedes(Resource::new(p(1), 1)));
        assert!(b.impedes(Resource::new(p(2), 1)));
        assert!(!b.impedes(Resource::new(p(3), 1)));
    }

    #[test]
    fn concurrent_block_unblock_is_consistent() {
        use std::sync::Arc;
        let reg = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for base in 0..4u64 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let id = base * 1000 + i;
                    reg.block(info(id));
                    if i % 2 == 0 {
                        reg.unblock(t(id));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 4 threads × 500 blocks, half unblocked.
        assert_eq!(reg.len(), 4 * 250);
        assert_eq!(reg.snapshot().len(), 4 * 250);
    }

    #[test]
    fn snapshot_sorted_orders_by_task() {
        let snap = Snapshot::from_tasks(vec![info(3), info(1), info(2)]).sorted();
        let ids: Vec<_> = snap.tasks.iter().map(|b| b.task).collect();
        assert_eq!(ids, vec![t(1), t(2), t(3)]);
    }

    #[test]
    fn snapshot_get_is_a_binary_search_over_the_sorted_invariant() {
        // Construction order is arbitrary; from_tasks sorts, so lookups
        // (hits and misses) resolve correctly.
        let snap = Snapshot::from_tasks(vec![info(30), info(10), info(20)]);
        for present in [10, 20, 30] {
            assert_eq!(snap.get(t(present)).unwrap().task, t(present));
        }
        for absent in [0, 15, 99] {
            assert!(snap.get(t(absent)).is_none());
        }
    }

    #[test]
    fn deserialisation_sorts_by_construction() {
        // External JSON may list tasks in any order; `get` must still work.
        let unsorted = Snapshot { tasks: vec![info(3), info(1), info(2)] };
        let json = serde_json::to_string(&unsorted).unwrap();
        let parsed: Snapshot = serde_json::from_str(&json).unwrap();
        let ids: Vec<_> = parsed.tasks.iter().map(|b| b.task).collect();
        assert_eq!(ids, vec![t(1), t(2), t(3)]);
        for id in 1..=3 {
            assert_eq!(parsed.get(t(id)).unwrap().task, t(id));
        }
    }

    #[test]
    fn registry_get_reads_one_shard() {
        let reg = Registry::new();
        let epoch = reg.block(info(7));
        assert_eq!(reg.get(t(7)).unwrap().epoch, epoch);
        assert!(reg.get(t(8)).is_none());
        reg.unblock(t(7));
        assert!(reg.get(t(7)).is_none());
    }

    #[test]
    fn journal_replays_blocks_and_unblocks_in_order() {
        let reg = Registry::new();
        reg.block(info(1));
        reg.block(info(2));
        reg.unblock(t(1));
        match reg.deltas_since(0) {
            JournalRead::Deltas(deltas, cursor) => {
                assert_eq!(cursor, 3);
                assert!(matches!(&deltas[0], Delta::Block(b) if b.task == t(1)));
                assert!(matches!(&deltas[1], Delta::Block(b) if b.task == t(2)));
                assert_eq!(deltas[2], Delta::Unblock(t(1)));
            }
            JournalRead::Behind => panic!("nothing truncated yet"),
        }
        // Resuming from the returned cursor yields only newer deltas.
        reg.block(info(3));
        match reg.deltas_since(3) {
            JournalRead::Deltas(deltas, cursor) => {
                assert_eq!(cursor, 4);
                assert_eq!(deltas.len(), 1);
            }
            JournalRead::Behind => panic!("cursor 3 still retained"),
        }
    }

    #[test]
    fn unblock_of_unknown_task_is_not_journaled() {
        let reg = Registry::new();
        reg.unblock(t(42));
        assert_eq!(reg.journal_cursor(), 0);
    }

    #[test]
    fn bounded_journal_forces_resync() {
        let reg = Registry::with_journal_capacity(2);
        reg.block(info(1));
        reg.block(info(2));
        reg.block(info(3)); // truncates the first entry
        assert_eq!(reg.deltas_since(0), JournalRead::Behind);
        let (snap, cursor) = reg.snapshot_with_cursor();
        assert_eq!(snap.len(), 3);
        assert_eq!(cursor, 3);
        assert!(matches!(reg.deltas_since(cursor), JournalRead::Deltas(d, 3) if d.is_empty()));
    }

    /// A registry with distinct-awaited tracking on, as the avoidance
    /// verifier constructs it.
    fn tracking_registry() -> Registry {
        Registry::with_options(DEFAULT_JOURNAL_CAPACITY, true)
    }

    #[test]
    fn distinct_waited_tracks_block_unblock_and_reblock() {
        let reg = tracking_registry();
        assert_eq!(reg.distinct_waited(), 0);
        reg.block(info(1)); // waits p1@1
        reg.block(info(2)); // same resource
        assert_eq!(reg.distinct_waited(), 1);
        let mut moved = info(3);
        moved.waits = vec![Resource::new(p(2), 1)];
        reg.block(moved);
        assert_eq!(reg.distinct_waited(), 2);
        // Re-block t1 onto a third resource: 1's old wait survives via t2.
        let mut reblocked = info(1);
        reblocked.waits = vec![Resource::new(p(3), 1)];
        reg.block(reblocked);
        assert_eq!(reg.distinct_waited(), 3);
        reg.unblock(t(2)); // p1@1 loses its last waiter
        assert_eq!(reg.distinct_waited(), 2);
        reg.unblock(t(1));
        reg.unblock(t(3));
        assert_eq!(reg.distinct_waited(), 0);
    }

    #[test]
    fn disabled_wait_tracking_reads_as_saturated() {
        // Tracking is off by default: a registry that skips the
        // per-resource bookkeeping must never let a fast-path reader
        // conclude "fewer than two resources".
        let reg = Registry::new();
        assert_eq!(reg.distinct_waited(), usize::MAX);
        reg.block(info(1));
        assert_eq!(reg.distinct_waited(), usize::MAX);
        reg.unblock(t(1));
        assert_eq!(reg.distinct_waited(), usize::MAX);
    }

    #[test]
    fn dormant_stripes_are_swept_by_other_shards_appends() {
        // Fill shard 1's stripe, then churn exclusively on another shard:
        // the round-robin sweep must eventually prune shard 1's
        // out-of-window entries even though it never publishes again.
        let reg = Registry::with_journal_capacity(8);
        for _ in 0..4 {
            reg.block(info(1));
            reg.unblock(t(1));
        }
        // 2 * DEFAULT_SHARDS appends on task 2's shard: every victim index
        // is hit at least once, and all of shard 1's entries leave the
        // window.
        for _ in 0..DEFAULT_SHARDS {
            reg.block(info(2));
            reg.unblock(t(2));
        }
        let stripe_len = reg.shard(t(1)).state.lock().stripe.len();
        assert_eq!(stripe_len, 0, "dormant stripe must have been swept");
    }

    #[test]
    fn distinct_waited_handles_duplicate_wait_occurrences() {
        let reg = tracking_registry();
        let mut odd = info(1);
        odd.waits = vec![Resource::new(p(1), 1), Resource::new(p(1), 1)];
        reg.block(odd);
        assert_eq!(reg.distinct_waited(), 1);
        reg.unblock(t(1));
        assert_eq!(reg.distinct_waited(), 0);
    }

    #[test]
    fn merged_stripes_preserve_cross_shard_publish_order() {
        // Tasks 1..=5 hash to five different shards; the merged read must
        // still come back in global sequence (i.e. call) order.
        let reg = Registry::new();
        for task in 1..=5u64 {
            reg.block(info(task));
        }
        reg.unblock(t(3));
        reg.block(info(3));
        match reg.deltas_since(0) {
            JournalRead::Deltas(deltas, cursor) => {
                assert_eq!(cursor, 7);
                let kinds: Vec<String> = deltas
                    .iter()
                    .map(|d| match d {
                        Delta::Block(b) => format!("B{}", b.task.0),
                        Delta::Unblock(t) => format!("U{}", t.0),
                    })
                    .collect();
                assert_eq!(kinds, vec!["B1", "B2", "B3", "B4", "B5", "U3", "B3"]);
            }
            JournalRead::Behind => panic!("window not exceeded"),
        }
    }

    #[test]
    fn concurrent_publishers_yield_a_gap_free_merged_journal() {
        use std::sync::Arc;
        let reg = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for base in 0..4u64 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let id = base * 1000 + i;
                    reg.block(info(id));
                    if i % 3 == 0 {
                        reg.unblock(t(id));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        match reg.deltas_since(0) {
            JournalRead::Deltas(deltas, cursor) => {
                // 4 × 200 blocks + 4 × 67 unblocks, contiguous sequences.
                assert_eq!(deltas.len() as u64, cursor);
                assert_eq!(cursor, 4 * 200 + 4 * 67);
            }
            JournalRead::Behind => panic!("default window is large enough"),
        }
    }

    #[test]
    fn journaled_blocks_carry_their_epoch() {
        let reg = Registry::new();
        let epoch = reg.block(info(5));
        match reg.deltas_since(0) {
            JournalRead::Deltas(deltas, _) => {
                assert!(matches!(&deltas[0], Delta::Block(b) if b.epoch == epoch));
            }
            JournalRead::Behind => panic!("retained"),
        }
    }
}
