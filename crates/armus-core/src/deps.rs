//! The resource-dependency state `(I, W)` of Definition 4.1, maintained at
//! run time as a registry of blocked tasks.
//!
//! Each blocked task publishes a [`BlockedInfo`]: the events it *waits* on
//! (`W(t)`) and, for every phaser it is registered with, its local phase —
//! a finite representation of the (infinite) set of events it *impedes*
//! (`{r | t ∈ I(r)}`). Crucially this is **local** information: no global
//! membership bookkeeping is needed (paper §2.1, §5.2).
//!
//! The paper notes that "maintaining the blocked status is more frequent
//! than checking for deadlocks, so the resource-dependencies are rearranged
//! per task to optimise updates" (§5.1). We follow that design: the
//! registry is sharded by task id, so map mutation from different tasks
//! touches distinct locks.
//!
//! On top of the sharded map the registry keeps a **delta journal**: a
//! bounded, monotonically versioned log of [`Delta`]s (block/unblock
//! entries). Incremental consumers — the [`crate::engine`] maintained
//! graph, a distributed site publisher — remember a cursor and pull only
//! the deltas since their last read ([`Registry::deltas_since`]); a
//! consumer that falls behind the bounded journal resyncs from a full
//! point-in-time copy ([`Registry::snapshot_with_cursor`]).
//!
//! The journal append is a single cross-shard lock: concurrent publishes
//! from different tasks now serialise briefly on it (the price of a
//! totally ordered delta stream). The append is a few pushes — far
//! cheaper than the full-registry clone every *check* used to pay — but
//! if update-side scaling ever dominates, the journal can be striped per
//! shard with a `(shard, seq)` merge cursor without changing consumers'
//! semantics.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::ids::TaskId;
use crate::resource::{Registration, Resource};

/// The blocked status of one task, produced by the application layer when
/// the task is about to block (paper §5.1: "whenever a task of the program
/// blocks the application layer invokes the verification library by
/// producing its blocked status").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockedInfo {
    /// The blocked task.
    pub task: TaskId,
    /// `W(t)`: the events the task is waiting for. In PL this is a singleton
    /// (a task awaits one phaser at a time); richer runtimes may block on
    /// several events at once (e.g. a multi-clock `advance-all`).
    pub waits: Vec<Resource>,
    /// For each phaser the task is registered with, its local phase. The
    /// task impedes every event `(q, n)` with `n >` its local phase on `q`.
    pub registered: Vec<Registration>,
    /// Blocking epoch, used by detection to confirm that a task observed in
    /// a cycle is still in the *same* blocking operation when the deadlock
    /// is reported. Assigned by the registry.
    pub epoch: u64,
}

impl BlockedInfo {
    /// Builds a blocked status (epoch is assigned when inserted into a
    /// [`Registry`]).
    pub fn new(task: TaskId, waits: Vec<Resource>, registered: Vec<Registration>) -> Self {
        BlockedInfo { task, waits, registered, epoch: 0 }
    }

    /// Does this task impede event `r`? (Is `self.task ∈ I(r)`?)
    pub fn impedes(&self, r: Resource) -> bool {
        self.registered.iter().any(|reg| reg.impedes(r))
    }
}

/// A point-in-time copy of the registry: the input to a deadlock check.
///
/// Every constructor keeps `tasks` **sorted by task id** so that
/// [`Snapshot::get`] — called per task during report confirmation — is a
/// binary search rather than a linear scan, and so that graph construction
/// over a snapshot is deterministic. Deserialisation routes through
/// [`Snapshot::from_tasks`] and therefore sorts too; only code that
/// mutates the public `tasks` vector by hand must call
/// [`Snapshot::sorted`] to restore the invariant.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Snapshot {
    /// Blocked statuses, one per blocked task, sorted by task id.
    pub tasks: Vec<BlockedInfo>,
}

impl Deserialize for Snapshot {
    /// Manual impl (rather than derived) so external JSON — which may list
    /// tasks in any order — lands sorted by construction.
    fn from_value(value: &serde::Value) -> Result<Snapshot, serde::DeError> {
        let tasks = value
            .get("tasks")
            .ok_or_else(|| serde::DeError::new("missing field `tasks` in Snapshot"))?;
        Ok(Snapshot::from_tasks(Deserialize::from_value(tasks)?))
    }
}

impl Snapshot {
    /// An empty snapshot.
    pub fn empty() -> Snapshot {
        Snapshot { tasks: Vec::new() }
    }

    /// Builds a snapshot directly from blocked statuses (used by tests, the
    /// PL `ϕ` function and the distributed store). Sorts by task id.
    pub fn from_tasks(mut tasks: Vec<BlockedInfo>) -> Snapshot {
        tasks.sort_by_key(|b| b.task);
        Snapshot { tasks }
    }

    /// Number of blocked tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no task is blocked.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Restores the sorted-by-task-id invariant after manual mutation of
    /// the `tasks` vector or deserialisation from untrusted JSON.
    pub fn sorted(mut self) -> Snapshot {
        self.tasks.sort_by_key(|b| b.task);
        self
    }

    /// The blocked status of `task`, if present. `O(log n)` thanks to the
    /// sorted invariant.
    pub fn get(&self, task: TaskId) -> Option<&BlockedInfo> {
        self.tasks.binary_search_by_key(&task, |b| b.task).ok().map(|i| &self.tasks[i])
    }
}

/// A single registry mutation, journaled for incremental consumers. A
/// `Block` carries the full (epoch-stamped) blocked status so that replay
/// is an idempotent per-task upsert.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Delta {
    /// A task published its blocked status.
    Block(BlockedInfo),
    /// A task withdrew its blocked status.
    Unblock(TaskId),
}

/// Result of reading the delta journal from a consumer's cursor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRead {
    /// The deltas from the cursor up to the journal head, and the cursor
    /// to resume from next time.
    Deltas(Vec<Delta>, u64),
    /// The cursor precedes the journal's retained window: the consumer
    /// must resync from [`Registry::snapshot_with_cursor`].
    Behind,
}

/// Default number of journal entries retained before the oldest are
/// truncated (forcing slow consumers into a snapshot resync).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 8192;

/// The bounded delta journal: entry `i` of `entries` has sequence number
/// `base + i`; the next delta to be appended gets `base + entries.len()`.
struct Journal {
    base: u64,
    entries: VecDeque<Delta>,
    capacity: usize,
}

impl Journal {
    fn push(&mut self, delta: Delta) {
        self.entries.push_back(delta);
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.base += 1;
        }
    }

    fn head(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    fn since(&self, cursor: u64) -> JournalRead {
        if cursor < self.base {
            return JournalRead::Behind;
        }
        let skip = (cursor - self.base) as usize;
        JournalRead::Deltas(self.entries.iter().skip(skip).cloned().collect(), self.head())
    }
}

/// Number of shards. A modest power of two: enough to keep unrelated tasks
/// off each other's locks without bloating the snapshot pass.
const SHARDS: usize = 32;

/// Sharded registry of blocked tasks: the run-time materialisation of the
/// resource-dependency state.
///
/// Updates (`block`/`unblock`) touch one shard plus the journal; the
/// incremental engine and other consumers pull journal deltas instead of
/// copying all shards.
pub struct Registry {
    shards: Vec<Mutex<HashMap<TaskId, BlockedInfo>>>,
    len: AtomicUsize,
    next_epoch: AtomicU64,
    journal: Mutex<Journal>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry with the default journal capacity.
    pub fn new() -> Registry {
        Registry::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Creates an empty registry retaining at most `capacity` journal
    /// entries (tests use small capacities to exercise the resync path).
    pub fn with_journal_capacity(capacity: usize) -> Registry {
        Registry {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            len: AtomicUsize::new(0),
            next_epoch: AtomicU64::new(1),
            journal: Mutex::new(Journal { base: 0, entries: VecDeque::new(), capacity }),
        }
    }

    fn shard(&self, task: TaskId) -> &Mutex<HashMap<TaskId, BlockedInfo>> {
        &self.shards[(task.0 as usize) % SHARDS]
    }

    /// Records `info.task` as blocked, assigning a fresh epoch which is
    /// returned (and stored in the registry copy).
    ///
    /// The shard lock is held across the journal append so that, per task,
    /// journal order matches shard-application order — the lock order is
    /// always shard → journal, and no journal holder takes a shard lock,
    /// so this cannot deadlock.
    pub fn block(&self, mut info: BlockedInfo) -> u64 {
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        info.epoch = epoch;
        let mut shard = self.shard(info.task).lock();
        let prev = shard.insert(info.task, info.clone());
        if prev.is_none() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        self.journal.lock().push(Delta::Block(info));
        epoch
    }

    /// Removes the blocked record of `task` (the task resumed, was
    /// deregistered, or its avoidance check failed).
    pub fn unblock(&self, task: TaskId) {
        let mut shard = self.shard(task).lock();
        if shard.remove(&task).is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
            self.journal.lock().push(Delta::Unblock(task));
        }
    }

    /// The blocked status of `task`, if currently recorded. `O(1)`: one
    /// shard lookup, no full-registry copy.
    pub fn get(&self, task: TaskId) -> Option<BlockedInfo> {
        self.shard(task).lock().get(&task).cloned()
    }

    /// The journal deltas appended since `cursor`, or [`JournalRead::Behind`]
    /// when the bounded journal has truncated past it.
    pub fn deltas_since(&self, cursor: u64) -> JournalRead {
        self.journal.lock().since(cursor)
    }

    /// The journal head: the cursor a consumer that is fully caught up
    /// would hold.
    pub fn journal_cursor(&self) -> u64 {
        self.journal.lock().head()
    }

    /// A full copy paired with a journal cursor, for consumer resync.
    ///
    /// The cursor is read *before* the shards are copied: every delta with
    /// a sequence number below the cursor is already applied to its shard
    /// (shard insert happens-before journal append under the shard lock),
    /// so it is reflected in the returned snapshot. Deltas at or past the
    /// cursor may *also* already be reflected — consumers must apply
    /// deltas idempotently (per-task upsert/remove), which
    /// [`crate::engine::IncrementalEngine`] does.
    pub fn snapshot_with_cursor(&self) -> (Snapshot, u64) {
        let cursor = self.journal_cursor();
        (self.snapshot(), cursor)
    }

    /// Number of currently blocked tasks (racy but monotonic per shard;
    /// exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no task is recorded blocked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes a point-in-time copy of every blocked status. Each status is
    /// internally consistent (tasks publish their own status atomically);
    /// cross-task consistency is not required by the event-based analysis
    /// (paper §2.2 point 2) — the confirmation pass handles sampling races.
    pub fn snapshot(&self) -> Snapshot {
        let mut tasks = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let guard = shard.lock();
            tasks.extend(guard.values().cloned());
        }
        Snapshot::from_tasks(tasks)
    }

    /// Is `task` still blocked in the same blocking operation (`epoch`) as
    /// when a snapshot observed it? Used to confirm detected cycles.
    pub fn confirm(&self, task: TaskId, epoch: u64) -> bool {
        self.shard(task).lock().get(&task).map(|b| b.epoch == epoch).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PhaserId;

    fn t(n: u64) -> TaskId {
        TaskId(n)
    }
    fn p(n: u64) -> PhaserId {
        PhaserId(n)
    }

    fn info(task: u64) -> BlockedInfo {
        BlockedInfo::new(t(task), vec![Resource::new(p(1), 1)], vec![Registration::new(p(1), 0)])
    }

    #[test]
    fn block_unblock_roundtrip() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        reg.block(info(1));
        reg.block(info(2));
        assert_eq!(reg.len(), 2);
        reg.unblock(t(1));
        assert_eq!(reg.len(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.tasks[0].task, t(2));
    }

    #[test]
    fn reblocking_same_task_replaces_record() {
        let reg = Registry::new();
        reg.block(info(1));
        let mut second = info(1);
        second.waits = vec![Resource::new(p(2), 5)];
        reg.block(second);
        assert_eq!(reg.len(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.tasks[0].waits, vec![Resource::new(p(2), 5)]);
    }

    #[test]
    fn epochs_are_strictly_increasing() {
        let reg = Registry::new();
        let e1 = reg.block(info(1));
        reg.unblock(t(1));
        let e2 = reg.block(info(1));
        assert!(e2 > e1);
    }

    #[test]
    fn confirm_detects_stale_epochs() {
        let reg = Registry::new();
        let e1 = reg.block(info(1));
        assert!(reg.confirm(t(1), e1));
        reg.unblock(t(1));
        assert!(!reg.confirm(t(1), e1));
        let e2 = reg.block(info(1));
        assert!(!reg.confirm(t(1), e1));
        assert!(reg.confirm(t(1), e2));
    }

    #[test]
    fn unblock_of_unknown_task_is_noop() {
        let reg = Registry::new();
        reg.unblock(t(42));
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn snapshot_is_a_copy() {
        let reg = Registry::new();
        reg.block(info(1));
        let snap = reg.snapshot();
        reg.unblock(t(1));
        assert_eq!(snap.len(), 1, "snapshot must not alias the registry");
    }

    #[test]
    fn impedes_respects_registrations() {
        let b = BlockedInfo::new(
            t(1),
            vec![Resource::new(p(1), 2)],
            vec![Registration::new(p(1), 1), Registration::new(p(2), 0)],
        );
        assert!(b.impedes(Resource::new(p(1), 2)));
        assert!(!b.impedes(Resource::new(p(1), 1)));
        assert!(b.impedes(Resource::new(p(2), 1)));
        assert!(!b.impedes(Resource::new(p(3), 1)));
    }

    #[test]
    fn concurrent_block_unblock_is_consistent() {
        use std::sync::Arc;
        let reg = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for base in 0..4u64 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let id = base * 1000 + i;
                    reg.block(info(id));
                    if i % 2 == 0 {
                        reg.unblock(t(id));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 4 threads × 500 blocks, half unblocked.
        assert_eq!(reg.len(), 4 * 250);
        assert_eq!(reg.snapshot().len(), 4 * 250);
    }

    #[test]
    fn snapshot_sorted_orders_by_task() {
        let snap = Snapshot::from_tasks(vec![info(3), info(1), info(2)]).sorted();
        let ids: Vec<_> = snap.tasks.iter().map(|b| b.task).collect();
        assert_eq!(ids, vec![t(1), t(2), t(3)]);
    }

    #[test]
    fn snapshot_get_is_a_binary_search_over_the_sorted_invariant() {
        // Construction order is arbitrary; from_tasks sorts, so lookups
        // (hits and misses) resolve correctly.
        let snap = Snapshot::from_tasks(vec![info(30), info(10), info(20)]);
        for present in [10, 20, 30] {
            assert_eq!(snap.get(t(present)).unwrap().task, t(present));
        }
        for absent in [0, 15, 99] {
            assert!(snap.get(t(absent)).is_none());
        }
    }

    #[test]
    fn deserialisation_sorts_by_construction() {
        // External JSON may list tasks in any order; `get` must still work.
        let unsorted = Snapshot { tasks: vec![info(3), info(1), info(2)] };
        let json = serde_json::to_string(&unsorted).unwrap();
        let parsed: Snapshot = serde_json::from_str(&json).unwrap();
        let ids: Vec<_> = parsed.tasks.iter().map(|b| b.task).collect();
        assert_eq!(ids, vec![t(1), t(2), t(3)]);
        for id in 1..=3 {
            assert_eq!(parsed.get(t(id)).unwrap().task, t(id));
        }
    }

    #[test]
    fn registry_get_reads_one_shard() {
        let reg = Registry::new();
        let epoch = reg.block(info(7));
        assert_eq!(reg.get(t(7)).unwrap().epoch, epoch);
        assert!(reg.get(t(8)).is_none());
        reg.unblock(t(7));
        assert!(reg.get(t(7)).is_none());
    }

    #[test]
    fn journal_replays_blocks_and_unblocks_in_order() {
        let reg = Registry::new();
        reg.block(info(1));
        reg.block(info(2));
        reg.unblock(t(1));
        match reg.deltas_since(0) {
            JournalRead::Deltas(deltas, cursor) => {
                assert_eq!(cursor, 3);
                assert!(matches!(&deltas[0], Delta::Block(b) if b.task == t(1)));
                assert!(matches!(&deltas[1], Delta::Block(b) if b.task == t(2)));
                assert_eq!(deltas[2], Delta::Unblock(t(1)));
            }
            JournalRead::Behind => panic!("nothing truncated yet"),
        }
        // Resuming from the returned cursor yields only newer deltas.
        reg.block(info(3));
        match reg.deltas_since(3) {
            JournalRead::Deltas(deltas, cursor) => {
                assert_eq!(cursor, 4);
                assert_eq!(deltas.len(), 1);
            }
            JournalRead::Behind => panic!("cursor 3 still retained"),
        }
    }

    #[test]
    fn unblock_of_unknown_task_is_not_journaled() {
        let reg = Registry::new();
        reg.unblock(t(42));
        assert_eq!(reg.journal_cursor(), 0);
    }

    #[test]
    fn bounded_journal_forces_resync() {
        let reg = Registry::with_journal_capacity(2);
        reg.block(info(1));
        reg.block(info(2));
        reg.block(info(3)); // truncates the first entry
        assert_eq!(reg.deltas_since(0), JournalRead::Behind);
        let (snap, cursor) = reg.snapshot_with_cursor();
        assert_eq!(snap.len(), 3);
        assert_eq!(cursor, 3);
        assert!(matches!(reg.deltas_since(cursor), JournalRead::Deltas(d, 3) if d.is_empty()));
    }

    #[test]
    fn journaled_blocks_carry_their_epoch() {
        let reg = Registry::new();
        let epoch = reg.block(info(5));
        match reg.deltas_since(0) {
            JournalRead::Deltas(deltas, _) => {
                assert!(matches!(&deltas[0], Delta::Block(b) if b.epoch == epoch));
            }
            JournalRead::Behind => panic!("retained"),
        }
    }
}
