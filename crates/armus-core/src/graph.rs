//! A compact interned directed graph with iterative cycle detection.
//!
//! This is the graph-analysis substrate the paper delegates to JGraphT
//! (§5.1). Nodes are interned to dense `u32` indices; adjacency is a
//! vector of vectors. Cycle detection is an iterative (heap-stack) DFS so
//! that graphs with hundreds of thousands of nodes cannot overflow the call
//! stack; it runs in `O(V + E)` as required by Proposition 4.2.
//!
//! The walk/cycle vocabulary of paper §4.2 (walks, `r`-cycles, in/out
//! degree, reachability) is implemented directly so that tests can state
//! the paper's lemmas verbatim.
//!
//! [`TopoOrder`] is the order-maintenance substrate of the incremental
//! detection pass (Pearce–Kelly, "A Dynamic Topological Sort Algorithm
//! for Directed Acyclic Graphs"): it keeps a topological order of the
//! engine's maintained graph under edge insertions and deletions, so
//! cycle *existence* is answered in `O(affected region)` per update
//! instead of `O(V + E)` per check.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// A directed graph over interned nodes of type `N`. Edges are simple
/// (duplicates are ignored): the paper's edge counts (e.g. Table 3) are
/// distinct-edge counts, and the adaptive threshold is calibrated on them.
#[derive(Clone, Debug)]
pub struct DiGraph<N> {
    nodes: Vec<N>,
    index: HashMap<N, u32>,
    adj: Vec<Vec<u32>>,
    edge_set: std::collections::HashSet<(u32, u32)>,
    edges: usize,
}

impl<N: Copy + Eq + Hash> Default for DiGraph<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Copy + Eq + Hash> DiGraph<N> {
    /// Creates an empty graph.
    pub fn new() -> DiGraph<N> {
        DiGraph {
            nodes: Vec::new(),
            index: HashMap::new(),
            adj: Vec::new(),
            edge_set: std::collections::HashSet::new(),
            edges: 0,
        }
    }

    /// Creates an empty graph with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> DiGraph<N> {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            index: HashMap::with_capacity(nodes),
            adj: Vec::with_capacity(nodes),
            edge_set: std::collections::HashSet::new(),
            edges: 0,
        }
    }

    /// Interns `n`, returning its dense index.
    pub fn add_node(&mut self, n: N) -> u32 {
        if let Some(&i) = self.index.get(&n) {
            return i;
        }
        let i = self.nodes.len() as u32;
        self.nodes.push(n);
        self.adj.push(Vec::new());
        self.index.insert(n, i);
        i
    }

    /// Adds the directed edge `from → to`, interning endpoints as needed.
    /// Duplicate edges are ignored.
    pub fn add_edge(&mut self, from: N, to: N) {
        let f = self.add_node(from);
        let t = self.add_node(to);
        if self.edge_set.insert((f, t)) {
            self.adj[f as usize].push(t);
            self.edges += 1;
        }
    }

    /// Node count `|V|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Edge count `|E|` (distinct edges).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The interned index of `n`, if present.
    pub fn node_index(&self, n: N) -> Option<u32> {
        self.index.get(&n).copied()
    }

    /// The node at dense index `i`.
    pub fn node(&self, i: u32) -> N {
        self.nodes[i as usize]
    }

    /// All nodes, in insertion order.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// All distinct edges, in adjacency order (used by the incremental
    /// engine's equivalence tests to compare edge sets).
    pub fn edges(&self) -> Vec<(N, N)> {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(f, succs)| {
                succs.iter().map(move |&t| (self.nodes[f], self.nodes[t as usize]))
            })
            .collect()
    }

    /// Is `from → to` an edge?
    pub fn has_edge(&self, from: N, to: N) -> bool {
        match (self.index.get(&from), self.index.get(&to)) {
            (Some(&f), Some(&t)) => self.edge_set.contains(&(f, t)),
            _ => false,
        }
    }

    /// Out-degree of `n` (0 if absent).
    pub fn out_degree(&self, n: N) -> usize {
        self.index.get(&n).map(|&i| self.adj[i as usize].len()).unwrap_or(0)
    }

    /// In-degree of `n` (0 if absent). `O(E)`; intended for tests.
    pub fn in_degree(&self, n: N) -> usize {
        match self.index.get(&n) {
            None => 0,
            Some(&i) => self.adj.iter().map(|succ| succ.iter().filter(|&&s| s == i).count()).sum(),
        }
    }

    /// Is the given alternating node sequence a walk (paper §4.2: length
    /// `> 1` and every consecutive pair an edge)?
    pub fn is_walk(&self, walk: &[N]) -> bool {
        walk.len() > 1 && walk.windows(2).all(|w| self.has_edge(w[0], w[1]))
    }

    /// Is the sequence a cycle (a walk whose first and last nodes agree)?
    pub fn is_cycle(&self, walk: &[N]) -> bool {
        self.is_walk(walk) && walk.first() == walk.last()
    }

    /// Is `to` reachable from `from` by a walk (i.e. via ≥ 1 edge)?
    pub fn reaches(&self, from: N, to: N) -> bool {
        let (Some(&f), Some(&t)) = (self.index.get(&from), self.index.get(&to)) else {
            return false;
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = self.adj[f as usize].clone();
        while let Some(i) = stack.pop() {
            if i == t {
                return true;
            }
            if !seen[i as usize] {
                seen[i as usize] = true;
                stack.extend_from_slice(&self.adj[i as usize]);
            }
        }
        false
    }

    /// Finds some cycle, returned as a node sequence `n₀ n₁ … n₀` (first ==
    /// last), or `None` when the graph is acyclic. Iterative DFS with a
    /// three-colour scheme.
    pub fn find_cycle(&self) -> Option<Vec<N>> {
        self.find_cycle_impl(None)
    }

    /// Finds a cycle *through the given node*, if one exists: a walk
    /// `n … n`. Used by avoidance checks, which only care whether the task
    /// that is about to block closes a cycle.
    pub fn find_cycle_through(&self, n: N) -> Option<Vec<N>> {
        let start = self.node_index(n)?;
        // DFS from `start`; a cycle through `start` is a path from one of
        // its successors back to `start`.
        let mut parent: Vec<Option<u32>> = vec![None; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = Vec::new();
        seen[start as usize] = true;
        for &s in &self.adj[start as usize] {
            if s == start {
                return Some(vec![n, n]); // self-loop
            }
            if !seen[s as usize] {
                seen[s as usize] = true;
                parent[s as usize] = Some(start);
                stack.push(s);
            }
        }
        while let Some(i) = stack.pop() {
            for &s in &self.adj[i as usize] {
                if s == start {
                    // Reconstruct start → … → i → start.
                    let mut path = vec![start, i];
                    let mut cur = i;
                    while let Some(p) = parent[cur as usize] {
                        if p == start {
                            break;
                        }
                        path.push(p);
                        cur = p;
                    }
                    path.push(start);
                    path.reverse();
                    return Some(path.into_iter().map(|i| self.node(i)).collect());
                }
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    parent[s as usize] = Some(i);
                    stack.push(s);
                }
            }
        }
        None
    }

    /// Finds a path from any node in `sources` to any node satisfying
    /// `target`, returned source-first. A source that itself satisfies
    /// `target` yields a length-1 witness (`vec![source]`).
    pub fn path_from_sources(
        &self,
        sources: &[N],
        mut target: impl FnMut(N) -> bool,
    ) -> Option<Vec<N>> {
        let mut seen = vec![false; self.nodes.len()];
        let mut parent: Vec<Option<u32>> = vec![None; self.nodes.len()];
        let mut frontier = Vec::new();
        for &s in sources {
            if let Some(i) = self.node_index(s) {
                if !seen[i as usize] {
                    seen[i as usize] = true;
                    frontier.push(i);
                }
            }
        }
        while let Some(i) = frontier.pop() {
            if target(self.node(i)) {
                let mut path = vec![i];
                let mut cur = i;
                while let Some(p) = parent[cur as usize] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path.into_iter().map(|i| self.node(i)).collect());
            }
            for &s in &self.adj[i as usize] {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    parent[s as usize] = Some(i);
                    frontier.push(s);
                }
            }
        }
        None
    }

    /// True iff the graph contains a cycle. Slightly cheaper than
    /// [`DiGraph::find_cycle`] (no witness reconstruction).
    pub fn has_cycle(&self) -> bool {
        self.find_cycle_impl(None).is_some()
    }

    /// Parallel cycle-existence test over `workers` scoped threads.
    ///
    /// DFS does not parallelise, so this uses *peeling* (parallel Kahn):
    /// repeatedly delete every node whose in-degree has dropped to zero;
    /// the graph is cyclic iff nodes survive — a non-empty finite digraph
    /// with minimum in-degree ≥ 1 contains a cycle, and conversely no
    /// node of a cycle is ever deleted (its cycle predecessor persists).
    /// Both the in-degree accumulation and each round's frontier are
    /// split across workers; rounds whose frontier is small are processed
    /// inline, so deep thin graphs do not pay per-round spawn costs.
    ///
    /// Equivalent to [`DiGraph::has_cycle`] on every input (the graph
    /// prop suite asserts this); intended for detection-mode full checks
    /// over very large maintained graphs, where `O(V + E)` per pass is
    /// worth fanning out.
    pub fn has_cycle_par(&self, workers: usize) -> bool {
        use std::sync::atomic::{AtomicU32, Ordering};

        let n = self.nodes.len();
        let workers = workers.clamp(1, n.max(1));
        if workers == 1 || n < 2 {
            return self.has_cycle();
        }
        // Frontiers below this size are peeled inline: spawning for a
        // handful of nodes costs more than the scan it would split.
        const MIN_PARALLEL_FRONTIER: usize = 1024;
        let chunk = n.div_ceil(workers);
        // Capture only the adjacency (not `self`) in worker closures, so
        // `N` itself does not need to be `Sync`.
        let adj: &[Vec<u32>] = &self.adj;

        // In-degree accumulation, node-range-parallel.
        let indeg: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|s| {
            for range in (0..n).step_by(chunk).map(|lo| lo..(lo + chunk).min(n)) {
                let indeg = &indeg;
                s.spawn(move || {
                    for v in range {
                        for &t in &adj[v] {
                            indeg[t as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });

        let mut frontier: Vec<u32> =
            (0..n as u32).filter(|&v| indeg[v as usize].load(Ordering::Relaxed) == 0).collect();
        let mut removed = frontier.len();
        while !frontier.is_empty() {
            let next: Vec<u32> = if frontier.len() < MIN_PARALLEL_FRONTIER {
                let mut next = Vec::new();
                for &v in &frontier {
                    for &t in &adj[v as usize] {
                        if indeg[t as usize].fetch_sub(1, Ordering::Relaxed) == 1 {
                            next.push(t);
                        }
                    }
                }
                next
            } else {
                let fchunk = frontier.len().div_ceil(workers);
                let mut parts: Vec<Vec<u32>> = std::thread::scope(|s| {
                    let handles: Vec<_> = frontier
                        .chunks(fchunk)
                        .map(|part| {
                            let indeg = &indeg;
                            s.spawn(move || {
                                let mut local = Vec::new();
                                for &v in part {
                                    for &t in &adj[v as usize] {
                                        if indeg[t as usize].fetch_sub(1, Ordering::Relaxed) == 1 {
                                            local.push(t);
                                        }
                                    }
                                }
                                local
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("peel worker")).collect()
                });
                let mut next = parts.pop().unwrap_or_default();
                for part in parts {
                    next.extend(part);
                }
                next
            };
            removed += next.len();
            frontier = next;
        }
        removed < n
    }

    fn find_cycle_impl(&self, only_from: Option<u32>) -> Option<Vec<N>> {
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.nodes.len();
        let mut colour = vec![WHITE; n];
        let mut parent: Vec<Option<u32>> = vec![None; n];

        let roots: Box<dyn Iterator<Item = u32>> = match only_from {
            Some(r) => Box::new(std::iter::once(r)),
            None => Box::new(0..n as u32),
        };
        for root in roots {
            if colour[root as usize] != WHITE {
                continue;
            }
            // Explicit DFS stack of (node, next-successor-index).
            let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
            colour[root as usize] = GREY;
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                if *next < self.adj[v as usize].len() {
                    let s = self.adj[v as usize][*next];
                    *next += 1;
                    match colour[s as usize] {
                        WHITE => {
                            colour[s as usize] = GREY;
                            parent[s as usize] = Some(v);
                            stack.push((s, 0));
                        }
                        GREY => {
                            // Back edge v → s closes a cycle s → … → v → s.
                            let mut cycle = vec![s, v];
                            let mut cur = v;
                            while cur != s {
                                let p = parent[cur as usize].expect("grey chain broken");
                                cycle.push(p);
                                cur = p;
                            }
                            // cycle = [s, v, parent(v), …, s]; drop the
                            // leading s, reverse the parent chain into
                            // path order, and close the cycle at s.
                            cycle.remove(0);
                            cycle.reverse();
                            cycle.push(s);
                            debug_assert_eq!(cycle.first(), cycle.last());
                            return Some(cycle.into_iter().map(|i| self.node(i)).collect());
                        }
                        _ => {}
                    }
                } else {
                    colour[v as usize] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Strongly connected components (iterative Tarjan), returned as lists
    /// of nodes. Components appear in reverse topological order.
    pub fn sccs(&self) -> Vec<Vec<N>> {
        let n = self.nodes.len();
        let mut index_of = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut out = Vec::new();

        // Iterative Tarjan: frames of (node, next-successor).
        for root in 0..n as u32 {
            if index_of[root as usize] != u32::MAX {
                continue;
            }
            let mut frames: Vec<(u32, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ni)) = frames.last_mut() {
                if *ni == 0 {
                    index_of[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                }
                if *ni < self.adj[v as usize].len() {
                    let s = self.adj[v as usize][*ni];
                    *ni += 1;
                    if index_of[s as usize] == u32::MAX {
                        frames.push((s, 0));
                    } else if on_stack[s as usize] {
                        low[v as usize] = low[v as usize].min(index_of[s as usize]);
                    }
                } else {
                    if low[v as usize] == index_of[v as usize] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp.push(self.node(w));
                            if w == v {
                                break;
                            }
                        }
                        out.push(comp);
                    }
                    frames.pop();
                    if let Some(&mut (p, _)) = frames.last_mut() {
                        low[p as usize] = low[p as usize].min(low[v as usize]);
                    }
                }
            }
        }
        out
    }
}

/// A Pearce–Kelly online topological order over a dynamic directed graph.
///
/// Committed edges always respect the maintained order (`ord[a] < ord[b]`
/// for every committed `a → b`). Inserting an edge that *violates* the
/// order triggers a bounded affected-region search: a forward walk from
/// the target (pruned to labels ≤ the source's — committed labels increase
/// strictly along committed edges, so nothing beyond that label can reach
/// the source) either proves the edge closes a real cycle, or delimits the
/// region to reorder. Cycle-closing edges are **deferred** to a pending
/// set rather than committed, which keeps the order valid; a later
/// [`TopoOrder::has_cycle`] retries them — the graph has a cycle iff some
/// pending edge still cannot be committed. Edge deletion never invalidates
/// a topological order, so removal is plain bookkeeping.
///
/// This is what lets the engine's detection pass answer cycle existence in
/// `O(churn since the last check)`: when nothing is pending (the
/// overwhelmingly common case), `has_cycle` is `O(1)`.
#[derive(Clone, Debug)]
pub struct TopoOrder<N> {
    /// Topological label per live node; unique, never reused.
    ord: HashMap<N, i64>,
    /// Committed (order-respecting) out-edges.
    succs: HashMap<N, HashSet<N>>,
    /// Committed in-edges (for the backward half of the region search).
    preds: HashMap<N, HashSet<N>>,
    /// Deferred edges whose insertion would close a cycle, in insertion
    /// order (deterministic retries).
    pending: Vec<(N, N)>,
    /// Next label above every live one (fresh edge *targets*).
    next_high: i64,
    /// Next label below every live one (fresh edge *sources*).
    next_low: i64,
}

impl<N: Copy + Eq + Hash> Default for TopoOrder<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Copy + Eq + Hash> TopoOrder<N> {
    /// Creates an empty order.
    pub fn new() -> TopoOrder<N> {
        TopoOrder {
            ord: HashMap::new(),
            succs: HashMap::new(),
            preds: HashMap::new(),
            pending: Vec::new(),
            next_high: 0,
            next_low: -1,
        }
    }

    /// Deferred (candidate-cycle) edge count.
    pub fn pending_edges(&self) -> usize {
        self.pending.len()
    }

    /// Committed (order-respecting) edge count.
    pub fn committed_edges(&self) -> usize {
        self.succs.values().map(|s| s.len()).sum()
    }

    /// True when no node is labelled and no edge is tracked (the order
    /// drains with the graph it shadows).
    pub fn is_empty(&self) -> bool {
        self.ord.is_empty()
            && self.succs.is_empty()
            && self.preds.is_empty()
            && self.pending.is_empty()
    }

    fn ensure_high(&mut self, n: N) -> i64 {
        if let Some(&o) = self.ord.get(&n) {
            return o;
        }
        let o = self.next_high;
        self.next_high += 1;
        self.ord.insert(n, o);
        o
    }

    fn ensure_low(&mut self, n: N) -> i64 {
        if let Some(&o) = self.ord.get(&n) {
            return o;
        }
        let o = self.next_low;
        self.next_low -= 1;
        self.ord.insert(n, o);
        o
    }

    fn commit(&mut self, a: N, b: N) {
        self.succs.entry(a).or_default().insert(b);
        self.preds.entry(b).or_default().insert(a);
    }

    /// Inserts the distinct edge `a → b`, maintaining the order. A
    /// cycle-closing edge is deferred instead of committed.
    pub fn insert_edge(&mut self, a: N, b: N) {
        if !self.try_insert(a, b) {
            self.pending.push((a, b));
        }
    }

    /// Attempts to commit `a → b`; returns false when the edge would close
    /// a cycle (the caller defers it). Never touches `pending`.
    fn try_insert(&mut self, a: N, b: N) -> bool {
        if a == b {
            // A self-loop is always a cycle.
            self.ensure_high(a);
            return false;
        }
        // Fresh endpoints are placed so no violation can arise: a fresh
        // source below every live label, a fresh target above.
        let (oa, ob) = if self.ord.contains_key(&a) {
            (self.ord[&a], self.ensure_high(b))
        } else if self.ord.contains_key(&b) {
            (self.ensure_low(a), self.ord[&b])
        } else {
            (self.ensure_high(a), self.ensure_high(b))
        };
        if oa < ob {
            self.commit(a, b);
            return true;
        }

        // Order violation (labels are unique, so oa > ob strictly).
        //
        // `verifier-mutation` plants a deliberate completeness bug here
        // for the testkit's mutation tier: adjacent-label violations skip
        // the affected-region forward search and commit unconditionally,
        // so a back edge closing a 2-cycle (labels always one apart) is
        // recorded as safe and `has_cycle` under-reports. The per-step
        // lockstep oracle must catch the divergence. Never enable this
        // feature in production builds.
        #[cfg(feature = "verifier-mutation")]
        if oa - ob == 1 {
            self.commit(a, b);
            return true;
        }

        // Forward region: everything reachable from `b` through committed
        // edges within labels ≤ oa. Committed labels increase strictly
        // along committed edges, so any path from `b` back to `a` lies
        // entirely inside this window — reaching `a` proves a real cycle.
        let mut forward: Vec<N> = Vec::new();
        let mut seen_f: HashSet<N> = HashSet::new();
        let mut stack = vec![b];
        seen_f.insert(b);
        while let Some(v) = stack.pop() {
            if v == a {
                return false;
            }
            forward.push(v);
            if let Some(next) = self.succs.get(&v) {
                for &s in next {
                    if self.ord[&s] <= oa && seen_f.insert(s) {
                        stack.push(s);
                    }
                }
            }
        }
        // Backward region: everything reaching `a` within labels ≥ ob.
        let mut backward: Vec<N> = Vec::new();
        let mut seen_b: HashSet<N> = HashSet::new();
        let mut stack = vec![a];
        seen_b.insert(a);
        while let Some(v) = stack.pop() {
            backward.push(v);
            if let Some(prev) = self.preds.get(&v) {
                for &p in prev {
                    if self.ord[&p] >= ob && seen_b.insert(p) {
                        stack.push(p);
                    }
                }
            }
        }
        // Reorder (the Pearce–Kelly core): pool the two regions' labels
        // and deal them back in sorted order, the backward region first.
        // Relative order inside each region is preserved; every node that
        // reaches `a` now precedes every node `b` reaches, which makes the
        // new edge (and every committed one) order-respecting again.
        backward.sort_by_key(|n| self.ord[n]);
        forward.sort_by_key(|n| self.ord[n]);
        let mut pool: Vec<i64> =
            backward.iter().chain(forward.iter()).map(|n| self.ord[n]).collect();
        pool.sort_unstable();
        for (&n, o) in backward.iter().chain(forward.iter()).zip(pool) {
            self.ord.insert(n, o);
        }
        self.commit(a, b);
        true
    }

    /// Removes a distinct edge previously inserted. Deletion never
    /// invalidates a topological order, so no search runs.
    pub fn remove_edge(&mut self, a: N, b: N) {
        if let Some(at) = self.pending.iter().position(|&e| e == (a, b)) {
            // `remove` (not `swap_remove`): retry order stays the
            // insertion order, keeping behaviour deterministic.
            self.pending.remove(at);
        } else {
            if let Some(s) = self.succs.get_mut(&a) {
                s.remove(&b);
                if s.is_empty() {
                    self.succs.remove(&a);
                }
            }
            if let Some(p) = self.preds.get_mut(&b) {
                p.remove(&a);
                if p.is_empty() {
                    self.preds.remove(&b);
                }
            }
        }
        self.gc(a);
        self.gc(b);
    }

    /// Drops the label of a node no committed or pending edge touches, so
    /// labels drain with the graph instead of leaking across task churn.
    fn gc(&mut self, n: N) {
        if self.succs.contains_key(&n) || self.preds.contains_key(&n) {
            return;
        }
        if self.pending.iter().any(|&(x, y)| x == n || y == n) {
            return;
        }
        self.ord.remove(&n);
    }

    /// Does the tracked graph (committed ∪ pending edges) contain a cycle?
    ///
    /// Pending edges are retried through the insertion logic. If every one
    /// commits, the whole graph respects a single topological order and is
    /// acyclic; an edge that still cannot be committed has a committed
    /// path from its target back to its source, i.e. a real cycle. The
    /// answer is independent of retry order, because committing edges of
    /// an acyclic graph can never manufacture a cycle and a cyclic graph
    /// can never commit all its edges. `O(1)` when nothing is pending.
    pub fn has_cycle(&mut self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let retry = std::mem::take(&mut self.pending);
        for (i, &(a, b)) in retry.iter().enumerate() {
            if !self.try_insert(a, b) {
                // Still cyclic: keep this edge and the untried rest
                // deferred (committed retries stay committed).
                self.pending.extend_from_slice(&retry[i..]);
                return true;
            }
        }
        false
    }

    /// Test hook: checks the structure against the authoritative distinct
    /// edge list — every edge is committed with strictly increasing labels
    /// or parked as pending, and nothing else is tracked.
    pub fn validate(&self, edges: &[(N, N)]) -> Result<(), String>
    where
        N: std::fmt::Debug,
    {
        let committed = self.committed_edges();
        if committed + self.pending.len() != edges.len() {
            return Err(format!(
                "tracked {} committed + {} pending edges, graph has {}",
                committed,
                self.pending.len(),
                edges.len()
            ));
        }
        for &(a, b) in edges {
            if self.pending.contains(&(a, b)) {
                continue;
            }
            if !self.succs.get(&a).is_some_and(|s| s.contains(&b)) {
                return Err(format!("edge {a:?} → {b:?} neither committed nor pending"));
            }
            if !self.preds.get(&b).is_some_and(|p| p.contains(&a)) {
                return Err(format!("edge {a:?} → {b:?} missing its predecessor entry"));
            }
            let (Some(&oa), Some(&ob)) = (self.ord.get(&a), self.ord.get(&b)) else {
                return Err(format!("edge {a:?} → {b:?} has an unlabelled endpoint"));
            };
            if oa >= ob {
                return Err(format!(
                    "committed edge {a:?} → {b:?} violates the order ({oa} ≥ {ob})"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(u32, u32)]) -> DiGraph<u32> {
        let mut g = DiGraph::new();
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    #[test]
    fn empty_graph_has_no_cycle() {
        let g: DiGraph<u32> = DiGraph::new();
        assert!(g.find_cycle().is_none());
        assert!(!g.has_cycle());
        assert!(g.sccs().is_empty());
    }

    #[test]
    fn chain_is_acyclic() {
        let g = graph(&[(1, 2), (2, 3), (3, 4)]);
        assert!(g.find_cycle().is_none());
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph(&[(1, 1)]);
        let c = g.find_cycle().expect("self-loop");
        assert!(g.is_cycle(&c));
        assert_eq!(c, vec![1, 1]);
    }

    #[test]
    fn two_cycle_found() {
        let g = graph(&[(1, 2), (2, 1)]);
        let c = g.find_cycle().expect("2-cycle");
        assert!(g.is_cycle(&c));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn long_cycle_witness_is_a_real_cycle() {
        let g = graph(&[(1, 2), (2, 3), (3, 4), (4, 5), (5, 1), (2, 9), (9, 10)]);
        let c = g.find_cycle().expect("5-cycle");
        assert!(g.is_cycle(&c), "witness {c:?} is not a cycle");
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn cycle_in_second_component() {
        let g = graph(&[(1, 2), (10, 11), (11, 12), (12, 10)]);
        let c = g.find_cycle().expect("cycle in later component");
        assert!(g.is_cycle(&c));
        assert!(c.contains(&10) && c.contains(&11) && c.contains(&12));
    }

    #[test]
    fn diamond_with_back_edge() {
        // 1→2→4, 1→3→4, 4→1: several cycles, witness must be valid.
        let g = graph(&[(1, 2), (2, 4), (1, 3), (3, 4), (4, 1)]);
        let c = g.find_cycle().expect("cycle");
        assert!(g.is_cycle(&c));
    }

    #[test]
    fn cross_edges_do_not_fake_cycles() {
        // DFS cross edges (4→2 after 2 is finished) must not be reported.
        let g = graph(&[(1, 2), (2, 3), (1, 4), (4, 2)]);
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn find_cycle_through_respects_the_node() {
        let g = graph(&[(1, 2), (2, 1), (3, 4), (4, 3)]);
        let c = g.find_cycle_through(3).expect("cycle through 3");
        assert!(g.is_cycle(&c));
        assert_eq!(c.first(), Some(&3));
        assert_eq!(c.last(), Some(&3));
        assert!(c.contains(&4));
        // Node 5 is not even in the graph.
        assert!(g.find_cycle_through(5).is_none());
    }

    #[test]
    fn find_cycle_through_negative_when_only_other_cycles_exist() {
        let g = graph(&[(1, 2), (2, 1), (3, 1)]);
        assert!(g.find_cycle_through(3).is_none(), "3 only reaches the 1-2 cycle");
    }

    #[test]
    fn find_cycle_through_self_loop() {
        let g = graph(&[(7, 7)]);
        assert_eq!(g.find_cycle_through(7), Some(vec![7, 7]));
    }

    #[test]
    fn reaches_and_walks() {
        let g = graph(&[(1, 2), (2, 3)]);
        assert!(g.reaches(1, 3));
        assert!(g.reaches(1, 2));
        assert!(!g.reaches(3, 1));
        // A node does not reach itself without a cycle.
        assert!(!g.reaches(1, 1));
        assert!(g.is_walk(&[1, 2, 3]));
        assert!(!g.is_walk(&[1, 3]));
        assert!(!g.is_walk(&[1])); // length must be > 1 (paper §4.2)
    }

    #[test]
    fn degrees() {
        let g = graph(&[(1, 2), (1, 3), (2, 3)]);
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(1), 0);
        assert_eq!(g.out_degree(99), 0);
    }

    #[test]
    fn sccs_partition_nodes() {
        let g = graph(&[(1, 2), (2, 1), (2, 3), (3, 4), (4, 3), (5, 5)]);
        let sccs = g.sccs();
        let total: usize = sccs.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.node_count());
        let mut sizes: Vec<usize> = sccs.iter().map(|c| c.len()).collect();
        sizes.sort();
        assert_eq!(sizes, vec![1, 2, 2]);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let g = graph(&[(1, 2), (1, 2), (1, 2)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.out_degree(1), 1);
        assert_eq!(g.in_degree(2), 1);
    }

    #[test]
    fn path_from_sources_finds_witness() {
        let g = graph(&[(1, 2), (2, 3), (4, 5)]);
        let path = g.path_from_sources(&[1], |n| n == 3).expect("path to 3");
        assert_eq!(path, vec![1, 2, 3]);
        assert!(g.path_from_sources(&[4], |n| n == 3).is_none());
        // Source satisfying the target directly is a (length-1) witness.
        let path = g.path_from_sources(&[3], |n| n == 3).expect("trivial");
        assert_eq!(path, vec![3]);
    }

    #[test]
    fn parallel_cycle_existence_agrees_on_small_graphs() {
        let cases: Vec<(Vec<(u32, u32)>, bool)> = vec![
            (vec![], false),
            (vec![(1, 2), (2, 3), (3, 4)], false),
            (vec![(1, 1)], true),
            (vec![(1, 2), (2, 1)], true),
            (vec![(1, 2), (2, 3), (1, 4), (4, 2)], false),
            (vec![(1, 2), (10, 11), (11, 12), (12, 10)], true),
            (vec![(1, 2), (2, 4), (1, 3), (3, 4), (4, 1)], true),
        ];
        for (edges, want) in cases {
            let g = graph(&edges);
            for workers in [1, 2, 4] {
                assert_eq!(g.has_cycle_par(workers), want, "{edges:?} with {workers} workers");
            }
        }
    }

    #[test]
    fn parallel_cycle_existence_agrees_on_large_graphs() {
        // Wide layered DAG (large frontiers exercise the parallel rounds).
        let layers = 64u32;
        let width = 64u32;
        let mut g: DiGraph<u32> = DiGraph::new();
        for l in 0..layers - 1 {
            for i in 0..width {
                for j in 0..4 {
                    g.add_edge(l * width + i, (l + 1) * width + (i + j) % width);
                }
            }
        }
        assert!(!g.has_cycle_par(4));
        assert!(!g.has_cycle());
        // One closing edge makes it cyclic.
        g.add_edge((layers - 1) * width, 0);
        assert!(g.has_cycle_par(4));
        assert!(g.has_cycle());
    }

    #[test]
    fn parallel_cycle_existence_deep_path() {
        // 100k-node path: frontiers of size 1 take the inline branch all
        // the way down, so this also guards the no-spawn fast path.
        let n = 100_000u32;
        let mut g = DiGraph::with_capacity(n as usize);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        assert!(!g.has_cycle_par(4));
        g.add_edge(n - 1, n / 2);
        assert!(g.has_cycle_par(4));
    }

    #[test]
    fn large_path_graph_no_stack_overflow() {
        // 200k-node path + closing edge; recursion would overflow here.
        let n = 200_000u32;
        let mut g = DiGraph::with_capacity(n as usize);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g.add_edge(n - 1, 0);
        let c = g.find_cycle().expect("big cycle");
        assert_eq!(c.len() as u32, n + 1);
        assert!(g.is_cycle(&c));
        assert_eq!(g.sccs().len(), 1);
    }

    // -- TopoOrder (Pearce–Kelly order maintenance) -------------------------

    /// A `TopoOrder` fed the given edges, alongside the edge list for
    /// `validate`.
    fn order_of(edges: &[(u32, u32)]) -> (TopoOrder<u32>, Vec<(u32, u32)>) {
        let mut order = TopoOrder::new();
        for &(a, b) in edges {
            order.insert_edge(a, b);
        }
        (order, edges.to_vec())
    }

    #[cfg(not(feature = "verifier-mutation"))]
    #[test]
    fn order_agrees_with_has_cycle_on_the_digraph_cases() {
        let cases: Vec<(Vec<(u32, u32)>, bool)> = vec![
            (vec![], false),
            (vec![(1, 2), (2, 3), (3, 4)], false),
            (vec![(1, 1)], true),
            (vec![(1, 2), (2, 1)], true),
            (vec![(1, 2), (2, 3), (1, 4), (4, 2)], false),
            (vec![(1, 2), (10, 11), (11, 12), (12, 10)], true),
            (vec![(1, 2), (2, 4), (1, 3), (3, 4), (4, 1)], true),
            // Violation-then-reorder without a cycle: (4, 1) arrives with
            // both endpoints labelled the wrong way around.
            (vec![(1, 2), (3, 4), (4, 1)], false),
        ];
        for (edges, want) in cases {
            let (mut order, edges) = order_of(&edges);
            assert_eq!(order.has_cycle(), want, "{edges:?}");
            order.validate(&edges).unwrap_or_else(|e| panic!("{edges:?}: {e}"));
            assert_eq!(graph(&edges).has_cycle(), want, "oracle disagrees on {edges:?}");
        }
    }

    #[cfg(not(feature = "verifier-mutation"))]
    #[test]
    fn reorder_then_cycle_then_deletion_recovers() {
        // (4, 1) forces a Pearce–Kelly reorder; (2, 3) then closes the
        // cycle 1→2→3→4→1 and must be deferred, not committed.
        let (mut order, _) = order_of(&[(1, 2), (3, 4), (4, 1), (2, 3)]);
        assert_eq!(order.pending_edges(), 1);
        assert!(order.has_cycle());
        order.validate(&[(1, 2), (3, 4), (4, 1), (2, 3)]).unwrap();
        // Deleting any cycle edge makes the pending edge committable.
        order.remove_edge(4, 1);
        assert!(!order.has_cycle());
        order.validate(&[(1, 2), (3, 4), (2, 3)]).unwrap();
        assert_eq!(order.pending_edges(), 0);
    }

    #[test]
    fn self_loops_are_always_cyclic_until_removed() {
        let (mut order, _) = order_of(&[(7, 7)]);
        assert!(order.has_cycle());
        assert!(order.has_cycle(), "retries must keep the self-loop pending");
        order.remove_edge(7, 7);
        assert!(!order.has_cycle());
        assert!(order.is_empty());
    }

    #[test]
    fn labels_drain_with_the_graph() {
        let edges = [(1u32, 2), (2, 3), (3, 1), (3, 4)];
        let (mut order, _) = order_of(&edges);
        assert!(order.has_cycle());
        for &(a, b) in &edges {
            order.remove_edge(a, b);
        }
        assert!(order.is_empty(), "no labels may leak after full drain");
        assert!(!order.has_cycle());
        // Reuse after drain behaves like a fresh order.
        order.insert_edge(1, 2);
        order.insert_edge(2, 3);
        order.insert_edge(3, 1);
        assert!(order.has_cycle());
    }
}
