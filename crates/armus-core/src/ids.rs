//! Identifier newtypes for tasks and phasers.
//!
//! Tasks and phasers are referred to throughout the verifier by small opaque
//! ids rather than by reference, mirroring the paper's task names `t ∈ T` and
//! phaser names `p ∈ P`. Fresh ids are drawn from process-wide atomic
//! counters so that ids are unique across runtimes, sites and tests.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Name of a task (`t` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

/// Name of a phaser (`p` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhaserId(pub u64);

/// A phase number (`n` in the paper): the timestamp of the logical clock
/// associated with a phaser.
pub type Phase = u64;

static NEXT_TASK: AtomicU64 = AtomicU64::new(1);
static NEXT_PHASER: AtomicU64 = AtomicU64::new(1);

impl TaskId {
    /// Returns a process-wide fresh task id.
    pub fn fresh() -> TaskId {
        TaskId(NEXT_TASK.fetch_add(1, Ordering::Relaxed))
    }

    /// Raw numeric value; useful for dense indexing in workloads.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl PhaserId {
    /// Returns a process-wide fresh phaser id.
    pub fn fresh() -> PhaserId {
        PhaserId(NEXT_PHASER.fetch_add(1, Ordering::Relaxed))
    }

    /// Raw numeric value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for PhaserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PhaserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fresh_task_ids_are_unique() {
        let ids: HashSet<TaskId> = (0..1000).map(|_| TaskId::fresh()).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn fresh_phaser_ids_are_unique() {
        let ids: HashSet<PhaserId> = (0..1000).map(|_| PhaserId::fresh()).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn fresh_ids_unique_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| (0..250).map(|_| TaskId::fresh()).collect::<Vec<_>>()))
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TaskId(7).to_string(), "t7");
        assert_eq!(PhaserId(9).to_string(), "p9");
        assert_eq!(format!("{:?}", TaskId(7)), "t7");
        assert_eq!(format!("{:?}", PhaserId(9)), "p9");
    }
}
